// Common interface for parallelism tuners.
//
// A tuner drives one "tuning process": starting from the engine's current
// deployment (under possibly changed source rates), it reconfigures the job
// until its convergence criterion holds, and reports how it went. All four
// methods (DS2, ContTune, ZeroTune, StreamTune) implement this interface and
// run unchanged on either simulated engine.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/engine.h"

namespace streamtune::baselines {

/// What happened during one tuning process.
struct TuningOutcome {
  /// Final per-operator parallelism degrees.
  std::vector<int> final_parallelism;
  /// Sum of the final degrees (the Fig. 6 / Fig. 8a metric).
  int total_parallelism = 0;
  /// Reconfigurations performed by this tuning process.
  int reconfigurations = 0;
  /// Post-deployment measurements that observed job-level backpressure
  /// during this tuning process (transient, while still iterating).
  int backpressure_events = 0;
  /// True when the process ended with unresolved job-level backpressure —
  /// the method declared convergence on a configuration that cannot sustain
  /// the source rates. Table III counts these failures.
  bool ended_with_backpressure = false;
  /// Tuning iterations executed.
  int iterations = 0;
  /// Virtual minutes spent (stabilization waits), for Fig. 7b.
  double tuning_minutes = 0;
  /// Injected/transient faults this process absorbed without dying:
  /// retried engine calls plus corrupted metric samples replaced by the
  /// sanitizer. 0 on a fault-free run.
  int faults_survived = 0;
  /// Engine calls re-attempted after transient failures.
  int retries = 0;
  /// Roll-backs to the last known-good deployment after a regression.
  int rollbacks = 0;
};

/// A parallelism tuning method.
class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;

  /// Runs one tuning process on `engine` (which must already be deployed).
  /// Implementations call engine->Deploy / engine->Measure; counters are
  /// read as deltas so callers need not reset them.
  virtual Result<TuningOutcome> Tune(sim::StreamEngine* engine) = 0;
};

}  // namespace streamtune::baselines
