// ZeroTune (Agnihotri et al., ICDE'24): zero-shot job-level cost model.
//
// A GNN consumes the dataflow DAG (with candidate parallelisms injected) and
// regresses a single job-level performance cost via a graph-level readout —
// the aggregation step that, per the paper's critique (C2), discards
// operator-level detail. Since ZeroTune defines no tuning strategy, the
// evaluation samples candidate parallelism assignments and deploys the one
// with the lowest predicted cost, in a single reconfiguration (Sec. V-A).
// Because the cost objective rewards performance only, the picked
// configurations are resource-hungry.

#pragma once

#include <memory>
#include <vector>

#include "baselines/robust_loop.h"
#include "baselines/tuner.h"
#include "dataflow/feature_encoder.h"
#include "ml/gnn.h"
#include "ml/nn.h"

namespace streamtune::baselines {

/// One training example for the job-level cost model.
struct ZeroTuneExample {
  JobGraph graph;
  std::vector<int> parallelism;
  /// Job-level performance cost (higher = worse), e.g. a latency proxy.
  double cost = 0;
};

/// Options for ZeroTune.
struct ZeroTuneOptions {
  int hidden_dim = 32;
  int gnn_layers = 3;
  int epochs = 60;
  double learning_rate = 3e-3;
  /// Candidate configurations sampled per tuning call.
  int num_samples = 64;
  uint64_t seed = 31;
  /// Retry/sanitize knobs for the hardened deploy/measure path.
  RobustnessOptions robustness;
};

/// The ZeroTune cost-model tuner.
class ZeroTuneTuner : public Tuner {
 public:
  explicit ZeroTuneTuner(ZeroTuneOptions options = {});

  std::string name() const override { return "ZeroTune"; }

  /// Trains the zero-shot cost model on historical executions.
  Status Train(const std::vector<ZeroTuneExample>& data);

  /// Predicted job-level cost of running `graph` at `parallelism`.
  Result<double> PredictCost(const JobGraph& graph,
                             const std::vector<int>& parallelism) const;

  /// Samples candidate configurations, deploys the predicted-best one.
  /// Always a single reconfiguration.
  Result<TuningOutcome> Tune(sim::StreamEngine* engine) override;

  bool trained() const { return trained_; }

 private:
  ZeroTuneOptions options_;
  FeatureEncoder encoder_;
  ml::GnnEncoder gnn_;
  ml::Mlp readout_;
  Rng rng_;
  bool trained_ = false;
};

}  // namespace streamtune::baselines
