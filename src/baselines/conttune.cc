#include "baselines/conttune.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace streamtune::baselines {

std::vector<GpSample> ContTuneTuner::ExportHistory() const {
  std::vector<GpSample> samples;
  for (const auto& [op, h] : history_) {
    for (size_t i = 0; i < h.parallelism.size(); ++i) {
      samples.push_back({op, h.parallelism[i], h.ability[i]});
    }
  }
  return samples;
}

void ContTuneTuner::ImportHistory(const std::vector<GpSample>& samples) {
  for (const GpSample& s : samples) {
    OpHistory& h = history_[s.op];
    h.parallelism.push_back(s.parallelism);
    h.ability.push_back(s.ability);
  }
}

std::vector<int> ContTuneTuner::Recommend(const sim::StreamEngine& engine,
                                          const sim::JobMetrics& metrics) {
  const JobGraph& g = engine.graph();
  const int n = g.num_operators();
  const int p_max = engine.max_parallelism();
  const std::vector<int>& p_cur = engine.parallelism();

  // Target rates via observed selectivities (as in DS2).
  std::vector<double> sel(n, 1.0);
  for (int v = 0; v < n; ++v) {
    const sim::OperatorMetrics& m = metrics.ops[v];
    sel[v] = m.input_rate > 1e-9 ? m.output_rate / m.input_rate : 1.0;
  }
  auto order = g.TopologicalOrder();
  assert(order.ok() && "deployed job graphs are acyclic");
  std::vector<double> target_in(n, 0.0), target_out(n, 0.0);
  for (int v : order.value()) {
    if (g.upstream(v).empty()) {
      target_in[v] = metrics.ops[v].desired_input_rate;
    } else {
      double in = 0;
      for (int u : g.upstream(v)) in += target_out[u];
      target_in[v] = in;
    }
    target_out[v] = target_in[v] * sel[v];
  }

  std::vector<int> rec = p_cur;
  for (int v = 0; v < n; ++v) {
    const sim::OperatorMetrics& m = metrics.ops[v];
    if (m.input_rate <= 1e-9) continue;

    // Observe processing ability at the current degree and record it in the
    // job's own tuning history.
    double ability = m.input_rate / m.useful_time_frac_observed;
    OpHistory& h = history_[v];
    h.parallelism.push_back(static_cast<double>(p_cur[v]));
    h.ability.push_back(ability);

    if (ability < target_in[v]) {
      // Big phase: scale up proportionally to the deficit, with margin.
      double factor = target_in[v] / std::max(ability, 1e-9);
      int jump = static_cast<int>(
          std::ceil(p_cur[v] * factor * options_.big_factor));
      rec[v] = std::clamp(jump, p_cur[v] + 1, p_max);
      continue;
    }

    // Small phase: conservative downward search on the GP surrogate.
    if (h.parallelism.size() < 2) continue;  // not enough evidence yet
    ml::GaussianProcess gp(options_.gp);
    if (!gp.Fit(h.parallelism, h.ability).ok()) continue;
    int best = p_cur[v];
    for (int cand = 1; cand < p_cur[v]; ++cand) {
      if (gp.Lcb(static_cast<double>(cand), options_.alpha) >= target_in[v]) {
        best = cand;
        break;
      }
    }
    rec[v] = best;
  }
  return rec;
}

Result<TuningOutcome> ContTuneTuner::Tune(sim::StreamEngine* engine) {
  TuningOutcome outcome;
  RobustLoop loop(engine, options_.robustness);
  int reconfig_before = engine->reconfiguration_count();
  double minutes_before = engine->virtual_minutes();
  bool last_severe = false;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    outcome.iterations = iter + 1;
    Result<sim::JobMetrics> metrics_r = loop.Measure();
    if (!metrics_r.ok()) {
      // A failed *initial* measurement on a fault-free engine is a caller
      // error and propagates; under faults the loop degrades gracefully.
      if (iter == 0 && !loop.hardened()) return metrics_r.status();
      break;
    }
    const sim::JobMetrics& metrics = *metrics_r;
    last_severe = metrics.severe_backpressure;
    // Only post-deployment backpressure counts against this tuner (the
    // iteration-0 state is shared by every method).
    if (iter > 0 && metrics.job_backpressure) ++outcome.backpressure_events;
    if (loop.MaybeRollback(metrics)) continue;
    std::vector<int> rec = Recommend(*engine, metrics);
    loop.ClampStep(&rec);
    if (rec == engine->parallelism()) break;
    if (!loop.Deploy(rec).ok()) break;  // persistent failure: keep current
  }

  outcome.final_parallelism = engine->parallelism();
  for (int p : outcome.final_parallelism) outcome.total_parallelism += p;
  outcome.reconfigurations =
      engine->reconfiguration_count() - reconfig_before;
  outcome.tuning_minutes = engine->virtual_minutes() - minutes_before;
  Result<sim::JobMetrics> final_metrics = loop.Measure();
  outcome.ended_with_backpressure = final_metrics.ok()
                                        ? final_metrics->severe_backpressure
                                        : last_severe;
  loop.FillOutcome(&outcome);
  return outcome;
}

}  // namespace streamtune::baselines
