#include "baselines/ds2.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace streamtune::baselines {

std::vector<int> Ds2Tuner::Recommend(const sim::StreamEngine& engine,
                                     const sim::JobMetrics& metrics) const {
  const JobGraph& g = engine.graph();
  const int n = g.num_operators();
  const int p_max = engine.max_parallelism();
  const std::vector<int>& p_cur = engine.parallelism();

  // Observed selectivities from the rate logs.
  std::vector<double> sel(n, 1.0);
  for (int v = 0; v < n; ++v) {
    const sim::OperatorMetrics& m = metrics.ops[v];
    sel[v] = m.input_rate > 1e-9 ? m.output_rate / m.input_rate : 1.0;
  }

  // Propagate target (unthrottled) rates from the sources downstream.
  auto order = g.TopologicalOrder();
  assert(order.ok() && "deployed job graphs are acyclic");
  std::vector<double> target_in(n, 0.0), target_out(n, 0.0);
  for (int v : order.value()) {
    if (g.upstream(v).empty()) {
      target_in[v] = metrics.ops[v].desired_input_rate;
    } else {
      double in = 0;
      for (int u : g.upstream(v)) in += target_out[u];
      target_in[v] = in;
    }
    target_out[v] = target_in[v] * sel[v];
  }

  std::vector<int> rec(n, 1);
  for (int v = 0; v < n; ++v) {
    const sim::OperatorMetrics& m = metrics.ops[v];
    if (m.input_rate <= 1e-9) {
      // No data observed: nothing to extrapolate from, keep the current
      // degree.
      rec[v] = p_cur[v];
      continue;
    }
    // DS2's core: true rate = processed / useful time, assumed linear in p.
    double true_rate = m.input_rate / m.useful_time_frac_observed;
    double per_instance = true_rate / p_cur[v];
    double needed = options_.headroom * target_in[v] / per_instance;
    rec[v] = static_cast<int>(
        std::clamp(std::ceil(needed - 1e-9), 1.0,
                   static_cast<double>(p_max)));
  }
  return rec;
}

Ds2Session::Ds2Session(const Ds2Options& options, sim::StreamEngine* engine)
    : options_(options),
      engine_(engine),
      loop_(engine, options.robustness),
      reconfig_before_(engine->reconfiguration_count()),
      minutes_before_(engine->virtual_minutes()) {}

Result<bool> Ds2Session::Step() {
  if (done_) return true;
  const int iter = outcome_.iterations;
  if (iter >= options_.max_iterations) {
    done_ = true;
    return true;
  }
  outcome_.iterations = iter + 1;

  Result<sim::JobMetrics> metrics_r = loop_.Measure();
  if (!metrics_r.ok()) {
    done_ = true;
    // A failed *initial* measurement on a fault-free engine is a caller
    // error (e.g. never deployed) and propagates; once faults are in
    // play the process degrades gracefully and keeps what it has.
    if (iter == 0 && !loop_.hardened()) return metrics_r.status();
    return true;
  }
  const sim::JobMetrics& metrics = *metrics_r;
  last_severe_ = metrics.severe_backpressure;
  // The iteration-0 measurement reflects the pre-tuning state shared by
  // all methods; only backpressure after this tuner's own deployments is
  // attributed to it (Table III semantics).
  if (iter > 0 && metrics.job_backpressure) ++outcome_.backpressure_events;
  if (loop_.MaybeRollback(metrics)) return false;
  std::vector<int> rec = Ds2Tuner(options_).Recommend(*engine_, metrics);
  loop_.ClampStep(&rec);
  if (rec == engine_->parallelism()) {
    done_ = true;
    return true;
  }
  if (!loop_.Deploy(rec).ok()) {  // persistent failure: keep current
    done_ = true;
    return true;
  }
  return false;
}

Result<TuningOutcome> Ds2Session::Finish() {
  done_ = true;
  outcome_.final_parallelism = engine_->parallelism();
  outcome_.total_parallelism = 0;
  for (int p : outcome_.final_parallelism) outcome_.total_parallelism += p;
  outcome_.reconfigurations =
      engine_->reconfiguration_count() - reconfig_before_;
  outcome_.tuning_minutes = engine_->virtual_minutes() - minutes_before_;
  Result<sim::JobMetrics> final_metrics = loop_.Measure();
  outcome_.ended_with_backpressure = final_metrics.ok()
                                         ? final_metrics->severe_backpressure
                                         : last_severe_;
  loop_.FillOutcome(&outcome_);
  return outcome_;
}

Result<TuningOutcome> Ds2Tuner::Tune(sim::StreamEngine* engine) {
  Ds2Session session(options_, engine);
  while (!session.done()) {
    ST_ASSIGN_OR_RETURN(bool stopped, session.Step());
    if (stopped) break;
  }
  return session.Finish();
}

}  // namespace streamtune::baselines
