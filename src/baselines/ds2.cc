#include "baselines/ds2.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace streamtune::baselines {

std::vector<int> Ds2Tuner::Recommend(const sim::StreamEngine& engine,
                                     const sim::JobMetrics& metrics) const {
  const JobGraph& g = engine.graph();
  const int n = g.num_operators();
  const int p_max = engine.max_parallelism();
  const std::vector<int>& p_cur = engine.parallelism();

  // Observed selectivities from the rate logs.
  std::vector<double> sel(n, 1.0);
  for (int v = 0; v < n; ++v) {
    const sim::OperatorMetrics& m = metrics.ops[v];
    sel[v] = m.input_rate > 1e-9 ? m.output_rate / m.input_rate : 1.0;
  }

  // Propagate target (unthrottled) rates from the sources downstream.
  auto order = g.TopologicalOrder();
  assert(order.ok() && "deployed job graphs are acyclic");
  std::vector<double> target_in(n, 0.0), target_out(n, 0.0);
  for (int v : order.value()) {
    if (g.upstream(v).empty()) {
      target_in[v] = metrics.ops[v].desired_input_rate;
    } else {
      double in = 0;
      for (int u : g.upstream(v)) in += target_out[u];
      target_in[v] = in;
    }
    target_out[v] = target_in[v] * sel[v];
  }

  std::vector<int> rec(n, 1);
  for (int v = 0; v < n; ++v) {
    const sim::OperatorMetrics& m = metrics.ops[v];
    if (m.input_rate <= 1e-9) {
      // No data observed: nothing to extrapolate from, keep the current
      // degree.
      rec[v] = p_cur[v];
      continue;
    }
    // DS2's core: true rate = processed / useful time, assumed linear in p.
    double true_rate = m.input_rate / m.useful_time_frac_observed;
    double per_instance = true_rate / p_cur[v];
    double needed = options_.headroom * target_in[v] / per_instance;
    rec[v] = static_cast<int>(
        std::clamp(std::ceil(needed - 1e-9), 1.0,
                   static_cast<double>(p_max)));
  }
  return rec;
}

Result<TuningOutcome> Ds2Tuner::Tune(sim::StreamEngine* engine) {
  TuningOutcome outcome;
  RobustLoop loop(engine, options_.robustness);
  int reconfig_before = engine->reconfiguration_count();
  double minutes_before = engine->virtual_minutes();
  bool last_severe = false;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    outcome.iterations = iter + 1;
    Result<sim::JobMetrics> metrics_r = loop.Measure();
    if (!metrics_r.ok()) {
      // A failed *initial* measurement on a fault-free engine is a caller
      // error (e.g. never deployed) and propagates; once faults are in
      // play the process degrades gracefully and keeps what it has.
      if (iter == 0 && !loop.hardened()) return metrics_r.status();
      break;
    }
    const sim::JobMetrics& metrics = *metrics_r;
    last_severe = metrics.severe_backpressure;
    // The iteration-0 measurement reflects the pre-tuning state shared by
    // all methods; only backpressure after this tuner's own deployments is
    // attributed to it (Table III semantics).
    if (iter > 0 && metrics.job_backpressure) ++outcome.backpressure_events;
    if (loop.MaybeRollback(metrics)) continue;
    std::vector<int> rec = Recommend(*engine, metrics);
    loop.ClampStep(&rec);
    if (rec == engine->parallelism()) break;
    if (!loop.Deploy(rec).ok()) break;  // persistent failure: keep current
  }

  outcome.final_parallelism = engine->parallelism();
  for (int p : outcome.final_parallelism) outcome.total_parallelism += p;
  outcome.reconfigurations =
      engine->reconfiguration_count() - reconfig_before;
  outcome.tuning_minutes = engine->virtual_minutes() - minutes_before;
  Result<sim::JobMetrics> final_metrics = loop.Measure();
  outcome.ended_with_backpressure = final_metrics.ok()
                                        ? final_metrics->severe_backpressure
                                        : last_severe;
  loop.FillOutcome(&outcome);
  return outcome;
}

}  // namespace streamtune::baselines
