// ContTune (Lian et al., VLDB'23): conservative Bayesian optimization.
//
// Per operator, a Gaussian-process surrogate models the relationship between
// the parallelism degree and the operator's observed processing ability,
// trained on the target job's own tuning history. Tuning follows the
// "big-small" algorithm: when an operator cannot sustain its target rate the
// degree jumps up aggressively (Big), otherwise the GP searches downward for
// the smallest degree whose conservative estimate (LCB: mean - alpha * std)
// still sustains the rate (small). Like DS2 it consumes the noisy
// useful-time metric, and unlike StreamTune it uses no cross-job knowledge.

#pragma once

#include <map>
#include <vector>

#include "baselines/robust_loop.h"
#include "baselines/tuner.h"
#include "ml/gaussian_process.h"

namespace streamtune::baselines {

/// Options for the ContTune tuner.
struct ContTuneOptions {
  int max_iterations = 15;
  /// Conservatism alpha in the LCB score (paper's optimal setting: 3).
  double alpha = 3.0;
  /// Multiplier for the Big phase (jump factor on the deficit ratio).
  double big_factor = 1.2;
  ml::GpConfig gp;
  /// Retry/sanitize/rollback knobs for the hardened loop.
  RobustnessOptions robustness;
};

/// One (operator, parallelism) -> processing-ability observation, the unit
/// the per-operator GP surrogates are fitted on. Exported/imported so a
/// knowledge base can persist a job's accumulated observations across
/// tuning sessions (the way ContTune keeps reusing them within a session).
struct GpSample {
  int op = 0;
  double parallelism = 0;
  double ability = 0;
};

/// The ContTune conservative-BO controller.
class ContTuneTuner : public Tuner {
 public:
  explicit ContTuneTuner(ContTuneOptions options = {}) : options_(options) {}

  std::string name() const override { return "ContTune"; }
  Result<TuningOutcome> Tune(sim::StreamEngine* engine) override;

  /// Clears the accumulated per-operator tuning history (a new job).
  void ResetHistory() { history_.clear(); }

  /// All accumulated observations, flattened in operator order.
  std::vector<GpSample> ExportHistory() const;
  /// Appends previously exported observations (e.g. loaded from a
  /// knowledge base) to the per-operator histories.
  void ImportHistory(const std::vector<GpSample>& samples);

 private:
  /// Observations for one operator: parallelism -> processing abilities.
  struct OpHistory {
    std::vector<double> parallelism;
    std::vector<double> ability;
  };

  std::vector<int> Recommend(const sim::StreamEngine& engine,
                             const sim::JobMetrics& metrics);

  ContTuneOptions options_;
  std::map<int, OpHistory> history_;  // operator id -> observations
};

}  // namespace streamtune::baselines
