#include "baselines/zerotune.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace streamtune::baselines {

ZeroTuneTuner::ZeroTuneTuner(ZeroTuneOptions options)
    : options_(options), rng_(options.seed) {
  ml::GnnConfig cfg;
  cfg.feature_dim = FeatureEncoder::FeatureDim();
  cfg.hidden_dim = options_.hidden_dim;
  cfg.num_layers = options_.gnn_layers;
  cfg.seed = options_.seed;
  gnn_ = ml::GnnEncoder(cfg);
  Rng init_rng(options_.seed + 1);
  readout_ = ml::Mlp({options_.hidden_dim, options_.hidden_dim, 1},
                     ml::Activation::kRelu, &init_rng);
}

namespace {

ml::Matrix FeatureMatrix(const FeatureEncoder& encoder, const JobGraph& g) {
  auto rows = encoder.EncodeGraph(g);
  return ml::Matrix::FromRows(rows);
}

ml::Matrix ParallelismColumn(const FeatureEncoder& encoder,
                             const std::vector<int>& p) {
  ml::Matrix col(static_cast<int>(p.size()), 1);
  for (size_t i = 0; i < p.size(); ++i) {
    col.at(static_cast<int>(i), 0) = encoder.ScaleParallelism(p[i]);
  }
  return col;
}

}  // namespace

Status ZeroTuneTuner::Train(const std::vector<ZeroTuneExample>& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  for (const ZeroTuneExample& ex : data) {
    if (static_cast<int>(ex.parallelism.size()) != ex.graph.num_operators()) {
      return Status::InvalidArgument("parallelism size mismatch in example");
    }
  }

  // Standardize the cost target (log-scale: costs are heavy-tailed).
  std::vector<double> logc;
  logc.reserve(data.size());
  for (const ZeroTuneExample& ex : data) logc.push_back(std::log1p(ex.cost));
  double mean = 0;
  for (double c : logc) mean += c;
  mean /= static_cast<double>(logc.size());
  double var = 0;
  for (double c : logc) var += (c - mean) * (c - mean);
  double stddev = std::sqrt(var / static_cast<double>(logc.size()));
  if (stddev < 1e-9) stddev = 1.0;

  std::vector<ml::Var> params = gnn_.Params();
  for (const ml::Var& p : readout_.Params()) params.push_back(p);
  ml::Adam opt(params, options_.learning_rate);

  // Per-example inputs are fixed across epochs: prepare once, then drive
  // one persistent tape (allocation-free from the second epoch on).
  struct Prepared {
    ml::GraphContext ctx;
    ml::Matrix features, pcol, target;
  };
  std::vector<Prepared> prepared(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    prepared[i].ctx = ml::GraphContext::Build(data[i].graph);
    prepared[i].features = FeatureMatrix(encoder_, data[i].graph);
    prepared[i].pcol = ParallelismColumn(encoder_, data[i].parallelism);
    prepared[i].target = ml::Matrix(1, 1);
    prepared[i].target.at(0, 0) = (logc[i] - mean) / stddev;
  }

  ml::Tape tape;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const Prepared& p : prepared) {
      tape.Reset();
      ml::Tape::Ref emb = gnn_.Forward(&tape, p.ctx, p.features, p.pcol);
      ml::Tape::Ref pred = readout_.Forward(&tape, tape.MeanRows(emb));
      ml::Tape::Ref loss = tape.MseLoss(pred, &p.target);
      tape.Backward(loss);
      opt.Step();
    }
  }
  trained_ = true;
  return Status::OK();
}

Result<double> ZeroTuneTuner::PredictCost(
    const JobGraph& graph, const std::vector<int>& parallelism) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  if (static_cast<int>(parallelism.size()) != graph.num_operators()) {
    return Status::InvalidArgument("parallelism size mismatch");
  }
  ml::Matrix features = FeatureMatrix(encoder_, graph);
  ml::Matrix pcol = ParallelismColumn(encoder_, parallelism);
  ml::GraphContext ctx = ml::GraphContext::Build(graph);
  thread_local ml::Tape tape;
  tape.Reset();
  ml::Tape::Ref emb = gnn_.Forward(&tape, ctx, features, pcol);
  ml::Tape::Ref pred = readout_.Forward(&tape, tape.MeanRows(emb));
  return tape.value(pred).at(0, 0);
}

Result<TuningOutcome> ZeroTuneTuner::Tune(sim::StreamEngine* engine) {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  const JobGraph& g = engine->graph();
  const int n = g.num_operators();
  const int p_max = engine->max_parallelism();

  TuningOutcome outcome;
  int reconfig_before = engine->reconfiguration_count();
  double minutes_before = engine->virtual_minutes();

  // Sample candidates (half of them from the upper half of the range) and
  // score them with the cost model.
  std::vector<std::pair<std::vector<int>, double>> scored;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int s = 0; s < options_.num_samples; ++s) {
    std::vector<int> cand(n);
    int lo = (s % 2 == 0) ? 1 : std::max(1, p_max / 2);
    for (int v = 0; v < n; ++v) cand[v] = rng_.UniformInt(lo, p_max);
    ST_ASSIGN_OR_RETURN(double cost, PredictCost(g, cand));
    best_cost = std::min(best_cost, cost);
    scored.emplace_back(std::move(cand), cost);
  }
  // ZeroTune optimizes the performance metric alone — resource efficiency
  // is not part of its objective (the paper's C1 critique). Among the
  // candidates whose predicted cost is statistically indistinguishable from
  // the best, it has no reason to prefer fewer resources; picking the most
  // provisioned one reproduces its characteristic over-provisioning and
  // zero backpressure (Fig. 6 / Table III). Costs are in standardized
  // log-cost units, so a 0.1 band is a small fraction of one stddev.
  constexpr double kCostTolerance = 0.1;
  std::vector<int> best;
  int best_total = -1;
  for (auto& [cand, cost] : scored) {
    if (cost > best_cost + kCostTolerance) continue;
    int total = 0;
    for (int p : cand) total += p;
    if (total > best_total) {
      best_total = total;
      best = cand;
    }
  }
  RobustLoop loop(engine, options_.robustness);
  Status deploy_status = loop.Deploy(best);
  if (!deploy_status.ok()) {
    // A persistent failure on a fault-free engine is a caller error;
    // under faults ZeroTune degrades to the current deployment.
    if (!loop.hardened()) return deploy_status;
  }
  outcome.iterations = 1;
  Result<sim::JobMetrics> metrics_r = loop.Measure();
  if (!metrics_r.ok()) {
    if (!loop.hardened()) return metrics_r.status();
  } else {
    if (metrics_r->job_backpressure) ++outcome.backpressure_events;
    outcome.ended_with_backpressure = metrics_r->severe_backpressure;
  }

  outcome.final_parallelism = engine->parallelism();
  for (int p : outcome.final_parallelism) outcome.total_parallelism += p;
  outcome.reconfigurations =
      engine->reconfiguration_count() - reconfig_before;
  outcome.tuning_minutes = engine->virtual_minutes() - minutes_before;
  loop.FillOutcome(&outcome);
  return outcome;
}

}  // namespace streamtune::baselines
