#include "baselines/robust_loop.h"

#include <algorithm>
#include <cmath>

namespace streamtune::baselines {

void RobustLoop::ClampStep(std::vector<int>* rec) const {
  if (!hardened()) return;
  const std::vector<int>& cur = engine_->parallelism();
  const double f = options_.max_step_factor;
  if (f <= 1.0 || cur.size() != rec->size()) return;
  for (size_t v = 0; v < rec->size(); ++v) {
    const int lo = std::max(1, static_cast<int>(std::floor(cur[v] / f)));
    const int hi = std::max(lo, static_cast<int>(std::ceil(cur[v] * f)));
    (*rec)[v] = std::clamp((*rec)[v], lo, hi);
  }
}

bool RobustLoop::MaybeRollback(const sim::JobMetrics& m) {
  // A clean run at least as good as the best seen becomes the new
  // known-good deployment.
  if (!m.job_backpressure && m.lambda >= known_good_lambda_) {
    known_good_ = engine_->parallelism();
    known_good_lambda_ = m.lambda;
    return false;
  }
  if (!options_.rollback_enabled || !hardened() || known_good_.empty()) {
    return false;
  }
  if (engine_->parallelism() == known_good_) return false;
  if (m.lambda >= known_good_lambda_ - options_.rollback_lambda_margin) {
    return false;
  }
  // The reconfiguration regressed the sustained rate past the margin:
  // restore the last deployment known to run clean. A rollback that itself
  // fails transiently is abandoned — the normal loop keeps iterating.
  if (!Deploy(known_good_).ok()) return false;
  ++rollbacks_;
  return true;
}

}  // namespace streamtune::baselines
