// DS2 (Kalavri et al., OSDI'18): analytical scaling on the linearity
// assumption.
//
// For every operator DS2 estimates the *true processing rate* as
// observed-rate / useful-time and assumes capacity grows linearly with
// parallelism. Target input rates are propagated from the sources through
// the DAG with observed selectivities; the recommended degree is
// ceil(target_rate / per-instance true rate). The method iterates ("three
// steps is all you need") because the linearity assumption and the noisy
// useful-time measurements leave residual error after each step.

#pragma once

#include "baselines/robust_loop.h"
#include "baselines/tuner.h"

namespace streamtune::baselines {

/// Options for the DS2 tuner.
struct Ds2Options {
  int max_iterations = 10;
  /// Safety headroom multiplied onto target rates (DS2 uses none by
  /// default; kept configurable for ablations).
  double headroom = 1.0;
  /// Retry/sanitize/rollback knobs for the hardened loop.
  RobustnessOptions robustness;
};

/// The DS2 scaling controller.
class Ds2Tuner : public Tuner {
 public:
  explicit Ds2Tuner(Ds2Options options = {}) : options_(options) {}

  std::string name() const override { return "DS2"; }
  Result<TuningOutcome> Tune(sim::StreamEngine* engine) override;

  /// One DS2 policy step: given metrics of the current deployment, the new
  /// recommended parallelism per operator. Exposed for unit tests.
  std::vector<int> Recommend(const sim::StreamEngine& engine,
                             const sim::JobMetrics& metrics) const;

 private:
  Ds2Options options_;
};

}  // namespace streamtune::baselines
