// DS2 (Kalavri et al., OSDI'18): analytical scaling on the linearity
// assumption.
//
// For every operator DS2 estimates the *true processing rate* as
// observed-rate / useful-time and assumes capacity grows linearly with
// parallelism. Target input rates are propagated from the sources through
// the DAG with observed selectivities; the recommended degree is
// ceil(target_rate / per-instance true rate). The method iterates ("three
// steps is all you need") because the linearity assumption and the noisy
// useful-time measurements leave residual error after each step.

#pragma once

#include <memory>

#include "baselines/robust_loop.h"
#include "baselines/tuner.h"

namespace streamtune::baselines {

/// Options for the DS2 tuner.
struct Ds2Options {
  int max_iterations = 10;
  /// Safety headroom multiplied onto target rates (DS2 uses none by
  /// default; kept configurable for ablations).
  double headroom = 1.0;
  /// Retry/sanitize/rollback knobs for the hardened loop.
  RobustnessOptions robustness;
};

/// One resumable DS2 tuning process: each Step() performs exactly one
/// measure -> recommend -> deploy decision, so an event-driven scheduler can
/// interleave thousands of processes at decision granularity. Driving
/// Step() to completion and calling Finish() is bit-identical to the
/// monolithic Ds2Tuner::Tune() (which is now implemented on top of it).
class Ds2Session {
 public:
  Ds2Session(const Ds2Options& options, sim::StreamEngine* engine);

  /// One policy iteration. Returns true when the process stopped (stable
  /// recommendation, exhausted iteration budget, or graceful degradation on
  /// persistent engine failure); errors only propagate for a failed initial
  /// measurement on a pristine engine (a caller error, as before).
  Result<bool> Step();

  /// Final accounting (and the trailing measurement for the backpressure
  /// verdict). Call once, after the last Step().
  Result<TuningOutcome> Finish();

  bool done() const { return done_; }
  int iterations() const { return outcome_.iterations; }
  sim::StreamEngine* engine() { return engine_; }

 private:
  const Ds2Options options_;
  sim::StreamEngine* engine_;
  RobustLoop loop_;
  TuningOutcome outcome_;
  int reconfig_before_ = 0;
  double minutes_before_ = 0;
  bool last_severe_ = false;
  bool done_ = false;
};

/// The DS2 scaling controller.
class Ds2Tuner : public Tuner {
 public:
  explicit Ds2Tuner(Ds2Options options = {}) : options_(options) {}

  std::string name() const override { return "DS2"; }
  Result<TuningOutcome> Tune(sim::StreamEngine* engine) override;

  /// Starts a resumable tuning process (see Ds2Session).
  std::unique_ptr<Ds2Session> NewSession(sim::StreamEngine* engine) const {
    return std::make_unique<Ds2Session>(options_, engine);
  }

  /// One DS2 policy step: given metrics of the current deployment, the new
  /// recommended parallelism per operator. Exposed for unit tests.
  std::vector<int> Recommend(const sim::StreamEngine& engine,
                             const sim::JobMetrics& metrics) const;

 private:
  Ds2Options options_;
};

}  // namespace streamtune::baselines
