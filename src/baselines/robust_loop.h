// Shared hardening harness for the tuning loops.
//
// Every tuner (DS2, ContTune, ZeroTune, StreamTune) drives its engine
// through a RobustLoop: Measure() retries transient dropouts and sanitizes
// samples, Deploy() retries transient reconfiguration failures, and — once
// a fault has actually been observed ("hardened mode") — recommendations
// are clamped to bounded per-iteration steps and regressions beyond a
// lambda margin roll back to the last known-good deployment.
//
// Determinism contract: on a fault-free run the loop stays in pristine
// mode — one engine call per Measure/Deploy, no clamping, no rollback — so
// tuner outcomes with chaos disabled are bit-identical to the unhardened
// implementation. Hardened mode latches only on observed faults (retries
// or rejected samples), which cannot occur on a clean engine.

#pragma once

#include <vector>

#include "baselines/tuner.h"
#include "common/retry.h"
#include "sim/metrics_sanitizer.h"

namespace streamtune::baselines {

/// Knobs for the hardened tuning loop (shared by all tuners).
struct RobustnessOptions {
  RetryOptions retry;
  sim::SanitizerOptions sanitizer;
  /// Hardened mode only: per-iteration parallelism deltas are clamped to
  /// within this factor of the current degree (both directions), so one
  /// corrupted window cannot trigger a wild reconfiguration.
  double max_step_factor = 4.0;
  /// Hardened mode only: roll back to the last known-good deployment when
  /// a reconfiguration regresses the sustained rate fraction (lambda) by
  /// more than this margin below the best clean run seen.
  double rollback_lambda_margin = 0.10;
  bool rollback_enabled = true;
};

/// Per-tuning-process harness wrapping one engine. Stateful: construct one
/// per Tune() call.
class RobustLoop {
 public:
  RobustLoop(sim::StreamEngine* engine, const RobustnessOptions& options)
      : engine_(engine), options_(options), sanitizer_(options.sanitizer) {}

  /// Measure with retry + sanitization (see sim::MeasureSanitized).
  Result<sim::JobMetrics> Measure() {
    return sim::MeasureSanitized(engine_, &sanitizer_, options_.retry,
                                 &retry_stats_);
  }

  /// Deploy with retry on transient failures.
  Status Deploy(const std::vector<int>& parallelism) {
    return sim::DeployWithRetry(engine_, parallelism, options_.retry,
                                &retry_stats_);
  }

  /// True once any fault has been observed (a retried call or a rejected
  /// sample). Clamping and rollback only engage in hardened mode.
  bool hardened() const {
    return retry_stats_.retries > 0 || sanitizer_.stats().rejected > 0;
  }

  /// Hardened mode: clamps each operator's recommended change to within
  /// `max_step_factor` of its currently deployed degree. Pristine: no-op.
  void ClampStep(std::vector<int>* rec) const;

  /// Call with each accepted measurement. Tracks the best clean deployment
  /// seen; in hardened mode, if the current deployment regressed lambda
  /// beyond the margin, redeploys the known-good configuration and returns
  /// true (callers should re-measure before recommending again). Never
  /// returns an error: a failed rollback degrades to "keep going".
  bool MaybeRollback(const sim::JobMetrics& m);

  /// Copies fault/retry/rollback counters into the outcome.
  void FillOutcome(TuningOutcome* outcome) const {
    outcome->retries = retry_stats_.retries;
    outcome->rollbacks += rollbacks_;
    outcome->faults_survived =
        retry_stats_.retries + sanitizer_.stats().rejected;
  }

  const RetryStats& retry_stats() const { return retry_stats_; }
  const sim::SanitizerStats& sanitizer_stats() const {
    return sanitizer_.stats();
  }

 private:
  sim::StreamEngine* engine_;
  RobustnessOptions options_;
  sim::MetricsSanitizer sanitizer_;
  RetryStats retry_stats_;
  int rollbacks_ = 0;
  std::vector<int> known_good_;
  double known_good_lambda_ = -1.0;
};

}  // namespace streamtune::baselines
