#include "ml/svm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/math_util.h"

namespace streamtune::ml {

MonotonicSvm::MonotonicSvm(int embedding_dim, SvmConfig config)
    : embedding_dim_(embedding_dim), config_(config) {
  assert(embedding_dim > 0);
  Rng rng(config_.seed);
  // RFF for RBF: omega rows ~ N(0, 1/sigma^2), phase ~ U[0, 2pi).
  omega_ = Matrix(config_.rff_dim, embedding_dim_);
  for (double& v : omega_.data()) {
    v = rng.Normal(0.0, 1.0 / config_.rbf_sigma);
  }
  phase_.resize(config_.rff_dim);
  for (double& p : phase_) p = rng.Uniform(0.0, 6.283185307179586);
  w_e_.assign(config_.rff_dim, 0.0);
}

std::vector<double> MonotonicSvm::FeatureMap(
    const std::vector<double>& h) const {
  assert(static_cast<int>(h.size()) == embedding_dim_);
  std::vector<double> z(config_.rff_dim);
  double scale = std::sqrt(2.0 / config_.rff_dim);
  for (int i = 0; i < config_.rff_dim; ++i) {
    double dot = phase_[i];
    for (int j = 0; j < embedding_dim_; ++j) dot += omega_.at(i, j) * h[j];
    z[i] = scale * std::cos(dot);
  }
  return z;
}

Status MonotonicSvm::Fit(const std::vector<LabeledSample>& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  for (const LabeledSample& s : data) {
    if (static_cast<int>(s.embedding.size()) != embedding_dim_) {
      return Status::InvalidArgument("embedding dimension mismatch");
    }
  }

  const size_t n = data.size();
  std::vector<std::vector<double>> z(n);
  std::vector<double> pf(n);  // scaled parallelism feature
  std::vector<double> y(n);   // +1 bottleneck / -1 not
  size_t positives = 0;
  for (size_t i = 0; i < n; ++i) {
    z[i] = FeatureMap(data[i].embedding);
    pf[i] = data[i].parallelism / config_.parallelism_scale;
    y[i] = data[i].label == 1 ? 1.0 : -1.0;
    if (data[i].label == 1) ++positives;
  }

  // Class weights to counter label imbalance (bottlenecks are the
  // minority). The ratio is capped: the decision boundary must stay near
  // the samples bracketing each operator's threshold, and an unbounded
  // minority weight would push it far past the last observed bottleneck.
  double w_pos = positives == 0 ? 1.0 : 0.5 * n / positives;
  double w_neg = positives == n ? 1.0 : 0.5 * n / (n - positives);
  constexpr double kMaxClassWeightRatio = 2.0;
  if (w_pos > kMaxClassWeightRatio * w_neg) {
    w_pos = kMaxClassWeightRatio * w_neg;
  }
  if (w_neg > kMaxClassWeightRatio * w_pos) {
    w_neg = kMaxClassWeightRatio * w_pos;
  }

  std::fill(w_e_.begin(), w_e_.end(), 0.0);
  w_p_ = -0.5;  // start inside the feasible region
  b_ = 0.0;

  const double lambda = 1.0 / (config_.c * static_cast<double>(n));
  Rng rng(config_.seed ^ 0xabcdef);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Adaptive epoch count: Pegasos needs a number of *steps*, not passes;
  // large datasets converge in proportionally fewer passes.
  int epochs = config_.epochs;
  if (n > 500) {
    epochs = std::max(20, static_cast<int>(config_.epochs * 500 / n));
  }
  size_t t = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      ++t;
      double eta = 1.0 / (lambda * static_cast<double>(t));
      eta = std::min(eta, 10.0);  // cap the early steps
      double f = b_ + w_p_ * pf[idx];
      for (int j = 0; j < config_.rff_dim; ++j) f += w_e_[j] * z[idx][j];

      double cw = y[idx] > 0 ? w_pos : w_neg;
      double shrink = 1.0 - eta * lambda;
      for (double& w : w_e_) w *= shrink;
      w_p_ *= shrink;
      if (y[idx] * f < 1.0) {
        double step = eta * cw * y[idx];
        for (int j = 0; j < config_.rff_dim; ++j) {
          w_e_[j] += step * z[idx][j];
        }
        w_p_ += step * pf[idx];
        b_ += 0.1 * step;  // unregularized bias, damped
      }
      // Projection onto the feasible set {w_p <= 0} (Eq. 5 constraint).
      w_p_ = std::min(w_p_, 0.0);
    }
  }
  fitted_ = true;
  return Status::OK();
}

double MonotonicSvm::DecisionValue(const std::vector<double>& h,
                                   int parallelism) const {
  std::vector<double> z = FeatureMap(h);
  double f = b_ + w_p_ * (parallelism / config_.parallelism_scale);
  for (int j = 0; j < config_.rff_dim; ++j) f += w_e_[j] * z[j];
  return f;
}

double MonotonicSvm::PredictProbability(const std::vector<double>& h,
                                        int parallelism) const {
  return Sigmoid(config_.prob_scale * DecisionValue(h, parallelism));
}

}  // namespace streamtune::ml
