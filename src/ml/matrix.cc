#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

namespace streamtune::ml {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows_; ++r) {
    assert(static_cast<int>(rows[r].size()) == m.cols_);
    for (int c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::GlorotUniform(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / (rows + cols));
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      double a = at(r, k);
      if (a == 0.0) continue;
      const double* brow = &other.data_[static_cast<size_t>(k) * other.cols_];
      double* orow = &out.data_[static_cast<size_t>(r) * out.cols_];
      for (int c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  Matrix out = *this;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r, c) += row.at(0, c);
  }
  return out;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(0, c) += at(r, c);
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (int c = 0; c < other.cols_; ++c) out.at(r, cols_ + c) = other.at(r, c);
  }
  return out;
}

Matrix Matrix::SliceCols(int begin, int end) const {
  assert(begin >= 0 && begin <= end && end <= cols_);
  Matrix out(rows_, end - begin);
  for (int r = 0; r < rows_; ++r) {
    for (int c = begin; c < end; ++c) out.at(r, c - begin) = at(r, c);
  }
  return out;
}

std::vector<double> Matrix::Row(int r) const {
  std::vector<double> out(cols_);
  for (int c = 0; c < cols_; ++c) out[c] = at(r, c);
  return out;
}

void Matrix::SetRow(int r, const std::vector<double>& values) {
  assert(static_cast<int>(values.size()) == cols_);
  for (int c = 0; c < cols_; ++c) at(r, c) = values[c];
}

double Matrix::SumAll() const {
  double s = 0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::SquaredNorm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::MaxAbs() const {
  double s = 0;
  for (double v : data_) s = std::max(s, std::fabs(v));
  return s;
}

}  // namespace streamtune::ml
