#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

namespace streamtune::ml {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows_; ++r) {
    assert(static_cast<int>(rows[r].size()) == m.cols_);
    for (int c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::GlorotUniform(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / (rows + cols));
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      double a = at(r, k);
      if (a == 0.0) continue;
      const double* brow = &other.data_[static_cast<size_t>(k) * other.cols_];
      double* orow = &out.data_[static_cast<size_t>(r) * out.cols_];
      for (int c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  Matrix out = *this;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r, c) += row.at(0, c);
  }
  return out;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(0, c) += at(r, c);
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (int c = 0; c < other.cols_; ++c) out.at(r, cols_ + c) = other.at(r, c);
  }
  return out;
}

Matrix Matrix::SliceCols(int begin, int end) const {
  assert(begin >= 0 && begin <= end && end <= cols_);
  Matrix out(rows_, end - begin);
  for (int r = 0; r < rows_; ++r) {
    for (int c = begin; c < end; ++c) out.at(r, c - begin) = at(r, c);
  }
  return out;
}

std::vector<double> Matrix::Row(int r) const {
  std::vector<double> out(cols_);
  for (int c = 0; c < cols_; ++c) out[c] = at(r, c);
  return out;
}

void Matrix::SetRow(int r, const std::vector<double>& values) {
  assert(static_cast<int>(values.size()) == cols_);
  for (int c = 0; c < cols_; ++c) at(r, c) = values[c];
}

double Matrix::SumAll() const {
  double s = 0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::SquaredNorm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::MaxAbs() const {
  double s = 0;
  for (double v : data_) s = std::max(s, std::fabs(v));
  return s;
}

// ---- Kernel layer ----------------------------------------------------------
//
// Inner loops run on raw spans; shape validation stays on the (debug-only,
// or sanitizer-forced) checked accessors at the kernel boundary.

namespace {

// Column-block width for the register-tiled accumulation loops below: 16
// doubles = 8 SSE registers of accumulators, leaving room for the broadcast
// multiplier and the b-row loads.
constexpr int kColBlock = 16;

// Per-thread scratch for the nonzero-k index lists built by the matmul
// kernels. Grows to the largest inner dimension seen and then stays put, so
// steady-state training epochs never touch the allocator through it.
thread_local std::vector<int> tls_nonzero_k;

// Shared accumulation core of MatMulInto / MatMulNTInto:
// out(r, c) += sum_k a(r, k) * b(k, c), all matrices row-major.
//
// Each output element accumulates over ascending k with an a(r, k) == 0.0
// skip, starting from +0.0 — exactly the reference Matrix::MatMul order, so
// results are bit-identical. The tiling only hoists a kColBlock-wide slice
// of the output row into registers for the duration of the k loop (one
// store per element instead of a load + store per k), which per-element
// accumulation order does not observe. Expects `out` pre-shaped with
// SetShapeUninit: every element is written exactly once below.
//
// The reference's a(r, k) == 0.0 test is hoisted out of the hot loops: the
// surviving k indices are compacted once per row — branchlessly, so a
// ReLU-sparse `a` (~half zeros in this model) costs no mispredicts — and the
// column blocks then iterate the compact list branch-free. Same terms, same
// ascending-k order per element, so still bit-identical.
void AccumulateRowMajor(const Matrix& a, const Matrix& b, Matrix* out) {
  const int m = a.rows(), kk = a.cols(), n = b.cols();
  // Hoist the raw base pointers once: recomputing row_span inside the loops
  // makes the compiler reload the vectors' data pointers on every iteration
  // (a store through `out` could alias their control blocks), which costs
  // more than the arithmetic on these small matrices.
  const double* __restrict ad = a.data().data();
  const double* __restrict bd = b.data().data();
  double* __restrict od = out->data().data();
  std::vector<int>& nz = tls_nonzero_k;
  if (static_cast<int>(nz.size()) < kk) nz.resize(kk);
  int* __restrict nzp = nz.data();
  for (int r = 0; r < m; ++r) {
    const double* arow = ad + static_cast<size_t>(r) * kk;
    int cnt = 0;
    for (int k = 0; k < kk; ++k) {
      nzp[cnt] = k;
      cnt += arow[k] != 0.0;
    }
    const bool dense = cnt == kk;  // fully dense row: skip the indirection
    double* orow = od + static_cast<size_t>(r) * n;
    int c0 = 0;
    for (; c0 + kColBlock <= n; c0 += kColBlock) {
      double acc[kColBlock] = {};
      if (dense) {
        for (int k = 0; k < kk; ++k) {
          const double av = arow[k];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      } else {
        for (int t = 0; t < cnt; ++t) {
          const int k = nzp[t];
          const double av = arow[k];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      }
      for (int j = 0; j < kColBlock; ++j) orow[c0 + j] = acc[j];
    }
    if (c0 < n) {
      for (int c = c0; c < n; ++c) orow[c] = 0.0;
      for (int t = 0; t < cnt; ++t) {
        const int k = nzp[t];
        const double av = arow[k];
        const double* brow = bd + static_cast<size_t>(k) * n;
        for (int c = c0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
  }
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  out->SetShapeUninit(a.rows(), b.cols());
  AccumulateRowMajor(a, b, out);
}

void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  // out(r, c) = sum_k a(r, k) * b(c, k): every output element is a dot
  // product of two contiguous rows, so no transpose is materialized at all.
  // Per element the terms are added over ascending k starting from +0.0 with
  // the same a(r, k) == 0 skips — the identical addition chain the reference
  // composition a.MatMul(b.Transpose()) produces; only the interleaving
  // across elements differs, which per-element results cannot observe. A
  // block of kDotBlock output columns shares one pass over a's row (and its
  // compacted nonzero-k list); the block's independent accumulator chains
  // hide the FP add latency a single serial chain would expose.
  constexpr int kDotBlock = 8;
  const int m = a.rows(), kk = a.cols(), n = b.rows();
  out->SetShapeUninit(m, n);
  const double* __restrict ad = a.data().data();
  const double* __restrict bd = b.data().data();
  double* __restrict od = out->data().data();
  std::vector<int>& nz = tls_nonzero_k;
  if (static_cast<int>(nz.size()) < kk) nz.resize(kk);
  int* __restrict nzp = nz.data();
  for (int r = 0; r < m; ++r) {
    const double* arow = ad + static_cast<size_t>(r) * kk;
    int cnt = 0;
    for (int k = 0; k < kk; ++k) {
      nzp[cnt] = k;
      cnt += arow[k] != 0.0;
    }
    const bool dense = cnt == kk;  // fully dense row: skip the indirection
    double* orow = od + static_cast<size_t>(r) * n;
    int c0 = 0;
    for (; c0 + kDotBlock <= n; c0 += kDotBlock) {
      const double* bblock = bd + static_cast<size_t>(c0) * kk;
      double acc[kDotBlock] = {};
      if (dense) {
        for (int k = 0; k < kk; ++k) {
          const double av = arow[k];
          const double* bcol = bblock + k;
          for (int j = 0; j < kDotBlock; ++j) {
            acc[j] += av * bcol[static_cast<size_t>(j) * kk];
          }
        }
      } else {
        for (int t = 0; t < cnt; ++t) {
          const int k = nzp[t];
          const double av = arow[k];
          const double* bcol = bblock + k;
          for (int j = 0; j < kDotBlock; ++j) {
            acc[j] += av * bcol[static_cast<size_t>(j) * kk];
          }
        }
      }
      for (int j = 0; j < kDotBlock; ++j) orow[c0 + j] = acc[j];
    }
    for (int c = c0; c < n; ++c) {
      const double* brow = bd + static_cast<size_t>(c) * kk;
      double acc = 0.0;
      for (int t = 0; t < cnt; ++t) {
        const int k = nzp[t];
        acc += arow[k] * brow[k];
      }
      orow[c] = acc;
    }
  }
}

void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  // out(r, c) = sum_k a(k, r) * b(k, c). Every element accumulates over
  // ascending k with the same a(k, r) == 0 skip as the reference composition
  // a.Transpose().MatMul(b), so each element sees the identical addition
  // sequence (only the interleaving across elements differs, which cannot
  // change per-element results). a's column r is read with stride m — one
  // scalar load per k — while the register-tiled output block amortizes the
  // out row traffic exactly as in AccumulateRowMajor, and the zero test is
  // hoisted into a branchless per-column index compaction the same way.
  const int kk = a.rows(), m = a.cols(), n = b.cols();
  out->SetShapeUninit(m, n);
  // Hoisted raw base pointers, as in AccumulateRowMajor.
  const double* __restrict ad = a.data().data();
  const double* __restrict bd = b.data().data();
  double* __restrict od = out->data().data();
  std::vector<int>& nz = tls_nonzero_k;
  if (static_cast<int>(nz.size()) < kk) nz.resize(kk);
  int* __restrict nzp = nz.data();
  for (int r = 0; r < m; ++r) {
    int cnt = 0;
    for (int k = 0; k < kk; ++k) {
      nzp[cnt] = k;
      cnt += ad[static_cast<size_t>(k) * m + r] != 0.0;
    }
    const bool dense = cnt == kk;  // fully dense column: skip the indirection
    double* orow = od + static_cast<size_t>(r) * n;
    int c0 = 0;
    for (; c0 + kColBlock <= n; c0 += kColBlock) {
      double acc[kColBlock] = {};
      if (dense) {
        for (int k = 0; k < kk; ++k) {
          const double av = ad[static_cast<size_t>(k) * m + r];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      } else {
        for (int t = 0; t < cnt; ++t) {
          const int k = nzp[t];
          const double av = ad[static_cast<size_t>(k) * m + r];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      }
      for (int j = 0; j < kColBlock; ++j) orow[c0 + j] = acc[j];
    }
    if (c0 < n) {
      for (int c = c0; c < n; ++c) orow[c] = 0.0;
      for (int t = 0; t < cnt; ++t) {
        const int k = nzp[t];
        const double av = ad[static_cast<size_t>(k) * m + r];
        const double* brow = bd + static_cast<size_t>(k) * n;
        for (int c = c0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
  }
}

void AddInto(const Matrix& src, Matrix* acc) {
  assert(acc->same_shape(src));
  double* __restrict a = acc->data().data();
  const double* __restrict s = src.data().data();
  const size_t n = src.size();
  for (size_t i = 0; i < n; ++i) a[i] += s[i];
}

void AxpyInto(double alpha, const Matrix& x, Matrix* acc) {
  assert(acc->same_shape(x));
  double* __restrict a = acc->data().data();
  const double* __restrict xs = x.data().data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) a[i] += alpha * xs[i];
}

namespace {

// Shapes `out` like `a` and returns the three raw spans of an elementwise
// kernel. `out` may alias `a` only when the caller guarantees pure
// elementwise writes (none of the callers below alias).
struct Spans {
  const double* __restrict a;
  const double* __restrict b;
  double* __restrict out;
  size_t n;
};

Spans BinarySpans(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.same_shape(b));
  assert(out != &a && out != &b);
  out->SetShapeUninit(a.rows(), a.cols());
  return {a.data().data(), b.data().data(), out->data().data(), a.size()};
}

}  // namespace

void AddMatInto(const Matrix& a, const Matrix& b, Matrix* out) {
  Spans s = BinarySpans(a, b, out);
  for (size_t i = 0; i < s.n; ++i) s.out[i] = s.a[i] + s.b[i];
}

void SubInto(const Matrix& a, const Matrix& b, Matrix* out) {
  Spans s = BinarySpans(a, b, out);
  for (size_t i = 0; i < s.n; ++i) s.out[i] = s.a[i] - s.b[i];
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out) {
  Spans s = BinarySpans(a, b, out);
  for (size_t i = 0; i < s.n; ++i) s.out[i] = s.a[i] * s.b[i];
}

void ScaleInto(const Matrix& a, double s, Matrix* out) {
  assert(out != &a);
  out->SetShapeUninit(a.rows(), a.cols());
  const double* __restrict av = a.data().data();
  double* __restrict ov = out->data().data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) ov[i] = av[i] * s;
}

void ReluInto(const Matrix& a, Matrix* out) {
  assert(out != &a);
  out->SetShapeUninit(a.rows(), a.cols());
  const double* __restrict av = a.data().data();
  double* __restrict ov = out->data().data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) ov[i] = std::max(0.0, av[i]);
}

void AddRowBroadcastInto(const Matrix& a, const Matrix& row, Matrix* out) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  assert(out != &a && out != &row);
  out->SetShapeUninit(a.rows(), a.cols());
  const double* __restrict rv = row.data().data();
  for (int r = 0; r < a.rows(); ++r) {
    const double* __restrict arow = a.row_span(r);
    double* __restrict orow = out->row_span(r);
    for (int c = 0; c < a.cols(); ++c) orow[c] = arow[c] + rv[c];
  }
}

void SumRowsInto(const Matrix& a, Matrix* out) {
  assert(out != &a);
  out->SetShape(1, a.cols());
  double* __restrict ov = out->data().data();
  for (int r = 0; r < a.rows(); ++r) {
    const double* __restrict arow = a.row_span(r);
    for (int c = 0; c < a.cols(); ++c) ov[c] += arow[c];
  }
}

void SliceColsInto(const Matrix& a, int begin, int end, Matrix* out) {
  assert(begin >= 0 && begin <= end && end <= a.cols());
  assert(out != &a);
  out->SetShapeUninit(a.rows(), end - begin);
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.row_span(r);
    double* orow = out->row_span(r);
    for (int c = begin; c < end; ++c) orow[c - begin] = arow[c];
  }
}

}  // namespace streamtune::ml
