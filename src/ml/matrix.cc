#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

#include "ml/cpu_features.h"
#include "ml/matrix_simd.h"

namespace streamtune::ml {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows_; ++r) {
    assert(static_cast<int>(rows[r].size()) == m.cols_);
    for (int c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::GlorotUniform(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  double limit = std::sqrt(6.0 / (rows + cols));
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      double a = at(r, k);
      if (a == 0.0) continue;
      const double* brow = &other.data_[static_cast<size_t>(k) * other.cols_];
      double* orow = &out.data_[static_cast<size_t>(r) * out.cols_];
      for (int c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  assert(same_shape(other));
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  Matrix out = *this;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r, c) += row.at(0, c);
  }
  return out;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(0, c) += at(r, c);
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (int c = 0; c < other.cols_; ++c) out.at(r, cols_ + c) = other.at(r, c);
  }
  return out;
}

Matrix Matrix::SliceCols(int begin, int end) const {
  assert(begin >= 0 && begin <= end && end <= cols_);
  Matrix out(rows_, end - begin);
  for (int r = 0; r < rows_; ++r) {
    for (int c = begin; c < end; ++c) out.at(r, c - begin) = at(r, c);
  }
  return out;
}

std::vector<double> Matrix::Row(int r) const {
  std::vector<double> out(cols_);
  for (int c = 0; c < cols_; ++c) out[c] = at(r, c);
  return out;
}

void Matrix::SetRow(int r, const std::vector<double>& values) {
  assert(static_cast<int>(values.size()) == cols_);
  for (int c = 0; c < cols_; ++c) at(r, c) = values[c];
}

double Matrix::SumAll() const {
  double s = 0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::SquaredNorm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::MaxAbs() const {
  double s = 0;
  for (double v : data_) s = std::max(s, std::fabs(v));
  return s;
}

// ---- Kernel layer ----------------------------------------------------------
//
// Inner loops run on raw spans; shape validation stays on the (debug-only,
// or sanitizer-forced) checked accessors at the kernel boundary. The public
// wrappers validate shapes and pre-shape `out`, then call through the
// dispatch table; the raw-pointer cores below are the scalar table entries
// (AVX2 counterparts live in matrix_simd.cc).

namespace {

// Column-block width for the register-tiled accumulation loops below: 16
// doubles = 8 SSE registers of accumulators, leaving room for the broadcast
// multiplier and the b-row loads.
constexpr int kColBlock = 16;

// Per-thread scratch for the nonzero-k index lists built by the matmul
// kernels. Grows to the largest inner dimension seen and then stays put, so
// steady-state training epochs never touch the allocator through it.
thread_local std::vector<int> tls_nonzero_k;

// Shared accumulation core of MatMulInto / MatMulSegmentInto:
// out(r, c) += sum_k a(r, k) * b(k, c), all operands row-major with
// a: m x kk, b: kk x n, out: m x n (pre-shaped, every element written).
//
// Each output element accumulates over ascending k with an a(r, k) == 0.0
// skip, starting from +0.0 — exactly the reference Matrix::MatMul order, so
// results are bit-identical. The tiling only hoists a kColBlock-wide slice
// of the output row into registers for the duration of the k loop (one
// store per element instead of a load + store per k), which per-element
// accumulation order does not observe. Expects `out` pre-shaped with
// SetShapeUninit: every element is written exactly once below.
//
// The reference's a(r, k) == 0.0 test is hoisted out of the hot loops: the
// surviving k indices are compacted once per row — branchlessly, so a
// ReLU-sparse `a` (~half zeros in this model) costs no mispredicts — and the
// column blocks then iterate the compact list branch-free. Same terms, same
// ascending-k order per element, so still bit-identical.
void MatMulCoreScalar(const double* __restrict ad, const double* __restrict bd,
                      double* __restrict od, int m, int kk, int n) {
  std::vector<int>& nz = tls_nonzero_k;
  if (static_cast<int>(nz.size()) < kk) nz.resize(kk);
  int* __restrict nzp = nz.data();
  for (int r = 0; r < m; ++r) {
    const double* arow = ad + static_cast<size_t>(r) * kk;
    int cnt = 0;
    for (int k = 0; k < kk; ++k) {
      nzp[cnt] = k;
      cnt += arow[k] != 0.0;
    }
    const bool dense = cnt == kk;  // fully dense row: skip the indirection
    double* orow = od + static_cast<size_t>(r) * n;
    int c0 = 0;
    for (; c0 + kColBlock <= n; c0 += kColBlock) {
      double acc[kColBlock] = {};
      if (dense) {
        for (int k = 0; k < kk; ++k) {
          const double av = arow[k];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      } else {
        for (int t = 0; t < cnt; ++t) {
          const int k = nzp[t];
          const double av = arow[k];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      }
      for (int j = 0; j < kColBlock; ++j) orow[c0 + j] = acc[j];
    }
    if (c0 < n) {
      for (int c = c0; c < n; ++c) orow[c] = 0.0;
      for (int t = 0; t < cnt; ++t) {
        const int k = nzp[t];
        const double av = arow[k];
        const double* brow = bd + static_cast<size_t>(k) * n;
        for (int c = c0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
  }
}

// Accumulate form of MatMulCoreScalar: out(r, c) += sum_k a(r, k) * b(k, c).
// The per-element product chain is byte-for-byte the overwrite kernel's
// (same compacted nonzero-k list, same ascending-k order, same +0.0 start);
// only the final store adds the chain to the existing out value — exactly
// MatMulCoreScalar into a temporary followed by one AddCoreScalar, fused.
void MatMulAccumCoreScalar(const double* __restrict ad,
                           const double* __restrict bd, double* __restrict od,
                           int m, int kk, int n) {
  std::vector<int>& nz = tls_nonzero_k;
  if (static_cast<int>(nz.size()) < kk) nz.resize(kk);
  int* __restrict nzp = nz.data();
  for (int r = 0; r < m; ++r) {
    const double* arow = ad + static_cast<size_t>(r) * kk;
    int cnt = 0;
    for (int k = 0; k < kk; ++k) {
      nzp[cnt] = k;
      cnt += arow[k] != 0.0;
    }
    const bool dense = cnt == kk;  // fully dense row: skip the indirection
    double* orow = od + static_cast<size_t>(r) * n;
    int c0 = 0;
    for (; c0 + kColBlock <= n; c0 += kColBlock) {
      double acc[kColBlock] = {};
      if (dense) {
        for (int k = 0; k < kk; ++k) {
          const double av = arow[k];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      } else {
        for (int t = 0; t < cnt; ++t) {
          const int k = nzp[t];
          const double av = arow[k];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      }
      for (int j = 0; j < kColBlock; ++j) orow[c0 + j] += acc[j];
    }
    // Tail columns still build each chain from +0.0 in a local accumulator
    // before the single add — accumulating terms straight onto the existing
    // value would reassociate (old + t1) + t2 vs old + (t1 + t2).
    for (int c = c0; c < n; ++c) {
      double acc = 0.0;
      for (int t = 0; t < cnt; ++t) {
        const int k = nzp[t];
        acc += arow[k] * bd[static_cast<size_t>(k) * n + c];
      }
      orow[c] += acc;
    }
  }
}

// Core of MatMulNTInto: out(r, c) = sum_k a(r, k) * b(c, k) with a: m x kk,
// b: n x kk, out: m x n pre-shaped. Every output element is a dot product of
// two contiguous rows, so no transpose is materialized at all. Per element
// the terms are added over ascending k starting from +0.0 with the same
// a(r, k) == 0 skips — the identical addition chain the reference
// composition a.MatMul(b.Transpose()) produces; only the interleaving
// across elements differs, which per-element results cannot observe. A
// block of kDotBlock output columns shares one pass over a's row (and its
// compacted nonzero-k list); the block's independent accumulator chains
// hide the FP add latency a single serial chain would expose.
void MatMulNTCoreScalar(const double* __restrict ad,
                        const double* __restrict bd, double* __restrict od,
                        int m, int kk, int n) {
  constexpr int kDotBlock = 8;
  std::vector<int>& nz = tls_nonzero_k;
  if (static_cast<int>(nz.size()) < kk) nz.resize(kk);
  int* __restrict nzp = nz.data();
  for (int r = 0; r < m; ++r) {
    const double* arow = ad + static_cast<size_t>(r) * kk;
    int cnt = 0;
    for (int k = 0; k < kk; ++k) {
      nzp[cnt] = k;
      cnt += arow[k] != 0.0;
    }
    const bool dense = cnt == kk;  // fully dense row: skip the indirection
    double* orow = od + static_cast<size_t>(r) * n;
    int c0 = 0;
    for (; c0 + kDotBlock <= n; c0 += kDotBlock) {
      const double* bblock = bd + static_cast<size_t>(c0) * kk;
      double acc[kDotBlock] = {};
      if (dense) {
        for (int k = 0; k < kk; ++k) {
          const double av = arow[k];
          const double* bcol = bblock + k;
          for (int j = 0; j < kDotBlock; ++j) {
            acc[j] += av * bcol[static_cast<size_t>(j) * kk];
          }
        }
      } else {
        for (int t = 0; t < cnt; ++t) {
          const int k = nzp[t];
          const double av = arow[k];
          const double* bcol = bblock + k;
          for (int j = 0; j < kDotBlock; ++j) {
            acc[j] += av * bcol[static_cast<size_t>(j) * kk];
          }
        }
      }
      for (int j = 0; j < kDotBlock; ++j) orow[c0 + j] = acc[j];
    }
    for (int c = c0; c < n; ++c) {
      const double* brow = bd + static_cast<size_t>(c) * kk;
      double acc = 0.0;
      for (int t = 0; t < cnt; ++t) {
        const int k = nzp[t];
        acc += arow[k] * brow[k];
      }
      orow[c] = acc;
    }
  }
}

// Core of MatMulTNInto: out(r, c) = sum_k a(k, r) * b(k, c) with a: kk x m,
// b: kk x n, out: m x n pre-shaped. Every element accumulates over
// ascending k with the same a(k, r) == 0 skip as the reference composition
// a.Transpose().MatMul(b), so each element sees the identical addition
// sequence (only the interleaving across elements differs, which cannot
// change per-element results). a's column r is read with stride m — one
// scalar load per k — while the register-tiled output block amortizes the
// out row traffic exactly as in MatMulCoreScalar, and the zero test is
// hoisted into a branchless per-column index compaction the same way.
void MatMulTNCoreScalar(const double* __restrict ad,
                        const double* __restrict bd, double* __restrict od,
                        int m, int kk, int n) {
  std::vector<int>& nz = tls_nonzero_k;
  if (static_cast<int>(nz.size()) < kk) nz.resize(kk);
  int* __restrict nzp = nz.data();
  for (int r = 0; r < m; ++r) {
    int cnt = 0;
    for (int k = 0; k < kk; ++k) {
      nzp[cnt] = k;
      cnt += ad[static_cast<size_t>(k) * m + r] != 0.0;
    }
    const bool dense = cnt == kk;  // fully dense column: skip the indirection
    double* orow = od + static_cast<size_t>(r) * n;
    int c0 = 0;
    for (; c0 + kColBlock <= n; c0 += kColBlock) {
      double acc[kColBlock] = {};
      if (dense) {
        for (int k = 0; k < kk; ++k) {
          const double av = ad[static_cast<size_t>(k) * m + r];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      } else {
        for (int t = 0; t < cnt; ++t) {
          const int k = nzp[t];
          const double av = ad[static_cast<size_t>(k) * m + r];
          const double* brow = bd + static_cast<size_t>(k) * n + c0;
          for (int j = 0; j < kColBlock; ++j) acc[j] += av * brow[j];
        }
      }
      for (int j = 0; j < kColBlock; ++j) orow[c0 + j] = acc[j];
    }
    if (c0 < n) {
      for (int c = c0; c < n; ++c) orow[c] = 0.0;
      for (int t = 0; t < cnt; ++t) {
        const int k = nzp[t];
        const double av = ad[static_cast<size_t>(k) * m + r];
        const double* brow = bd + static_cast<size_t>(k) * n;
        for (int c = c0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
  }
}

void AddCoreScalar(const double* __restrict s, double* __restrict a,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += s[i];
}

void AxpyCoreScalar(double alpha, const double* __restrict xs,
                    double* __restrict a, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += alpha * xs[i];
}

void ReluCoreScalar(const double* __restrict av, double* __restrict ov,
                    size_t n) {
  for (size_t i = 0; i < n; ++i) ov[i] = std::max(0.0, av[i]);
}

// relu(a + row broadcast) in one pass: per element max(0, a + rv) — the
// value AddRowBroadcastInto followed by ReluCoreScalar produces.
void BiasReluCoreScalar(const double* __restrict av,
                        const double* __restrict rv, double* __restrict ov,
                        int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const double* arow = av + static_cast<size_t>(r) * cols;
    double* orow = ov + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) orow[c] = std::max(0.0, arow[c] + rv[c]);
  }
}

// ---- Runtime dispatch ------------------------------------------------------
//
// The hottest kernels route through this table of raw-pointer cores.
// Shape conventions per slot:
//   matmul    a: m x kk, b: kk x n, out: m x n   (out = a * b)
//   matmul_nt a: m x kk, b: n x kk, out: m x n   (out = a * b^T)
//   matmul_tn a: kk x m, b: kk x n, out: m x n   (out = a^T * b)
// `out` is always pre-shaped by the wrapper; elementwise slots take flat
// spans. The table is selected exactly once before main() (constant-
// initialized to the scalar entries so any kernel call that somehow runs
// during static initialization of another TU is still correct, then
// upgraded by a dynamic initializer in this TU).
struct KernelTable {
  void (*matmul)(const double*, const double*, double*, int, int, int);
  void (*matmul_accum)(const double*, const double*, double*, int, int, int);
  void (*matmul_nt)(const double*, const double*, double*, int, int, int);
  void (*matmul_tn)(const double*, const double*, double*, int, int, int);
  void (*add)(const double*, double*, size_t);
  void (*axpy)(double, const double*, double*, size_t);
  void (*relu)(const double*, double*, size_t);
  void (*bias_relu)(const double*, const double*, double*, int, int);
};

constexpr KernelTable kScalarTable{
    MatMulCoreScalar, MatMulAccumCoreScalar, MatMulNTCoreScalar,
    MatMulTNCoreScalar, AddCoreScalar, AxpyCoreScalar, ReluCoreScalar,
    BiasReluCoreScalar};

constexpr KernelTable kAvx2Table{
    simd::MatMulCoreAvx2, simd::MatMulAccumCoreAvx2, simd::MatMulNTCoreAvx2,
    simd::MatMulTNCoreAvx2, simd::AddCoreAvx2, simd::AxpyCoreAvx2,
    simd::ReluCoreAvx2, simd::BiasReluCoreAvx2};

constinit const char* g_dispatch_name = "scalar";
constinit KernelTable g_kernels = kScalarTable;

void SelectKernels() {
  const CpuFeatures f = HostCpuFeatures();
  if (simd::CompiledIn() && f.avx2 && f.fma && !ForceScalarRequested()) {
    g_kernels = kAvx2Table;
    g_dispatch_name = "avx2-fma";
  } else {
    g_kernels = kScalarTable;
    g_dispatch_name = "scalar";
  }
}

struct KernelDispatchInit {
  KernelDispatchInit() { SelectKernels(); }
};
KernelDispatchInit g_kernel_dispatch_init;

}  // namespace

const char* ActiveKernelDispatch() { return g_dispatch_name; }

void ReinitKernelDispatchForTest() { SelectKernels(); }

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  out->SetShapeUninit(a.rows(), b.cols());
  g_kernels.matmul(a.data().data(), b.data().data(), out->data().data(),
                   a.rows(), a.cols(), b.cols());
}

void MatMulSegmentInto(const Matrix& a, const Matrix& b, int b_row0,
                       Matrix* out, int out_row0) {
  assert(out != &a && out != &b);
  assert(out->cols() == b.cols());
  assert(b_row0 >= 0 && b_row0 + a.cols() <= b.rows());
  assert(out_row0 >= 0 && out_row0 + a.rows() <= out->rows());
  g_kernels.matmul(a.data().data(), b.row_span(b_row0), out->row_span(out_row0),
                   a.rows(), a.cols(), b.cols());
}

void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix* acc) {
  assert(a.cols() == b.rows());
  assert(acc->rows() == a.rows() && acc->cols() == b.cols());
  assert(acc != &a && acc != &b);
  g_kernels.matmul_accum(a.data().data(), b.data().data(), acc->data().data(),
                         a.rows(), a.cols(), b.cols());
}

void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  out->SetShapeUninit(a.rows(), b.rows());
  g_kernels.matmul_nt(a.data().data(), b.data().data(), out->data().data(),
                      a.rows(), a.cols(), b.rows());
}

void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  out->SetShapeUninit(a.cols(), b.cols());
  g_kernels.matmul_tn(a.data().data(), b.data().data(), out->data().data(),
                      a.cols(), a.rows(), b.cols());
}

void AddInto(const Matrix& src, Matrix* acc) {
  assert(acc->same_shape(src));
  g_kernels.add(src.data().data(), acc->data().data(), src.size());
}

void AxpyInto(double alpha, const Matrix& x, Matrix* acc) {
  assert(acc->same_shape(x));
  g_kernels.axpy(alpha, x.data().data(), acc->data().data(), x.size());
}

namespace {

// Shapes `out` like `a` and returns the three raw spans of an elementwise
// kernel. `out` may alias `a` only when the caller guarantees pure
// elementwise writes (none of the callers below alias).
struct Spans {
  const double* __restrict a;
  const double* __restrict b;
  double* __restrict out;
  size_t n;
};

Spans BinarySpans(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.same_shape(b));
  assert(out != &a && out != &b);
  out->SetShapeUninit(a.rows(), a.cols());
  return {a.data().data(), b.data().data(), out->data().data(), a.size()};
}

}  // namespace

void AddMatInto(const Matrix& a, const Matrix& b, Matrix* out) {
  Spans s = BinarySpans(a, b, out);
  for (size_t i = 0; i < s.n; ++i) s.out[i] = s.a[i] + s.b[i];
}

void SubInto(const Matrix& a, const Matrix& b, Matrix* out) {
  Spans s = BinarySpans(a, b, out);
  for (size_t i = 0; i < s.n; ++i) s.out[i] = s.a[i] - s.b[i];
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out) {
  Spans s = BinarySpans(a, b, out);
  for (size_t i = 0; i < s.n; ++i) s.out[i] = s.a[i] * s.b[i];
}

void ScaleInto(const Matrix& a, double s, Matrix* out) {
  assert(out != &a);
  out->SetShapeUninit(a.rows(), a.cols());
  const double* __restrict av = a.data().data();
  double* __restrict ov = out->data().data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) ov[i] = av[i] * s;
}

void ReluInto(const Matrix& a, Matrix* out) {
  assert(out != &a);
  out->SetShapeUninit(a.rows(), a.cols());
  g_kernels.relu(a.data().data(), out->data().data(), a.size());
}

void BiasReluInto(const Matrix& a, const Matrix& row, Matrix* out) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  assert(out != &a && out != &row);
  out->SetShapeUninit(a.rows(), a.cols());
  g_kernels.bias_relu(a.data().data(), row.data().data(), out->data().data(),
                      a.rows(), a.cols());
}

void AddRowBroadcastInto(const Matrix& a, const Matrix& row, Matrix* out) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  assert(out != &a && out != &row);
  out->SetShapeUninit(a.rows(), a.cols());
  const double* __restrict rv = row.data().data();
  for (int r = 0; r < a.rows(); ++r) {
    const double* __restrict arow = a.row_span(r);
    double* __restrict orow = out->row_span(r);
    for (int c = 0; c < a.cols(); ++c) orow[c] = arow[c] + rv[c];
  }
}

void SumRowsInto(const Matrix& a, Matrix* out) {
  assert(out != &a);
  out->SetShape(1, a.cols());
  double* __restrict ov = out->data().data();
  for (int r = 0; r < a.rows(); ++r) {
    const double* __restrict arow = a.row_span(r);
    for (int c = 0; c < a.cols(); ++c) ov[c] += arow[c];
  }
}

void SliceColsInto(const Matrix& a, int begin, int end, Matrix* out) {
  assert(begin >= 0 && begin <= end && end <= a.cols());
  assert(out != &a);
  out->SetShapeUninit(a.rows(), end - begin);
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.row_span(r);
    double* orow = out->row_span(r);
    for (int c = begin; c < end; ++c) orow[c - begin] = arow[c];
  }
}

}  // namespace streamtune::ml
