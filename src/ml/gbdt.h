// Monotonic gradient-boosted decision trees (Sec. IV-B, model choice (b)).
//
// An XGBoost-style ensemble on logistic loss with exact greedy split search.
// The parallelism feature (the last input column) carries a monotone
// *decreasing* constraint, enforced exactly as the paper describes:
//   - a split on the constrained feature whose tentative child values would
//     violate the ordering (left/low-p value < right/high-p value) has its
//     gain set to -inf, excluding it;
//   - accepted constrained splits propagate [lower, upper] value bounds into
//     the subtrees so every leaf respects the monotone order.
// Since each tree is individually non-increasing in p, the ensemble is too.

#pragma once

#include <vector>

#include "ml/bottleneck_model.h"

namespace streamtune::ml {

/// Hyperparameters for MonotonicGbdt.
struct GbdtConfig {
  int num_trees = 40;
  int max_depth = 4;
  double learning_rate = 0.2;
  double reg_lambda = 1.0;      ///< L2 regularization on leaf values
  double min_split_gain = 0.0;  ///< gamma
  double min_child_hessian = 1e-3;
  int min_samples_leaf = 2;
  double parallelism_scale = 100.0;
  /// When false, the monotone constraint is dropped (for ablations/tests).
  bool enforce_monotonic = true;
};

/// Gradient-boosted bottleneck classifier with a monotone-decreasing
/// constraint on the parallelism feature.
class MonotonicGbdt : public BottleneckModel {
 public:
  explicit MonotonicGbdt(int embedding_dim, GbdtConfig config = {});

  Status Fit(const std::vector<LabeledSample>& data) override;
  double PredictProbability(const std::vector<double>& h,
                            int parallelism) const override;
  bool is_monotonic() const override { return config_.enforce_monotonic; }
  std::string name() const override { return "XGBoost"; }

  /// Raw additive score (log-odds of being a bottleneck).
  double PredictLogit(const std::vector<double>& h, int parallelism) const;

  int num_trees_built() const { return static_cast<int>(trees_.size()); }

 private:
  struct TreeNode {
    int feature = -1;        // -1 for leaves
    double threshold = 0.0;  // go left if x[feature] < threshold
    int left = -1, right = -1;
    double value = 0.0;  // leaf value (already shrunk by learning_rate)
  };
  struct Tree {
    std::vector<TreeNode> nodes;
    double Predict(const std::vector<double>& x) const;
  };

  std::vector<double> MakeFeatures(const std::vector<double>& h,
                                   int parallelism) const;
  int BuildNode(Tree* tree, const std::vector<std::vector<double>>& x,
                const std::vector<double>& grad,
                const std::vector<double>& hess,
                const std::vector<int>& indices, int depth, double lower,
                double upper);

  int embedding_dim_;
  GbdtConfig config_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<Tree> trees_;
  bool fitted_ = false;
};

}  // namespace streamtune::ml
