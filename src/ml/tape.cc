#include "ml/tape.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace streamtune::ml {

void Tape::Reset() {
  // Rewind the arena only; the index-aligned value/grad/aux slots keep both
  // their entries and each entry's heap capacity, so re-recording the same
  // op sequence touches the allocator zero times.
  nodes_.clear();
}

Tape::Ref Tape::Push(const NodeRec& rec) {
  const Ref id = static_cast<Ref>(nodes_.size());
  nodes_.push_back(rec);
  if (val_.size() < nodes_.size()) {
    val_.emplace_back();
    grad_.emplace_back();
    aux_.emplace_back();
  }
  return id;
}

Tape::Ref Tape::Constant(const Matrix* value) {
  assert(value != nullptr);
  NodeRec rec{Op::kConstant};
  rec.ext = value;
  return Push(rec);
}

Tape::Ref Tape::Param(const Var& param) {
  assert(param != nullptr);
  NodeRec rec{Op::kParam};
  rec.param = param.get();
  rec.requires_grad = param->requires_grad;
  return Push(rec);
}

Tape::Ref Tape::Binary(Op op, Ref a, Ref b) {
  NodeRec rec{op};
  rec.a = a;
  rec.b = b;
  rec.requires_grad = Requires(a) || Requires(b);
  return Push(rec);
}

Tape::Ref Tape::Unary(Op op, Ref a) {
  NodeRec rec{op};
  rec.a = a;
  rec.requires_grad = Requires(a);
  return Push(rec);
}

Tape::Ref Tape::MatMul(Ref a, Ref b) {
  const Ref id = Binary(Op::kMatMul, a, b);
  MatMulInto(value(a), value(b), &val_[id]);
  return id;
}

Tape::Ref Tape::MatMulConst(const Matrix* a, const Matrix* at, Ref b) {
  assert(a != nullptr && at != nullptr);
  assert(at->rows() == a->cols() && at->cols() == a->rows());
  NodeRec rec{Op::kMatMulConst};
  rec.b = b;
  rec.ext = a;
  rec.ext2 = at;
  rec.requires_grad = Requires(b);
  const Ref id = Push(rec);
  MatMulInto(*a, value(b), &val_[id]);
  return id;
}

Tape::Ref Tape::Add(Ref a, Ref b) {
  const Ref id = Binary(Op::kAdd, a, b);
  AddMatInto(value(a), value(b), &val_[id]);
  return id;
}

Tape::Ref Tape::Sub(Ref a, Ref b) {
  const Ref id = Binary(Op::kSub, a, b);
  SubInto(value(a), value(b), &val_[id]);
  return id;
}

Tape::Ref Tape::Hadamard(Ref a, Ref b) {
  const Ref id = Binary(Op::kHadamard, a, b);
  HadamardInto(value(a), value(b), &val_[id]);
  return id;
}

Tape::Ref Tape::Scale(Ref a, double s) {
  const Ref id = Unary(Op::kScale, a);
  nodes_[id].scalar = s;
  ScaleInto(value(a), s, &val_[id]);
  return id;
}

Tape::Ref Tape::AddRowBroadcast(Ref a, Ref row) {
  const Ref id = Binary(Op::kAddRowBroadcast, a, row);
  AddRowBroadcastInto(value(a), value(row), &val_[id]);
  return id;
}

Tape::Ref Tape::Relu(Ref a) {
  const Ref id = Unary(Op::kRelu, a);
  ReluInto(value(a), &val_[id]);
  return id;
}

Tape::Ref Tape::Tanh(Ref a) {
  const Ref id = Unary(Op::kTanh, a);
  const Matrix& x = value(a);
  Matrix& v = val_[id];
  v.SetShapeUninit(x.rows(), x.cols());
  const double* xs = x.data().data();
  double* vs = v.data().data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) vs[i] = std::tanh(xs[i]);
  return id;
}

Tape::Ref Tape::Sigmoid(Ref a) {
  const Ref id = Unary(Op::kSigmoid, a);
  const Matrix& x = value(a);
  Matrix& v = val_[id];
  v.SetShapeUninit(x.rows(), x.cols());
  const double* xs = x.data().data();
  double* vs = v.data().data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    // Numerically stable branch: never exponentiates a large positive value.
    vs[i] = xs[i] >= 0 ? 1.0 / (1.0 + std::exp(-xs[i]))
                       : std::exp(xs[i]) / (1.0 + std::exp(xs[i]));
  }
  return id;
}

Tape::Ref Tape::ConcatCols(Ref a, Ref b) {
  const Ref id = Binary(Op::kConcatCols, a, b);
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  assert(av.rows() == bv.rows());
  Matrix& v = val_[id];
  v.SetShapeUninit(av.rows(), av.cols() + bv.cols());
  for (int r = 0; r < av.rows(); ++r) {
    double* orow = v.row_span(r);
    const double* arow = av.row_span(r);
    const double* brow = bv.row_span(r);
    for (int c = 0; c < av.cols(); ++c) orow[c] = arow[c];
    for (int c = 0; c < bv.cols(); ++c) orow[av.cols() + c] = brow[c];
  }
  return id;
}

Tape::Ref Tape::MeanRows(Ref a) {
  const Ref id = Unary(Op::kMeanRows, a);
  const Matrix& av = value(a);
  const int n = av.rows();
  assert(n > 0);
  nodes_[id].scalar = static_cast<double>(n);
  // Like the Var engine: SumRows, then scale by the precomputed 1/n.
  SumRowsInto(av, &val_[id]);
  const double s = 1.0 / n;
  for (double& v : val_[id].data()) v *= s;
  return id;
}

Tape::Ref Tape::RmsNormRows(Ref a, double eps) {
  const Ref id = Unary(Op::kRmsNormRows, a);
  nodes_[id].scalar = eps;
  const Matrix& x = value(a);
  const int rows = x.rows(), cols = x.cols();
  Matrix& v = val_[id];
  v.SetShapeUninit(rows, cols);
  std::vector<double>& inv_rms = aux_[id];
  inv_rms.resize(rows);
  for (int r = 0; r < rows; ++r) {
    const double* xrow = x.row_span(r);
    double ms = 0;
    for (int c = 0; c < cols; ++c) ms += xrow[c] * xrow[c];
    ms = ms / cols + eps;
    inv_rms[r] = 1.0 / std::sqrt(ms);
    double* vrow = v.row_span(r);
    for (int c = 0; c < cols; ++c) vrow[c] = xrow[c] * inv_rms[r];
  }
  return id;
}

Tape::Ref Tape::SumAll(Ref a) {
  const Ref id = Unary(Op::kSumAll, a);
  Matrix& v = val_[id];
  v.SetShape(1, 1);
  double s = 0;
  for (double x : value(a).data()) s += x;
  v.at(0, 0) = s;
  return id;
}

Tape::Ref Tape::BceWithLogitsMasked(Ref logits, const Matrix* targets,
                                    const Matrix* mask) {
  assert(targets != nullptr && mask != nullptr);
  const Matrix& z = value(logits);
  assert(z.same_shape(*targets));
  assert(z.same_shape(*mask));
  const Ref id = Unary(Op::kBce, logits);
  nodes_[id].ext = targets;
  nodes_[id].ext2 = mask;
  double count = 0;
  for (double m : mask->data()) {
    if (m != 0.0) count += 1.0;
  }
  nodes_[id].scalar = count;
  Matrix& v = val_[id];
  v.SetShape(1, 1);
  if (count > 0) {
    double total = 0;
    const auto& zs = z.data();
    const auto& ys = targets->data();
    const auto& ms = mask->data();
    for (size_t i = 0; i < zs.size(); ++i) {
      if (ms[i] == 0.0) continue;
      // Stable: max(z,0) - z*y + log(1 + exp(-|z|)).
      total += std::max(zs[i], 0.0) - zs[i] * ys[i] +
               std::log1p(std::exp(-std::fabs(zs[i])));
    }
    v.at(0, 0) = total / count;
  }
  return id;
}

Tape::Ref Tape::MseLoss(Ref pred, const Matrix* target) {
  assert(target != nullptr);
  const Matrix& p = value(pred);
  assert(p.same_shape(*target));
  const Ref id = Unary(Op::kMse, pred);
  nodes_[id].ext = target;
  const double n = static_cast<double>(p.size());
  nodes_[id].scalar = n;
  SubInto(p, *target, &scratch_);
  Matrix& v = val_[id];
  v.SetShape(1, 1);
  v.at(0, 0) = scratch_.SquaredNorm() / n;
  return id;
}

const Matrix& Tape::value(Ref r) const {
  const NodeRec& rec = nodes_[r];
  switch (rec.op) {
    case Op::kConstant:
      return *rec.ext;
    case Op::kParam:
      return rec.param->value;
    default:
      return val_[r];
  }
}

const Matrix& Tape::grad(Ref r) const {
  if (nodes_[r].op == Op::kParam) return nodes_[r].param->grad;
  return grad_[r];
}

void Tape::Contribute(Ref input, const Matrix& g) {
  NodeRec& in = nodes_[input];
  if (in.op == Op::kParam) {
    in.param->AccumGrad(g);
    return;
  }
  // Var engine AccumGrad semantics: the first contribution copies, later
  // ones add. (Copy-assign reuses the slot's existing heap capacity.)
  if (!has_grad_[input]) {
    grad_[input] = g;
    has_grad_[input] = 1;
  } else {
    AddInto(g, &grad_[input]);
  }
}

void Tape::PassThrough(Ref i, Ref input) {
  NodeRec& in = nodes_[input];
  if (in.op != Op::kParam && !has_grad_[input]) {
    // grad_[i] is dead once this BackwardStep returns (the reverse loop only
    // descends), so hand its buffer to the input instead of copying. The
    // moved values are bit-for-bit what AccumGrad's copy would have stored.
    std::swap(grad_[input], grad_[i]);
    has_grad_[input] = 1;
    return;
  }
  Contribute(input, grad_[i]);
}

Matrix* Tape::BeginContribution(Ref input) {
  NodeRec& in = nodes_[input];
  // First contribution: let the backward kernel write straight into the
  // gradient slot (same values AccumGrad's copy would have produced, minus
  // the scratch round trip). Later contributions stage in scratch_ and add.
  if (in.op == Op::kParam) {
    return in.param->has_grad() ? &scratch_ : &in.param->grad;
  }
  return has_grad_[input] ? &scratch_ : &grad_[input];
}

void Tape::EndContribution(Ref input, Matrix* dest) {
  NodeRec& in = nodes_[input];
  if (in.op == Op::kParam) {
    // A freshly written param->grad is non-empty, so has_grad() now reports
    // true by itself — exactly AccumGrad's first-contribution state.
    if (dest == &scratch_) in.param->AccumGrad(scratch_);
    return;
  }
  if (dest == &scratch_) {
    AddInto(scratch_, &grad_[input]);
  } else {
    has_grad_[input] = 1;
  }
}

void Tape::BackwardStep(Ref i) {
  const NodeRec& rec = nodes_[i];
  const Matrix& g = grad_[i];
  switch (rec.op) {
    case Op::kConstant:
    case Op::kParam:
      break;
    case Op::kMatMul:
      if (Requires(rec.a)) {
        Matrix* d = BeginContribution(rec.a);
        MatMulNTInto(g, value(rec.b), d);
        EndContribution(rec.a, d);
      }
      if (Requires(rec.b)) {
        Matrix* d = BeginContribution(rec.b);
        MatMulTNInto(value(rec.a), g, d);
        EndContribution(rec.b, d);
      }
      break;
    case Op::kMatMulConst:
      // The constant side gets no gradient (it never requires one); the
      // b side uses the hoisted transpose: MatMulInto(a^T, g) runs the
      // identical addition chains as MatMulTNInto(a, g) would.
      if (Requires(rec.b)) {
        Matrix* d = BeginContribution(rec.b);
        MatMulInto(*rec.ext2, g, d);
        EndContribution(rec.b, d);
      }
      break;
    case Op::kAdd:
      // The swap-based PassThrough consumes grad_[i], so it must come last;
      // with two requiring inputs the other side takes the copy. (If both
      // inputs are the same node, the copy lands first and the pass-through
      // degrades to the accumulate path — still two contributions.)
      if (Requires(rec.a) && Requires(rec.b)) {
        Contribute(rec.b, g);
        PassThrough(i, rec.a);
      } else if (Requires(rec.a)) {
        PassThrough(i, rec.a);
      } else if (Requires(rec.b)) {
        PassThrough(i, rec.b);
      }
      break;
    case Op::kSub:
      if (Requires(rec.b)) {
        Matrix* d = BeginContribution(rec.b);
        ScaleInto(g, -1.0, d);
        EndContribution(rec.b, d);
      }
      if (Requires(rec.a)) PassThrough(i, rec.a);
      break;
    case Op::kHadamard:
      if (Requires(rec.a)) {
        Matrix* d = BeginContribution(rec.a);
        HadamardInto(g, value(rec.b), d);
        EndContribution(rec.a, d);
      }
      if (Requires(rec.b)) {
        Matrix* d = BeginContribution(rec.b);
        HadamardInto(g, value(rec.a), d);
        EndContribution(rec.b, d);
      }
      break;
    case Op::kScale:
      if (Requires(rec.a)) {
        Matrix* d = BeginContribution(rec.a);
        ScaleInto(g, rec.scalar, d);
        EndContribution(rec.a, d);
      }
      break;
    case Op::kAddRowBroadcast:
      if (Requires(rec.b)) {
        Matrix* d = BeginContribution(rec.b);
        SumRowsInto(g, d);
        EndContribution(rec.b, d);
      }
      if (Requires(rec.a)) PassThrough(i, rec.a);
      break;
    case Op::kRelu:
      if (Requires(rec.a)) {
        const Matrix& x = value(rec.a);
        // First contribution to a tape node: mask grad_[i] in place (writing
        // only the zeroed entries — untouched entries already hold the exact
        // pass-through values) and move the buffer into the input's slot.
        // Like PassThrough, the swap must be the last use of grad_[i].
        if (nodes_[rec.a].op != Op::kParam && !has_grad_[rec.a]) {
          const double* xs = x.data().data();
          double* gs = grad_[i].data().data();
          for (size_t k = 0; k < x.size(); ++k) {
            if (xs[k] <= 0.0) gs[k] = 0.0;
          }
          std::swap(grad_[rec.a], grad_[i]);
          has_grad_[rec.a] = 1;
          break;
        }
        Matrix* d = BeginContribution(rec.a);
        d->SetShapeUninit(x.rows(), x.cols());
        const double* xs = x.data().data();
        const double* gs = g.data().data();
        double* ss = d->data().data();
        for (size_t k = 0; k < x.size(); ++k) {
          ss[k] = xs[k] <= 0.0 ? 0.0 : gs[k];
        }
        EndContribution(rec.a, d);
      }
      break;
    case Op::kTanh:
      if (Requires(rec.a)) {
        const Matrix& y = val_[i];
        // In-place first contribution + buffer move, as in kRelu above; the
        // per-element expression is unchanged.
        if (nodes_[rec.a].op != Op::kParam && !has_grad_[rec.a]) {
          const double* ys = y.data().data();
          double* gs = grad_[i].data().data();
          for (size_t k = 0; k < y.size(); ++k) {
            gs[k] = gs[k] * (1.0 - ys[k] * ys[k]);
          }
          std::swap(grad_[rec.a], grad_[i]);
          has_grad_[rec.a] = 1;
          break;
        }
        Matrix* d = BeginContribution(rec.a);
        d->SetShapeUninit(y.rows(), y.cols());
        const double* ys = y.data().data();
        const double* gs = g.data().data();
        double* ss = d->data().data();
        for (size_t k = 0; k < y.size(); ++k) {
          ss[k] = gs[k] * (1.0 - ys[k] * ys[k]);
        }
        EndContribution(rec.a, d);
      }
      break;
    case Op::kSigmoid:
      if (Requires(rec.a)) {
        const Matrix& y = val_[i];
        // In-place first contribution + buffer move, as in kRelu above.
        if (nodes_[rec.a].op != Op::kParam && !has_grad_[rec.a]) {
          const double* ys = y.data().data();
          double* gs = grad_[i].data().data();
          for (size_t k = 0; k < y.size(); ++k) {
            gs[k] = gs[k] * (ys[k] * (1.0 - ys[k]));
          }
          std::swap(grad_[rec.a], grad_[i]);
          has_grad_[rec.a] = 1;
          break;
        }
        Matrix* d = BeginContribution(rec.a);
        d->SetShapeUninit(y.rows(), y.cols());
        const double* ys = y.data().data();
        const double* gs = g.data().data();
        double* ss = d->data().data();
        for (size_t k = 0; k < y.size(); ++k) {
          ss[k] = gs[k] * (ys[k] * (1.0 - ys[k]));
        }
        EndContribution(rec.a, d);
      }
      break;
    case Op::kConcatCols: {
      const int ac = value(rec.a).cols();
      if (Requires(rec.a)) {
        Matrix* d = BeginContribution(rec.a);
        SliceColsInto(g, 0, ac, d);
        EndContribution(rec.a, d);
      }
      if (Requires(rec.b)) {
        Matrix* d = BeginContribution(rec.b);
        SliceColsInto(g, ac, g.cols(), d);
        EndContribution(rec.b, d);
      }
      break;
    }
    case Op::kMeanRows:
      if (Requires(rec.a)) {
        const Matrix& x = value(rec.a);
        Matrix* d = BeginContribution(rec.a);
        d->SetShapeUninit(x.rows(), x.cols());
        const double* gs = g.data().data();
        for (int r = 0; r < x.rows(); ++r) {
          double* srow = d->row_span(r);
          for (int c = 0; c < x.cols(); ++c) srow[c] = gs[c] / rec.scalar;
        }
        EndContribution(rec.a, d);
      }
      break;
    case Op::kRmsNormRows:
      if (Requires(rec.a)) {
        const Matrix& y = val_[i];
        const std::vector<double>& inv_rms = aux_[i];
        const int rows = y.rows(), cols = y.cols();
        // In-place first contribution + buffer move, as in kRelu above: each
        // row's scaling factor m is read out before its entries are
        // overwritten, so the per-element expressions are unchanged.
        if (nodes_[rec.a].op != Op::kParam && !has_grad_[rec.a]) {
          for (int r = 0; r < rows; ++r) {
            double* grow = grad_[i].row_span(r);
            const double* yrow = y.row_span(r);
            double m = 0;
            for (int c = 0; c < cols; ++c) m += grow[c] * yrow[c];
            m /= cols;
            for (int c = 0; c < cols; ++c) {
              grow[c] = inv_rms[r] * (grow[c] - yrow[c] * m);
            }
          }
          std::swap(grad_[rec.a], grad_[i]);
          has_grad_[rec.a] = 1;
          break;
        }
        Matrix* d = BeginContribution(rec.a);
        d->SetShapeUninit(rows, cols);
        for (int r = 0; r < rows; ++r) {
          const double* grow = g.row_span(r);
          const double* yrow = y.row_span(r);
          double* srow = d->row_span(r);
          // dL/dx_c = inv_rms * (g_c - y_c * m), m = mean_c(g_c * y_c).
          double m = 0;
          for (int c = 0; c < cols; ++c) m += grow[c] * yrow[c];
          m /= cols;
          for (int c = 0; c < cols; ++c) {
            srow[c] = inv_rms[r] * (grow[c] - yrow[c] * m);
          }
        }
        EndContribution(rec.a, d);
      }
      break;
    case Op::kSumAll:
      if (Requires(rec.a)) {
        const Matrix& x = value(rec.a);
        Matrix* d = BeginContribution(rec.a);
        d->SetShapeUninit(x.rows(), x.cols());
        const double gv = g.at(0, 0);
        for (double& v : d->data()) v = gv;
        EndContribution(rec.a, d);
      }
      break;
    case Op::kBce:
      if (rec.scalar == 0.0) break;  // all-masked loss contributes nothing
      if (Requires(rec.a)) {
        const Matrix& z = value(rec.a);
        Matrix* d = BeginContribution(rec.a);
        // Zero-filling SetShape is load-bearing here: masked-out entries are
        // skipped below and must read as exactly 0.0.
        d->SetShape(z.rows(), z.cols());
        const double* zs = z.data().data();
        const double* ys = rec.ext->data().data();
        const double* ms = rec.ext2->data().data();
        double* ss = d->data().data();
        const double gseed = g.at(0, 0);
        for (size_t k = 0; k < z.size(); ++k) {
          if (ms[k] == 0.0) continue;
          const double s =
              zs[k] >= 0 ? 1.0 / (1.0 + std::exp(-zs[k]))
                         : std::exp(zs[k]) / (1.0 + std::exp(zs[k]));
          ss[k] = gseed * (s - ys[k]) / rec.scalar;
        }
        EndContribution(rec.a, d);
      }
      break;
    case Op::kMse:
      if (Requires(rec.a)) {
        const double s = 2.0 / rec.scalar * g.at(0, 0);
        Matrix* d = BeginContribution(rec.a);
        SubInto(value(rec.a), *rec.ext, d);
        for (double& v : d->data()) v *= s;
        EndContribution(rec.a, d);
      }
      break;
  }
}

void Tape::Backward(Ref root) {
  assert(root >= 0 && root < static_cast<Ref>(nodes_.size()));
  assert(value(root).rows() == 1 && value(root).cols() == 1);
  const size_t n = nodes_.size();
  has_grad_.assign(n, 0);
  // Like the Var engine's Backward, clear parameter grads before
  // accumulating. Not ZeroGrad(): that releases the buffer (Var shim
  // semantics), while Clear() retains capacity so steady-state steps
  // rewrite param grads without allocating.
  for (size_t i = 0; i < n; ++i) {
    if (nodes_[i].op == Op::kParam) nodes_[i].param->grad.Clear();
  }
  grad_[root].SetShape(1, 1);
  grad_[root].at(0, 0) = 1.0;
  has_grad_[root] = 1;
  // Reverse recording order is a valid topological order (every op is
  // recorded after its inputs). Gradients flow only along paths that reach
  // a parameter; the Var engine's dead gradients into constants are never
  // read, so skipping them cannot change any parameter gradient bit.
  for (Ref i = root; i >= 0; --i) {
    if (!has_grad_[i] || !nodes_[i].requires_grad) continue;
    BackwardStep(i);
  }
}

Tape::Stats Tape::ArenaStats() const {
  Stats s;
  s.node_capacity = nodes_.capacity();
  s.matrix_slots = val_.size();
  s.buffer_doubles = scratch_.capacity();
  for (const Matrix& m : val_) s.buffer_doubles += m.capacity();
  for (const Matrix& m : grad_) s.buffer_doubles += m.capacity();
  for (const std::vector<double>& v : aux_) s.buffer_doubles += v.capacity();
  return s;
}

}  // namespace streamtune::ml
