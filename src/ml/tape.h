// Tape-based reverse-mode autodiff — the allocation-free successor of the
// dynamic Var-graph engine this repo started with (deleted once every
// consumer migrated here).
//
// That engine rebuilt a shared_ptr<Node> graph per training step: one
// heap node, one std::function closure and several transposed temporaries
// per op, plus a DFS with an unordered_set to order the backward pass. This
// engine records the same op sequence onto a flat tape instead:
//
//  - nodes live in an arena (a plain vector of POD-ish records) and are
//    addressed by index (Tape::Ref), so recording an op is a bounds-checked
//    push, not an allocation;
//  - every node's value and gradient live in reusable Matrix slots that are
//    reshaped (capacity-retaining) rather than reallocated, so a steady-state
//    training epoch performs zero heap allocations (asserted by the reuse
//    test via ArenaStats);
//  - Reset() rewinds the tape logically but keeps all capacity, so one tape
//    per worker serves every sample of every epoch;
//  - the backward pass walks the arena in reverse recording order and uses
//    the transpose-free kernels (MatMulNTInto / MatMulTNInto), so no
//    transposed temporary is ever materialized.
//
// Bit-identity with the retired Var engine (pinned while both coexisted,
// now the contract of this engine alone): each op's forward and backward
// kernels perform the identical floating-point operations in the identical
// order under the scalar kernel dispatch (see matrix.h kernel contracts),
// gradient accumulation keeps first-contribution-copies semantics, and
// reverse recording order executes the consumers of every shared node in
// the same relative order as a reverse post-order DFS for all model graphs
// in this repo (ops are recorded bottom-up, left-to-right). tape_test pins
// these numerics against hand-composed Matrix references.
//
// Parameters are ml::Var handles to the slim {value, grad} Node in
// ml/param.h — the surviving remnant of the Var engine's node type.
//
// Lifetime contract: Constant() and the loss ops store *pointers* to
// caller-owned matrices — they must outlive the tape ops that reference
// them (they always do in this repo: hoisted per-sample buffers or stack
// locals that live across the Backward call).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "ml/param.h"

namespace streamtune::ml {

class Tape {
 public:
  /// Index of a node on the tape (valid until the next Reset).
  using Ref = int32_t;

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Rewinds the tape for the next recording. All arena and buffer capacity
  /// is retained; only the logical node count drops to zero.
  void Reset();

  // ---- Leaves --------------------------------------------------------------

  /// Wraps a caller-owned constant (no gradient flows into it, and its
  /// gradient is never computed). The pointed-to matrix is NOT copied.
  Ref Constant(const Matrix* value);
  /// Wraps a trainable parameter. Gradients accumulate into `param->grad`
  /// with exactly the Var engine's AccumGrad semantics.
  Ref Param(const Var& param);

  // ---- Differentiable operations ------------------------------------------

  Ref MatMul(Ref a, Ref b);
  /// a * value(b) where `a` is a caller-owned constant whose transpose `at`
  /// the caller has precomputed (e.g. the per-graph adjacencies hoisted into
  /// GraphContext). The backward pass then runs the contiguous row-major
  /// kernel on `at` instead of the strided transposed-operand kernel —
  /// bit-identical, since at(r, k) == a(k, r) gives every gradient element
  /// the same ascending-k addition chain and the same zero-skips.
  Ref MatMulConst(const Matrix* a, const Matrix* at, Ref b);
  Ref Add(Ref a, Ref b);
  Ref Sub(Ref a, Ref b);
  Ref Hadamard(Ref a, Ref b);
  Ref Scale(Ref a, double s);
  /// Adds a 1 x C bias row to every row of `a`.
  Ref AddRowBroadcast(Ref a, Ref row);
  Ref Relu(Ref a);
  Ref Tanh(Ref a);
  Ref Sigmoid(Ref a);
  /// Horizontal concatenation [a | b].
  Ref ConcatCols(Ref a, Ref b);
  /// Mean over rows -> 1 x C.
  Ref MeanRows(Ref a);
  /// Row-wise RMS normalization: y_r = x_r / sqrt(mean(x_r^2) + eps).
  /// Keeps hidden activations well-conditioned between GNN layers (prevents
  /// tanh saturation in the FUSE step).
  Ref RmsNormRows(Ref a, double eps = 1e-6);
  /// Sum of all entries -> 1 x 1.
  Ref SumAll(Ref a);

  // ---- Losses --------------------------------------------------------------

  /// Masked binary cross-entropy on logits; `targets`/`mask` are
  /// caller-owned N x 1 matrices (pointers stored, must outlive Backward).
  Ref BceWithLogitsMasked(Ref logits, const Matrix* targets,
                          const Matrix* mask);
  /// Mean squared error against a caller-owned constant target.
  Ref MseLoss(Ref pred, const Matrix* target);

  // ---- Execution -----------------------------------------------------------

  /// Reverse-mode differentiation from `root` (must be 1 x 1). Zeroes the
  /// gradients of every referenced parameter first (like the Var engine's
  /// Backward), then accumulates into parameter grads.
  void Backward(Ref root);

  /// The forward value of a node.
  const Matrix& value(Ref r) const;
  /// The gradient accumulated at a node by the last Backward (empty if the
  /// node received none). Parameters keep theirs in param->grad instead.
  const Matrix& grad(Ref r) const;
  bool has_grad(Ref r) const { return has_grad_[r] != 0; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // ---- Allocation telemetry ------------------------------------------------

  /// Snapshot of every capacity the tape owns. Two equal snapshots around a
  /// training epoch prove the epoch performed zero tape/arena allocations.
  struct Stats {
    size_t node_capacity = 0;     ///< arena slots (node records)
    size_t matrix_slots = 0;      ///< value/grad/aux slot count
    size_t buffer_doubles = 0;    ///< summed heap capacity of all buffers
    bool operator==(const Stats&) const = default;
  };
  Stats ArenaStats() const;

 private:
  enum class Op : uint8_t {
    kConstant,
    kParam,
    kMatMul,
    kMatMulConst,
    kAdd,
    kSub,
    kHadamard,
    kScale,
    kAddRowBroadcast,
    kRelu,
    kTanh,
    kSigmoid,
    kConcatCols,
    kMeanRows,
    kRmsNormRows,
    kSumAll,
    kBce,
    kMse,
  };

  struct NodeRec {
    Op op;
    Ref a = -1;
    Ref b = -1;
    /// Scale factor / RmsNorm eps / BCE labeled count / MSE element count.
    double scalar = 0.0;
    /// Parameter leaf (kParam).
    Node* param = nullptr;
    /// External value (kConstant/kMatMulConst) or loss target (kBce/kMse).
    const Matrix* ext = nullptr;
    /// Loss mask (kBce) or precomputed transpose (kMatMulConst).
    const Matrix* ext2 = nullptr;
    /// True when a parameter is reachable below this node; gradients are
    /// only computed along requiring paths (dead constant gradients the Var
    /// engine wastes work on are skipped — they are never read).
    bool requires_grad = false;
  };

  /// Appends a node and returns its index; the aligned value/grad/aux slots
  /// grow only while the tape is warming up.
  Ref Push(const NodeRec& rec);
  bool Requires(Ref r) const { return nodes_[r].requires_grad; }
  Ref Unary(Op op, Ref a);
  Ref Binary(Op op, Ref a, Ref b);
  /// AccumGrad equivalent: first contribution copies, later ones add.
  void Contribute(Ref input, const Matrix& g);
  /// Buffer a backward kernel should write `input`'s full contribution into:
  /// the gradient slot itself when this is the first contribution (saving the
  /// scratch-then-copy round trip), scratch_ otherwise. Every BeginContribution
  /// must be paired with EndContribution on the same input.
  Matrix* BeginContribution(Ref input);
  void EndContribution(Ref input, Matrix* dest);
  /// Pass-through contribution of node i's own gradient to `input` (identity
  /// backward of Add & co.). A first contribution is moved — node i's grad
  /// buffer is swapped into the input's slot, dodging the copy — so it must
  /// be the final use of grad_[i] in i's BackwardStep.
  void PassThrough(Ref i, Ref input);
  void BackwardStep(Ref i);

  std::vector<NodeRec> nodes_;       // arena; cleared (capacity kept) on Reset
  std::vector<Matrix> val_;          // grow-only, index-aligned with nodes_
  std::vector<Matrix> grad_;         // grow-only
  std::vector<std::vector<double>> aux_;  // per-node scalars (RmsNorm 1/rms)
  std::vector<uint8_t> has_grad_;
  Matrix scratch_;                   // staging buffer for grad contributions
};

}  // namespace streamtune::ml
