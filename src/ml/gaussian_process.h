// Gaussian process regression (RBF kernel) — the surrogate model ContTune
// uses to capture the relationship between an operator's parallelism and its
// processing ability (Sec. I / VI).

#pragma once

#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace streamtune::ml {

/// Hyperparameters for GaussianProcess.
struct GpConfig {
  double length_scale = 4.0;   ///< RBF length scale (parallelism units)
  double signal_var = 1.0;     ///< kernel amplitude (relative to y variance)
  double noise_var = 1e-4;     ///< observation noise (relative)
};

/// One-dimensional GP regression y = f(x) + noise with an RBF kernel.
/// Inputs here are parallelism degrees; outputs are observed processing
/// abilities. Targets are internally standardized.
class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {}) : config_(config) {}

  /// Fits the posterior on (x, y) pairs. Requires at least one point.
  Status Fit(const std::vector<double>& x, const std::vector<double>& y);

  /// Posterior mean at `x`.
  double Mean(double x) const;
  /// Posterior standard deviation at `x`.
  double StdDev(double x) const;
  /// Lower confidence bound mean - beta * std (conservative estimate).
  double Lcb(double x, double beta) const;

  bool fitted() const { return fitted_; }
  int num_points() const { return static_cast<int>(x_.size()); }

 private:
  double Kernel(double a, double b) const;

  GpConfig config_;
  std::vector<double> x_;
  std::vector<double> alpha_;       // K^-1 (y - mean)
  Matrix l_;                        // Cholesky factor of K + noise I
  double y_mean_ = 0, y_scale_ = 1;
  bool fitted_ = false;
};

/// Cholesky decomposition of a symmetric positive-definite matrix.
/// Returns FailedPrecondition if the matrix is not SPD.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves L y = b for lower-triangular L.
std::vector<double> ForwardSolve(const Matrix& l, const std::vector<double>& b);
/// Solves L^T x = y for lower-triangular L.
std::vector<double> BackwardSolve(const Matrix& l,
                                  const std::vector<double>& y);

}  // namespace streamtune::ml
