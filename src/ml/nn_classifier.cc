#include "ml/nn_classifier.h"

#include <cassert>

#include "common/math_util.h"

namespace streamtune::ml {

NnClassifier::NnClassifier(int embedding_dim, NnClassifierConfig config)
    : embedding_dim_(embedding_dim), config_(config) {
  assert(embedding_dim > 0);
  Rng rng(config_.seed);
  mlp_ = Mlp({embedding_dim_ + 1, config_.hidden_dim, config_.hidden_dim, 1},
             Activation::kRelu, &rng);
}

Status NnClassifier::Fit(const std::vector<LabeledSample>& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  const int n = static_cast<int>(data.size());
  Matrix x(n, embedding_dim_ + 1);
  Matrix y(n, 1);
  Matrix mask(n, 1, 1.0);
  for (int i = 0; i < n; ++i) {
    if (static_cast<int>(data[i].embedding.size()) != embedding_dim_) {
      return Status::InvalidArgument("embedding dimension mismatch");
    }
    for (int j = 0; j < embedding_dim_; ++j) {
      x.at(i, j) = data[i].embedding[j];
    }
    x.at(i, embedding_dim_) =
        data[i].parallelism / config_.parallelism_scale;
    y.at(i, 0) = data[i].label == 1 ? 1.0 : 0.0;
  }

  // Re-initialize so every Fit is a fresh retrain on the full dataset.
  Rng rng(config_.seed);
  mlp_ = Mlp({embedding_dim_ + 1, config_.hidden_dim, config_.hidden_dim, 1},
             Activation::kRelu, &rng);
  Adam opt(mlp_.Params(), config_.learning_rate);
  // One tape for the whole training run: after the first epoch records the
  // op sequence, later epochs reuse every buffer (zero allocations).
  Tape tape;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    tape.Reset();
    Tape::Ref logits = mlp_.Forward(&tape, tape.Constant(&x));
    Tape::Ref loss = tape.BceWithLogitsMasked(logits, &y, &mask);
    tape.Backward(loss);
    opt.Step();
  }
  return Status::OK();
}

double NnClassifier::PredictProbability(const std::vector<double>& h,
                                        int parallelism) const {
  // thread_local so concurrent predictions (kb_service) each reuse their
  // own buffers; the tape never allocates once warmed up.
  thread_local Tape tape;
  thread_local Matrix x;
  x.SetShape(1, embedding_dim_ + 1);
  for (int j = 0; j < embedding_dim_; ++j) x.at(0, j) = h[j];
  x.at(0, embedding_dim_) = parallelism / config_.parallelism_scale;
  tape.Reset();
  Tape::Ref out = mlp_.Forward(&tape, tape.Constant(&x));
  return Sigmoid(tape.value(out).at(0, 0));
}

}  // namespace streamtune::ml
