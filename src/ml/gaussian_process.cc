#include "ml/gaussian_process.h"

#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace streamtune::ml {

Result<Matrix> Cholesky(const Matrix& a) {
  assert(a.rows() == a.cols());
  int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (int k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (s <= 0) {
          return Status::FailedPrecondition("matrix not positive definite");
        }
        l.at(i, i) = std::sqrt(s);
      } else {
        l.at(i, j) = s / l.at(j, j);
      }
    }
  }
  return l;
}

std::vector<double> ForwardSolve(const Matrix& l,
                                 const std::vector<double>& b) {
  int n = l.rows();
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  return y;
}

std::vector<double> BackwardSolve(const Matrix& l,
                                  const std::vector<double>& y) {
  int n = l.rows();
  std::vector<double> x(n);
  for (int i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= l.at(k, i) * x[k];
    x[i] = s / l.at(i, i);
  }
  return x;
}

double GaussianProcess::Kernel(double a, double b) const {
  double d = (a - b) / config_.length_scale;
  return config_.signal_var * std::exp(-0.5 * d * d);
}

Status GaussianProcess::Fit(const std::vector<double>& x,
                            const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("GP needs matching non-empty x/y");
  }
  x_ = x;
  {
    double s = 0;
    for (double v : y) s += v;
    y_mean_ = s / static_cast<double>(y.size());
  }
  double var = 0;
  for (double v : y) var += (v - y_mean_) * (v - y_mean_);
  var /= static_cast<double>(y.size());
  y_scale_ = var > 1e-12 ? std::sqrt(var) : 1.0;

  int n = static_cast<int>(x.size());
  Matrix k(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) k.at(i, j) = Kernel(x[i], x[j]);
    k.at(i, i) += config_.noise_var + 1e-10;
  }
  auto chol = Cholesky(k);
  if (!chol.ok()) return chol.status();
  l_ = std::move(chol).value();

  std::vector<double> centered(n);
  for (int i = 0; i < n; ++i) centered[i] = (y[i] - y_mean_) / y_scale_;
  alpha_ = BackwardSolve(l_, ForwardSolve(l_, centered));
  fitted_ = true;
  return Status::OK();
}

double GaussianProcess::Mean(double x) const {
  assert(fitted_);
  double s = 0;
  for (size_t i = 0; i < x_.size(); ++i) s += Kernel(x, x_[i]) * alpha_[i];
  return y_mean_ + y_scale_ * s;
}

double GaussianProcess::StdDev(double x) const {
  assert(fitted_);
  int n = static_cast<int>(x_.size());
  std::vector<double> kx(n);
  for (int i = 0; i < n; ++i) kx[i] = Kernel(x, x_[i]);
  std::vector<double> v = ForwardSolve(l_, kx);
  double var = Kernel(x, x);
  for (double vi : v) var -= vi * vi;
  var = std::max(var, 0.0);
  return y_scale_ * std::sqrt(var);
}

double GaussianProcess::Lcb(double x, double beta) const {
  return Mean(x) - beta * StdDev(x);
}

}  // namespace streamtune::ml
