// GNN encoder for dataflow DAGs (Sec. IV-A).
//
// Message passing runs along both edge directions (an operator's behaviour
// depends on its upstream producers and downstream consumers), with mean
// aggregation:
//
//   H^(0)  = rmsnorm(relu(X W_x + b_x))
//   M^(t)  = A_up H^(t-1) W_up + A_dn H^(t-1) W_dn + H^(t-1) W_self + b
//   H^(t)  = rmsnorm(relu(M^(t)))                       (Eq. 1 + Eq. 2)
//
// Following the paper's parallelism-handling strategy, the parallelism
// degree is incorporated only AFTER all other features are encoded: the
// message-passing output H^(T) is the *parallelism-agnostic* embedding used
// by the online fine-tuning phase, and a single FUSE step
//
//   H' = tanh([H^(T) | p] W_fuse + b_fuse)              (FUSE, Eq. 3)
//
// produces the *parallelism-aware* embedding fed to the pre-training head.
// A_up / A_dn are row-normalized upstream/downstream adjacency matrices;
// RMS normalization between stages keeps activations well-conditioned so
// tanh cannot saturate away per-operator and rate signal.

#pragma once

#include <vector>

#include "common/rng.h"
#include "dataflow/job_graph.h"
#include "ml/autograd.h"
#include "ml/nn.h"
#include "ml/tape.h"

namespace streamtune::ml {

/// Architecture hyperparameters for the encoder.
struct GnnConfig {
  int feature_dim = 0;  ///< width of the initial node features (required)
  int hidden_dim = 32;
  int num_layers = 3;
  uint64_t seed = 7;
};

/// Per-graph encoder inputs that never change across epochs or fine-tune
/// iterations: the row-normalized adjacency matrices. Build once per unique
/// graph and reuse — the Var path used to re-derive both on every
/// ForwardAgnostic call.
struct GraphContext {
  Matrix a_up;    ///< row-normalized upstream adjacency
  Matrix a_dn;    ///< row-normalized downstream adjacency
  Matrix a_up_t;  ///< a_up transposed, for the backward pass (see
                  ///< Tape::MatMulConst: hoists the transpose out of training)
  Matrix a_dn_t;  ///< a_dn transposed

  static GraphContext Build(const JobGraph& graph);
};

/// The dataflow-DAG encoder: per-operator embeddings of width hidden_dim.
class GnnEncoder {
 public:
  GnnEncoder() = default;
  explicit GnnEncoder(const GnnConfig& config);

  /// Parallelism-agnostic embeddings H^(T): pure message passing over the
  /// static features + source rates. `features` is
  /// num_operators x feature_dim.
  Var ForwardAgnostic(const JobGraph& graph, const Matrix& features) const;

  /// Parallelism-aware embeddings: FUSE(H^(T) | p). `parallelism_scaled` is
  /// num_operators x 1 with each degree scaled to [0, 1].
  Var Forward(const JobGraph& graph, const Matrix& features,
              const Matrix& parallelism_scaled) const;

  /// Applies only the FUSE step to precomputed agnostic embeddings.
  Var Fuse(const Var& agnostic, const Matrix& parallelism_scaled) const;

  // Tape variants. Each records the identical op sequence as its Var
  // counterpart, so values and parameter gradients are bit-identical; the
  // caller owns `ctx`, `features`, and `parallelism_scaled`, which must
  // outlive the tape recording (see Tape's lifetime contract).
  Tape::Ref ForwardAgnostic(Tape* tape, const GraphContext& ctx,
                            const Matrix& features) const;
  Tape::Ref Fuse(Tape* tape, Tape::Ref agnostic,
                 const Matrix& parallelism_scaled) const;
  Tape::Ref Forward(Tape* tape, const GraphContext& ctx,
                    const Matrix& features,
                    const Matrix& parallelism_scaled) const;

  std::vector<Var> Params() const;
  const GnnConfig& config() const { return config_; }

  /// Row-normalized adjacency over upstream edges: (A_up)_{v,u} = 1/|up(v)|
  /// for each upstream u of v.
  static Matrix NormalizedUpstreamAdj(const JobGraph& graph);
  /// Row-normalized adjacency over downstream edges.
  static Matrix NormalizedDownstreamAdj(const JobGraph& graph);

 private:
  GnnConfig config_;
  LinearLayer input_proj_;
  struct MessageLayer {
    Var w_up, w_dn, w_self, bias;
  };
  std::vector<MessageLayer> layers_;
  Var w_fuse_, b_fuse_;  // FUSE: (hidden+1) -> hidden
};

}  // namespace streamtune::ml
