// GNN encoder for dataflow DAGs (Sec. IV-A).
//
// Message passing runs along both edge directions (an operator's behaviour
// depends on its upstream producers and downstream consumers), with mean
// aggregation:
//
//   H^(0)  = rmsnorm(relu(X W_x + b_x))
//   M^(t)  = A_up H^(t-1) W_up + A_dn H^(t-1) W_dn + H^(t-1) W_self + b
//   H^(t)  = rmsnorm(relu(M^(t)))                       (Eq. 1 + Eq. 2)
//
// Following the paper's parallelism-handling strategy, the parallelism
// degree is incorporated only AFTER all other features are encoded: the
// message-passing output H^(T) is the *parallelism-agnostic* embedding used
// by the online fine-tuning phase, and a single FUSE step
//
//   H' = tanh([H^(T) | p] W_fuse + b_fuse)              (FUSE, Eq. 3)
//
// produces the *parallelism-aware* embedding fed to the pre-training head.
// A_up / A_dn are row-normalized upstream/downstream adjacency matrices;
// RMS normalization between stages keeps activations well-conditioned so
// tanh cannot saturate away per-operator and rate signal.

#pragma once

#include <vector>

#include "common/rng.h"
#include "dataflow/job_graph.h"
#include "ml/nn.h"
#include "ml/param.h"
#include "ml/tape.h"

namespace streamtune::ml {

/// Architecture hyperparameters for the encoder.
struct GnnConfig {
  int feature_dim = 0;  ///< width of the initial node features (required)
  int hidden_dim = 32;
  int num_layers = 3;
  uint64_t seed = 7;
};

/// Per-graph encoder inputs that never change across epochs or fine-tune
/// iterations: the row-normalized adjacency matrices. Build once per unique
/// graph and reuse.
struct GraphContext {
  Matrix a_up;    ///< row-normalized upstream adjacency
  Matrix a_dn;    ///< row-normalized downstream adjacency
  Matrix a_up_t;  ///< a_up transposed, for the backward pass (see
                  ///< Tape::MatMulConst: hoists the transpose out of training)
  Matrix a_dn_t;  ///< a_dn transposed

  static GraphContext Build(const JobGraph& graph);
};

/// One job's inputs to a batched forward pass: its (cached) graph context
/// and its encoded feature rows. Both are caller-owned and must outlive the
/// call.
struct BatchedJobInput {
  const GraphContext* ctx = nullptr;
  const Matrix* features = nullptr;  ///< num_operators x feature_dim
};

/// Reusable tall buffers for ForwardAgnosticBatched. Reuse one workspace
/// across calls and the steady state allocates nothing (capacities grow to
/// the largest batch seen, then stay).
struct BatchedGnnWorkspace {
  Matrix x;    ///< packed features, sum(n_j) x feature_dim
  Matrix h;    ///< packed hidden state (the returned embeddings live here)
  Matrix u;    ///< block-diagonal aggregation staging
  Matrix msg;  ///< message accumulator
};

/// The dataflow-DAG encoder: per-operator embeddings of width hidden_dim.
class GnnEncoder {
 public:
  GnnEncoder() = default;
  explicit GnnEncoder(const GnnConfig& config);

  // Tape forwards. The caller owns `ctx`, `features`, and
  // `parallelism_scaled`, which must outlive the tape recording (see Tape's
  // lifetime contract).

  /// Parallelism-agnostic embeddings H^(T): pure message passing over the
  /// static features + source rates. `features` is
  /// num_operators x feature_dim.
  Tape::Ref ForwardAgnostic(Tape* tape, const GraphContext& ctx,
                            const Matrix& features) const;
  /// Applies only the FUSE step to precomputed agnostic embeddings:
  /// tanh([H | p] W_fuse + b_fuse), `parallelism_scaled` num_operators x 1.
  Tape::Ref Fuse(Tape* tape, Tape::Ref agnostic,
                 const Matrix& parallelism_scaled) const;
  /// Parallelism-aware embeddings: FUSE(ForwardAgnostic(...) | p).
  Tape::Ref Forward(Tape* tape, const GraphContext& ctx,
                    const Matrix& features,
                    const Matrix& parallelism_scaled) const;

  /// Forward-only batched agnostic embeddings: packs every job's feature
  /// rows into one tall matrix and runs ONE matmul per weight per layer for
  /// the whole batch; only the cheap n_j x n_j adjacency aggregations stay
  /// per-job (block-diagonal, via MatMulSegmentInto). Returns the packed
  /// embeddings (rows [offsets[j], offsets[j+1]) belong to job j; the
  /// matrix lives in `ws` and is valid until the next call on that
  /// workspace).
  ///
  /// Determinism contract: every kernel involved processes output rows
  /// independently, so under any single dispatch the returned rows are
  /// bit-identical to a sequential ForwardAgnostic tape forward per job.
  const Matrix& ForwardAgnosticBatched(const std::vector<BatchedJobInput>& jobs,
                                       BatchedGnnWorkspace* ws,
                                       std::vector<int>* offsets) const;

  /// Pre-packed variant: the caller has already written every job's feature
  /// rows into ws->x (job j owns rows [offsets[j], offsets[j+1]), and
  /// offsets.back() == ws->x.rows()); ctxs[j] is job j's graph context.
  /// Skips the packing copy entirely — the zero-intermediate path used by
  /// PretrainedBundle::BatchedAgnosticEmbeddings, which encodes features
  /// straight into the workspace. Same determinism contract as above.
  const Matrix& ForwardAgnosticBatchedPacked(
      const std::vector<const GraphContext*>& ctxs,
      const std::vector<int>& offsets, BatchedGnnWorkspace* ws) const;

  std::vector<Var> Params() const;
  const GnnConfig& config() const { return config_; }

  /// Row-normalized adjacency over upstream edges: (A_up)_{v,u} = 1/|up(v)|
  /// for each upstream u of v.
  static Matrix NormalizedUpstreamAdj(const JobGraph& graph);
  /// Row-normalized adjacency over downstream edges.
  static Matrix NormalizedDownstreamAdj(const JobGraph& graph);

 private:
  GnnConfig config_;
  LinearLayer input_proj_;
  struct MessageLayer {
    Var w_up, w_dn, w_self, bias;
  };
  std::vector<MessageLayer> layers_;
  Var w_fuse_, b_fuse_;  // FUSE: (hidden+1) -> hidden
};

}  // namespace streamtune::ml
