// Minimal reverse-mode automatic differentiation over matrices.
//
// A handful of ops is enough for everything the paper needs: the GNN encoder
// is alternating (adjacency x H x W) matmuls with nonlinearities, the heads
// are small MLPs, and losses are (masked) binary cross-entropy or MSE.
// Gradients are verified against finite differences in the test suite.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ml/matrix.h"

namespace streamtune::ml {

class Node;
/// Shared handle to a node in the dynamically built computation graph.
using Var = std::shared_ptr<Node>;

/// One value (and, after Backward, its gradient) in the computation graph.
class Node {
 public:
  explicit Node(Matrix v, bool requires_grad = false)
      : value(std::move(v)), requires_grad(requires_grad) {}

  Matrix value;
  /// d(loss)/d(value); empty until Backward reaches this node.
  Matrix grad;
  bool requires_grad;
  std::vector<Var> inputs;
  /// Propagates this->grad into the inputs' grads.
  std::function<void()> backward_fn;

  /// Adds `g` into this node's gradient, allocating on first use.
  void AccumGrad(const Matrix& g);
  bool has_grad() const { return grad.rows() > 0; }
  /// Drops the gradient (buffer released; the tape engine clears
  /// capacity-retainingly via grad.Clear() instead).
  void ZeroGrad();
};

/// Wraps a constant (no gradient flows into it).
Var Constant(Matrix v);
/// Wraps a trainable parameter.
Var Param(Matrix v);

// ---- Differentiable operations -------------------------------------------

Var MatMul(const Var& a, const Var& b);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Hadamard(const Var& a, const Var& b);
Var Scale(const Var& a, double s);
/// Adds a 1 x C bias row to every row of `a`.
Var AddRowBroadcast(const Var& a, const Var& row);
Var Relu(const Var& a);
Var TanhOp(const Var& a);
Var SigmoidOp(const Var& a);
/// Horizontal concatenation [a | b].
Var ConcatCols(const Var& a, const Var& b);
/// Mean over rows -> 1 x C (graph-level readout).
Var MeanRows(const Var& a);
/// Row-wise RMS normalization: y_r = x_r / sqrt(mean(x_r^2) + eps).
/// Keeps hidden activations well-conditioned between GNN layers (prevents
/// tanh saturation in the FUSE step).
Var RmsNormRows(const Var& a, double eps = 1e-6);
/// Sum of all entries -> 1 x 1.
Var SumAll(const Var& a);

// ---- Losses ---------------------------------------------------------------

/// Numerically stable binary cross-entropy on logits (N x 1), averaged over
/// entries where mask != 0. `targets` and `mask` are N x 1 constants.
/// Returns a 1 x 1 node. If the mask is all zero the loss is 0.
Var BceWithLogitsMasked(const Var& logits, const Matrix& targets,
                        const Matrix& mask);

/// Mean squared error against a constant target, averaged over all entries.
Var MseLoss(const Var& pred, const Matrix& target);

/// Runs reverse-mode differentiation from `root` (must be 1 x 1); fills
/// `grad` on every reachable node with requires_grad (and intermediates).
void Backward(const Var& root);

}  // namespace streamtune::ml
