#include "ml/nn.h"

#include <cassert>
#include <cmath>

namespace streamtune::ml {

Var Activate(const Var& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return TanhOp(x);
    case Activation::kSigmoid:
      return SigmoidOp(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

LinearLayer::LinearLayer(int in_dim, int out_dim, Rng* rng)
    : W_(Param(Matrix::GlorotUniform(in_dim, out_dim, rng))),
      b_(Param(Matrix::Zeros(1, out_dim))) {}

Var LinearLayer::Forward(const Var& x) const {
  return AddRowBroadcast(MatMul(x, W_), b_);
}

Mlp::Mlp(const std::vector<int>& dims, Activation hidden_act, Rng* rng)
    : hidden_act_(hidden_act) {
  assert(dims.size() >= 2);
  in_dim_ = dims.front();
  out_dim_ = dims.back();
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = Activate(h, hidden_act_);
  }
  return h;
}

std::vector<Var> Mlp::Params() const {
  std::vector<Var> ps;
  for (const auto& layer : layers_) {
    for (const Var& p : layer.Params()) ps.push_back(p);
  }
  return ps;
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (const Var& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, t_);
  double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p->has_grad()) continue;
    auto& g = p->grad.data();
    auto& m = m_[i].data();
    auto& v = v_[i].data();
    auto& w = p->value.data();
    for (size_t k = 0; k < w.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0 - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0 - beta2_) * g[k] * g[k];
      double mhat = m[k] / bc1;
      double vhat = v[k] / bc2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  for (Var& p : params_) p->ZeroGrad();
}

}  // namespace streamtune::ml
