#include "ml/nn.h"

#include <cassert>
#include <cmath>

namespace streamtune::ml {

Tape::Ref Activate(Tape* tape, Tape::Ref x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return tape->Relu(x);
    case Activation::kTanh:
      return tape->Tanh(x);
    case Activation::kSigmoid:
      return tape->Sigmoid(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

LinearLayer::LinearLayer(int in_dim, int out_dim, Rng* rng)
    : W_(Param(Matrix::GlorotUniform(in_dim, out_dim, rng))),
      b_(Param(Matrix::Zeros(1, out_dim))) {}

Tape::Ref LinearLayer::Forward(Tape* tape, Tape::Ref x) const {
  return tape->AddRowBroadcast(tape->MatMul(x, tape->Param(W_)),
                               tape->Param(b_));
}

Mlp::Mlp(const std::vector<int>& dims, Activation hidden_act, Rng* rng)
    : hidden_act_(hidden_act) {
  assert(dims.size() >= 2);
  in_dim_ = dims.front();
  out_dim_ = dims.back();
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Tape::Ref Mlp::Forward(Tape* tape, Tape::Ref x) const {
  Tape::Ref h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(tape, h);
    if (i + 1 < layers_.size()) h = Activate(tape, h, hidden_act_);
  }
  return h;
}

std::vector<Var> Mlp::Params() const {
  std::vector<Var> ps;
  for (const auto& layer : layers_) {
    for (const Var& p : layer.Params()) ps.push_back(p);
  }
  return ps;
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (const Var& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  const double b1 = beta1_, one_minus_b1 = 1.0 - beta1_;
  const double b2 = beta2_, one_minus_b2 = 1.0 - beta2_;
  const double lr = lr_, eps = eps_;
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p->has_grad()) continue;
    // Restrict-qualified raw spans so the div/sqrt chain vectorizes; the
    // per-element expressions are unchanged (same values, same rounding).
    const double* __restrict g = p->grad.data().data();
    double* __restrict m = m_[i].data().data();
    double* __restrict v = v_[i].data().data();
    double* __restrict w = p->value.data().data();
    const size_t n = p->value.size();
    for (size_t k = 0; k < n; ++k) {
      m[k] = b1 * m[k] + one_minus_b1 * g[k];
      v[k] = b2 * v[k] + one_minus_b2 * g[k] * g[k];
      const double mhat = m[k] / bc1;
      const double vhat = v[k] / bc2;
      w[k] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  // Capacity-retaining, so tape-driven training rewrites param grads each
  // step without allocating.
  for (Var& p : params_) p->grad.Clear();
}

}  // namespace streamtune::ml
