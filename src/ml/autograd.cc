#include "ml/autograd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace streamtune::ml {

void Node::AccumGrad(const Matrix& g) {
  if (!has_grad()) {
    grad = g;
  } else {
    assert(grad.same_shape(g));
    grad = grad.Add(g);
  }
}

void Node::ZeroGrad() { grad = Matrix(); }

Var Constant(Matrix v) { return std::make_shared<Node>(std::move(v), false); }
Var Param(Matrix v) { return std::make_shared<Node>(std::move(v), true); }

namespace {

Var MakeOp(Matrix value, std::vector<Var> inputs) {
  auto n = std::make_shared<Node>(std::move(value), false);
  n->inputs = std::move(inputs);
  return n;
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Var out = MakeOp(a->value.MatMul(b->value), {a, b});
  Node* o = out.get();
  out->backward_fn = [o, a, b]() {
    a->AccumGrad(o->grad.MatMul(b->value.Transpose()));
    b->AccumGrad(a->value.Transpose().MatMul(o->grad));
  };
  return out;
}

Var Add(const Var& a, const Var& b) {
  Var out = MakeOp(a->value.Add(b->value), {a, b});
  Node* o = out.get();
  out->backward_fn = [o, a, b]() {
    a->AccumGrad(o->grad);
    b->AccumGrad(o->grad);
  };
  return out;
}

Var Sub(const Var& a, const Var& b) {
  Var out = MakeOp(a->value.Sub(b->value), {a, b});
  Node* o = out.get();
  out->backward_fn = [o, a, b]() {
    a->AccumGrad(o->grad);
    b->AccumGrad(o->grad.Scale(-1.0));
  };
  return out;
}

Var Hadamard(const Var& a, const Var& b) {
  Var out = MakeOp(a->value.Hadamard(b->value), {a, b});
  Node* o = out.get();
  out->backward_fn = [o, a, b]() {
    a->AccumGrad(o->grad.Hadamard(b->value));
    b->AccumGrad(o->grad.Hadamard(a->value));
  };
  return out;
}

Var Scale(const Var& a, double s) {
  Var out = MakeOp(a->value.Scale(s), {a});
  Node* o = out.get();
  out->backward_fn = [o, a, s]() { a->AccumGrad(o->grad.Scale(s)); };
  return out;
}

Var AddRowBroadcast(const Var& a, const Var& row) {
  Var out = MakeOp(a->value.AddRowBroadcast(row->value), {a, row});
  Node* o = out.get();
  out->backward_fn = [o, a, row]() {
    a->AccumGrad(o->grad);
    row->AccumGrad(o->grad.SumRows());
  };
  return out;
}

Var Relu(const Var& a) {
  Matrix v = a->value;
  for (double& x : v.data()) x = std::max(0.0, x);
  Var out = MakeOp(std::move(v), {a});
  Node* o = out.get();
  out->backward_fn = [o, a]() {
    Matrix g = o->grad;
    const auto& in = a->value.data();
    for (size_t i = 0; i < g.data().size(); ++i) {
      if (in[i] <= 0.0) g.data()[i] = 0.0;
    }
    a->AccumGrad(g);
  };
  return out;
}

Var TanhOp(const Var& a) {
  Matrix v = a->value;
  for (double& x : v.data()) x = std::tanh(x);
  Var out = MakeOp(std::move(v), {a});
  Node* o = out.get();
  out->backward_fn = [o, a]() {
    Matrix g = o->grad;
    const auto& y = o->value.data();
    for (size_t i = 0; i < g.data().size(); ++i) {
      g.data()[i] *= 1.0 - y[i] * y[i];
    }
    a->AccumGrad(g);
  };
  return out;
}

Var SigmoidOp(const Var& a) {
  Matrix v = a->value;
  for (double& x : v.data()) {
    x = x >= 0 ? 1.0 / (1.0 + std::exp(-x))
               : std::exp(x) / (1.0 + std::exp(x));
  }
  Var out = MakeOp(std::move(v), {a});
  Node* o = out.get();
  out->backward_fn = [o, a]() {
    Matrix g = o->grad;
    const auto& y = o->value.data();
    for (size_t i = 0; i < g.data().size(); ++i) {
      g.data()[i] *= y[i] * (1.0 - y[i]);
    }
    a->AccumGrad(g);
  };
  return out;
}

Var ConcatCols(const Var& a, const Var& b) {
  Var out = MakeOp(a->value.ConcatCols(b->value), {a, b});
  Node* o = out.get();
  out->backward_fn = [o, a, b]() {
    int ac = a->value.cols();
    a->AccumGrad(o->grad.SliceCols(0, ac));
    b->AccumGrad(o->grad.SliceCols(ac, o->grad.cols()));
  };
  return out;
}

Var MeanRows(const Var& a) {
  int n = a->value.rows();
  assert(n > 0);
  Var out = MakeOp(a->value.SumRows().Scale(1.0 / n), {a});
  Node* o = out.get();
  out->backward_fn = [o, a, n]() {
    Matrix g(a->value.rows(), a->value.cols());
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) {
        g.at(r, c) = o->grad.at(0, c) / n;
      }
    }
    a->AccumGrad(g);
  };
  return out;
}

Var RmsNormRows(const Var& a, double eps) {
  const int rows = a->value.rows(), cols = a->value.cols();
  Matrix v(rows, cols);
  std::vector<double> inv_rms(rows);
  for (int r = 0; r < rows; ++r) {
    double ms = 0;
    for (int c = 0; c < cols; ++c) ms += a->value.at(r, c) * a->value.at(r, c);
    ms = ms / cols + eps;
    inv_rms[r] = 1.0 / std::sqrt(ms);
    for (int c = 0; c < cols; ++c) v.at(r, c) = a->value.at(r, c) * inv_rms[r];
  }
  Var out = MakeOp(std::move(v), {a});
  Node* o = out.get();
  out->backward_fn = [o, a, inv_rms, cols]() {
    Matrix g(a->value.rows(), a->value.cols());
    for (int r = 0; r < g.rows(); ++r) {
      // dL/dx = inv_rms * (dL/dy - y * mean(y .* dL/dy) / (1/inv_rms^2 ... ))
      // Using y = x * inv_rms: dL/dx_c = inv_rms * (g_c - y_c * m) where
      // m = mean over c of (g_c * y_c).
      double m = 0;
      for (int c = 0; c < cols; ++c) m += o->grad.at(r, c) * o->value.at(r, c);
      m /= cols;
      for (int c = 0; c < cols; ++c) {
        g.at(r, c) =
            inv_rms[r] * (o->grad.at(r, c) - o->value.at(r, c) * m);
      }
    }
    a->AccumGrad(g);
  };
  return out;
}

Var SumAll(const Var& a) {
  Matrix v(1, 1);
  v.at(0, 0) = a->value.SumAll();
  Var out = MakeOp(std::move(v), {a});
  Node* o = out.get();
  out->backward_fn = [o, a]() {
    Matrix g(a->value.rows(), a->value.cols(), o->grad.at(0, 0));
    a->AccumGrad(g);
  };
  return out;
}

Var BceWithLogitsMasked(const Var& logits, const Matrix& targets,
                        const Matrix& mask) {
  assert(logits->value.same_shape(targets));
  assert(logits->value.same_shape(mask));
  double count = 0;
  for (double m : mask.data()) {
    if (m != 0.0) count += 1.0;
  }
  Matrix v(1, 1);
  if (count > 0) {
    double total = 0;
    const auto& z = logits->value.data();
    const auto& y = targets.data();
    const auto& mk = mask.data();
    for (size_t i = 0; i < z.size(); ++i) {
      if (mk[i] == 0.0) continue;
      // Stable: max(z,0) - z*y + log(1 + exp(-|z|)).
      total += std::max(z[i], 0.0) - z[i] * y[i] +
               std::log1p(std::exp(-std::fabs(z[i])));
    }
    v.at(0, 0) = total / count;
  }
  Var out = MakeOp(std::move(v), {logits});
  Node* o = out.get();
  Matrix tg = targets, mk = mask;
  out->backward_fn = [o, logits, tg, mk, count]() {
    if (count == 0) return;
    Matrix g(logits->value.rows(), logits->value.cols());
    const auto& z = logits->value.data();
    for (size_t i = 0; i < z.size(); ++i) {
      if (mk.data()[i] == 0.0) continue;
      double s = z[i] >= 0 ? 1.0 / (1.0 + std::exp(-z[i]))
                           : std::exp(z[i]) / (1.0 + std::exp(z[i]));
      g.data()[i] = o->grad.at(0, 0) * (s - tg.data()[i]) / count;
    }
    logits->AccumGrad(g);
  };
  return out;
}

Var MseLoss(const Var& pred, const Matrix& target) {
  assert(pred->value.same_shape(target));
  double n = static_cast<double>(pred->value.size());
  Matrix v(1, 1);
  Matrix diff = pred->value.Sub(target);
  v.at(0, 0) = diff.SquaredNorm() / n;
  Var out = MakeOp(std::move(v), {pred});
  Node* o = out.get();
  Matrix tg = target;
  out->backward_fn = [o, pred, tg, n]() {
    Matrix g = pred->value.Sub(tg).Scale(2.0 / n * o->grad.at(0, 0));
    pred->AccumGrad(g);
  };
  return out;
}

void Backward(const Var& root) {
  assert(root->value.rows() == 1 && root->value.cols() == 1);
  // Post-order DFS for a topological order of the graph above `root`.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  visited.insert(root.get());
  // Iterative DFS; nodes are pushed to `order` after all inputs.
  std::vector<Var> node_stack{root};
  std::vector<size_t> idx_stack{0};
  std::vector<Var> keepalive;
  while (!node_stack.empty()) {
    Var cur = node_stack.back();
    size_t& i = idx_stack.back();
    if (i < cur->inputs.size()) {
      Var next = cur->inputs[i++];
      if (visited.insert(next.get()).second) {
        node_stack.push_back(next);
        idx_stack.push_back(0);
      }
    } else {
      order.push_back(cur.get());
      keepalive.push_back(cur);
      node_stack.pop_back();
      idx_stack.pop_back();
    }
  }

  for (Node* n : order) n->ZeroGrad();
  Matrix seed(1, 1);
  seed.at(0, 0) = 1.0;
  root->grad = seed;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->has_grad()) n->backward_fn();
  }
}

}  // namespace streamtune::ml
