// Unconstrained neural-network bottleneck classifier.
//
// The ablation baseline of Fig. 11a: an MLP over [h, p] trained with BCE.
// Nothing enforces monotonicity in p, so Algorithm 2's minimum-parallelism
// search can be misled — exactly the failure mode the paper demonstrates.

#pragma once

#include <memory>

#include "ml/bottleneck_model.h"
#include "ml/nn.h"

namespace streamtune::ml {

/// Hyperparameters for NnClassifier.
struct NnClassifierConfig {
  int hidden_dim = 32;
  int epochs = 200;
  double learning_rate = 5e-3;
  double parallelism_scale = 100.0;
  uint64_t seed = 17;
};

/// MLP classifier on [embedding | scaled parallelism], no monotonic
/// constraint.
class NnClassifier : public BottleneckModel {
 public:
  explicit NnClassifier(int embedding_dim, NnClassifierConfig config = {});

  Status Fit(const std::vector<LabeledSample>& data) override;
  double PredictProbability(const std::vector<double>& h,
                            int parallelism) const override;
  bool is_monotonic() const override { return false; }
  std::string name() const override { return "NN"; }

 private:
  int embedding_dim_;
  NnClassifierConfig config_;
  Mlp mlp_;
};

}  // namespace streamtune::ml
