// Dense row-major matrix of doubles — the numeric workhorse for the ML stack.
//
// Deliberately minimal: the models in this project (GNN encoder, MLP heads,
// SVM, GP) operate on graphs with <= ~20 nodes and hidden widths <= 64, so a
// straightforward O(n^3) matmul is more than fast enough and easy to verify.

#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace streamtune::ml {

/// Dense rows x cols matrix of doubles, row-major.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    assert(rows >= 0 && cols >= 0);
  }

  /// Builds a matrix from nested initializer data (row per inner vector).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  static Matrix Identity(int n);
  /// Glorot-uniform initialization for layer weights.
  static Matrix GlorotUniform(int rows, int cols, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& at(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double at(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transpose() const;
  /// Matrix product; this->cols() must equal other.rows().
  Matrix MatMul(const Matrix& other) const;
  Matrix Add(const Matrix& other) const;
  Matrix Sub(const Matrix& other) const;
  Matrix Hadamard(const Matrix& other) const;
  Matrix Scale(double s) const;
  /// Adds a 1 x cols row vector to every row.
  Matrix AddRowBroadcast(const Matrix& row) const;
  /// Sums all rows into a 1 x cols vector.
  Matrix SumRows() const;
  /// Concatenates columns: [this | other]; row counts must match.
  Matrix ConcatCols(const Matrix& other) const;
  /// Returns columns [begin, end).
  Matrix SliceCols(int begin, int end) const;
  /// Extracts one row as a flat vector.
  std::vector<double> Row(int r) const;
  void SetRow(int r, const std::vector<double>& values);

  double SumAll() const;
  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Largest absolute entry.
  double MaxAbs() const;

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

}  // namespace streamtune::ml
