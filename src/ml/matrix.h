// Dense row-major matrix of doubles — the numeric workhorse for the ML stack.
//
// Deliberately minimal: the models in this project (GNN encoder, MLP heads,
// SVM, GP) operate on graphs with <= ~20 nodes and hidden widths <= 64, so a
// straightforward O(n^3) matmul is more than fast enough and easy to verify.
//
// Two layers:
//  - the Matrix value type with allocating, expression-style methods
//    (`a.MatMul(b)`, `a.Add(b)`), kept for cold paths and tests;
//  - a kernel layer of output-buffer-reusing free functions (`MatMulInto`,
//    `MatMulNTInto`, `AddInto`, ...) used by the tape autograd engine
//    (ml/tape.h). Kernels never allocate when the output buffer already has
//    capacity, never materialize transposes (the NT/TN variants walk the
//    untransposed operand), and — on the scalar path — are bit-compatible
//    with the composed Matrix methods they replace: same term order, same
//    zero-skip, same roundings.
//
// Dispatch: the hottest kernels (the three matmuls and their accumulate /
// fused-activation forms, AddInto, AxpyInto, ReluInto) route through a table
// selected once at startup. When the binary
// carries AVX2+FMA code (see ml/matrix_simd.h), the host CPU supports both,
// and STREAMTUNE_FORCE_SCALAR is not set, the table points at the vectorized
// cores; otherwise at the scalar ones. The SIMD cores are tolerance-equal
// (FMA contraction reassociates addition chains), so any run that must be
// bit-reproducible against the composed Matrix methods pins the scalar path
// via STREAMTUNE_FORCE_SCALAR. Either way a single process uses a single
// table, so all within-process determinism guarantees (thread-count
// independence, batched-vs-sequential equality) hold under both dispatches.
// Matrix storage is 32-byte aligned so vector loads on row starts of
// multiple-of-4-column matrices stay aligned.
//
// Bounds checks: hot kernel loops run on raw spans; `Matrix::at` keeps its
// bounds assertion in Debug builds and — via STREAMTUNE_BOUNDS_CHECK, which
// the sanitizer CMake presets define — in otherwise-optimized sanitizer
// builds, so out-of-range indexing cannot hide behind NDEBUG there.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"

namespace streamtune::ml {

#if !defined(NDEBUG) || defined(STREAMTUNE_BOUNDS_CHECK)
inline constexpr bool kBoundsChecked = true;
#else
inline constexpr bool kBoundsChecked = false;
#endif

/// Minimal stateless over-aligning allocator (alignment in bytes; must be a
/// power of two and a multiple of alignof(T)). Keeps Matrix buffers on
/// 32-byte boundaries for the AVX2 kernels.
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
};

template <typename T, size_t A, typename U, size_t B>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, B>&) {
  return A == B;
}

/// Dense rows x cols matrix of doubles, row-major.
class Matrix {
 public:
  /// Backing store: a std::vector with 32-byte-aligned allocations.
  using Buffer = std::vector<double, AlignedAllocator<double, 32>>;

  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    assert(rows >= 0 && cols >= 0);
  }

  /// Builds a matrix from nested initializer data (row per inner vector).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  static Matrix Identity(int n);
  /// Glorot-uniform initialization for layer weights.
  static Matrix GlorotUniform(int rows, int cols, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& at(int r, int c) {
    if constexpr (kBoundsChecked) {
      if (r < 0 || r >= rows_ || c < 0 || c >= cols_) std::abort();
    }
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double at(int r, int c) const {
    if constexpr (kBoundsChecked) {
      if (r < 0 || r >= rows_ || c < 0 || c >= cols_) std::abort();
    }
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  const Buffer& data() const { return data_; }
  Buffer& data() { return data_; }

  /// Raw row-major span of row `r` (bounds-checked like `at`).
  const double* row_span(int r) const {
    if constexpr (kBoundsChecked) {
      if (r < 0 || r >= rows_) std::abort();
    }
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  double* row_span(int r) {
    if constexpr (kBoundsChecked) {
      if (r < 0 || r >= rows_) std::abort();
    }
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Reshapes to rows x cols and zero-fills, retaining heap capacity — the
  /// buffer-reuse primitive behind the tape's allocation-free steady state.
  void SetShape(int rows, int cols) {
    assert(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows) * cols, 0.0);
  }
  /// Reshapes without the zero-fill pass: element values are unspecified
  /// afterwards. Only for kernels that overwrite every element of the
  /// output exactly once before it is read.
  void SetShapeUninit(int rows, int cols) {
    assert(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }
  /// Empties the matrix (0 x 0) while retaining heap capacity.
  void Clear() {
    rows_ = 0;
    cols_ = 0;
    data_.clear();
  }
  /// Heap capacity in doubles (allocation telemetry for reuse tests).
  size_t capacity() const { return data_.capacity(); }

  Matrix Transpose() const;
  /// Matrix product; this->cols() must equal other.rows().
  Matrix MatMul(const Matrix& other) const;
  Matrix Add(const Matrix& other) const;
  Matrix Sub(const Matrix& other) const;
  Matrix Hadamard(const Matrix& other) const;
  Matrix Scale(double s) const;
  /// Adds a 1 x cols row vector to every row.
  Matrix AddRowBroadcast(const Matrix& row) const;
  /// Sums all rows into a 1 x cols vector.
  Matrix SumRows() const;
  /// Concatenates columns: [this | other]; row counts must match.
  Matrix ConcatCols(const Matrix& other) const;
  /// Returns columns [begin, end).
  Matrix SliceCols(int begin, int end) const;
  /// Extracts one row as a flat vector.
  std::vector<double> Row(int r) const;
  void SetRow(int r, const std::vector<double>& values);

  double SumAll() const;
  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Largest absolute entry.
  double MaxAbs() const;

 private:
  int rows_, cols_;
  Buffer data_;
};

// ---- Kernel layer ----------------------------------------------------------
//
// Output-buffer-reusing kernels. Every kernel shapes `out` itself (retaining
// its capacity) and requires `out` to alias none of its inputs unless noted.
// On the scalar dispatch each is bit-identical to the allocating composition
// it replaces (documented per kernel): identical term values, identical
// per-element accumulation order, identical zero-skip tests — so swapping a
// composition for its kernel never changes a single output bit. The AVX2
// dispatch keeps the same zero-skips but fuses multiply-adds, making the
// dispatched kernels tolerance-equal instead (see the header comment).

/// Name of the kernel table the one-time startup dispatch selected:
/// "avx2-fma" or "scalar". Stable for the life of the process unless
/// ReinitKernelDispatchForTest() is called.
const char* ActiveKernelDispatch();

/// Re-runs the dispatch decision, re-reading STREAMTUNE_FORCE_SCALAR.
/// Test-only: must not race concurrent kernel calls.
void ReinitKernelDispatchForTest();

/// out = a * b. Bit-identical to a.MatMul(b).
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);
/// Block-diagonal building block for batched inference: writes
///   out rows [out_row0, out_row0 + a.rows())
///     = a * (b rows [b_row0, b_row0 + a.cols())).
/// `out` must be pre-shaped with cols() == b.cols() and enough rows; the
/// written rows are bit-identical (per dispatch) to MatMulInto on the row
/// slices, rows outside the window are untouched.
void MatMulSegmentInto(const Matrix& a, const Matrix& b, int b_row0,
                       Matrix* out, int out_row0);
/// acc += a * b; `acc` must already be shaped a.rows() x b.cols(). Per
/// dispatch bit-identical to MatMulInto into a temporary followed by
/// AddInto(temp, acc): the per-element product chain is the matmul kernel's,
/// and only the final store adds it to the existing value. Fuses away one
/// full staging write + read in the batched GNN forward.
void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix* acc);
/// out = a * b^T without materializing the transpose. Bit-identical to
/// a.MatMul(b.Transpose()): per output element the same products are summed
/// in the same k-order, skipping the same a(r,k) == 0 terms.
void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a^T * b without materializing the transpose. Bit-identical to
/// a.Transpose().MatMul(b).
void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* out);
/// acc += src (in place; shapes must match). Bit-identical to
/// acc = acc.Add(src).
void AddInto(const Matrix& src, Matrix* acc);
/// acc += alpha * x (in place; shapes must match).
void AxpyInto(double alpha, const Matrix& x, Matrix* acc);
/// out = a + b elementwise. Bit-identical to a.Add(b).
void AddMatInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a - b elementwise. Bit-identical to a.Sub(b).
void SubInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a ⊙ b elementwise. Bit-identical to a.Hadamard(b).
void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = s * a. Bit-identical to a.Scale(s).
void ScaleInto(const Matrix& a, double s, Matrix* out);
/// out = max(a, 0) elementwise.
void ReluInto(const Matrix& a, Matrix* out);
/// out = relu(a + row broadcast), `row` 1 x a.cols(). Per dispatch
/// bit-identical to AddRowBroadcastInto followed by ReluInto — one pass
/// instead of a staging write + read.
void BiasReluInto(const Matrix& a, const Matrix& row, Matrix* out);
/// out = a with the 1 x cols `row` added to every row. Bit-identical to
/// a.AddRowBroadcast(row).
void AddRowBroadcastInto(const Matrix& a, const Matrix& row, Matrix* out);
/// out = 1 x cols column sums. Bit-identical to a.SumRows().
void SumRowsInto(const Matrix& a, Matrix* out);
/// out = columns [begin, end) of a. Bit-identical to a.SliceCols(begin, end).
void SliceColsInto(const Matrix& a, int begin, int end, Matrix* out);

}  // namespace streamtune::ml
