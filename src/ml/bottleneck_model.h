// Interface for the fine-tuned bottleneck prediction model M_f (Sec. IV-B).
//
// M_f consumes an operator's parallelism-agnostic embedding h plus a
// candidate parallelism degree p and estimates P(bottleneck | h, p).
// Monotonic implementations guarantee this probability is non-increasing in
// p, which Algorithm 2 exploits to binary-search the minimum safe degree.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamtune::ml {

/// One fine-tuning training example: (embedding, parallelism) -> label.
struct LabeledSample {
  std::vector<double> embedding;  ///< parallelism-agnostic operator embedding
  int parallelism = 1;            ///< deployed parallelism degree
  int label = 0;                  ///< 1 = bottleneck, 0 = not
};

/// Classification model estimating P(operator is a bottleneck | h, p).
class BottleneckModel {
 public:
  virtual ~BottleneckModel() = default;

  /// Fits (or refits) the model on the full dataset. Called once per tuning
  /// iteration, so implementations favour fast retraining over incremental
  /// updates.
  virtual Status Fit(const std::vector<LabeledSample>& data) = 0;

  /// P(bottleneck) for embedding `h` at parallelism `p`.
  virtual double PredictProbability(const std::vector<double>& h,
                                    int parallelism) const = 0;

  /// Classification with a 0.5 threshold.
  bool PredictBottleneck(const std::vector<double>& h, int parallelism) const {
    return PredictProbability(h, parallelism) >= 0.5;
  }

  /// True when PredictProbability is guaranteed non-increasing in p.
  virtual bool is_monotonic() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace streamtune::ml
