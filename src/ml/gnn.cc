#include "ml/gnn.h"

#include <cassert>

namespace streamtune::ml {

GnnEncoder::GnnEncoder(const GnnConfig& config) : config_(config) {
  assert(config.feature_dim > 0);
  Rng rng(config.seed);
  input_proj_ = LinearLayer(config.feature_dim, config.hidden_dim, &rng);
  for (int t = 0; t < config.num_layers; ++t) {
    MessageLayer layer;
    layer.w_up =
        Param(Matrix::GlorotUniform(config.hidden_dim, config.hidden_dim, &rng));
    layer.w_dn =
        Param(Matrix::GlorotUniform(config.hidden_dim, config.hidden_dim, &rng));
    layer.w_self =
        Param(Matrix::GlorotUniform(config.hidden_dim, config.hidden_dim, &rng));
    layer.bias = Param(Matrix::Zeros(1, config.hidden_dim));
    layers_.push_back(std::move(layer));
  }
  w_fuse_ = Param(
      Matrix::GlorotUniform(config.hidden_dim + 1, config.hidden_dim, &rng));
  b_fuse_ = Param(Matrix::Zeros(1, config.hidden_dim));
}

GraphContext GraphContext::Build(const JobGraph& graph) {
  GraphContext ctx;
  ctx.a_up = GnnEncoder::NormalizedUpstreamAdj(graph);
  ctx.a_dn = GnnEncoder::NormalizedDownstreamAdj(graph);
  ctx.a_up_t = ctx.a_up.Transpose();
  ctx.a_dn_t = ctx.a_dn.Transpose();
  return ctx;
}

Matrix GnnEncoder::NormalizedUpstreamAdj(const JobGraph& graph) {
  int n = graph.num_operators();
  Matrix a(n, n);
  for (int v = 0; v < n; ++v) {
    const auto& ups = graph.upstream(v);
    if (ups.empty()) continue;
    double w = 1.0 / static_cast<double>(ups.size());
    for (int u : ups) a.at(v, u) = w;
  }
  return a;
}

Matrix GnnEncoder::NormalizedDownstreamAdj(const JobGraph& graph) {
  int n = graph.num_operators();
  Matrix a(n, n);
  for (int v = 0; v < n; ++v) {
    const auto& dns = graph.downstream(v);
    if (dns.empty()) continue;
    double w = 1.0 / static_cast<double>(dns.size());
    for (int d : dns) a.at(v, d) = w;
  }
  return a;
}

Var GnnEncoder::ForwardAgnostic(const JobGraph& graph,
                                const Matrix& features) const {
  assert(features.rows() == graph.num_operators());
  assert(features.cols() == config_.feature_dim);

  Var a_up = Constant(NormalizedUpstreamAdj(graph));
  Var a_dn = Constant(NormalizedDownstreamAdj(graph));
  Var x = Constant(features);

  Var h = RmsNormRows(Relu(input_proj_.Forward(x)));
  for (const MessageLayer& layer : layers_) {
    Var msg_up = MatMul(MatMul(a_up, h), layer.w_up);
    Var msg_dn = MatMul(MatMul(a_dn, h), layer.w_dn);
    Var self = MatMul(h, layer.w_self);
    Var m = AddRowBroadcast(Add(Add(msg_up, msg_dn), self), layer.bias);
    h = RmsNormRows(Relu(m));
  }
  return h;
}

Var GnnEncoder::Fuse(const Var& agnostic,
                     const Matrix& parallelism_scaled) const {
  assert(parallelism_scaled.rows() == agnostic->value.rows());
  assert(parallelism_scaled.cols() == 1);
  Var p_col = Constant(parallelism_scaled);
  Var fused = MatMul(ConcatCols(agnostic, p_col), w_fuse_);
  return TanhOp(AddRowBroadcast(fused, b_fuse_));
}

Var GnnEncoder::Forward(const JobGraph& graph, const Matrix& features,
                        const Matrix& parallelism_scaled) const {
  return Fuse(ForwardAgnostic(graph, features), parallelism_scaled);
}

Tape::Ref GnnEncoder::ForwardAgnostic(Tape* tape, const GraphContext& ctx,
                                      const Matrix& features) const {
  assert(features.rows() == ctx.a_up.rows());
  assert(features.cols() == config_.feature_dim);

  Tape::Ref x = tape->Constant(&features);

  Tape::Ref h = tape->RmsNormRows(tape->Relu(input_proj_.Forward(tape, x)));
  for (const MessageLayer& layer : layers_) {
    Tape::Ref msg_up = tape->MatMul(
        tape->MatMulConst(&ctx.a_up, &ctx.a_up_t, h), tape->Param(layer.w_up));
    Tape::Ref msg_dn = tape->MatMul(
        tape->MatMulConst(&ctx.a_dn, &ctx.a_dn_t, h), tape->Param(layer.w_dn));
    Tape::Ref self = tape->MatMul(h, tape->Param(layer.w_self));
    Tape::Ref m = tape->AddRowBroadcast(
        tape->Add(tape->Add(msg_up, msg_dn), self), tape->Param(layer.bias));
    h = tape->RmsNormRows(tape->Relu(m));
  }
  return h;
}

Tape::Ref GnnEncoder::Fuse(Tape* tape, Tape::Ref agnostic,
                           const Matrix& parallelism_scaled) const {
  assert(parallelism_scaled.rows() == tape->value(agnostic).rows());
  assert(parallelism_scaled.cols() == 1);
  Tape::Ref p_col = tape->Constant(&parallelism_scaled);
  Tape::Ref fused =
      tape->MatMul(tape->ConcatCols(agnostic, p_col), tape->Param(w_fuse_));
  return tape->Tanh(tape->AddRowBroadcast(fused, tape->Param(b_fuse_)));
}

Tape::Ref GnnEncoder::Forward(Tape* tape, const GraphContext& ctx,
                              const Matrix& features,
                              const Matrix& parallelism_scaled) const {
  return Fuse(tape, ForwardAgnostic(tape, ctx, features), parallelism_scaled);
}

std::vector<Var> GnnEncoder::Params() const {
  std::vector<Var> ps = input_proj_.Params();
  for (const MessageLayer& layer : layers_) {
    ps.push_back(layer.w_up);
    ps.push_back(layer.w_dn);
    ps.push_back(layer.w_self);
    ps.push_back(layer.bias);
  }
  ps.push_back(w_fuse_);
  ps.push_back(b_fuse_);
  return ps;
}

}  // namespace streamtune::ml
