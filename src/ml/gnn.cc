#include "ml/gnn.h"

#include <cassert>
#include <cmath>

namespace streamtune::ml {

GnnEncoder::GnnEncoder(const GnnConfig& config) : config_(config) {
  assert(config.feature_dim > 0);
  Rng rng(config.seed);
  input_proj_ = LinearLayer(config.feature_dim, config.hidden_dim, &rng);
  for (int t = 0; t < config.num_layers; ++t) {
    MessageLayer layer;
    layer.w_up =
        Param(Matrix::GlorotUniform(config.hidden_dim, config.hidden_dim, &rng));
    layer.w_dn =
        Param(Matrix::GlorotUniform(config.hidden_dim, config.hidden_dim, &rng));
    layer.w_self =
        Param(Matrix::GlorotUniform(config.hidden_dim, config.hidden_dim, &rng));
    layer.bias = Param(Matrix::Zeros(1, config.hidden_dim));
    layers_.push_back(std::move(layer));
  }
  w_fuse_ = Param(
      Matrix::GlorotUniform(config.hidden_dim + 1, config.hidden_dim, &rng));
  b_fuse_ = Param(Matrix::Zeros(1, config.hidden_dim));
}

GraphContext GraphContext::Build(const JobGraph& graph) {
  GraphContext ctx;
  ctx.a_up = GnnEncoder::NormalizedUpstreamAdj(graph);
  ctx.a_dn = GnnEncoder::NormalizedDownstreamAdj(graph);
  ctx.a_up_t = ctx.a_up.Transpose();
  ctx.a_dn_t = ctx.a_dn.Transpose();
  return ctx;
}

Matrix GnnEncoder::NormalizedUpstreamAdj(const JobGraph& graph) {
  int n = graph.num_operators();
  Matrix a(n, n);
  for (int v = 0; v < n; ++v) {
    const auto& ups = graph.upstream(v);
    if (ups.empty()) continue;
    double w = 1.0 / static_cast<double>(ups.size());
    for (int u : ups) a.at(v, u) = w;
  }
  return a;
}

Matrix GnnEncoder::NormalizedDownstreamAdj(const JobGraph& graph) {
  int n = graph.num_operators();
  Matrix a(n, n);
  for (int v = 0; v < n; ++v) {
    const auto& dns = graph.downstream(v);
    if (dns.empty()) continue;
    double w = 1.0 / static_cast<double>(dns.size());
    for (int d : dns) a.at(v, d) = w;
  }
  return a;
}

Tape::Ref GnnEncoder::ForwardAgnostic(Tape* tape, const GraphContext& ctx,
                                      const Matrix& features) const {
  assert(features.rows() == ctx.a_up.rows());
  assert(features.cols() == config_.feature_dim);

  Tape::Ref x = tape->Constant(&features);

  Tape::Ref h = tape->RmsNormRows(tape->Relu(input_proj_.Forward(tape, x)));
  for (const MessageLayer& layer : layers_) {
    Tape::Ref msg_up = tape->MatMul(
        tape->MatMulConst(&ctx.a_up, &ctx.a_up_t, h), tape->Param(layer.w_up));
    Tape::Ref msg_dn = tape->MatMul(
        tape->MatMulConst(&ctx.a_dn, &ctx.a_dn_t, h), tape->Param(layer.w_dn));
    Tape::Ref self = tape->MatMul(h, tape->Param(layer.w_self));
    Tape::Ref m = tape->AddRowBroadcast(
        tape->Add(tape->Add(msg_up, msg_dn), self), tape->Param(layer.bias));
    h = tape->RmsNormRows(tape->Relu(m));
  }
  return h;
}

Tape::Ref GnnEncoder::Fuse(Tape* tape, Tape::Ref agnostic,
                           const Matrix& parallelism_scaled) const {
  assert(parallelism_scaled.rows() == tape->value(agnostic).rows());
  assert(parallelism_scaled.cols() == 1);
  Tape::Ref p_col = tape->Constant(&parallelism_scaled);
  Tape::Ref fused =
      tape->MatMul(tape->ConcatCols(agnostic, p_col), tape->Param(w_fuse_));
  return tape->Tanh(tape->AddRowBroadcast(fused, tape->Param(b_fuse_)));
}

Tape::Ref GnnEncoder::Forward(Tape* tape, const GraphContext& ctx,
                              const Matrix& features,
                              const Matrix& parallelism_scaled) const {
  return Fuse(tape, ForwardAgnostic(tape, ctx, features), parallelism_scaled);
}

namespace {

// Forward-only row-wise RMS normalization, in place. Per row the arithmetic
// is exactly Tape::RmsNormRows' forward pass: ms = sum(x^2) / cols + eps,
// then y = x * (1 / sqrt(ms)) — so batched and tape forwards agree
// bit-for-bit.
void RmsNormRowsInPlace(Matrix* h, double eps) {
  const int rows = h->rows(), cols = h->cols();
  for (int r = 0; r < rows; ++r) {
    double* row = h->row_span(r);
    double ms = 0;
    for (int c = 0; c < cols; ++c) ms += row[c] * row[c];
    ms = ms / cols + eps;
    const double inv_rms = 1.0 / std::sqrt(ms);
    for (int c = 0; c < cols; ++c) row[c] *= inv_rms;
  }
}

// Default eps of Tape::RmsNormRows, which the tape forwards above rely on.
constexpr double kRmsNormEps = 1e-6;

}  // namespace

const Matrix& GnnEncoder::ForwardAgnosticBatched(
    const std::vector<BatchedJobInput>& jobs, BatchedGnnWorkspace* ws,
    std::vector<int>* offsets) const {
  assert(ws != nullptr && offsets != nullptr);
  // Per-job row offsets into the packed matrices: job j owns rows
  // [offsets[j], offsets[j+1]).
  offsets->clear();
  offsets->reserve(jobs.size() + 1);
  int total = 0;
  for (const BatchedJobInput& job : jobs) {
    assert(job.ctx != nullptr && job.features != nullptr);
    assert(job.features->cols() == config_.feature_dim);
    assert(job.features->rows() == job.ctx->a_up.rows());
    offsets->push_back(total);
    total += job.features->rows();
  }
  offsets->push_back(total);

  // Pack all feature rows into one tall matrix.
  ws->x.SetShapeUninit(total, config_.feature_dim);
  std::vector<const GraphContext*> ctxs(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    const Matrix& f = *jobs[j].features;
    const int off = (*offsets)[j];
    for (int r = 0; r < f.rows(); ++r) {
      const double* src = f.row_span(r);
      double* dst = ws->x.row_span(off + r);
      for (int c = 0; c < f.cols(); ++c) dst[c] = src[c];
    }
    ctxs[j] = jobs[j].ctx;
  }
  return ForwardAgnosticBatchedPacked(ctxs, *offsets, ws);
}

const Matrix& GnnEncoder::ForwardAgnosticBatchedPacked(
    const std::vector<const GraphContext*>& ctxs,
    const std::vector<int>& offsets, BatchedGnnWorkspace* ws) const {
  assert(ws != nullptr);
  assert(offsets.size() == ctxs.size() + 1);
  assert(ws->x.rows() == offsets.back());
  assert(ws->x.cols() == config_.feature_dim);
  const int total = ws->x.rows();
  const std::vector<const GraphContext*>& jobs = ctxs;

  // Input projection + activation + norm: one tall matmul for the batch.
  // Row r only ever combines with weight matrices and its own row-local
  // statistics, so each row's arithmetic is identical to the per-job tape
  // forward (same kernels, same chains) regardless of batch size. The fused
  // kernels (MatMulAccumInto, BiasReluInto) are per-dispatch bit-identical
  // to the two-step compositions the tape runs — see their contracts in
  // ml/matrix.h — they just skip the staging traffic, which at batch sizes
  // of hundreds of jobs is the dominant non-flop cost.
  MatMulInto(ws->x, input_proj_.weight()->value, &ws->u);
  BiasReluInto(ws->u, input_proj_.bias()->value, &ws->h);
  RmsNormRowsInPlace(&ws->h, kRmsNormEps);

  for (const MessageLayer& layer : layers_) {
    // Block-diagonal aggregation: each job's small n_j x n_j adjacency hits
    // only its own row segment of the packed hidden state. These are the
    // only per-job matmuls left; every weight multiply below is one tall
    // matmul for the whole batch.
    ws->u.SetShapeUninit(total, config_.hidden_dim);
    for (size_t j = 0; j < jobs.size(); ++j) {
      MatMulSegmentInto(jobs[j]->a_up, ws->h, offsets[j], &ws->u,
                        offsets[j]);
    }
    MatMulInto(ws->u, layer.w_up->value, &ws->msg);  // msg = msg_up
    for (size_t j = 0; j < jobs.size(); ++j) {
      MatMulSegmentInto(jobs[j]->a_dn, ws->h, offsets[j], &ws->u,
                        offsets[j]);
    }
    MatMulAccumInto(ws->u, layer.w_dn->value, &ws->msg);   // += msg_dn
    MatMulAccumInto(ws->h, layer.w_self->value, &ws->msg); // += self
    BiasReluInto(ws->msg, layer.bias->value, &ws->h);
    RmsNormRowsInPlace(&ws->h, kRmsNormEps);
  }
  return ws->h;
}

std::vector<Var> GnnEncoder::Params() const {
  std::vector<Var> ps = input_proj_.Params();
  for (const MessageLayer& layer : layers_) {
    ps.push_back(layer.w_up);
    ps.push_back(layer.w_dn);
    ps.push_back(layer.w_self);
    ps.push_back(layer.bias);
  }
  ps.push_back(w_fuse_);
  ps.push_back(b_fuse_);
  return ps;
}

}  // namespace streamtune::ml
