#include "ml/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace streamtune::ml {

CpuFeatures HostCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

bool ForceScalarRequested() {
  const char* v = std::getenv("STREAMTUNE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace streamtune::ml
