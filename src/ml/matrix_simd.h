// AVX2+FMA raw-pointer kernel cores for the dispatch table in ml/matrix.cc.
//
// This header only declares the cores; matrix_simd.cc is the single
// translation unit built with -mavx2 -mfma (set per-source in
// src/ml/CMakeLists.txt), so no AVX2 instruction can leak into code that
// runs before the runtime dispatch check. On targets where those flags are
// unavailable the same TU compiles stub bodies and CompiledIn() reports
// false, which pins the dispatch to the scalar table.
//
// Numerics: the FMA contractions (and the wider accumulator tiling in the
// NT core) reassociate the per-element addition chains relative to the
// scalar reference kernels, so the SIMD path is tolerance-equal (<= 1e-12
// relative in tests/matrix_simd_test.cc), not bit-equal. Bit-level
// reproducibility is the scalar path's contract (STREAMTUNE_FORCE_SCALAR).
//
// Core signatures match the scalar cores in matrix.cc exactly; see the
// KernelTable comment there for the shape conventions.

#pragma once

#include <cstddef>

namespace streamtune::ml::simd {

/// True when this TU was built with AVX2+FMA code generation enabled.
bool CompiledIn();

/// out(m x n, pre-shaped) = a(m x kk) * b(kk x n); out row-major stride n.
void MatMulCoreAvx2(const double* a, const double* b, double* out, int m,
                    int kk, int n);
/// out(m x n, pre-shaped) += a(m x kk) * b(kk x n): identical per-element
/// product chains to MatMulCoreAvx2, then one add into the existing value —
/// MatMulCoreAvx2 followed by AddCoreAvx2, fused.
void MatMulAccumCoreAvx2(const double* a, const double* b, double* out, int m,
                         int kk, int n);
/// out(m x n, pre-shaped) = a(m x kk) * b(n x kk)^T.
void MatMulNTCoreAvx2(const double* a, const double* b, double* out, int m,
                      int kk, int n);
/// out(m x n, pre-shaped) = a(kk x m)^T * b(kk x n).
void MatMulTNCoreAvx2(const double* a, const double* b, double* out, int m,
                      int kk, int n);
/// acc[i] += src[i] over n doubles.
void AddCoreAvx2(const double* src, double* acc, size_t n);
/// acc[i] += alpha * x[i] over n doubles.
void AxpyCoreAvx2(double alpha, const double* x, double* acc, size_t n);
/// out[i] = max(a[i], 0.0) over n doubles.
void ReluCoreAvx2(const double* a, double* out, size_t n);
/// out(rows x cols, pre-shaped) = relu(a + row broadcast over rows), `row`
/// 1 x cols — AddRowBroadcastInto followed by ReluCoreAvx2, fused.
void BiasReluCoreAvx2(const double* a, const double* row, double* out,
                      int rows, int cols);

}  // namespace streamtune::ml::simd
