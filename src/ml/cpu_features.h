// Host CPU feature detection for the kernel dispatch in ml/matrix.cc.
//
// Detection is split from dispatch so benches can report *why* a path was
// selected: bench_common records the raw avx2/fma bits alongside the final
// dispatch decision (which also folds in whether the SIMD translation unit
// was compiled for this target at all, and the STREAMTUNE_FORCE_SCALAR
// override).

#pragma once

namespace streamtune::ml {

/// ISA extensions the running host supports (all false on non-x86 targets).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// Queries the running CPU once per call; cheap enough to not cache.
CpuFeatures HostCpuFeatures();

/// True when the STREAMTUNE_FORCE_SCALAR environment variable is set to a
/// non-empty value other than "0" — the bit-equality escape hatch that pins
/// the scalar kernel path regardless of host capability.
bool ForceScalarRequested();

}  // namespace streamtune::ml
