#include "ml/matrix_simd.h"

#include <cstdlib>

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace streamtune::ml::simd {

bool CompiledIn() { return true; }

namespace {

// Sums the four lanes of a ymm accumulator into one double.
inline double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// Shared inner tile of the AVX2 matmul cores: accumulates one output row
// block out[c0, c0+width) over the multiplier sequence av(k) * brow(k).
// `AStride` abstracts the a-operand addressing: 1 for a contiguous row
// (MatMul), the output row count for a strided column walk (MatMulTN).
//
// Loads use the unaligned forms throughout: Matrix storage is 32-byte
// aligned, but interior rows (cols % 4 != 0) and the c0 offsets are not,
// and on AVX2 hardware vmovupd on an aligned address costs the same as
// vmovapd.
// kAccum selects the accumulate form (out += a * b): the per-element product
// chain is identical to the overwrite form; only the final store reads the
// existing output value and adds — exactly MatMulInto followed by one
// AddInto, fused.
template <int kWidth, bool kAccum>
inline void FmaRowTile(const double* a, size_t a_stride, const double* b,
                       int kk, int n, double* orow, int c0) {
  static_assert(kWidth % 4 == 0);
  constexpr int kAccums = kWidth / 4;
  __m256d acc[kAccums];
  for (int j = 0; j < kAccums; ++j) acc[j] = _mm256_setzero_pd();
  for (int k = 0; k < kk; ++k) {
    const double av = a[static_cast<size_t>(k) * a_stride];
    if (av == 0.0) continue;  // same skip as the scalar kernels
    const __m256d va = _mm256_set1_pd(av);
    const double* brow = b + static_cast<size_t>(k) * n + c0;
    for (int j = 0; j < kAccums; ++j) {
      acc[j] = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + 4 * j), acc[j]);
    }
  }
  for (int j = 0; j < kAccums; ++j) {
    double* o = orow + c0 + 4 * j;
    if constexpr (kAccum) {
      _mm256_storeu_pd(o, _mm256_add_pd(_mm256_loadu_pd(o), acc[j]));
    } else {
      _mm256_storeu_pd(o, acc[j]);
    }
  }
}

// Scalar cleanup for the < 4 rightmost output columns of a row. Each chain
// builds from +0.0 in a local accumulator; the accumulate form then does one
// add into the existing value (adding terms straight onto it would
// reassociate the chain).
template <bool kAccum>
inline void ScalarTail(const double* a, size_t a_stride, const double* b,
                       int kk, int n, double* orow, int c0) {
  for (int c = c0; c < n; ++c) {
    double acc = 0.0;
    for (int k = 0; k < kk; ++k) {
      const double av = a[static_cast<size_t>(k) * a_stride];
      if (av == 0.0) continue;
      acc += av * b[static_cast<size_t>(k) * n + c];
    }
    if constexpr (kAccum) {
      orow[c] += acc;
    } else {
      orow[c] = acc;
    }
  }
}

// Row-major accumulation shared by MatMul (a_stride = 1 over a's row r) and
// MatMulTN (a_stride = m over a's column r).
template <bool kAccum>
inline void AccumulateAvx2(const double* acol, size_t a_stride,
                           const double* b, double* orow, int kk, int n) {
  int c0 = 0;
  for (; c0 + 16 <= n; c0 += 16) {
    FmaRowTile<16, kAccum>(acol, a_stride, b, kk, n, orow, c0);
  }
  for (; c0 + 4 <= n; c0 += 4) {
    FmaRowTile<4, kAccum>(acol, a_stride, b, kk, n, orow, c0);
  }
  if (c0 < n) ScalarTail<kAccum>(acol, a_stride, b, kk, n, orow, c0);
}

// 4-row x kWidth register-blocked tile: four output rows share every b-row
// load and keep 4 * kWidth/4 independent FMA chains in flight — the
// single-row tile above is load-bound at a fraction of FMA throughput.
// Per output element the accumulation is still one k-ascending chain into
// a per-4-column accumulator, exactly like the single-row tile, so blocked
// and unblocked rows produce bit-identical results on finite inputs (the
// single-row tile's zero-multiplier skip is a bitwise no-op there; packed
// batches may split a job's rows across block boundaries, so row phase
// must not affect arithmetic).
template <int kWidth, bool kAccum>
inline void FmaBlockTile4(const double* a0, const double* a1,
                          const double* a2, const double* a3,
                          size_t a_stride, const double* b, int kk, int n,
                          double* o0, double* o1, double* o2, double* o3,
                          int c0) {
  static_assert(kWidth == 4 || kWidth == 8);
  constexpr int kAccums = kWidth / 4;
  __m256d acc0[kAccums], acc1[kAccums], acc2[kAccums], acc3[kAccums];
  for (int j = 0; j < kAccums; ++j) {
    acc0[j] = _mm256_setzero_pd();
    acc1[j] = _mm256_setzero_pd();
    acc2[j] = _mm256_setzero_pd();
    acc3[j] = _mm256_setzero_pd();
  }
  for (int k = 0; k < kk; ++k) {
    const double* brow = b + static_cast<size_t>(k) * n + c0;
    __m256d vb[kAccums];
    for (int j = 0; j < kAccums; ++j) vb[j] = _mm256_loadu_pd(brow + 4 * j);
    const size_t ka = static_cast<size_t>(k) * a_stride;
    const __m256d va0 = _mm256_set1_pd(a0[ka]);
    const __m256d va1 = _mm256_set1_pd(a1[ka]);
    const __m256d va2 = _mm256_set1_pd(a2[ka]);
    const __m256d va3 = _mm256_set1_pd(a3[ka]);
    for (int j = 0; j < kAccums; ++j) {
      acc0[j] = _mm256_fmadd_pd(va0, vb[j], acc0[j]);
      acc1[j] = _mm256_fmadd_pd(va1, vb[j], acc1[j]);
      acc2[j] = _mm256_fmadd_pd(va2, vb[j], acc2[j]);
      acc3[j] = _mm256_fmadd_pd(va3, vb[j], acc3[j]);
    }
  }
  for (int j = 0; j < kAccums; ++j) {
    double* p0 = o0 + c0 + 4 * j;
    double* p1 = o1 + c0 + 4 * j;
    double* p2 = o2 + c0 + 4 * j;
    double* p3 = o3 + c0 + 4 * j;
    if constexpr (kAccum) {
      _mm256_storeu_pd(p0, _mm256_add_pd(_mm256_loadu_pd(p0), acc0[j]));
      _mm256_storeu_pd(p1, _mm256_add_pd(_mm256_loadu_pd(p1), acc1[j]));
      _mm256_storeu_pd(p2, _mm256_add_pd(_mm256_loadu_pd(p2), acc2[j]));
      _mm256_storeu_pd(p3, _mm256_add_pd(_mm256_loadu_pd(p3), acc3[j]));
    } else {
      _mm256_storeu_pd(p0, acc0[j]);
      _mm256_storeu_pd(p1, acc1[j]);
      _mm256_storeu_pd(p2, acc2[j]);
      _mm256_storeu_pd(p3, acc3[j]);
    }
  }
}

// Four output rows at once; a0..a3 are the four multiplier sequences
// (consecutive a rows for MatMul, consecutive a columns for MatMulTN).
template <bool kAccum>
inline void AccumulateBlock4Avx2(const double* a0, const double* a1,
                                 const double* a2, const double* a3,
                                 size_t a_stride, const double* b, double* o0,
                                 double* o1, double* o2, double* o3, int kk,
                                 int n) {
  int c0 = 0;
  for (; c0 + 8 <= n; c0 += 8) {
    FmaBlockTile4<8, kAccum>(a0, a1, a2, a3, a_stride, b, kk, n, o0, o1, o2,
                             o3, c0);
  }
  for (; c0 + 4 <= n; c0 += 4) {
    FmaBlockTile4<4, kAccum>(a0, a1, a2, a3, a_stride, b, kk, n, o0, o1, o2,
                             o3, c0);
  }
  if (c0 < n) {
    ScalarTail<kAccum>(a0, a_stride, b, kk, n, o0, c0);
    ScalarTail<kAccum>(a1, a_stride, b, kk, n, o1, c0);
    ScalarTail<kAccum>(a2, a_stride, b, kk, n, o2, c0);
    ScalarTail<kAccum>(a3, a_stride, b, kk, n, o3, c0);
  }
}

template <bool kAccum>
void MatMulCoreAvx2Impl(const double* a, const double* b, double* out, int m,
                        int kk, int n) {
  int r = 0;
  for (; r + 4 <= m; r += 4) {
    const double* ar = a + static_cast<size_t>(r) * kk;
    double* orow = out + static_cast<size_t>(r) * n;
    AccumulateBlock4Avx2<kAccum>(ar, ar + kk, ar + 2 * kk, ar + 3 * kk, 1, b,
                                 orow, orow + n, orow + 2 * n, orow + 3 * n,
                                 kk, n);
  }
  for (; r < m; ++r) {
    AccumulateAvx2<kAccum>(a + static_cast<size_t>(r) * kk, 1, b,
                           out + static_cast<size_t>(r) * n, kk, n);
  }
}

}  // namespace

void MatMulCoreAvx2(const double* a, const double* b, double* out, int m,
                    int kk, int n) {
  MatMulCoreAvx2Impl<false>(a, b, out, m, kk, n);
}

void MatMulAccumCoreAvx2(const double* a, const double* b, double* out, int m,
                         int kk, int n) {
  MatMulCoreAvx2Impl<true>(a, b, out, m, kk, n);
}

void MatMulTNCoreAvx2(const double* a, const double* b, double* out, int m,
                      int kk, int n) {
  // a is kk x m; column r of a is the multiplier sequence, stride m.
  int r = 0;
  for (; r + 4 <= m; r += 4) {
    double* orow = out + static_cast<size_t>(r) * n;
    AccumulateBlock4Avx2<false>(a + r, a + r + 1, a + r + 2, a + r + 3,
                                static_cast<size_t>(m), b, orow, orow + n,
                                orow + 2 * n, orow + 3 * n, kk, n);
  }
  for (; r < m; ++r) {
    AccumulateAvx2<false>(a + r, static_cast<size_t>(m), b,
                          out + static_cast<size_t>(r) * n, kk, n);
  }
}

void BiasReluCoreAvx2(const double* a, const double* row, double* out,
                      int rows, int cols) {
  // One pass of relu(a + row-broadcast): the vector adds and maxes are the
  // same lane operations AddRowBroadcastInto + ReluCoreAvx2 perform (maxpd
  // operand order matches ReluCoreAvx2), so the fusion is bit-neutral.
  const __m256d zero = _mm256_setzero_pd();
  for (int r = 0; r < rows; ++r) {
    const double* arow = a + static_cast<size_t>(r) * cols;
    double* orow = out + static_cast<size_t>(r) * cols;
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m256d s = _mm256_add_pd(_mm256_loadu_pd(arow + c),
                                      _mm256_loadu_pd(row + c));
      _mm256_storeu_pd(orow + c, _mm256_max_pd(zero, s));
    }
    for (; c < cols; ++c) {
      const double s = arow[c] + row[c];
      orow[c] = s > 0.0 ? s : 0.0;
    }
  }
}

void MatMulNTCoreAvx2(const double* a, const double* b, double* out, int m,
                      int kk, int n) {
  // out(r, c) = dot(a row r, b row c), both contiguous over kk. Two
  // independent 4-lane accumulators hide the FMA latency of a single chain.
  for (int r = 0; r < m; ++r) {
    const double* arow = a + static_cast<size_t>(r) * kk;
    double* orow = out + static_cast<size_t>(r) * n;
    for (int c = 0; c < n; ++c) {
      const double* brow = b + static_cast<size_t>(c) * kk;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      int k = 0;
      for (; k + 8 <= kk; k += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k),
                               _mm256_loadu_pd(brow + k), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k + 4),
                               _mm256_loadu_pd(brow + k + 4), acc1);
      }
      if (k + 4 <= kk) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + k),
                               _mm256_loadu_pd(brow + k), acc0);
        k += 4;
      }
      double dot = HorizontalSum(_mm256_add_pd(acc0, acc1));
      for (; k < kk; ++k) dot += arow[k] * brow[k];
      orow[c] = dot;
    }
  }
}

void AddCoreAvx2(const double* src, double* acc, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                               _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) acc[i] += src[i];
}

void AxpyCoreAvx2(double alpha, const double* x, double* acc, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        acc + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                                 _mm256_loadu_pd(acc + i)));
  }
  for (; i < n; ++i) acc[i] += alpha * x[i];
}

void ReluCoreAvx2(const double* a, double* out, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_max_pd(zero, _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) out[i] = a[i] > 0.0 ? a[i] : 0.0;
}

}  // namespace streamtune::ml::simd

#else  // !(__AVX2__ && __FMA__)

// Stub bodies for targets (or toolchains) without AVX2+FMA codegen. The
// dispatch in matrix.cc never installs these — CompiledIn() returning false
// pins the scalar table — so reaching one is a programming error.

namespace streamtune::ml::simd {

bool CompiledIn() { return false; }

void MatMulCoreAvx2([[maybe_unused]] const double* a,
                    [[maybe_unused]] const double* b,
                    [[maybe_unused]] double* out, [[maybe_unused]] int m,
                    [[maybe_unused]] int kk, [[maybe_unused]] int n) {
  std::abort();
}

void MatMulAccumCoreAvx2([[maybe_unused]] const double* a,
                         [[maybe_unused]] const double* b,
                         [[maybe_unused]] double* out, [[maybe_unused]] int m,
                         [[maybe_unused]] int kk, [[maybe_unused]] int n) {
  std::abort();
}

void MatMulNTCoreAvx2([[maybe_unused]] const double* a,
                      [[maybe_unused]] const double* b,
                      [[maybe_unused]] double* out, [[maybe_unused]] int m,
                      [[maybe_unused]] int kk, [[maybe_unused]] int n) {
  std::abort();
}

void BiasReluCoreAvx2([[maybe_unused]] const double* a,
                      [[maybe_unused]] const double* row,
                      [[maybe_unused]] double* out, [[maybe_unused]] int rows,
                      [[maybe_unused]] int cols) {
  std::abort();
}

void MatMulTNCoreAvx2([[maybe_unused]] const double* a,
                      [[maybe_unused]] const double* b,
                      [[maybe_unused]] double* out, [[maybe_unused]] int m,
                      [[maybe_unused]] int kk, [[maybe_unused]] int n) {
  std::abort();
}

void AddCoreAvx2([[maybe_unused]] const double* src,
                 [[maybe_unused]] double* acc, [[maybe_unused]] size_t n) {
  std::abort();
}

void AxpyCoreAvx2([[maybe_unused]] double alpha,
                  [[maybe_unused]] const double* x,
                  [[maybe_unused]] double* acc, [[maybe_unused]] size_t n) {
  std::abort();
}

void ReluCoreAvx2([[maybe_unused]] const double* a,
                  [[maybe_unused]] double* out, [[maybe_unused]] size_t n) {
  std::abort();
}

}  // namespace streamtune::ml::simd

#endif  // __AVX2__ && __FMA__
