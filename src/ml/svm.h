// Monotonic soft-margin SVM (Sec. IV-B, model choice (a)).
//
// The decision function is f(x) = w_e^T phi(h) + w_p * p + b (Eq. 4) with the
// kernel trick realized through random Fourier features (an explicit
// finite-dimensional approximation of the RBF feature map), trained with a
// Pegasos-style projected subgradient method on the hinge objective (Eq. 5).
// The monotonic constraint w_p <= 0 is enforced by projection after every
// update, so the bottleneck score is non-increasing in the parallelism by
// construction.

#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/bottleneck_model.h"
#include "ml/matrix.h"

namespace streamtune::ml {

/// Hyperparameters for MonotonicSvm.
struct SvmConfig {
  /// Number of random Fourier features approximating the RBF kernel.
  int rff_dim = 96;
  /// RBF bandwidth sigma in k(x,y) = exp(-||x-y||^2 / (2 sigma^2)).
  /// Upstream embeddings are RMS-normalized rows (L2 norm ~ sqrt(dim)), so
  /// typical pairwise distances are O(1); the bandwidth is matched to that.
  double rbf_sigma = 2.0;
  /// Inverse regularization strength (paper's C); lambda = 1 / (C * n).
  double c = 30.0;
  int epochs = 100;
  /// Steepness of the sigmoid mapping margins to probabilities.
  double prob_scale = 2.0;
  /// Parallelism degrees are scaled by 1/parallelism_scale before training.
  double parallelism_scale = 100.0;
  uint64_t seed = 11;
};

/// RBF-kernel SVM with the w_p <= 0 monotonic constraint.
class MonotonicSvm : public BottleneckModel {
 public:
  explicit MonotonicSvm(int embedding_dim, SvmConfig config = {});

  Status Fit(const std::vector<LabeledSample>& data) override;
  double PredictProbability(const std::vector<double>& h,
                            int parallelism) const override;
  bool is_monotonic() const override { return true; }
  std::string name() const override { return "SVM"; }

  /// Raw decision value f(x); >= 0 classifies as bottleneck.
  double DecisionValue(const std::vector<double>& h, int parallelism) const;

  /// The learned parallelism weight (always <= 0 after Fit).
  double parallelism_weight() const { return w_p_; }

 private:
  /// Random Fourier feature map z(h), dimension rff_dim.
  std::vector<double> FeatureMap(const std::vector<double>& h) const;

  int embedding_dim_;
  SvmConfig config_;
  Matrix omega_;                  // rff_dim x embedding_dim projection
  std::vector<double> phase_;     // rff_dim phases
  std::vector<double> w_e_;       // weights on z(h)
  double w_p_ = 0.0;              // weight on parallelism (constrained <= 0)
  double b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace streamtune::ml
