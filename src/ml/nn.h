// Neural-network building blocks on top of the tape autograd: linear
// layers, multilayer perceptrons, and the Adam optimizer.

#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/param.h"
#include "ml/tape.h"

namespace streamtune::ml {

/// Activation functions available to Mlp hidden layers.
enum class Activation { kRelu, kTanh, kSigmoid, kNone };

/// Records the chosen activation onto the tape.
Tape::Ref Activate(Tape* tape, Tape::Ref x, Activation act);

/// A fully connected layer y = x W + b.
class LinearLayer {
 public:
  LinearLayer() = default;
  LinearLayer(int in_dim, int out_dim, Rng* rng);

  /// Records y = x W + b onto `tape`.
  Tape::Ref Forward(Tape* tape, Tape::Ref x) const;
  std::vector<Var> Params() const { return {W_, b_}; }

  const Var& weight() const { return W_; }
  const Var& bias() const { return b_; }

 private:
  Var W_, b_;
};

/// A small MLP: Linear -> act -> ... -> Linear (no activation on output).
class Mlp {
 public:
  Mlp() = default;
  /// `dims` = {in, hidden..., out}; needs at least {in, out}.
  Mlp(const std::vector<int>& dims, Activation hidden_act, Rng* rng);

  /// Records the full Linear -> act -> ... -> Linear stack onto `tape`.
  Tape::Ref Forward(Tape* tape, Tape::Ref x) const;
  std::vector<Var> Params() const;
  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  std::vector<LinearLayer> layers_;
  Activation hidden_act_ = Activation::kRelu;
  int in_dim_ = 0, out_dim_ = 0;
};

/// Adam optimizer over a fixed parameter list.
class Adam {
 public:
  explicit Adam(std::vector<Var> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);

  /// Applies one update using each parameter's accumulated gradient,
  /// then clears the gradients.
  void Step();
  void ZeroGrad();
  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  std::vector<Var> params_;
  std::vector<Matrix> m_, v_;
  double lr_, beta1_, beta2_, eps_;
  int t_ = 0;
};

}  // namespace streamtune::ml
