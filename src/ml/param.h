// Trainable-parameter handle shared by the tape autograd engine (ml/tape.h)
// and the optimizers (ml/nn.h).
//
// Historically this was the node type of a full Var-based autograd engine;
// the tape engine replaced that graph walk, and what remains is exactly the
// state a parameter needs: its value, its accumulated gradient, and the
// requires_grad flag the tape consults when deciding which backward paths to
// take. The `Var` alias survives because every model (`Mlp::Params()`,
// `GnnEncoder::Params()`, serialization) traffics in shared parameter
// handles.

#pragma once

#include <memory>
#include <utility>

#include "ml/matrix.h"

namespace streamtune::ml {

class Node;
/// Shared handle to a trainable parameter.
using Var = std::shared_ptr<Node>;

/// One trainable parameter: a value and, after Tape::Backward, its gradient.
class Node {
 public:
  explicit Node(Matrix v, bool requires_grad = false)
      : value(std::move(v)), requires_grad(requires_grad) {}

  Matrix value;
  /// d(loss)/d(value); empty until a backward pass reaches this parameter.
  Matrix grad;
  bool requires_grad;

  /// Adds `g` into this parameter's gradient. The first contribution copies
  /// (reusing the buffer's retained capacity), later ones accumulate — the
  /// same per-element addition order every engine in this repo has used, so
  /// gradients are reproducible bit-for-bit.
  void AccumGrad(const Matrix& g) {
    if (!has_grad()) {
      grad = g;
    } else {
      AddInto(g, &grad);
    }
  }
  bool has_grad() const { return grad.rows() > 0; }

  /// Drops the gradient, retaining the buffer's capacity.
  void ZeroGrad() { grad.Clear(); }
};

/// Wraps a trainable parameter.
inline Var Param(Matrix v) {
  return std::make_shared<Node>(std::move(v), /*requires_grad=*/true);
}

}  // namespace streamtune::ml
