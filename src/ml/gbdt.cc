#include "ml/gbdt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/math_util.h"

namespace streamtune::ml {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MonotonicGbdt::MonotonicGbdt(int embedding_dim, GbdtConfig config)
    : embedding_dim_(embedding_dim), config_(config) {
  assert(embedding_dim > 0);
}

std::vector<double> MonotonicGbdt::MakeFeatures(const std::vector<double>& h,
                                                int parallelism) const {
  std::vector<double> x = h;
  x.push_back(parallelism / config_.parallelism_scale);
  return x;
}

double MonotonicGbdt::Tree::Predict(const std::vector<double>& x) const {
  int node = 0;
  while (nodes[node].feature >= 0) {
    node = x[nodes[node].feature] < nodes[node].threshold ? nodes[node].left
                                                          : nodes[node].right;
  }
  return nodes[node].value;
}

int MonotonicGbdt::BuildNode(Tree* tree,
                             const std::vector<std::vector<double>>& x,
                             const std::vector<double>& grad,
                             const std::vector<double>& hess,
                             const std::vector<int>& indices, int depth,
                             double lower, double upper) {
  double g_total = 0, h_total = 0;
  for (int i : indices) {
    g_total += grad[i];
    h_total += hess[i];
  }
  const double lam = config_.reg_lambda;
  auto leaf_value = [&](double g, double h, double lo, double hi) {
    return Clamp(-g / (h + lam), lo, hi);
  };

  int node_id = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[node_id].value =
      config_.learning_rate * leaf_value(g_total, h_total, lower, upper);

  if (depth >= config_.max_depth ||
      static_cast<int>(indices.size()) < 2 * config_.min_samples_leaf) {
    return node_id;
  }

  const int num_features = static_cast<int>(x[0].size());
  const int p_feature = num_features - 1;  // constrained feature

  double parent_score = g_total * g_total / (h_total + lam);
  double best_gain = config_.min_split_gain;
  int best_feature = -1;
  double best_threshold = 0;
  double best_wl = 0, best_wr = 0;

  std::vector<int> sorted = indices;
  for (int f = 0; f < num_features; ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](int a, int b) { return x[a][f] < x[b][f]; });
    double gl = 0, hl = 0;
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      int i = sorted[k];
      gl += grad[i];
      hl += hess[i];
      // Only split between distinct feature values.
      if (x[sorted[k]][f] >= x[sorted[k + 1]][f]) continue;
      double gr = g_total - gl, hr = h_total - hl;
      if (hl < config_.min_child_hessian || hr < config_.min_child_hessian) {
        continue;
      }
      if (static_cast<int>(k + 1) < config_.min_samples_leaf ||
          static_cast<int>(sorted.size() - k - 1) < config_.min_samples_leaf) {
        continue;
      }
      double gain = 0.5 * (gl * gl / (hl + lam) + gr * gr / (hr + lam) -
                           parent_score);
      if (config_.enforce_monotonic && f == p_feature) {
        // Monotone DECREASING in p: left child (smaller p) must not predict
        // a lower value than the right child. Violations get gain = -inf
        // (i.e. are skipped).
        double wl = -gl / (hl + lam);
        double wr = -gr / (hr + lam);
        if (wl < wr) continue;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (x[sorted[k]][f] + x[sorted[k + 1]][f]);
        best_wl = Clamp(-gl / (hl + lam), lower, upper);
        best_wr = Clamp(-gr / (hr + lam), lower, upper);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no admissible split

  std::vector<int> left_idx, right_idx;
  for (int i : indices) {
    (x[i][best_feature] < best_threshold ? left_idx : right_idx).push_back(i);
  }
  assert(!left_idx.empty() && !right_idx.empty());

  double l_lower = lower, l_upper = upper;
  double r_lower = lower, r_upper = upper;
  if (config_.enforce_monotonic && best_feature == p_feature) {
    // Propagate value bounds: left (small p) stays >= mid, right <= mid.
    double mid = 0.5 * (best_wl + best_wr);
    l_lower = std::max(l_lower, mid);
    r_upper = std::min(r_upper, mid);
  }

  int left = BuildNode(tree, x, grad, hess, left_idx, depth + 1, l_lower,
                       l_upper);
  int right = BuildNode(tree, x, grad, hess, right_idx, depth + 1, r_lower,
                        r_upper);
  tree->nodes[node_id].feature = best_feature;
  tree->nodes[node_id].threshold = best_threshold;
  tree->nodes[node_id].left = left;
  tree->nodes[node_id].right = right;
  return node_id;
}

Status MonotonicGbdt::Fit(const std::vector<LabeledSample>& data) {
  if (data.empty()) return Status::InvalidArgument("empty training set");
  for (const LabeledSample& s : data) {
    if (static_cast<int>(s.embedding.size()) != embedding_dim_) {
      return Status::InvalidArgument("embedding dimension mismatch");
    }
  }
  const size_t n = data.size();
  std::vector<std::vector<double>> x(n);
  std::vector<double> y(n);
  size_t positives = 0;
  for (size_t i = 0; i < n; ++i) {
    x[i] = MakeFeatures(data[i].embedding, data[i].parallelism);
    y[i] = data[i].label == 1 ? 1.0 : 0.0;
    if (data[i].label == 1) ++positives;
  }
  double w_pos = positives == 0 ? 1.0 : 0.5 * n / positives;
  double w_neg = positives == n ? 1.0 : 0.5 * n / (n - positives);

  double prior = Clamp(static_cast<double>(positives) / n, 0.02, 0.98);
  base_score_ = std::log(prior / (1.0 - prior));

  trees_.clear();
  std::vector<double> margin(n, base_score_);
  std::vector<double> grad(n), hess(n);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);

  for (int m = 0; m < config_.num_trees; ++m) {
    for (size_t i = 0; i < n; ++i) {
      double s = Sigmoid(margin[i]);
      double w = y[i] > 0.5 ? w_pos : w_neg;
      grad[i] = w * (s - y[i]);
      hess[i] = std::max(w * s * (1.0 - s), 1e-9);
    }
    Tree tree;
    BuildNode(&tree, x, grad, hess, all, 0, -kInf, kInf);
    for (size_t i = 0; i < n; ++i) margin[i] += tree.Predict(x[i]);
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  return Status::OK();
}

double MonotonicGbdt::PredictLogit(const std::vector<double>& h,
                                   int parallelism) const {
  std::vector<double> x = MakeFeatures(h, parallelism);
  double s = base_score_;
  for (const Tree& t : trees_) s += t.Predict(x);
  return s;
}

double MonotonicGbdt::PredictProbability(const std::vector<double>& h,
                                         int parallelism) const {
  return Sigmoid(PredictLogit(h, parallelism));
}

}  // namespace streamtune::ml
