// Graph similarity search and similarity centers (Sec. IV-C, Defs. 1-2).
//
// Sim(q, tau) = all DAGs of a collection whose GED to the query is <= tau.
// The similarity center of a cluster is the DAG appearing most often across
// the similarity-search results of every member — the paper's cheap
// approximation of the median graph, used as the k-means centroid.

#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "dataflow/job_graph.h"
#include "graph/ged.h"

namespace streamtune::graph {

class GedCache;

/// How pairwise similarity checks are executed.
enum class SearchMethod {
  /// Compute the full exact GED with a zero heuristic, then compare to tau
  /// (the "direct GED computation" baseline of Fig. 11b).
  kDirectGed,
  /// Threshold-pruned best-first search with the label-set lower bound
  /// (the AStar+-LSa-style index-free approach).
  kAStarLsa,
};

/// Returns the indices of all graphs in `dataset` whose GED to `query` is at
/// most `tau` (Def. 1). `cache` optionally memoizes the pairwise checks and
/// `pool` runs them data-parallel; both leave the result unchanged.
std::vector<int> SimilaritySearch(
    const std::vector<JobGraph>& dataset, const JobGraph& query, double tau,
    SearchMethod method = SearchMethod::kAStarLsa, GedCache* cache = nullptr,
    ThreadPool* pool = nullptr);

/// Appearance counts C_g for every graph of the cluster: how many members'
/// similarity searches include it (Def. 2). counts[i] corresponds to
/// cluster[i]. The all-pairs sweep parallelizes over rows when `pool` is
/// given.
std::vector<int> AppearanceCounts(const std::vector<JobGraph>& cluster,
                                  double tau, SearchMethod method,
                                  GedCache* cache = nullptr,
                                  ThreadPool* pool = nullptr);

/// Index of the similarity center (Eq. 7): argmax appearance count, ties
/// broken by the lowest index. Returns -1 for an empty cluster.
int SimilarityCenter(const std::vector<JobGraph>& cluster, double tau,
                     SearchMethod method = SearchMethod::kAStarLsa,
                     GedCache* cache = nullptr, ThreadPool* pool = nullptr);

}  // namespace streamtune::graph
