// K-means clustering of dataflow DAGs under Graph Edit Distance (Sec. IV-C).
//
// Standard k-means structure — init / assign / update — with two
// graph-specific twists from the paper:
//   - centroids are member graphs (there is no "average" graph); the update
//     step picks each cluster's similarity center (Def. 2);
//   - assignment distances are GEDs, computed with the bounded best-first
//     search and pruned against the best center found so far.
// The elbow method selects k.
//
// Concurrency: the assignment step, farthest-point seeding, similarity-
// center sweeps and the per-k elbow runs are data-parallel and execute on a
// ThreadPool sized by KMeansOptions::num_threads. Pairwise distances are
// memoized in a GedCache (shared across every elbow run). Both are designed
// so results are bit-identical to the serial, uncached path — see DESIGN.md
// "Concurrency model".

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "dataflow/job_graph.h"
#include "graph/ged_cache.h"
#include "graph/similarity.h"

namespace streamtune::graph {

/// Clustering options.
struct KMeansOptions {
  int k = 3;
  int max_iterations = 10;
  /// GED threshold tau for similarity-center computation (paper uses 5).
  double center_tau = 5.0;
  SearchMethod method = SearchMethod::kAStarLsa;
  uint64_t seed = 2024;
  /// Worker threads for the data-parallel steps. 0 = hardware_concurrency,
  /// 1 = the old serial behaviour. Results are identical for any value.
  int num_threads = 0;
  /// Memoize pairwise GEDs (repeated pairs across iterations / elbow runs
  /// are answered in O(1)). Off reproduces the pre-cache pipeline exactly.
  bool use_cache = true;
  /// Optional externally owned memo table (e.g. shared across elbow runs);
  /// when null and use_cache is set, each ClusterDags run uses its own.
  GedCache* cache = nullptr;
};

/// Result of one clustering run.
struct KMeansResult {
  /// Cluster id per input graph.
  std::vector<int> assignment;
  /// Index (into the input dataset) of each cluster's center graph.
  std::vector<int> center_indices;
  /// Sum over graphs of GED to their assigned center (the k-means inertia).
  double within_cluster_distance = 0;
  int iterations = 0;
};

/// Runs GED k-means over `dataset`. Requires 1 <= k <= dataset.size().
Result<KMeansResult> ClusterDags(const std::vector<JobGraph>& dataset,
                                 const KMeansOptions& options);

/// Distance from `g` to each of the given center graphs; the search for
/// center i is pruned at the best distance among centers [0, i). Distances
/// above the final minimum may be upper bounds (or cached exact values);
/// the minimum itself is always exact. `cache` optionally memoizes.
std::vector<double> DistancesToCenters(const JobGraph& g,
                                       const std::vector<JobGraph>& centers,
                                       GedCache* cache = nullptr);

/// Index of the nearest center (minimum GED) for `g`.
int NearestCenter(const JobGraph& g, const std::vector<JobGraph>& centers,
                  GedCache* cache = nullptr);

/// Elbow-method selection of k: runs ClusterDags for each k in
/// [k_min, k_max] (in parallel, sharing one GedCache) and returns the k
/// with the largest curvature (second difference) of the inertia curve.
/// Returns k_min immediately when the range has fewer than 3 points, since
/// curvature is undefined there.
Result<int> SelectKByElbow(const std::vector<JobGraph>& dataset, int k_min,
                           int k_max, const KMeansOptions& base_options);

}  // namespace streamtune::graph
