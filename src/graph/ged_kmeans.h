// K-means clustering of dataflow DAGs under Graph Edit Distance (Sec. IV-C).
//
// Standard k-means structure — init / assign / update — with two
// graph-specific twists from the paper:
//   - centroids are member graphs (there is no "average" graph); the update
//     step picks each cluster's similarity center (Def. 2);
//   - assignment distances are GEDs, computed with the bounded best-first
//     search and pruned against the best center found so far.
// The elbow method selects k.

#pragma once

#include <vector>

#include "common/rng.h"
#include "dataflow/job_graph.h"
#include "graph/similarity.h"

namespace streamtune::graph {

/// Clustering options.
struct KMeansOptions {
  int k = 3;
  int max_iterations = 10;
  /// GED threshold tau for similarity-center computation (paper uses 5).
  double center_tau = 5.0;
  SearchMethod method = SearchMethod::kAStarLsa;
  uint64_t seed = 2024;
};

/// Result of one clustering run.
struct KMeansResult {
  /// Cluster id per input graph.
  std::vector<int> assignment;
  /// Index (into the input dataset) of each cluster's center graph.
  std::vector<int> center_indices;
  /// Sum over graphs of GED to their assigned center (the k-means inertia).
  double within_cluster_distance = 0;
  int iterations = 0;
};

/// Runs GED k-means over `dataset`. Requires 1 <= k <= dataset.size().
Result<KMeansResult> ClusterDags(const std::vector<JobGraph>& dataset,
                                 const KMeansOptions& options);

/// Distance from `g` to each of the given center graphs; the search for
/// center i is pruned at the best distance among centers [0, i).
std::vector<double> DistancesToCenters(const JobGraph& g,
                                       const std::vector<JobGraph>& centers);

/// Index of the nearest center (minimum GED) for `g`.
int NearestCenter(const JobGraph& g, const std::vector<JobGraph>& centers);

/// Elbow-method selection of k: runs ClusterDags for each k in
/// [k_min, k_max] and returns the k with the largest curvature (second
/// difference) of the inertia curve.
Result<int> SelectKByElbow(const std::vector<JobGraph>& dataset, int k_min,
                           int k_max, const KMeansOptions& base_options);

}  // namespace streamtune::graph
