#include "graph/ged_kmeans.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace streamtune::graph {

namespace {

GedResult ComputeMaybeCached(const JobGraph& a, const JobGraph& b,
                             const GedOptions& opts, GedCache* cache) {
  return cache ? cache->Compute(a, b, opts) : ComputeGed(a, b, opts);
}

}  // namespace

std::vector<double> DistancesToCenters(const JobGraph& g,
                                       const std::vector<JobGraph>& centers,
                                       GedCache* cache) {
  std::vector<double> dist(centers.size(),
                           std::numeric_limits<double>::infinity());
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < centers.size(); ++i) {
    GedOptions opts;
    // Branch-and-bound across centers: once a center at distance `best` is
    // known, a deeper search than that is pointless for the assignment.
    if (best < std::numeric_limits<double>::infinity()) {
      opts.threshold = best;
    }
    GedResult r = ComputeMaybeCached(g, centers[i], opts, cache);
    dist[i] = r.distance;
    best = std::min(best, r.distance);
  }
  return dist;
}

int NearestCenter(const JobGraph& g, const std::vector<JobGraph>& centers,
                  GedCache* cache) {
  std::vector<double> dist = DistancesToCenters(g, centers, cache);
  return static_cast<int>(
      std::min_element(dist.begin(), dist.end()) - dist.begin());
}

Result<KMeansResult> ClusterDags(const std::vector<JobGraph>& dataset,
                                 const KMeansOptions& options) {
  const int n = static_cast<int>(dataset.size());
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (options.k < 1 || options.k > n) {
    return Status::InvalidArgument("k must be in [1, dataset size]");
  }

  GedCache local_cache;
  GedCache* cache =
      options.cache ? options.cache : (options.use_cache ? &local_cache : nullptr);
  ThreadPool pool(options.num_threads);

  Rng rng(options.seed);
  // Init: farthest-point seeding (k-means++-style). A random first center,
  // then each next center is the graph farthest from all chosen centers —
  // structurally distinct families reliably get their own seed. The
  // distance refresh is per-graph parallel; the argmax reduction stays
  // serial in index order, so tie-breaking matches the serial path.
  std::vector<int> center_idx;
  center_idx.push_back(rng.UniformInt(0, n - 1));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (static_cast<int>(center_idx.size()) < options.k) {
    int last = center_idx.back();
    pool.ParallelFor(0, n, [&](int64_t i) {
      GedOptions opts;
      opts.threshold = min_dist[i];  // prune beyond the current minimum
      GedResult r =
          ComputeMaybeCached(dataset[i], dataset[last], opts, cache);
      min_dist[i] = std::min(min_dist[i], r.distance);
    });
    int farthest = 0;
    double best = -1;
    for (int i = 0; i < n; ++i) {
      if (min_dist[i] > best) {
        best = min_dist[i];
        farthest = i;
      }
    }
    center_idx.push_back(farthest);
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  std::vector<int> best_center(n, 0);
  std::vector<double> best_dist(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: per-graph parallel, each graph's center scan is
    // independent; the inertia sum is reduced serially in index order so it
    // is bit-identical run-to-run.
    std::vector<JobGraph> centers;
    centers.reserve(options.k);
    for (int c : center_idx) centers.push_back(dataset[c]);
    pool.ParallelFor(0, n, [&](int64_t i) {
      std::vector<double> dist = DistancesToCenters(dataset[i], centers, cache);
      int best = static_cast<int>(
          std::min_element(dist.begin(), dist.end()) - dist.begin());
      best_center[i] = best;
      best_dist[i] = dist[best];
    });
    double inertia = 0;
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      inertia += best_dist[i];
      if (result.assignment[i] != best_center[i]) {
        result.assignment[i] = best_center[i];
        changed = true;
      }
    }
    result.within_cluster_distance = inertia;
    if (!changed && iter > 0) break;

    // Update step: similarity center per cluster (all-pairs sweep runs on
    // the pool).
    std::vector<int> new_centers = center_idx;
    for (int c = 0; c < options.k; ++c) {
      std::vector<JobGraph> members;
      std::vector<int> member_ids;
      for (int i = 0; i < n; ++i) {
        if (result.assignment[i] == c) {
          members.push_back(dataset[i]);
          member_ids.push_back(i);
        }
      }
      if (members.empty()) continue;  // keep the old center for empty cells
      int sc = SimilarityCenter(members, options.center_tau, options.method,
                                cache, &pool);
      new_centers[c] = member_ids[sc];
    }
    if (new_centers == center_idx) break;
    center_idx = new_centers;
  }

  result.center_indices = center_idx;
  return result;
}

Result<int> SelectKByElbow(const std::vector<JobGraph>& dataset, int k_min,
                           int k_max, const KMeansOptions& base_options) {
  if (k_min < 1 || k_max < k_min ||
      k_max > static_cast<int>(dataset.size())) {
    return Status::InvalidArgument("invalid k range");
  }
  // Curvature needs >= 3 inertia points; with fewer the answer is k_min
  // regardless, so skip the clusterings entirely.
  if (k_max - k_min < 2) return k_min;

  GedCache local_cache;
  GedCache* shared = base_options.cache
                         ? base_options.cache
                         : (base_options.use_cache ? &local_cache : nullptr);
  const int count = k_max - k_min + 1;
  std::vector<double> inertia(count, 0.0);
  std::vector<Status> statuses(count, Status::OK());

  // The per-k runs are independent given a shared memo table; run them on
  // the pool (each inner ClusterDags degrades to serial on a worker).
  ThreadPool pool(base_options.num_threads);
  pool.ParallelFor(0, count, [&](int64_t i) {
    KMeansOptions opts = base_options;
    opts.k = k_min + static_cast<int>(i);
    opts.cache = shared;
    auto res = ClusterDags(dataset, opts);
    if (!res.ok()) {
      statuses[i] = res.status();
      return;
    }
    inertia[i] = res->within_cluster_distance;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  // Elbow = maximum positive curvature of the inertia curve.
  int best_k = k_min + 1;
  double best_curv = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i + 1 < inertia.size(); ++i) {
    double curv = inertia[i - 1] - 2 * inertia[i] + inertia[i + 1];
    if (curv > best_curv) {
      best_curv = curv;
      best_k = k_min + static_cast<int>(i);
    }
  }
  return best_k;
}

}  // namespace streamtune::graph
