#include "graph/ged_kmeans.h"

#include <algorithm>
#include <limits>

#include "common/parallel_reduce.h"
#include "common/status.h"
#include "graph/ged_policy.h"

namespace streamtune::graph {

namespace {

GedResult ComputeMaybeCached(const JobGraph& a, const JobGraph& b,
                             const GedOptions& opts, GedCache* cache) {
  if (cache != nullptr) return cache->Compute(a, b, opts);
  // Uncached comparisons take the same per-pair policy route the cache's
  // miss path takes, so cached and uncached runs do identical searches.
  return opts.use_lower_bound ? PolicyComputeGed(a, b, opts)
                              : ComputeGed(a, b, opts);
}

}  // namespace

std::vector<double> DistancesToCenters(const JobGraph& g,
                                       const std::vector<JobGraph>& centers,
                                       GedCache* cache) {
  std::vector<double> dist(centers.size(),
                           std::numeric_limits<double>::infinity());
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < centers.size(); ++i) {
    GedOptions opts;
    // Branch-and-bound across centers: once a center at distance `best` is
    // known, a deeper search than that is pointless for the assignment.
    if (best < std::numeric_limits<double>::infinity()) {
      opts.threshold = best;
    }
    GedResult r = ComputeMaybeCached(g, centers[i], opts, cache);
    dist[i] = r.distance;
    best = std::min(best, r.distance);
  }
  return dist;
}

int NearestCenter(const JobGraph& g, const std::vector<JobGraph>& centers,
                  GedCache* cache) {
  std::vector<double> dist = DistancesToCenters(g, centers, cache);
  return static_cast<int>(
      std::min_element(dist.begin(), dist.end()) - dist.begin());
}

Result<KMeansResult> ClusterDags(const std::vector<JobGraph>& dataset,
                                 const KMeansOptions& options) {
  const int n = static_cast<int>(dataset.size());
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (options.k < 1 || options.k > n) {
    return Status::InvalidArgument("k must be in [1, dataset size]");
  }

  GedCache local_cache;
  GedCache* cache =
      options.cache ? options.cache : (options.use_cache ? &local_cache : nullptr);
  ThreadPool pool(options.num_threads);

  Rng rng(options.seed);
  // Init: farthest-point seeding (k-means++-style). A random first center,
  // then each next center is the graph farthest from all chosen centers —
  // structurally distinct families reliably get their own seed. The
  // distance refresh and the argmax run as one ParallelReduce: argmax with
  // a lowest-index tie-break is bitwise commutative, so any strategy
  // reproduces the serial first-wins scan.
  struct Farthest {
    double dist = -1.0;
    int64_t index = 0;
  };
  ReduceOptions argmax_opts;
  argmax_opts.algebra = CombineAlgebra::kCommutative;
  std::vector<int> center_idx;
  center_idx.push_back(rng.UniformInt(0, n - 1));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (static_cast<int>(center_idx.size()) < options.k) {
    int last = center_idx.back();
    const Farthest far = ParallelReduce(
        &pool, 0, n, Farthest{},
        [&](int64_t i) {
          GedOptions opts;
          opts.threshold = min_dist[i];  // prune beyond the current minimum
          GedResult r =
              ComputeMaybeCached(dataset[i], dataset[last], opts, cache);
          min_dist[i] = std::min(min_dist[i], r.distance);
          return Farthest{min_dist[i], i};
        },
        [](Farthest& a, const Farthest& b) {
          if (b.dist > a.dist || (b.dist == a.dist && b.index < a.index)) {
            a = b;
          }
        },
        argmax_opts);
    center_idx.push_back(static_cast<int>(far.index));
  }

  KMeansResult result;
  result.assignment.assign(n, 0);

  // Assignment step: one ParallelReduce per iteration — the map assigns
  // graph i to its nearest center (center scan + assignment write), the
  // fold accumulates inertia and the changed flag. The inertia sum is a
  // running double sum of arbitrary values, i.e. not bitwise reassociable,
  // so the algebra is declared kOrderedOnly and the selector keeps the
  // ordered fold — exactly the pre-PR gather-then-fold, bit for bit.
  struct AssignOutcome {
    double dist = 0.0;
    bool changed = false;
  };
  ReduceOptions assign_opts;
  assign_opts.algebra = CombineAlgebra::kOrderedOnly;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    std::vector<JobGraph> centers;
    centers.reserve(options.k);
    for (int c : center_idx) centers.push_back(dataset[c]);
    AssignOutcome total = ParallelReduce(
        &pool, 0, n, AssignOutcome{},
        [&](int64_t i) {
          std::vector<double> dist =
              DistancesToCenters(dataset[i], centers, cache);
          int best = static_cast<int>(
              std::min_element(dist.begin(), dist.end()) - dist.begin());
          AssignOutcome out{dist[best], result.assignment[i] != best};
          if (out.changed) result.assignment[i] = best;
          return out;
        },
        [](AssignOutcome& a, const AssignOutcome& b) {
          a.dist += b.dist;
          a.changed |= b.changed;
        },
        assign_opts);
    result.within_cluster_distance = total.dist;
    if (!total.changed && iter > 0) break;

    // Update step: similarity center per cluster (all-pairs sweep runs on
    // the pool).
    std::vector<int> new_centers = center_idx;
    for (int c = 0; c < options.k; ++c) {
      std::vector<JobGraph> members;
      std::vector<int> member_ids;
      for (int i = 0; i < n; ++i) {
        if (result.assignment[i] == c) {
          members.push_back(dataset[i]);
          member_ids.push_back(i);
        }
      }
      if (members.empty()) continue;  // keep the old center for empty cells
      int sc = SimilarityCenter(members, options.center_tau, options.method,
                                cache, &pool);
      new_centers[c] = member_ids[sc];
    }
    if (new_centers == center_idx) break;
    center_idx = new_centers;
  }

  result.center_indices = center_idx;
  return result;
}

Result<int> SelectKByElbow(const std::vector<JobGraph>& dataset, int k_min,
                           int k_max, const KMeansOptions& base_options) {
  if (k_min < 1 || k_max < k_min ||
      k_max > static_cast<int>(dataset.size())) {
    return Status::InvalidArgument("invalid k range");
  }
  // Curvature needs >= 3 inertia points; with fewer the answer is k_min
  // regardless, so skip the clusterings entirely.
  if (k_max - k_min < 2) return k_min;

  GedCache local_cache;
  GedCache* shared = base_options.cache
                         ? base_options.cache
                         : (base_options.use_cache ? &local_cache : nullptr);
  const int count = k_max - k_min + 1;
  std::vector<double> inertia(count, 0.0);

  // The per-k runs are independent given a shared memo table; run them on
  // the pool (each inner ClusterDags degrades to serial on a worker). The
  // fold keeps the first error in k order: "first non-OK" is bitwise
  // associative (but not commutative — a later error must not displace an
  // earlier one), so ordered fold and tree merge are both legal.
  ThreadPool pool(base_options.num_threads);
  ReduceOptions status_opts;
  status_opts.algebra = CombineAlgebra::kAssociative;
  Status first_error = ParallelReduce(
      &pool, 0, count, Status::OK(),
      [&](int64_t i) {
        KMeansOptions opts = base_options;
        opts.k = k_min + static_cast<int>(i);
        opts.cache = shared;
        auto res = ClusterDags(dataset, opts);
        if (!res.ok()) return res.status();
        inertia[i] = res->within_cluster_distance;
        return Status::OK();
      },
      [](Status& a, const Status& b) {
        if (a.ok()) a = b;
      },
      status_opts);
  if (!first_error.ok()) return first_error;

  // Elbow = maximum positive curvature of the inertia curve.
  int best_k = k_min + 1;
  double best_curv = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i + 1 < inertia.size(); ++i) {
    double curv = inertia[i - 1] - 2 * inertia[i] + inertia[i + 1];
    if (curv > best_curv) {
      best_curv = curv;
      best_k = k_min + static_cast<int>(i);
    }
  }
  return best_k;
}

}  // namespace streamtune::graph
