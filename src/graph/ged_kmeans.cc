#include "graph/ged_kmeans.h"

#include <algorithm>
#include <limits>

namespace streamtune::graph {

std::vector<double> DistancesToCenters(const JobGraph& g,
                                       const std::vector<JobGraph>& centers) {
  std::vector<double> dist(centers.size(),
                           std::numeric_limits<double>::infinity());
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < centers.size(); ++i) {
    GedOptions opts;
    // Branch-and-bound across centers: once a center at distance `best` is
    // known, a deeper search than that is pointless for the assignment.
    if (best < std::numeric_limits<double>::infinity()) {
      opts.threshold = best;
    }
    GedResult r = ComputeGed(g, centers[i], opts);
    dist[i] = r.distance;
    best = std::min(best, r.distance);
  }
  return dist;
}

int NearestCenter(const JobGraph& g, const std::vector<JobGraph>& centers) {
  std::vector<double> dist = DistancesToCenters(g, centers);
  return static_cast<int>(
      std::min_element(dist.begin(), dist.end()) - dist.begin());
}

Result<KMeansResult> ClusterDags(const std::vector<JobGraph>& dataset,
                                 const KMeansOptions& options) {
  const int n = static_cast<int>(dataset.size());
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (options.k < 1 || options.k > n) {
    return Status::InvalidArgument("k must be in [1, dataset size]");
  }

  Rng rng(options.seed);
  // Init: farthest-point seeding (k-means++-style). A random first center,
  // then each next center is the graph farthest from all chosen centers —
  // structurally distinct families reliably get their own seed.
  std::vector<int> center_idx;
  center_idx.push_back(rng.UniformInt(0, n - 1));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (static_cast<int>(center_idx.size()) < options.k) {
    int last = center_idx.back();
    for (int i = 0; i < n; ++i) {
      GedOptions opts;
      opts.threshold = min_dist[i];  // prune beyond the current minimum
      GedResult r = ComputeGed(dataset[i], dataset[last], opts);
      min_dist[i] = std::min(min_dist[i], r.distance);
    }
    int farthest = 0;
    double best = -1;
    for (int i = 0; i < n; ++i) {
      if (min_dist[i] > best) {
        best = min_dist[i];
        farthest = i;
      }
    }
    center_idx.push_back(farthest);
  }

  KMeansResult result;
  result.assignment.assign(n, 0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    std::vector<JobGraph> centers;
    centers.reserve(options.k);
    for (int c : center_idx) centers.push_back(dataset[c]);
    double inertia = 0;
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      std::vector<double> dist = DistancesToCenters(dataset[i], centers);
      int best = static_cast<int>(
          std::min_element(dist.begin(), dist.end()) - dist.begin());
      inertia += dist[best];
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    result.within_cluster_distance = inertia;
    if (!changed && iter > 0) break;

    // Update step: similarity center per cluster.
    std::vector<int> new_centers = center_idx;
    for (int c = 0; c < options.k; ++c) {
      std::vector<JobGraph> members;
      std::vector<int> member_ids;
      for (int i = 0; i < n; ++i) {
        if (result.assignment[i] == c) {
          members.push_back(dataset[i]);
          member_ids.push_back(i);
        }
      }
      if (members.empty()) continue;  // keep the old center for empty cells
      int sc = SimilarityCenter(members, options.center_tau, options.method);
      new_centers[c] = member_ids[sc];
    }
    if (new_centers == center_idx) break;
    center_idx = new_centers;
  }

  result.center_indices = center_idx;
  return result;
}

Result<int> SelectKByElbow(const std::vector<JobGraph>& dataset, int k_min,
                           int k_max, const KMeansOptions& base_options) {
  if (k_min < 1 || k_max < k_min ||
      k_max > static_cast<int>(dataset.size())) {
    return Status::InvalidArgument("invalid k range");
  }
  std::vector<double> inertia;
  for (int k = k_min; k <= k_max; ++k) {
    KMeansOptions opts = base_options;
    opts.k = k;
    auto res = ClusterDags(dataset, opts);
    if (!res.ok()) return res.status();
    inertia.push_back(res->within_cluster_distance);
  }
  if (inertia.size() < 3) return k_min;
  // Elbow = maximum positive curvature of the inertia curve.
  int best_k = k_min + 1;
  double best_curv = -std::numeric_limits<double>::infinity();
  for (size_t i = 1; i + 1 < inertia.size(); ++i) {
    double curv = inertia[i - 1] - 2 * inertia[i] + inertia[i + 1];
    if (curv > best_curv) {
      best_curv = curv;
      best_k = k_min + static_cast<int>(i);
    }
  }
  return best_k;
}

}  // namespace streamtune::graph
