#include "graph/ged.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <numeric>
#include <queue>
#include <string>

namespace streamtune::graph {

namespace {

// Edge relation between an ordered node pair: none / forward / backward.
enum Rel : int8_t { kNone = 0, kFwd = 1, kBwd = 2 };

struct Prepared {
  int n1 = 0, n2 = 0;
  std::vector<int> order;  // g1 processing order (high degree first)
  std::vector<int> label1, label2;
  std::vector<std::vector<int8_t>> rel1, rel2;  // rel[u][v]
  int edges2 = 0;
  // suffix_edges1[d] = #edges of g1 with >= 1 endpoint in order[d..].
  std::vector<int> suffix_edges1;
  // suffix_labels1[d][t] = count of label t among order[d..].
  std::vector<std::array<int, kNumOperatorTypes>> suffix_labels1;
};

std::vector<std::vector<int8_t>> BuildRel(const JobGraph& g) {
  int n = g.num_operators();
  std::vector<std::vector<int8_t>> rel(n, std::vector<int8_t>(n, kNone));
  for (const auto& [from, to] : g.edges()) {
    rel[from][to] = kFwd;
    rel[to][from] = kBwd;
  }
  return rel;
}

Prepared Prepare(const JobGraph& g1, const JobGraph& g2) {
  Prepared p;
  p.n1 = g1.num_operators();
  p.n2 = g2.num_operators();
  p.label1.resize(p.n1);
  p.label2.resize(p.n2);
  for (int i = 0; i < p.n1; ++i) p.label1[i] = static_cast<int>(g1.op(i).type);
  for (int i = 0; i < p.n2; ++i) p.label2[i] = static_cast<int>(g2.op(i).type);
  p.rel1 = BuildRel(g1);
  p.rel2 = BuildRel(g2);
  p.edges2 = g2.num_edges();

  // Process high-degree nodes first: they constrain the mapping most.
  p.order.resize(p.n1);
  std::iota(p.order.begin(), p.order.end(), 0);
  std::vector<int> deg(p.n1, 0);
  for (const auto& [from, to] : g1.edges()) {
    ++deg[from];
    ++deg[to];
  }
  std::stable_sort(p.order.begin(), p.order.end(),
                   [&](int a, int b) { return deg[a] > deg[b]; });

  // Suffix structures for the lower bound.
  p.suffix_edges1.assign(p.n1 + 1, 0);
  p.suffix_labels1.assign(p.n1 + 1, {});
  std::vector<bool> in_suffix(p.n1, false);
  for (int d = p.n1 - 1; d >= 0; --d) {
    in_suffix[p.order[d]] = true;
    int cnt = 0;
    for (const auto& [from, to] : g1.edges()) {
      if (in_suffix[from] || in_suffix[to]) ++cnt;
    }
    p.suffix_edges1[d] = cnt;
    p.suffix_labels1[d] = p.suffix_labels1[d + 1];
    ++p.suffix_labels1[d][p.label1[p.order[d]]];
  }
  return p;
}

struct State {
  double g = 0;
  double f = 0;
  int depth = 0;
  uint64_t used = 0;          // bitmask of assigned g2 nodes
  std::vector<int> mapping;   // g1 id -> g2 id, or -2 deleted, -1 unassigned
};

struct StateCmp {
  bool operator()(const State& a, const State& b) const { return a.f > b.f; }
};

// Label-set + edge-count admissible lower bound for the remaining problem.
double LowerBound(const Prepared& p, int depth, uint64_t used) {
  const auto& rem1 = p.suffix_labels1[depth];
  std::array<int, kNumOperatorTypes> rem2{};
  int r2 = 0;
  for (int v = 0; v < p.n2; ++v) {
    if (!(used >> v & 1)) {
      ++rem2[p.label2[v]];
      ++r2;
    }
  }
  int r1 = p.n1 - depth;
  int common = 0;
  for (int t = 0; t < kNumOperatorTypes; ++t) {
    common += std::min(rem1[t], rem2[t]);
  }
  double node_lb = std::max(r1, r2) - common;

  // Edges of g2 with >= 1 unassigned endpoint.
  int e2_rem = 0;
  for (int a = 0; a < p.n2; ++a) {
    for (int b = a + 1; b < p.n2; ++b) {
      if (p.rel2[a][b] != kNone && (!(used >> a & 1) || !(used >> b & 1))) {
        ++e2_rem;
      }
    }
  }
  double edge_lb = std::abs(p.suffix_edges1[depth] - e2_rem);
  return node_lb + edge_lb;
}

// Incremental edge cost of assigning g1 node u (at `depth` in the order) to
// g2 node v (or deleting it when v < 0), against all previously processed
// g1 nodes.
double EdgeCostAgainstProcessed(const Prepared& p, const State& s, int u,
                                int v) {
  double cost = 0;
  for (int d = 0; d < s.depth; ++d) {
    int u_prev = p.order[d];
    int8_t e1 = p.rel1[u_prev][u];
    int v_prev = s.mapping[u_prev];
    if (v < 0 || v_prev < 0) {
      // Deleted endpoint: every incident g1 edge must be deleted.
      if (e1 != kNone) cost += 1;
      continue;
    }
    int8_t e2 = p.rel2[v_prev][v];
    // Same relation: free. Opposite direction: one direction-modification.
    // Present vs absent: one insertion/deletion. All unit cost.
    if (e1 != e2) cost += 1;
  }
  return cost;
}

// Cost of inserting all g2 nodes/edges not covered by the mapping once every
// g1 node has been processed.
double CompletionCost(const Prepared& p, uint64_t used) {
  double cost = 0;
  for (int v = 0; v < p.n2; ++v) {
    if (!(used >> v & 1)) cost += 1;
  }
  for (int a = 0; a < p.n2; ++a) {
    for (int b = a + 1; b < p.n2; ++b) {
      if (p.rel2[a][b] != kNone && (!(used >> a & 1) || !(used >> b & 1))) {
        cost += 1;
      }
    }
  }
  return cost;
}

// MappingCost on an already-Prepared pair (avoids re-running Prepare on the
// A* hot path, where the greedy incumbent is costed before the search).
double MappingCostPrepared(const Prepared& p, const std::vector<int>& mapping) {
  assert(static_cast<int>(mapping.size()) == p.n1);
  double cost = 0;
  std::vector<bool> used(p.n2, false);
  for (int u = 0; u < p.n1; ++u) {
    int v = mapping[u];
    if (v < 0) {
      cost += 1;  // node deletion
    } else {
      assert(v < p.n2 && !used[v] && "invalid mapping");
      used[v] = true;
      if (p.label1[u] != p.label2[v]) cost += 1;  // type modification
    }
  }
  // g1 edge alignment (each unordered pair once).
  for (int u = 0; u < p.n1; ++u) {
    for (int w = u + 1; w < p.n1; ++w) {
      int8_t e1 = p.rel1[u][w];
      int vu = mapping[u], vw = mapping[w];
      if (vu < 0 || vw < 0) {
        if (e1 != kNone) cost += 1;  // edge deletion
      } else if (e1 != p.rel2[vu][vw]) {
        cost += 1;  // insertion, deletion, or direction modification
      }
    }
  }
  // Node insertions + edges touching inserted g2 nodes.
  for (int v = 0; v < p.n2; ++v) {
    if (!used[v]) cost += 1;
  }
  for (int a = 0; a < p.n2; ++a) {
    for (int b = a + 1; b < p.n2; ++b) {
      if (p.rel2[a][b] != kNone && (!used[a] || !used[b])) cost += 1;
    }
  }
  return cost;
}

// Greedy label/degree-guided assignment; the returned mapping uses -1 for
// deletions.
std::vector<int> GreedyMapping(const Prepared& p) {
  State s;
  s.mapping.assign(p.n1, -1);
  for (int d = 0; d < p.n1; ++d) {
    int u = p.order[d];
    int best_v = -2;
    double best_cost = 1 + EdgeCostAgainstProcessed(p, s, u, -2);  // delete
    for (int v = 0; v < p.n2; ++v) {
      if (s.used >> v & 1) continue;
      double c = (p.label1[u] != p.label2[v] ? 1 : 0) +
                 EdgeCostAgainstProcessed(p, s, u, v);
      // Bias toward consuming g2 nodes (each unmatched one costs 1 later).
      if (c - 0.5 < best_cost) {
        best_cost = c - 0.5;
        best_v = v;
      }
    }
    s.mapping[u] = best_v;
    if (best_v >= 0) s.used |= uint64_t{1} << best_v;
    s.depth = d + 1;
  }
  // Normalize deletion marker for MappingCost.
  for (int& m : s.mapping) {
    if (m == -2) m = -1;
  }
  return s.mapping;
}

}  // namespace

double MappingCost(const JobGraph& g1, const JobGraph& g2,
                   const std::vector<int>& mapping) {
  return MappingCostPrepared(Prepare(g1, g2), mapping);
}

double GreedyGedUpperBound(const JobGraph& g1, const JobGraph& g2) {
  Prepared p = Prepare(g1, g2);
  return MappingCostPrepared(p, GreedyMapping(p));
}

double LabelSetLowerBound(const JobGraph& g1, const JobGraph& g2) {
  // Closed form of LowerBound(Prepare(g1, g2), 0, 0): with no partial
  // mapping the remaining-label multisets are the full histograms and the
  // remaining-edge counts are the full edge counts, so the bound collapses
  // to max(n1, n2) - sum_t min(h1[t], h2[t]) + |e1 - e2|. Computing it
  // directly is O(n + e) instead of Prepare's O(n^2) relation matrices —
  // this is the screen the GED policy layer leans on, so it must stay
  // cheap (and it returns bit-identical values to the Prepared form: all
  // terms are small integers).
  std::array<int, kNumOperatorTypes> h1{}, h2{};
  const int n1 = g1.num_operators(), n2 = g2.num_operators();
  for (int i = 0; i < n1; ++i) ++h1[static_cast<int>(g1.op(i).type)];
  for (int i = 0; i < n2; ++i) ++h2[static_cast<int>(g2.op(i).type)];
  int common = 0;
  for (int t = 0; t < kNumOperatorTypes; ++t) {
    common += std::min(h1[t], h2[t]);
  }
  const double node_lb = std::max(n1, n2) - common;
  const double edge_lb = std::abs(g1.num_edges() - g2.num_edges());
  return node_lb + edge_lb;
}

double StructuralGedUpperBound(const JobGraph& g1, const JobGraph& g2) {
  // The delete-everything/insert-everything edit path is always valid.
  return static_cast<double>(g1.num_operators() + g1.num_edges() +
                             g2.num_operators() + g2.num_edges());
}

GedResult ComputeGed(const JobGraph& g1, const JobGraph& g2,
                     const GedOptions& options) {
  GedResult result;
  Prepared p = Prepare(g1, g2);
  if (p.n2 > 63) {
    result.mapping = GreedyMapping(p);
    result.distance = MappingCostPrepared(p, result.mapping);
    result.exact = false;
    result.termination = GedTermination::kGreedy;
    return result;
  }

  // Seed the incumbent with the greedy upper bound so pruning is active
  // from the first expansion.
  std::vector<int> incumbent_mapping = GreedyMapping(p);
  double incumbent = MappingCostPrepared(p, incumbent_mapping);
  const bool thresholded = options.threshold >= 0;

  std::priority_queue<State, std::vector<State>, StateCmp> open;
  State root;
  root.mapping.assign(p.n1, -1);
  root.f = options.use_lower_bound ? LowerBound(p, 0, 0) : 0.0;
  if (p.n1 == 0) {
    root.g = CompletionCost(p, 0);
    root.f = root.g;
    root.depth = 0;
    result.distance = root.g;
    return result;
  }
  open.push(root);

  auto prune_limit = [&]() {
    // Anything >= incumbent cannot improve; in threshold mode anything
    // > threshold is irrelevant as well.
    double limit = incumbent;
    if (thresholded) limit = std::min(limit, options.threshold + 1e-9);
    return limit;
  };

  while (!open.empty()) {
    State s = open.top();
    open.pop();
    if (s.f > prune_limit() + 1e-12) break;  // best-first: all worse now
    if (s.depth == p.n1) {
      result.distance = s.g;
      result.exact = true;
      result.mapping = s.mapping;
      for (int& m : result.mapping) {
        if (m == -2) m = -1;
      }
      return result;
    }
    if (++result.expansions > options.expansion_budget) {
      result.distance = incumbent;
      result.exact = false;
      result.mapping = incumbent_mapping;
      result.termination = GedTermination::kBudget;
      return result;
    }

    int u = p.order[s.depth];
    // Substitutions.
    for (int v = -1; v < p.n2; ++v) {
      double node_cost, edge_cost;
      uint64_t used = s.used;
      if (v < 0) {
        node_cost = 1;  // deletion
        edge_cost = EdgeCostAgainstProcessed(p, s, u, -2);
      } else {
        if (s.used >> v & 1) continue;
        node_cost = p.label1[u] != p.label2[v] ? 1 : 0;
        edge_cost = EdgeCostAgainstProcessed(p, s, u, v);
        used |= uint64_t{1} << v;
      }
      State next;
      next.g = s.g + node_cost + edge_cost;
      next.depth = s.depth + 1;
      next.used = used;
      next.mapping = s.mapping;
      next.mapping[u] = v < 0 ? -2 : v;
      if (next.depth == p.n1) {
        next.g += CompletionCost(p, used);
        next.f = next.g;
      } else {
        double h = options.use_lower_bound
                       ? LowerBound(p, next.depth, next.used)
                       : 0.0;
        next.f = next.g + h;
      }
      if (next.f > prune_limit() + 1e-12) continue;
      if (next.depth == p.n1 && next.g < incumbent) {
        incumbent = next.g;
        incumbent_mapping = next.mapping;
        for (int& m : incumbent_mapping) {
          if (m == -2) m = -1;
        }
      }
      open.push(std::move(next));
    }
  }

  // Queue exhausted (or only worse states left): the incumbent is optimal
  // unless we are in threshold mode and it exceeds the threshold.
  result.distance = incumbent;
  result.exact = !thresholded || incumbent <= options.threshold + 1e-9;
  result.mapping = incumbent_mapping;
  result.termination =
      result.exact ? GedTermination::kExact : GedTermination::kPruned;
  return result;
}

const char* ToString(GedTermination t) {
  switch (t) {
    case GedTermination::kExact:
      return "exact";
    case GedTermination::kPruned:
      return "pruned";
    case GedTermination::kBudget:
      return "budget";
    case GedTermination::kGreedy:
      return "greedy";
  }
  return "?";
}

const char* EditOpKindName(EditOp::Kind kind) {
  switch (kind) {
    case EditOp::Kind::kNodeDeletion:
      return "node-deletion";
    case EditOp::Kind::kNodeInsertion:
      return "node-insertion";
    case EditOp::Kind::kTypeModification:
      return "type-modification";
    case EditOp::Kind::kEdgeDeletion:
      return "edge-deletion";
    case EditOp::Kind::kEdgeInsertion:
      return "edge-insertion";
    case EditOp::Kind::kDirectionModification:
      return "direction-modification";
  }
  return "?";
}

std::vector<EditOp> ExplainEdits(const JobGraph& g1, const JobGraph& g2,
                                 const std::vector<int>& mapping) {
  Prepared p = Prepare(g1, g2);
  assert(static_cast<int>(mapping.size()) == p.n1);
  std::vector<EditOp> edits;
  std::vector<bool> used(p.n2, false);

  for (int u = 0; u < p.n1; ++u) {
    int v = mapping[u];
    if (v < 0) {
      edits.push_back({EditOp::Kind::kNodeDeletion,
                       "delete " + g1.op(u).name});
    } else {
      used[v] = true;
      if (p.label1[u] != p.label2[v]) {
        edits.push_back({EditOp::Kind::kTypeModification,
                         g1.op(u).name + ": " +
                             std::string(OperatorTypeName(g1.op(u).type)) +
                             " -> " + OperatorTypeName(g2.op(v).type)});
      }
    }
  }
  for (int u = 0; u < p.n1; ++u) {
    for (int w = u + 1; w < p.n1; ++w) {
      int8_t e1 = p.rel1[u][w];
      int vu = mapping[u], vw = mapping[w];
      if (vu < 0 || vw < 0) {
        if (e1 != kNone) {
          edits.push_back({EditOp::Kind::kEdgeDeletion,
                           "delete edge at " + g1.op(u).name + "/" +
                               g1.op(w).name});
        }
        continue;
      }
      int8_t e2 = p.rel2[vu][vw];
      if (e1 == e2) continue;
      if (e1 != kNone && e2 != kNone) {
        edits.push_back({EditOp::Kind::kDirectionModification,
                         "reverse edge " + g1.op(u).name + " <-> " +
                             g1.op(w).name});
      } else if (e1 != kNone) {
        edits.push_back({EditOp::Kind::kEdgeDeletion,
                         "delete edge " + g1.op(u).name + " -> " +
                             g1.op(w).name});
      } else {
        edits.push_back({EditOp::Kind::kEdgeInsertion,
                         "insert edge " + g2.op(vu).name + " -> " +
                             g2.op(vw).name});
      }
    }
  }
  for (int v = 0; v < p.n2; ++v) {
    if (!used[v]) {
      edits.push_back({EditOp::Kind::kNodeInsertion,
                       "insert " + g2.op(v).name});
    }
  }
  for (int a = 0; a < p.n2; ++a) {
    for (int b = a + 1; b < p.n2; ++b) {
      if (p.rel2[a][b] != kNone && (!used[a] || !used[b])) {
        edits.push_back({EditOp::Kind::kEdgeInsertion,
                         "insert edge at " + g2.op(a).name + "/" +
                             g2.op(b).name});
      }
    }
  }
  return edits;
}

bool GedWithinThreshold(const JobGraph& g1, const JobGraph& g2, double tau,
                        const GedOptions& options, GedResult* result) {
  // Cheap screens first (the "filtering" phase).
  if (LabelSetLowerBound(g1, g2) > tau + 1e-9) {
    if (result != nullptr) {
      *result = GedResult{};
      result->distance = StructuralGedUpperBound(g1, g2);
      result->exact = false;
      result->termination = GedTermination::kPruned;
    }
    return false;
  }
  GedOptions opts = options;
  opts.threshold = tau;
  opts.use_lower_bound = true;
  GedResult r = ComputeGed(g1, g2, opts);
  if (result != nullptr) *result = r;
  return r.exact && r.distance <= tau + 1e-9;
}

}  // namespace streamtune::graph
