#include "graph/ged_policy.h"

#include <cstdlib>
#include <cstring>

namespace streamtune::graph {

namespace {

constexpr double kEps = 1e-9;
// Both graphs at or under this node count: run plain A* (h = 0). The
// label-set heuristic costs O(n2^2 + kNumOperatorTypes * n2) per expansion,
// which tiny state spaces never pay back.
constexpr int kTinyExactNodes = 5;

}  // namespace

const char* ToString(GedPolicy p) {
  switch (p) {
    case GedPolicy::kExactAStar:
      return "exact-astar";
    case GedPolicy::kBoundedLsa:
      return "bounded-lsa";
    case GedPolicy::kUpperBoundOnly:
      return "upper-bound-only";
  }
  return "?";
}

const char* ToString(GedPolicyMode m) {
  switch (m) {
    case GedPolicyMode::kAuto:
      return "auto";
    case GedPolicyMode::kBounded:
      return "bounded";
    case GedPolicyMode::kExact:
      return "exact";
  }
  return "?";
}

GedPolicyMode GedPolicyModeFromEnv() {
  const char* v = std::getenv("STREAMTUNE_GED_POLICY");
  if (v == nullptr) return GedPolicyMode::kAuto;
  if (std::strcmp(v, "bounded") == 0) return GedPolicyMode::kBounded;
  if (std::strcmp(v, "exact") == 0) return GedPolicyMode::kExact;
  return GedPolicyMode::kAuto;
}

void GedPolicyCounters::CountChoice(GedPolicy p) {
  switch (p) {
    case GedPolicy::kExactAStar:
      exact.fetch_add(1, std::memory_order_relaxed);
      break;
    case GedPolicy::kBoundedLsa:
      bounded.fetch_add(1, std::memory_order_relaxed);
      break;
    case GedPolicy::kUpperBoundOnly:
      upper.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void GedPolicyCounters::CountResult(const GedResult& r) {
  if (r.termination == GedTermination::kBudget) {
    budget_exhausted.fetch_add(1, std::memory_order_relaxed);
  }
}

void GedPolicyCounters::Reset() {
  exact.store(0, std::memory_order_relaxed);
  bounded.store(0, std::memory_order_relaxed);
  upper.store(0, std::memory_order_relaxed);
  budget_exhausted.store(0, std::memory_order_relaxed);
}

GedPolicy ChooseGedPolicy(const JobGraph& a, const JobGraph& b,
                          const GedOptions& options, GedPolicyMode mode) {
  if (mode == GedPolicyMode::kBounded) return GedPolicy::kBoundedLsa;
  if (mode == GedPolicyMode::kExact) return GedPolicy::kExactAStar;
  // Threshold query already dead on the admissible screen: lb <= ged and
  // lb > tau prove ged > tau — exactly the certificate a completed pruned
  // search would produce, for O(n + e) instead of a search.
  if (options.threshold >= 0 &&
      LabelSetLowerBound(a, b) > options.threshold + kEps) {
    return GedPolicy::kUpperBoundOnly;
  }
  if (a.num_operators() <= kTinyExactNodes &&
      b.num_operators() <= kTinyExactNodes) {
    return GedPolicy::kExactAStar;
  }
  return GedPolicy::kBoundedLsa;
}

GedResult PolicyComputeGed(const JobGraph& a, const JobGraph& b,
                           const GedOptions& options,
                           GedPolicyCounters* counters) {
  const GedPolicy policy = ChooseGedPolicy(a, b, options);
  if (counters != nullptr) counters->CountChoice(policy);
  GedResult r;
  switch (policy) {
    case GedPolicy::kUpperBoundOnly:
      r.distance = StructuralGedUpperBound(a, b);
      r.exact = false;
      r.termination = GedTermination::kPruned;
      break;
    case GedPolicy::kExactAStar: {
      GedOptions direct = options;
      direct.use_lower_bound = false;
      r = ComputeGed(a, b, direct);
      break;
    }
    case GedPolicy::kBoundedLsa:
      r = ComputeGed(a, b, options);
      break;
  }
  if (counters != nullptr) counters->CountResult(r);
  return r;
}

}  // namespace streamtune::graph
