// Per-pair GED execution policy (the graph-layer half of the adaptive
// execution-strategy engine, DESIGN.md §14).
//
// Every comparison used to run one fixed search: AStar+-LSa with the
// label-set heuristic. That is the right call for mid-sized, plausibly
// similar pairs — and a waste everywhere else. The chooser routes each pair
// from statistics that are already on hand (node/edge counts and the O(n+e)
// LabelSetLowerBound — the same scalar features the PR 8 WL index stores):
//
//   kUpperBoundOnly  threshold query whose lower bound already exceeds the
//                    threshold: the screen *is* the proof (lb <= ged), so
//                    skip Prepare + greedy + A* entirely and report a
//                    kPruned result carrying the free structural upper
//                    bound. This is where the pre-train assignment speedup
//                    comes from: most graph-to-center comparisons die here.
//   kExactAStar      tiny pairs (both graphs <= 5 nodes): the state space
//                    is trivial, the per-expansion heuristic costs more
//                    than the expansions it saves — run plain A* (h = 0).
//   kBoundedLsa      everything else: today's AStar+-LSa search, unchanged.
//
// Outcome invariance (the reason adaptive mode is safe to run by default):
// exact answers are policy-independent — every route returns the true GED
// when it completes within the threshold — and inexact answers are only
// ever produced for pairs proven > threshold, whose reported value callers
// consume solely through min()/threshold comparisons. So assignments,
// centers, inertia and within-threshold booleans are bit-identical across
// policies; only the work done (and the incidental upper-bound values)
// differs. Pinning STREAMTUNE_GED_POLICY=bounded reproduces the pre-PR
// fixed policy to the byte, including those incidental values.
//
// The policy applies only to AStar+-LSa-mode call sites
// (GedOptions::use_lower_bound == true). The kDirectGed ablation baseline
// (Fig. 11b) bypasses it by construction.

#pragma once

#include <atomic>
#include <cstdint>

#include "graph/ged.h"

namespace streamtune::graph {

/// The competing per-pair search routes.
enum class GedPolicy {
  kExactAStar = 0,  ///< plain A*, h = 0
  kBoundedLsa,      ///< AStar+-LSa with the label-set heuristic (pre-PR)
  kUpperBoundOnly,  ///< lower-bound screen proved ged > threshold; no search
};

/// Global pin, from STREAMTUNE_GED_POLICY: "auto" (default) adapts per
/// pair; "bounded" reproduces the pre-PR fixed kBoundedLsa policy exactly;
/// "exact" forces h = 0 searches (ablation: what does the heuristic buy).
/// There is deliberately no "upper" pin — upper-bound-only is only sound
/// when the screen proves dissimilarity, which is a per-pair fact.
enum class GedPolicyMode {
  kAuto = 0,
  kBounded,
  kExact,
};

const char* ToString(GedPolicy p);
const char* ToString(GedPolicyMode m);

/// Parses STREAMTUNE_GED_POLICY (auto|bounded|exact); kAuto when unset or
/// unrecognized. Read per call so tests can flip it.
GedPolicyMode GedPolicyModeFromEnv();

/// The per-pair policy histogram plus the budget-exhaustion count
/// (satellite observability; embedded in GedCache and sampled into
/// GedCache::Stats / KbServiceStats / bench JSON).
struct GedPolicyCounters {
  std::atomic<uint64_t> exact{0};
  std::atomic<uint64_t> bounded{0};
  std::atomic<uint64_t> upper{0};
  /// Searches that ended with GedTermination::kBudget.
  std::atomic<uint64_t> budget_exhausted{0};

  void CountChoice(GedPolicy p);
  void CountResult(const GedResult& r);
  void Reset();
};

/// Routes one pair. Deterministic: a pure function of the two graphs'
/// structural statistics, the query options and the (env) mode — never of
/// timing — so distributed/parallel runs agree on every choice.
GedPolicy ChooseGedPolicy(const JobGraph& a, const JobGraph& b,
                          const GedOptions& options,
                          GedPolicyMode mode = GedPolicyModeFromEnv());

/// Policy-routed drop-in for ComputeGed at AStar+-LSa call sites
/// (options.use_lower_bound must be true — direct-GED callers keep calling
/// ComputeGed). Counts the choice and the outcome into `counters` when
/// given.
GedResult PolicyComputeGed(const JobGraph& a, const JobGraph& b,
                           const GedOptions& options,
                           GedPolicyCounters* counters = nullptr);

}  // namespace streamtune::graph
