// Thread-safe memo table for GED computations (the offline-phase hot path).
//
// The GED k-means of Sec. IV-C re-asks the same pairwise distances many
// times: every assignment iteration re-measures distances to recurring
// centers, SimilarityCenter is an all-pairs sweep per cluster per iteration,
// and SelectKByElbow re-runs the whole clustering for each candidate k.
// Entries are keyed by the symmetric pair of JobGraph::CanonicalHash()
// values (GED is a metric: ged(a, b) == ged(b, a)), so structurally
// identical graphs share entries regardless of construction order.
//
// Caching policy — chosen so that answers are independent of the order in
// which queries arrive, which is what makes the parallel k-means
// bit-identical to the serial one:
//   - Exact distances are cached and served for any later query; the
//     `exact` flag of a served result is re-derived against the query's own
//     threshold, mirroring what a fresh search would report.
//   - Threshold-pruned searches are only an upper bound (the incumbent) —
//     they are never promoted to exact entries. What IS remembered is the
//     certificate "ged > tau" (when the search completed without exhausting
//     its expansion budget), which answers any later query with a
//     threshold <= tau, plus the incumbent as a reusable upper bound.
//   - Budget-exhausted searches contribute their upper bound only.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "graph/ged.h"
#include "graph/ged_policy.h"

namespace streamtune::graph {

/// Sharded-mutex memo table for ComputeGed / GedWithinThreshold.
class GedCache {
 public:
  GedCache() = default;

  GedCache(const GedCache&) = delete;
  GedCache& operator=(const GedCache&) = delete;

  /// Cached drop-in for ComputeGed. On a hit the result carries the true
  /// distance (or a certified bound, see above) with `expansions == 0` and
  /// an empty `mapping` — callers that need the edit path should use
  /// ComputeGed directly.
  GedResult Compute(const JobGraph& a, const JobGraph& b,
                    const GedOptions& options = {});

  /// Cached drop-in for GedWithinThreshold.
  bool WithinThreshold(const JobGraph& a, const JobGraph& b, double tau,
                       const GedOptions& options = {});

  /// Hit/miss counters (a hit = answered without running a search), split
  /// by what kind of remembered answer served the hit. One consistent-ish
  /// sample: counters are monotone but read individually (relaxed), so a
  /// sample taken during concurrent queries may be mid-update by one.
  struct Stats {
    /// Total hits (== hits_exact + hits_certified; kept as a field so
    /// long-standing callers keep reading `stats().hits`).
    uint64_t hits = 0;
    /// Hits served from a cached exact distance.
    uint64_t hits_exact = 0;
    /// Hits served from a "ged > tau" certificate (threshold queries).
    uint64_t hits_certified = 0;
    uint64_t misses = 0;
    /// Distinct graph pairs with a cached entry at sample time.
    uint64_t entries = 0;
    /// GED policy histogram over miss-path searches routed through this
    /// cache (AStar+-LSa mode only; direct-GED misses are not routed and
    /// not counted). policy_* sums to at most `misses`.
    uint64_t policy_exact = 0;
    uint64_t policy_bounded = 0;
    uint64_t policy_upper = 0;
    /// Miss-path searches that exhausted their expansion budget (these
    /// never mint certificates; see GedTermination::kBudget).
    uint64_t budget_exhausted = 0;
    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Stats stats() const;

  /// Number of distinct graph pairs with a cached entry.
  size_t size() const;

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  struct Key {
    uint64_t lo = 0, hi = 0;
    bool operator==(const Key& o) const { return lo == o.lo && hi == o.hi; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t z = k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };
  struct Entry {
    bool has_exact = false;
    double exact_distance = 0;
    /// Proven strict lower bound: ged > certified_gt (-inf when unknown).
    double certified_gt;
    /// Best known upper bound (+inf when unknown).
    double upper;
    Entry();
  };
  static constexpr int kNumShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map STREAMTUNE_GUARDED_BY(mu);
  };

  static Key MakeKey(const JobGraph& a, const JobGraph& b);
  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % kNumShards];
  }
  // Folds a finished search result into the entry for `key`. Certificates
  // are keyed off GedTermination::kPruned — the only outcome that proves
  // "ged > threshold" (budget-exhausted and greedy-fallback results prove
  // nothing beyond their upper bound).
  void Record(const Key& key, const GedResult& result,
              const GedOptions& options);

  Shard shards_[kNumShards];
  std::atomic<uint64_t> hits_exact_{0};
  std::atomic<uint64_t> hits_certified_{0};
  std::atomic<uint64_t> misses_{0};
  /// Policy histogram + budget-exhaustion count for miss-path searches.
  GedPolicyCounters policy_;
};

}  // namespace streamtune::graph
