#include "graph/similarity.h"

#include <algorithm>

namespace streamtune::graph {

namespace {

bool Within(const JobGraph& a, const JobGraph& b, double tau,
            SearchMethod method) {
  if (method == SearchMethod::kAStarLsa) {
    return GedWithinThreshold(a, b, tau);
  }
  // Direct: pay for the full exact computation, then compare.
  GedOptions opts;
  opts.use_lower_bound = false;
  GedResult r = ComputeGed(a, b, opts);
  return r.distance <= tau + 1e-9;
}

}  // namespace

std::vector<int> SimilaritySearch(const std::vector<JobGraph>& dataset,
                                  const JobGraph& query, double tau,
                                  SearchMethod method) {
  std::vector<int> hits;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (Within(dataset[i], query, tau, method)) {
      hits.push_back(static_cast<int>(i));
    }
  }
  return hits;
}

std::vector<int> AppearanceCounts(const std::vector<JobGraph>& cluster,
                                  double tau, SearchMethod method) {
  std::vector<int> counts(cluster.size(), 0);
  for (size_t q = 0; q < cluster.size(); ++q) {
    for (size_t g = 0; g < cluster.size(); ++g) {
      // GED is symmetric, but we follow Def. 2 literally: g appears in the
      // search result of query q (including q itself, ged = 0 <= tau).
      if (g == q || Within(cluster[g], cluster[q], tau, method)) {
        ++counts[g];
      }
    }
  }
  return counts;
}

int SimilarityCenter(const std::vector<JobGraph>& cluster, double tau,
                     SearchMethod method) {
  if (cluster.empty()) return -1;
  std::vector<int> counts = AppearanceCounts(cluster, tau, method);
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace streamtune::graph
