#include "graph/similarity.h"

#include <algorithm>

#include "common/parallel_reduce.h"
#include "graph/ged_cache.h"
#include "graph/ged_policy.h"

namespace streamtune::graph {

namespace {

constexpr double kEps = 1e-9;

bool Within(const JobGraph& a, const JobGraph& b, double tau,
            SearchMethod method, GedCache* cache) {
  if (method == SearchMethod::kAStarLsa) {
    if (cache != nullptr) return cache->WithinThreshold(a, b, tau);
    // Mirror the cache's miss path: lower-bound screen, then the
    // policy-routed threshold search — uncached runs do the same searches
    // a cold cache would.
    if (LabelSetLowerBound(a, b) > tau + kEps) return false;
    GedOptions opts;
    opts.threshold = tau;
    GedResult r = PolicyComputeGed(a, b, opts);
    return r.exact && r.distance <= tau + kEps;
  }
  // Direct: pay for the full exact computation, then compare. This is the
  // Fig. 11b ablation baseline — deliberately not policy-routed.
  GedOptions opts;
  opts.use_lower_bound = false;
  GedResult r = cache ? cache->Compute(a, b, opts) : ComputeGed(a, b, opts);
  return r.distance <= tau + 1e-9;
}

}  // namespace

std::vector<int> SimilaritySearch(const std::vector<JobGraph>& dataset,
                                  const JobGraph& query, double tau,
                                  SearchMethod method, GedCache* cache,
                                  ThreadPool* pool) {
  const int n = static_cast<int>(dataset.size());
  // Hit-list building is a reduction under concatenation: list concat is
  // bitwise associative (adjacent index ranges merge in order), so the
  // tree strategy is legal and the result always equals the serial
  // index-order collect.
  ReduceOptions opts;
  opts.algebra = CombineAlgebra::kAssociative;
  return ParallelReduce(
      pool, 0, n, std::vector<int>{},
      [&](int64_t i) {
        std::vector<int> hit;
        if (Within(dataset[i], query, tau, method, cache)) {
          hit.push_back(static_cast<int>(i));
        }
        return hit;
      },
      [](std::vector<int>& a, const std::vector<int>& b) {
        a.insert(a.end(), b.begin(), b.end());
      },
      opts);
}

std::vector<int> AppearanceCounts(const std::vector<JobGraph>& cluster,
                                  double tau, SearchMethod method,
                                  GedCache* cache, ThreadPool* pool) {
  const int m = static_cast<int>(cluster.size());
  std::vector<int> counts(m, 0);
  // Each row g owns its own count, so the all-pairs sweep parallelizes over
  // g with no reduction step.
  auto row = [&](int64_t g) {
    int c = 0;
    for (int q = 0; q < m; ++q) {
      // GED is symmetric, but we follow Def. 2 literally: g appears in the
      // search result of query q (including q itself, ged = 0 <= tau).
      if (g == q || Within(cluster[g], cluster[q], tau, method, cache)) {
        ++c;
      }
    }
    counts[g] = c;
  };
  if (pool) {
    pool->ParallelFor(0, m, row);
  } else {
    for (int g = 0; g < m; ++g) row(g);
  }
  return counts;
}

int SimilarityCenter(const std::vector<JobGraph>& cluster, double tau,
                     SearchMethod method, GedCache* cache, ThreadPool* pool) {
  if (cluster.empty()) return -1;
  std::vector<int> counts = AppearanceCounts(cluster, tau, method, cache, pool);
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace streamtune::graph
