#include "graph/similarity.h"

#include <algorithm>

#include "graph/ged_cache.h"

namespace streamtune::graph {

namespace {

bool Within(const JobGraph& a, const JobGraph& b, double tau,
            SearchMethod method, GedCache* cache) {
  if (method == SearchMethod::kAStarLsa) {
    return cache ? cache->WithinThreshold(a, b, tau)
                 : GedWithinThreshold(a, b, tau);
  }
  // Direct: pay for the full exact computation, then compare.
  GedOptions opts;
  opts.use_lower_bound = false;
  GedResult r = cache ? cache->Compute(a, b, opts) : ComputeGed(a, b, opts);
  return r.distance <= tau + 1e-9;
}

}  // namespace

std::vector<int> SimilaritySearch(const std::vector<JobGraph>& dataset,
                                  const JobGraph& query, double tau,
                                  SearchMethod method, GedCache* cache,
                                  ThreadPool* pool) {
  const int n = static_cast<int>(dataset.size());
  std::vector<char> within(n, 0);
  auto check = [&](int64_t i) {
    within[i] = Within(dataset[i], query, tau, method, cache) ? 1 : 0;
  };
  if (pool) {
    pool->ParallelFor(0, n, check);
  } else {
    for (int i = 0; i < n; ++i) check(i);
  }
  std::vector<int> hits;
  for (int i = 0; i < n; ++i) {
    if (within[i]) hits.push_back(i);
  }
  return hits;
}

std::vector<int> AppearanceCounts(const std::vector<JobGraph>& cluster,
                                  double tau, SearchMethod method,
                                  GedCache* cache, ThreadPool* pool) {
  const int m = static_cast<int>(cluster.size());
  std::vector<int> counts(m, 0);
  // Each row g owns its own count, so the all-pairs sweep parallelizes over
  // g with no reduction step.
  auto row = [&](int64_t g) {
    int c = 0;
    for (int q = 0; q < m; ++q) {
      // GED is symmetric, but we follow Def. 2 literally: g appears in the
      // search result of query q (including q itself, ged = 0 <= tau).
      if (g == q || Within(cluster[g], cluster[q], tau, method, cache)) {
        ++c;
      }
    }
    counts[g] = c;
  };
  if (pool) {
    pool->ParallelFor(0, m, row);
  } else {
    for (int g = 0; g < m; ++g) row(g);
  }
  return counts;
}

int SimilarityCenter(const std::vector<JobGraph>& cluster, double tau,
                     SearchMethod method, GedCache* cache, ThreadPool* pool) {
  if (cluster.empty()) return -1;
  std::vector<int> counts = AppearanceCounts(cluster, tau, method, cache, pool);
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace streamtune::graph
