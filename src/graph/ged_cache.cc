#include "graph/ged_cache.h"

#include <algorithm>
#include <limits>

namespace streamtune::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

GedCache::Entry::Entry() : certified_gt(-kInf), upper(kInf) {}

GedCache::Key GedCache::MakeKey(const JobGraph& a, const JobGraph& b) {
  uint64_t ha = a.CanonicalHash();
  uint64_t hb = b.CanonicalHash();
  return Key{std::min(ha, hb), std::max(ha, hb)};
}

void GedCache::Record(const Key& key, const GedResult& result,
                      const GedOptions& options) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[key];
  if (result.exact) {
    e.has_exact = true;
    e.exact_distance = result.distance;
    e.upper = std::min(e.upper, result.distance);
    return;
  }
  // Inexact outcomes: the reported distance is always a valid upper bound
  // (the MappingCost of a concrete mapping, or the structural bound of the
  // upper-bound-only policy), never an exact distance. Only a kPruned
  // termination proves "ged > threshold" — kBudget (ran out of expansions)
  // and kGreedy (n2 > 63 fallback) must never mint a certificate.
  e.upper = std::min(e.upper, result.distance);
  if (options.threshold >= 0 &&
      result.termination == GedTermination::kPruned) {
    e.certified_gt = std::max(e.certified_gt, options.threshold);
  }
}

GedResult GedCache::Compute(const JobGraph& a, const JobGraph& b,
                            const GedOptions& options) {
  const Key key = MakeKey(a, b);
  const bool thresholded = options.threshold >= 0;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      const Entry& e = it->second;
      if (e.has_exact) {
        hits_exact_.fetch_add(1, std::memory_order_relaxed);
        GedResult r;
        r.distance = e.exact_distance;
        // Mirror a fresh search: in threshold mode a distance beyond tau is
        // reported as a non-exact bound.
        r.exact = !thresholded || e.exact_distance <= options.threshold + kEps;
        return r;
      }
      if (thresholded && options.threshold <= e.certified_gt + kEps) {
        // ged > certified_gt >= tau: a fresh search would prune; serve the
        // remembered upper bound (> tau by construction).
        hits_certified_.fetch_add(1, std::memory_order_relaxed);
        GedResult r;
        r.distance = e.upper;
        r.exact = false;
        return r;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // AStar+-LSa-mode misses route through the per-pair policy; explicit
  // direct-GED queries (the Fig. 11b ablation baseline) bypass it.
  GedResult result = options.use_lower_bound
                         ? PolicyComputeGed(a, b, options, &policy_)
                         : ComputeGed(a, b, options);
  Record(key, result, options);
  return result;
}

bool GedCache::WithinThreshold(const JobGraph& a, const JobGraph& b,
                               double tau, const GedOptions& options) {
  const Key key = MakeKey(a, b);
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      const Entry& e = it->second;
      if (e.has_exact) {
        hits_exact_.fetch_add(1, std::memory_order_relaxed);
        return e.exact_distance <= tau + kEps;
      }
      if (tau <= e.certified_gt + kEps) {
        hits_certified_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Mirror GedWithinThreshold, recording what each phase proves.
  if (LabelSetLowerBound(a, b) > tau + kEps) {
    // The lower bound alone certifies ged > tau (independent of budget).
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry& e = shard.map[key];
    e.certified_gt = std::max(e.certified_gt, tau);
    return false;
  }
  GedOptions opts = options;
  opts.threshold = tau;
  opts.use_lower_bound = true;
  GedResult r = PolicyComputeGed(a, b, opts, &policy_);
  Record(key, r, opts);
  return r.exact && r.distance <= tau + kEps;
}

GedCache::Stats GedCache::stats() const {
  Stats s;
  s.hits_exact = hits_exact_.load(std::memory_order_relaxed);
  s.hits_certified = hits_certified_.load(std::memory_order_relaxed);
  s.hits = s.hits_exact + s.hits_certified;
  s.misses = misses_.load(std::memory_order_relaxed);
  s.entries = static_cast<uint64_t>(size());
  // Read budget_exhausted before the choice counters: a search's choice is
  // counted before its termination, so sampling the result counter first
  // keeps `budget_exhausted <= policy_exact + policy_bounded` true in every
  // concurrent sample.
  s.budget_exhausted =
      policy_.budget_exhausted.load(std::memory_order_relaxed);
  s.policy_exact = policy_.exact.load(std::memory_order_relaxed);
  s.policy_bounded = policy_.bounded.load(std::memory_order_relaxed);
  s.policy_upper = policy_.upper.load(std::memory_order_relaxed);
  return s;
}

size_t GedCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void GedCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  hits_exact_.store(0, std::memory_order_relaxed);
  hits_certified_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  policy_.Reset();
}

}  // namespace streamtune::graph
