// Graph Edit Distance between dataflow DAGs (Sec. IV-C).
//
// Node labels are operator types. Unit-cost edit operations:
//   node insertion / node deletion,
//   edge insertion / edge deletion,
//   operator type modification (node relabel),
//   edge direction modification (reversal counts 1, not delete+insert).
// All costs are symmetric and uniform, so the distance is a metric (the
// triangle inequality is property-tested).
//
// Two search modes mirror the paper's Fig. 11b ablation:
//   - "direct" exact GED: A* with a zero heuristic;
//   - AStar+-LSa-style search: best-first A* with a label-set-based
//     admissible lower bound, incumbent pruning, and (for similarity search)
//     threshold pruning that abandons branches whose bound exceeds tau.

#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/job_graph.h"

namespace streamtune::graph {

/// Why a GED search stopped. Distinguishes "provably dissimilar" from "ran
/// out of budget": a threshold search that *completed* certifies
/// ged > threshold, while a budget-exhausted one proves nothing beyond its
/// upper bound — the cache must never turn the latter into a certificate,
/// and callers (e.g. GedWithinThreshold users) can observe exhaustion
/// instead of silently reading it as "dissimilar".
enum class GedTermination {
  /// Search completed and `distance` is the true GED.
  kExact = 0,
  /// Threshold search completed without finding a mapping <= threshold:
  /// ged > threshold is proven; `distance` is only an upper bound.
  kPruned,
  /// Expansion budget exhausted: `distance` is an upper bound, nothing is
  /// proven about the threshold.
  kBudget,
  /// Graphs too large for A* (> 63 nodes): greedy upper bound only.
  kGreedy,
};

const char* ToString(GedTermination t);

/// Outcome of one GED computation.
struct GedResult {
  /// The edit distance (or, if !exact, an upper bound from the best mapping
  /// found before the search stopped).
  double distance = 0;
  /// True when `distance` is provably minimal.
  bool exact = true;
  /// Number of A* state expansions performed.
  size_t expansions = 0;
  /// The node mapping realizing `distance`: mapping[u] = matched g2 node,
  /// or -1 when g1 node u is deleted. Unmapped g2 nodes are insertions.
  /// Empty only when the search found no complete mapping (should not
  /// happen for valid inputs).
  std::vector<int> mapping;
  /// How the search ended (exact <=> termination == kExact).
  GedTermination termination = GedTermination::kExact;
};

/// One edit operation of a concrete edit script.
struct EditOp {
  enum class Kind {
    kNodeDeletion,
    kNodeInsertion,
    kTypeModification,
    kEdgeDeletion,
    kEdgeInsertion,
    kDirectionModification,
  };
  Kind kind;
  /// Human-readable description (operator names involved).
  std::string description;
};

const char* EditOpKindName(EditOp::Kind kind);

/// Expands a complete node mapping into the explicit edit script whose
/// length equals MappingCost(g1, g2, mapping). Useful for explaining why
/// two dataflow DAGs were (or were not) clustered together.
std::vector<EditOp> ExplainEdits(const JobGraph& g1, const JobGraph& g2,
                                 const std::vector<int>& mapping);

/// Search options.
struct GedOptions {
  /// Use the label-set lower bound (AStar+-LSa mode). False = "direct" GED
  /// with h = 0.
  bool use_lower_bound = true;
  /// Similarity-search threshold: branches whose cost bound exceeds this are
  /// pruned and the search reports "distance > threshold" early. < 0 = none.
  double threshold = -1.0;
  /// Max A* expansions before falling back to the best known upper bound.
  size_t expansion_budget = 500000;
};

/// Computes (or bounds) the GED between two valid DAGs.
GedResult ComputeGed(const JobGraph& g1, const JobGraph& g2,
                     const GedOptions& options = {});

/// True iff ged(g1, g2) <= tau, using threshold-pruned search; much cheaper
/// than an exact computation when the answer is "no". If the expansion
/// budget is exhausted the pair is conservatively reported dissimilar —
/// pass `result` to tell the two apart (termination == kBudget means
/// "unknown", kPruned/kExact mean the boolean is proven). On the cheap
/// lower-bound screen `result` carries a synthetic kPruned outcome with the
/// trivial structural upper bound as its distance.
bool GedWithinThreshold(const JobGraph& g1, const JobGraph& g2, double tau,
                        const GedOptions& options = {},
                        GedResult* result = nullptr);

/// Cost of a specific complete node mapping (mapping[i] = g2 node for g1
/// node i, or -1 for deletion); unmapped g2 nodes are insertions. Used for
/// upper bounds and for verifying the search in tests.
double MappingCost(const JobGraph& g1, const JobGraph& g2,
                   const std::vector<int>& mapping);

/// Fast greedy upper bound on the GED (label/degree-guided assignment).
double GreedyGedUpperBound(const JobGraph& g1, const JobGraph& g2);

/// O(1) structural upper bound: the cost of the delete-everything /
/// insert-everything edit path (n1 + e1 + n2 + e2). Loose but free — the
/// value the upper-bound-only GED policy reports for pairs its lower-bound
/// screen already proved dissimilar.
double StructuralGedUpperBound(const JobGraph& g1, const JobGraph& g2);

/// The label-set lower bound on ged(g1, g2) for the full graphs (no partial
/// mapping): label-multiset mismatch plus edge-count mismatch. Admissible.
double LabelSetLowerBound(const JobGraph& g1, const JobGraph& g2);

}  // namespace streamtune::graph
