#include "timelysim/timely_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "sim/flow_solver.h"

namespace streamtune::timelysim {

TimelySimulator::TimelySimulator(JobGraph graph, sim::PerfModel model,
                                 TimelyConfig config)
    : graph_(std::move(graph)),
      model_(std::move(model)),
      config_(config),
      noise_rng_(config.noise_seed) {
  assert(graph_.Validate().ok());
  const int n = graph_.num_operators();
  source_rates_.assign(n, 0.0);
  selectivity_.resize(n);
  for (int v = 0; v < n; ++v) {
    if (graph_.op(v).is_source()) source_rates_[v] = graph_.op(v).source_rate;
    selectivity_[v] = model_.Selectivity(v);
  }
  parallelism_.assign(n, 1);
}

void TimelySimulator::ScaleAllSources(double factor) {
  for (int v = 0; v < graph_.num_operators(); ++v) {
    if (graph_.op(v).is_source()) {
      source_rates_[v] = graph_.op(v).source_rate * factor;
    }
  }
}

Status TimelySimulator::Deploy(const std::vector<int>& parallelism) {
  if (static_cast<int>(parallelism.size()) != graph_.num_operators()) {
    return Status::InvalidArgument("parallelism vector size mismatch");
  }
  for (int p : parallelism) {
    if (p < 1 || p > config_.num_workers) {
      return Status::OutOfRange("parallelism outside [1, num_workers]");
    }
  }
  bool changed = !deployed_ || parallelism != parallelism_;
  if (deployed_ && changed) ++reconfiguration_count_;
  parallelism_ = parallelism;
  deployed_ = true;
  ++deployment_count_;
  virtual_minutes_ += config_.stabilization_minutes;
  return Status::OK();
}

void TimelySimulator::SolveRates(std::vector<double>* consumed,
                                 std::vector<double>* emitted,
                                 std::vector<double>* arrival) const {
  const int n = graph_.num_operators();
  consumed->assign(n, 0.0);
  emitted->assign(n, 0.0);
  arrival->assign(n, 0.0);
  auto order = graph_.TopologicalOrder();
  assert(order.ok());
  for (int v : order.value()) {
    double in;
    if (graph_.upstream(v).empty()) {
      in = source_rates_[v];
    } else {
      in = 0;
      for (int u : graph_.upstream(v)) in += (*emitted)[u];
    }
    (*arrival)[v] = in;
    double cap = model_.ProcessingAbility(v, parallelism_[v]);
    // No backpressure: an overloaded operator just consumes what it can;
    // the remainder queues (and shows up as per-epoch latency growth).
    (*consumed)[v] = std::min(in, cap);
    (*emitted)[v] = (*consumed)[v] * selectivity_[v];
  }
}

Result<sim::JobMetrics> TimelySimulator::Measure() {
  if (!deployed_) return Status::FailedPrecondition("job not deployed");
  const int n = graph_.num_operators();
  std::vector<double> consumed, emitted, arrival;
  SolveRates(&consumed, &emitted, &arrival);

  sim::JobMetrics jm;
  jm.ops.resize(n);
  jm.lambda = 1.0;
  jm.total_parallelism = 0;

  // Rate-rule bottlenecks (Sec. V-B): consumed < ratio * upstream output.
  std::vector<bool> bottleneck(n, false);
  for (int v = 0; v < n; ++v) {
    if (arrival[v] > 0 &&
        consumed[v] < config_.bottleneck_ratio * arrival[v]) {
      bottleneck[v] = true;
    }
    if (arrival[v] > 0) {
      jm.lambda = std::min(jm.lambda, consumed[v] / arrival[v]);
    }
  }
  // Synthesized cascading view so Algorithm 1 applies unchanged: operators
  // with a bottleneck strict descendant report "backpressured".
  auto order = graph_.TopologicalOrder();
  assert(order.ok() && "timely job graphs are validated acyclic");
  std::vector<bool> blocked(n, false);
  for (auto it = order.value().rbegin(); it != order.value().rend(); ++it) {
    int v = *it;
    for (int d : graph_.downstream(v)) {
      if (bottleneck[d] || blocked[d]) {
        blocked[v] = true;
        break;
      }
    }
  }

  for (int v = 0; v < n; ++v) {
    sim::OperatorMetrics& m = jm.ops[v];
    double cap = model_.ProcessingAbility(v, parallelism_[v]);
    double rate_eps = 1.0 + Clamp(noise_rng_.Normal(0.0, config_.rate_noise),
                                  -2.5 * config_.rate_noise,
                                  2.5 * config_.rate_noise);
    m.busy_frac = Clamp(consumed[v] / cap, 0.0, 1.0);
    m.cpu_load = m.busy_frac;
    // An overloaded operator floods the log recorder; its own processed-
    // record counts come out undercounted (both directions equally, so
    // observed selectivities stay unbiased but capacity estimates deflate).
    double log_loss = 1.0;
    if (m.busy_frac > 0.9) {
      log_loss = noise_rng_.Uniform(config_.overload_log_loss_min,
                                    config_.overload_log_loss_max);
    }
    m.input_rate = consumed[v] * rate_eps * log_loss;
    m.output_rate = emitted[v] * rate_eps * log_loss;
    m.desired_input_rate = arrival[v] * rate_eps;
    m.saturated = bottleneck[v];
    m.backpressured = blocked[v];
    m.backpressured_frac = blocked[v] ? 1.0 - jm.lambda : 0.0;
    m.idle_frac = std::max(0.0, 1.0 - m.busy_frac - m.backpressured_frac);
    // Timely workers spin while idle, so busy-time-style "useful time"
    // measurements are badly inflated — the reason DS2/ContTune massively
    // over-provision on Timely (Fig. 8a) while StreamTune, which never reads
    // useful time, does not.
    double spin = config_.spin_inflation * (1.0 - m.busy_frac);
    m.useful_time_frac_observed =
        Clamp(m.busy_frac + spin, 1e-4, 1.0) * rate_eps;
    jm.total_parallelism += parallelism_[v];
    jm.used_cores += parallelism_[v] * m.busy_frac;
  }
  bool any = false;
  for (int v = 0; v < n; ++v) any = any || bottleneck[v];
  jm.job_backpressure = any;
  // The 85% rate rule already has a built-in margin, so every detected
  // bottleneck is a sustained one.
  jm.severe_backpressure = any;
  return jm;
}

Result<EpochTrace> TimelySimulator::RunEpochs(int num_epochs) {
  if (!deployed_) return Status::FailedPrecondition("job not deployed");
  if (num_epochs <= 0) return Status::InvalidArgument("num_epochs <= 0");
  const int n = graph_.num_operators();
  const double E = config_.epoch_seconds;

  // Unthrottled per-epoch record volumes per operator.
  std::vector<double> huge(n, 1e18);
  sim::FlowResult flow =
      sim::SolveFlow(graph_, huge, selectivity_, source_rates_);

  auto order = graph_.TopologicalOrder();
  assert(order.ok() && "timely job graphs are validated acyclic");
  EpochTrace trace;
  trace.latencies.reserve(num_epochs);
  std::vector<double> finish_prev(n, 0.0);
  int sink = order.value().back();
  for (int e = 0; e < num_epochs; ++e) {
    double t_close = (e + 1) * E;
    std::vector<double> complete(n, 0.0);
    for (int v : order.value()) {
      double cap = model_.ProcessingAbility(v, parallelism_[v]);
      double work = flow.desired_in[v] * E / cap;  // seconds of service
      double start;
      if (graph_.upstream(v).empty()) {
        // A source cannot finish emitting before the epoch closes.
        start = std::max(finish_prev[v], e * E);
        complete[v] = std::max(t_close, start + work);
      } else {
        start = finish_prev[v];
        for (int u : graph_.upstream(v)) {
          start = std::max(start, complete[u]);
        }
        complete[v] = start + work;
      }
      finish_prev[v] = complete[v];
    }
    double noise = 1.0 + 0.05 * noise_rng_.Uniform();
    trace.latencies.push_back((complete[sink] - t_close) * noise);
  }
  return trace;
}

std::vector<int> TimelySimulator::OracleParallelism() const {
  const int n = graph_.num_operators();
  std::vector<double> huge(n, 1e18);
  sim::FlowResult flow =
      sim::SolveFlow(graph_, huge, selectivity_, source_rates_);
  std::vector<int> p(n, 1);
  for (int v = 0; v < n; ++v) {
    int need = model_.MinParallelismFor(v, flow.desired_in[v],
                                        config_.num_workers);
    p[v] = std::min(need, config_.num_workers);
  }
  return p;
}

void TimelySimulator::ResetCounters() {
  deployment_count_ = 0;
  reconfiguration_count_ = 0;
  virtual_minutes_ = 0;
}

}  // namespace streamtune::timelysim
