// Timely-Dataflow-like engine simulator (Sec. V-B, V-F).
//
// Differs from the Flink-like engine in the two ways the paper relies on:
//   1. No built-in backpressure. Sources always emit at the offered rate;
//      an under-provisioned operator accumulates a backlog instead of
//      throttling its upstream. Bottlenecks are therefore detected with the
//      paper's rate rule: an operator is a bottleneck when its consumed
//      input rate falls below 85% of the combined output rates of its
//      upstream operators (MessagesEvent-style rate logs).
//   2. The reported performance metric is per-epoch latency: the time from
//      an epoch's close until its data has fully drained through the sink,
//      computed with a fluid backlog model across consecutive epochs.

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace streamtune::timelysim {

/// Knobs for the Timely-like engine.
struct TimelyConfig {
  /// Worker threads; also the per-operator parallelism ceiling (paper: 10).
  int num_workers = 10;
  /// Bottleneck rule: consumed rate < `bottleneck_ratio` * upstream output.
  double bottleneck_ratio = 0.85;
  /// Epoch length in seconds (fixed data interval per epoch).
  double epoch_seconds = 1.0;
  /// Relative noise on the rate-log measurements.
  double rate_noise = 0.05;
  /// Fraction of idle time that non-blocking, spinning Timely workers report
  /// as busy. Timely workers poll continuously, so busy-time-style "useful
  /// time" reads ~100% regardless of load (default 1.0): tuners that divide
  /// throughput by useful time see capacity == current throughput, can
  /// never detect headroom, and ratchet upward on rate-log noise — the
  /// mechanism behind DS2/ContTune's massive over-provisioning on Timely
  /// (Fig. 8a).
  double spin_inflation = 0.97;
  /// During overload the raw event-log volume overwhelms the recorder and
  /// per-operator processed-record counts are undercounted by a factor in
  /// [min, max] (the reason the paper had to modify Timely's log recorder).
  /// Applied to an operator's own input/output rate logs when its busy
  /// fraction exceeds 90%.
  double overload_log_loss_min = 0.45;
  double overload_log_loss_max = 0.75;
  /// Virtual minutes charged per stop-and-restart deployment.
  double stabilization_minutes = 10.0;
  uint64_t noise_seed = 4321;
};

/// Per-epoch latency trace from one measurement run.
struct EpochTrace {
  /// latency[e] = seconds from epoch e's close until fully processed.
  std::vector<double> latencies;
};

/// Simulated Timely Dataflow deployment of one streaming job.
class TimelySimulator : public sim::StreamEngine {
 public:
  TimelySimulator(JobGraph graph, sim::PerfModel model,
                  TimelyConfig config = {});

  const JobGraph& graph() const override { return graph_; }
  int max_parallelism() const override { return config_.num_workers; }
  Status Deploy(const std::vector<int>& parallelism) override;
  /// Rate-based metrics. Backpressure fields are synthesized from the 85%
  /// rule (`backpressured` = operator starves downstream of its demand).
  Result<sim::JobMetrics> Measure() override;
  const std::vector<int>& parallelism() const override {
    return parallelism_;
  }
  void ScaleAllSources(double factor) override;
  std::vector<double> current_source_rates() const override {
    return source_rates_;
  }
  int reconfiguration_count() const override {
    return reconfiguration_count_;
  }
  int deployment_count() const override { return deployment_count_; }
  double virtual_minutes() const override { return virtual_minutes_; }
  void AdvanceVirtualMinutes(double minutes) override {
    virtual_minutes_ += minutes;
  }
  void ResetCounters() override;
  std::vector<int> OracleParallelism() const override;

  /// Simulates `num_epochs` consecutive epochs at the current deployment and
  /// returns the per-epoch latencies (Fig. 8b-d).
  Result<EpochTrace> RunEpochs(int num_epochs);

  const sim::PerfModel& perf_model() const { return model_; }

 private:
  /// Consumed/emitted steady rates WITHOUT backpressure: upstream never
  /// throttles; an overloaded operator consumes only its capacity.
  void SolveRates(std::vector<double>* consumed,
                  std::vector<double>* emitted,
                  std::vector<double>* arrival) const;

  JobGraph graph_;
  sim::PerfModel model_;
  TimelyConfig config_;
  Rng noise_rng_;

  std::vector<double> source_rates_;
  std::vector<double> selectivity_;
  std::vector<int> parallelism_;
  bool deployed_ = false;
  int deployment_count_ = 0;
  int reconfiguration_count_ = 0;
  double virtual_minutes_ = 0;
};

}  // namespace streamtune::timelysim
