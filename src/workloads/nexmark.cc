#include "workloads/nexmark.h"

#include <cassert>
#include <cstring>

namespace streamtune::workloads {

const char* NexmarkQueryName(NexmarkQuery q) {
  switch (q) {
    case NexmarkQuery::kQ1:
      return "Q1";
    case NexmarkQuery::kQ2:
      return "Q2";
    case NexmarkQuery::kQ3:
      return "Q3";
    case NexmarkQuery::kQ5:
      return "Q5";
    case NexmarkQuery::kQ8:
      return "Q8";
  }
  return "?";
}

std::vector<NexmarkQuery> AllNexmarkQueries() {
  return {NexmarkQuery::kQ1, NexmarkQuery::kQ2, NexmarkQuery::kQ3,
          NexmarkQuery::kQ5, NexmarkQuery::kQ8};
}

double NexmarkRateUnit(NexmarkQuery query, Engine engine,
                       const char* stream) {
  const bool flink = engine == Engine::kFlink;
  auto is = [&](const char* s) { return std::strcmp(stream, s) == 0; };
  switch (query) {
    case NexmarkQuery::kQ1:
      if (is("bids")) return flink ? 700e3 : 9e6;
      break;
    case NexmarkQuery::kQ2:
      if (is("bids")) return flink ? 900e3 : 9e6;
      break;
    case NexmarkQuery::kQ3:
      if (is("auctions")) return flink ? 200e3 : 5e6;
      if (is("persons")) return flink ? 40e3 : 5e6;
      break;
    case NexmarkQuery::kQ5:
      if (is("bids")) return flink ? 80e3 : 10e6;
      break;
    case NexmarkQuery::kQ8:
      if (is("auctions")) return flink ? 100e3 : 4e6;
      if (is("persons")) return flink ? 60e3 : 4e6;
      break;
  }
  assert(false && "stream not used by this query");
  return 0;
}

namespace {

OperatorSpec Source(const char* name, double rate, double width) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kSource;
  s.source_rate = rate;
  s.tuple_width_in = width;
  s.tuple_width_out = width;
  s.tuple_data_type = KeyClass::kComposite;
  return s;
}

OperatorSpec Sink(const char* name, double width) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kSink;
  s.tuple_width_in = width;
  s.tuple_width_out = 0;
  return s;
}

}  // namespace

JobGraph BuildNexmarkJob(NexmarkQuery query, Engine engine) {
  const char* engine_tag = engine == Engine::kFlink ? "flink" : "timely";
  JobGraph g(std::string("nexmark-") + NexmarkQueryName(query) + "-" +
             engine_tag);
  switch (query) {
    case NexmarkQuery::kQ1: {
      // Currency conversion: stateless map over bids.
      int src = g.AddOperator(
          Source("bids", NexmarkRateUnit(query, engine, "bids"), 128));
      OperatorSpec map;
      map.name = "currency-map";
      map.type = OperatorType::kMap;
      map.tuple_width_in = 128;
      map.tuple_width_out = 136;
      int m = g.AddOperator(map);
      int sink = g.AddOperator(Sink("sink", 136));
      (void)g.AddEdge(src, m);
      (void)g.AddEdge(m, sink);
      break;
    }
    case NexmarkQuery::kQ2: {
      // Selection: stateless filter over bids.
      int src = g.AddOperator(
          Source("bids", NexmarkRateUnit(query, engine, "bids"), 128));
      OperatorSpec filter;
      filter.name = "auction-filter";
      filter.type = OperatorType::kFilter;
      filter.tuple_width_in = 128;
      filter.tuple_width_out = 128;
      int f = g.AddOperator(filter);
      int sink = g.AddOperator(Sink("sink", 128));
      (void)g.AddEdge(src, f);
      (void)g.AddEdge(f, sink);
      break;
    }
    case NexmarkQuery::kQ3: {
      // Local item suggestion: incremental (record-at-a-time) join of
      // filtered auctions with filtered persons.
      int auctions = g.AddOperator(
          Source("auctions", NexmarkRateUnit(query, engine, "auctions"), 196));
      int persons = g.AddOperator(
          Source("persons", NexmarkRateUnit(query, engine, "persons"), 224));
      OperatorSpec fa;
      fa.name = "category-filter";
      fa.type = OperatorType::kFilter;
      fa.tuple_width_in = 196;
      fa.tuple_width_out = 196;
      int f1 = g.AddOperator(fa);
      OperatorSpec fp;
      fp.name = "state-filter";
      fp.type = OperatorType::kFilter;
      fp.tuple_width_in = 224;
      fp.tuple_width_out = 224;
      int f2 = g.AddOperator(fp);
      OperatorSpec join;
      join.name = "incremental-join";
      join.type = OperatorType::kJoin;
      join.join_key_class = KeyClass::kLong;
      join.tuple_width_in = 210;
      join.tuple_width_out = 280;
      int j = g.AddOperator(join);
      int sink = g.AddOperator(Sink("sink", 280));
      (void)g.AddEdge(auctions, f1);
      (void)g.AddEdge(persons, f2);
      (void)g.AddEdge(f1, j);
      (void)g.AddEdge(f2, j);
      (void)g.AddEdge(j, sink);
      break;
    }
    case NexmarkQuery::kQ5: {
      // Hot items: sliding-window aggregation over bids plus a global max.
      int src = g.AddOperator(
          Source("bids", NexmarkRateUnit(query, engine, "bids"), 128));
      OperatorSpec map;
      map.name = "project-bid";
      map.type = OperatorType::kMap;
      map.tuple_width_in = 128;
      map.tuple_width_out = 64;
      int m = g.AddOperator(map);
      OperatorSpec win;
      win.name = "sliding-count";
      win.type = OperatorType::kAggregate;
      win.window_type = WindowType::kSliding;
      win.window_policy = WindowPolicy::kTime;
      win.window_length = 60.0;
      win.sliding_length = 5.0;
      win.aggregate_function = AggregateFunction::kCount;
      win.aggregate_class = KeyClass::kLong;
      win.aggregate_key_class = KeyClass::kLong;
      win.tuple_width_in = 64;
      win.tuple_width_out = 48;
      int w = g.AddOperator(win);
      OperatorSpec maxagg;
      maxagg.name = "window-max";
      maxagg.type = OperatorType::kAggregate;
      maxagg.window_type = WindowType::kTumbling;
      maxagg.window_policy = WindowPolicy::kTime;
      maxagg.window_length = 5.0;
      maxagg.aggregate_function = AggregateFunction::kMax;
      maxagg.aggregate_class = KeyClass::kLong;
      maxagg.aggregate_key_class = KeyClass::kLong;
      maxagg.tuple_width_in = 48;
      maxagg.tuple_width_out = 48;
      int x = g.AddOperator(maxagg);
      int sink = g.AddOperator(Sink("sink", 48));
      (void)g.AddEdge(src, m);
      (void)g.AddEdge(m, w);
      (void)g.AddEdge(w, x);
      (void)g.AddEdge(x, sink);
      break;
    }
    case NexmarkQuery::kQ8: {
      // Monitor new users: tumbling-window join of persons and auctions.
      int persons = g.AddOperator(
          Source("persons", NexmarkRateUnit(query, engine, "persons"), 224));
      int auctions = g.AddOperator(
          Source("auctions", NexmarkRateUnit(query, engine, "auctions"), 196));
      OperatorSpec mp;
      mp.name = "project-person";
      mp.type = OperatorType::kMap;
      mp.tuple_width_in = 224;
      mp.tuple_width_out = 96;
      int m1 = g.AddOperator(mp);
      OperatorSpec ma;
      ma.name = "project-auction";
      ma.type = OperatorType::kMap;
      ma.tuple_width_in = 196;
      ma.tuple_width_out = 96;
      int m2 = g.AddOperator(ma);
      OperatorSpec join;
      join.name = "tumbling-window-join";
      join.type = OperatorType::kWindowJoin;
      join.window_type = WindowType::kTumbling;
      join.window_policy = WindowPolicy::kTime;
      join.window_length = 10.0;
      join.join_key_class = KeyClass::kLong;
      join.tuple_width_in = 96;
      join.tuple_width_out = 128;
      int j = g.AddOperator(join);
      int sink = g.AddOperator(Sink("sink", 128));
      (void)g.AddEdge(persons, m1);
      (void)g.AddEdge(auctions, m2);
      (void)g.AddEdge(m1, j);
      (void)g.AddEdge(m2, j);
      (void)g.AddEdge(j, sink);
      break;
    }
  }
  assert(g.Validate().ok());
  return g;
}

}  // namespace streamtune::workloads
