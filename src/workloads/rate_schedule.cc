#include "workloads/rate_schedule.h"

#include "common/rng.h"

namespace streamtune::workloads {

std::vector<double> BasicRateCycle() {
  return {3, 7, 4, 2, 1, 10, 8, 5, 6, 9};
}

std::vector<double> RateSequence(int permutation_index, uint64_t seed) {
  std::vector<double> cycle = BasicRateCycle();
  if (permutation_index > 0) {
    Rng rng(seed + static_cast<uint64_t>(permutation_index));
    rng.Shuffle(&cycle);
  }
  std::vector<double> seq = cycle;
  seq.insert(seq.end(), cycle.begin(), cycle.end());
  return seq;
}

std::vector<double> FullRateSchedule(uint64_t seed) {
  std::vector<double> schedule;
  schedule.reserve(120);
  for (int p = 0; p < 6; ++p) {
    std::vector<double> seq = RateSequence(p, seed);
    schedule.insert(schedule.end(), seq.begin(), seq.end());
  }
  return schedule;
}

}  // namespace streamtune::workloads
