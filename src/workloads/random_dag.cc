#include "workloads/random_dag.h"

#include <cassert>
#include <cmath>
#include <string>

namespace streamtune::workloads {

namespace {

OperatorSpec RandSource(const std::string& name, double rate, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kSource;
  s.source_rate = rate;
  s.tuple_width_in = s.tuple_width_out = rng->UniformInt(2, 16) * 16.0;
  s.tuple_data_type = static_cast<KeyClass>(rng->UniformInt(1, 4));
  return s;
}

OperatorSpec RandUnary(const std::string& name, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  int pick = rng->UniformInt(0, 2);
  s.type = pick == 0   ? OperatorType::kFilter
           : pick == 1 ? OperatorType::kMap
                       : OperatorType::kFlatMap;
  s.tuple_width_in = rng->UniformInt(2, 16) * 16.0;
  s.tuple_width_out = rng->UniformInt(2, 16) * 16.0;
  return s;
}

OperatorSpec RandAgg(const std::string& name, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kAggregate;
  s.window_type =
      rng->Bernoulli(0.5) ? WindowType::kTumbling : WindowType::kSliding;
  s.window_policy =
      rng->Bernoulli(0.5) ? WindowPolicy::kTime : WindowPolicy::kCount;
  s.window_length = rng->UniformInt(1, 30) * 10.0;
  if (s.window_type == WindowType::kSliding) {
    s.sliding_length = s.window_length / rng->UniformInt(2, 8);
  }
  s.aggregate_function = static_cast<AggregateFunction>(
      rng->UniformInt(1, kNumAggregateFunctions - 1));
  s.aggregate_class = static_cast<KeyClass>(rng->UniformInt(1, 4));
  s.aggregate_key_class = static_cast<KeyClass>(rng->UniformInt(1, 4));
  s.tuple_width_in = rng->UniformInt(2, 16) * 16.0;
  s.tuple_width_out = rng->UniformInt(1, 8) * 16.0;
  return s;
}

OperatorSpec RandJoin(const std::string& name, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  bool windowed = rng->Bernoulli(0.6);
  s.type = windowed ? OperatorType::kWindowJoin : OperatorType::kJoin;
  if (windowed) {
    s.window_type =
        rng->Bernoulli(0.5) ? WindowType::kTumbling : WindowType::kSliding;
    s.window_policy = WindowPolicy::kTime;
    s.window_length = rng->UniformInt(1, 12) * 10.0;
    if (s.window_type == WindowType::kSliding) {
      s.sliding_length = s.window_length / rng->UniformInt(2, 4);
    }
  }
  s.join_key_class = static_cast<KeyClass>(rng->UniformInt(1, 4));
  s.tuple_width_in = rng->UniformInt(2, 16) * 16.0;
  s.tuple_width_out = rng->UniformInt(4, 24) * 16.0;
  return s;
}

int Chain(JobGraph* g, int from, int length, const std::string& prefix,
          Rng* rng) {
  int prev = from;
  for (int i = 0; i < length; ++i) {
    int id =
        g->AddOperator(RandUnary(prefix + "-u" + std::to_string(i), rng));
    (void)g->AddEdge(prev, id);
    prev = id;
  }
  return prev;
}

}  // namespace

JobGraph GenerateRandomDag(Rng* rng, const RandomDagConfig& config) {
  static int counter = 0;
  JobGraph g("rand-" + std::to_string(counter++));
  int num_sources = rng->UniformInt(config.min_sources, config.max_sources);

  // Log-uniform rate unit so small and large rates are both represented.
  double lo = std::log(config.min_rate_unit);
  double hi = std::log(config.max_rate_unit);
  double rate = std::exp(rng->Uniform(lo, hi));

  // Build per-source branches, then join them pairwise.
  std::vector<int> heads;
  for (int s = 0; s < num_sources; ++s) {
    int src = g.AddOperator(
        RandSource("source-" + std::to_string(s), rate, rng));
    heads.push_back(Chain(&g, src, rng->UniformInt(1, config.max_chain_length),
                          "s" + std::to_string(s), rng));
  }
  while (heads.size() > 1) {
    int a = heads.back();
    heads.pop_back();
    int b = heads.back();
    heads.pop_back();
    int j = g.AddOperator(
        RandJoin("join-" + std::to_string(heads.size()), rng));
    (void)g.AddEdge(a, j);
    (void)g.AddEdge(b, j);
    heads.push_back(rng->Bernoulli(0.4)
                        ? Chain(&g, j, 1, "pj" + std::to_string(j), rng)
                        : j);
  }
  int tail = heads[0];
  if (rng->Bernoulli(0.7)) {
    int agg = g.AddOperator(RandAgg("aggregate", rng));
    (void)g.AddEdge(tail, agg);
    tail = agg;
  }
  OperatorSpec sink;
  sink.name = "sink";
  sink.type = OperatorType::kSink;
  sink.tuple_width_in = g.op(tail).tuple_width_out;
  int sk = g.AddOperator(sink);
  (void)g.AddEdge(tail, sk);

  assert(g.Validate().ok());
  return g;
}

std::vector<JobGraph> GenerateRandomDags(int count, uint64_t seed,
                                         const RandomDagConfig& config) {
  Rng rng(seed);
  std::vector<JobGraph> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(GenerateRandomDag(&rng, config));
  return out;
}

}  // namespace streamtune::workloads
