// Nexmark benchmark queries Q1, Q2, Q3, Q5, Q8 as logical dataflow DAGs
// (Sec. V-A), with the per-engine source-rate units of Table II.

#pragma once

#include <vector>

#include "dataflow/job_graph.h"

namespace streamtune::workloads {

/// The Nexmark queries evaluated in the paper.
enum class NexmarkQuery { kQ1, kQ2, kQ3, kQ5, kQ8 };

/// Which engine's source-rate units (Table II) to bake into the job.
enum class Engine { kFlink, kTimely };

const char* NexmarkQueryName(NexmarkQuery q);

/// All five evaluated queries, in paper order.
std::vector<NexmarkQuery> AllNexmarkQueries();

/// Builds the logical DAG for `query`. Source operators carry their Table II
/// rate unit W_u as the base source rate; the rate schedule scales them.
JobGraph BuildNexmarkJob(NexmarkQuery query, Engine engine);

/// The W_u (records/second) for a given stream of a query, per Table II.
/// Stream name is one of "bids", "auctions", "persons".
double NexmarkRateUnit(NexmarkQuery query, Engine engine,
                       const char* stream);

}  // namespace streamtune::workloads
