// Source-rate simulation (Sec. V-A).
//
// The paper drives every query with a periodic pattern: a basic cycle of ten
// multipliers [3,7,4,2,1,10,8,5,6,9] (in units of W_u), replicated to twenty,
// with six permutations of the cycle per query — 120 source-rate changes in
// total per query.

#pragma once

#include <cstdint>
#include <vector>

namespace streamtune::workloads {

/// The paper's basic cycle of ten rate multipliers.
std::vector<double> BasicRateCycle();

/// One 20-step sequence: a permutation of the basic cycle, replicated twice.
/// `permutation_index` selects a deterministic permutation (0 = identity).
std::vector<double> RateSequence(int permutation_index, uint64_t seed = 77);

/// The full experimental schedule: six permuted 20-step sequences
/// concatenated = 120 rate multipliers.
std::vector<double> FullRateSchedule(uint64_t seed = 77);

}  // namespace streamtune::workloads
