#include "workloads/pqp.h"

#include <cassert>

#include "common/rng.h"

namespace streamtune::workloads {

const char* PqpTemplateName(PqpTemplate t) {
  switch (t) {
    case PqpTemplate::kLinear:
      return "Linear";
    case PqpTemplate::kTwoWayJoin:
      return "2-way-join";
    case PqpTemplate::kThreeWayJoin:
      return "3-way-join";
  }
  return "?";
}

int PqpVariantCount(PqpTemplate t) {
  switch (t) {
    case PqpTemplate::kLinear:
      return 8;
    case PqpTemplate::kTwoWayJoin:
      return 16;
    case PqpTemplate::kThreeWayJoin:
      return 32;
  }
  return 0;
}

double PqpRateUnit(PqpTemplate t) {
  switch (t) {
    case PqpTemplate::kLinear:
      return 5e3;
    case PqpTemplate::kTwoWayJoin:
      return 0.5e3;
    case PqpTemplate::kThreeWayJoin:
      return 0.25e3;
  }
  return 0;
}

namespace {

OperatorSpec MakeSource(const std::string& name, double rate, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kSource;
  s.source_rate = rate;
  s.tuple_width_in = s.tuple_width_out = rng->UniformInt(2, 16) * 16.0;
  s.tuple_data_type = KeyClass::kComposite;
  return s;
}

OperatorSpec RandomUnary(const std::string& name, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  int pick = rng->UniformInt(0, 2);
  s.type = pick == 0   ? OperatorType::kFilter
           : pick == 1 ? OperatorType::kMap
                       : OperatorType::kFlatMap;
  s.tuple_width_in = rng->UniformInt(2, 16) * 16.0;
  s.tuple_width_out = rng->UniformInt(2, 16) * 16.0;
  return s;
}

OperatorSpec RandomWindowedAgg(const std::string& name, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kAggregate;
  s.window_type =
      rng->Bernoulli(0.5) ? WindowType::kTumbling : WindowType::kSliding;
  s.window_policy =
      rng->Bernoulli(0.5) ? WindowPolicy::kTime : WindowPolicy::kCount;
  s.window_length = rng->UniformInt(1, 12) * 10.0;
  if (s.window_type == WindowType::kSliding) {
    s.sliding_length = s.window_length / rng->UniformInt(2, 6);
  }
  int fn = rng->UniformInt(1, kNumAggregateFunctions - 1);
  s.aggregate_function = static_cast<AggregateFunction>(fn);
  s.aggregate_class = static_cast<KeyClass>(rng->UniformInt(1, 3));
  s.aggregate_key_class = static_cast<KeyClass>(rng->UniformInt(1, 3));
  s.tuple_width_in = rng->UniformInt(2, 16) * 16.0;
  s.tuple_width_out = rng->UniformInt(1, 8) * 16.0;
  return s;
}

OperatorSpec RandomWindowJoin(const std::string& name, Rng* rng) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kWindowJoin;
  s.window_type =
      rng->Bernoulli(0.5) ? WindowType::kTumbling : WindowType::kSliding;
  s.window_policy = WindowPolicy::kTime;
  s.window_length = rng->UniformInt(1, 6) * 10.0;
  if (s.window_type == WindowType::kSliding) {
    s.sliding_length = s.window_length / rng->UniformInt(2, 4);
  }
  s.join_key_class = static_cast<KeyClass>(rng->UniformInt(1, 3));
  s.tuple_width_in = rng->UniformInt(2, 16) * 16.0;
  s.tuple_width_out = rng->UniformInt(4, 20) * 16.0;
  return s;
}

OperatorSpec MakeSink(double width) {
  OperatorSpec s;
  s.name = "sink";
  s.type = OperatorType::kSink;
  s.tuple_width_in = width;
  return s;
}

// One filter/map chain: returns the id of the chain's last operator.
int AddChain(JobGraph* g, int from, int length, const std::string& prefix,
             Rng* rng) {
  int prev = from;
  for (int i = 0; i < length; ++i) {
    int id = g->AddOperator(
        RandomUnary(prefix + "-op" + std::to_string(i), rng));
    (void)g->AddEdge(prev, id);
    prev = id;
  }
  return prev;
}

}  // namespace

JobGraph BuildPqpJob(PqpTemplate t, int index) {
  assert(index >= 0 && index < PqpVariantCount(t));
  Rng rng(0x5eed0000ULL + static_cast<uint64_t>(t) * 1000 + index);
  JobGraph g(std::string("pqp-") + PqpTemplateName(t) + "-" +
             std::to_string(index));
  double wu = PqpRateUnit(t);

  switch (t) {
    case PqpTemplate::kLinear: {
      int src = g.AddOperator(MakeSource("source", wu, &rng));
      int tail = AddChain(&g, src, rng.UniformInt(1, 4), "chain", &rng);
      int agg = g.AddOperator(RandomWindowedAgg("aggregate", &rng));
      (void)g.AddEdge(tail, agg);
      int sink = g.AddOperator(MakeSink(g.op(agg).tuple_width_out));
      (void)g.AddEdge(agg, sink);
      break;
    }
    case PqpTemplate::kTwoWayJoin: {
      int s1 = g.AddOperator(MakeSource("source-a", wu, &rng));
      int s2 = g.AddOperator(MakeSource("source-b", wu, &rng));
      int t1 = AddChain(&g, s1, rng.UniformInt(0, 2), "left", &rng);
      int t2 = AddChain(&g, s2, rng.UniformInt(0, 2), "right", &rng);
      int j = g.AddOperator(RandomWindowJoin("join", &rng));
      (void)g.AddEdge(t1, j);
      (void)g.AddEdge(t2, j);
      int tail = j;
      if (rng.Bernoulli(0.6)) {
        int agg = g.AddOperator(RandomWindowedAgg("aggregate", &rng));
        (void)g.AddEdge(j, agg);
        tail = agg;
      }
      int sink = g.AddOperator(MakeSink(g.op(tail).tuple_width_out));
      (void)g.AddEdge(tail, sink);
      break;
    }
    case PqpTemplate::kThreeWayJoin: {
      int s1 = g.AddOperator(MakeSource("source-a", wu, &rng));
      int s2 = g.AddOperator(MakeSource("source-b", wu, &rng));
      int s3 = g.AddOperator(MakeSource("source-c", wu, &rng));
      int t1 = AddChain(&g, s1, rng.UniformInt(0, 2), "a", &rng);
      int t2 = AddChain(&g, s2, rng.UniformInt(0, 1), "b", &rng);
      int t3 = AddChain(&g, s3, rng.UniformInt(0, 2), "c", &rng);
      int j1 = g.AddOperator(RandomWindowJoin("join-ab", &rng));
      (void)g.AddEdge(t1, j1);
      (void)g.AddEdge(t2, j1);
      int j2 = g.AddOperator(RandomWindowJoin("join-abc", &rng));
      (void)g.AddEdge(j1, j2);
      (void)g.AddEdge(t3, j2);
      int tail = j2;
      if (rng.Bernoulli(0.6)) {
        int agg = g.AddOperator(RandomWindowedAgg("aggregate", &rng));
        (void)g.AddEdge(j2, agg);
        tail = agg;
      }
      int sink = g.AddOperator(MakeSink(g.op(tail).tuple_width_out));
      (void)g.AddEdge(tail, sink);
      break;
    }
  }
  assert(g.Validate().ok());
  return g;
}

std::vector<JobGraph> AllPqpJobs() {
  std::vector<JobGraph> jobs;
  for (PqpTemplate t : {PqpTemplate::kLinear, PqpTemplate::kTwoWayJoin,
                        PqpTemplate::kThreeWayJoin}) {
    for (int i = 0; i < PqpVariantCount(t); ++i) {
      jobs.push_back(BuildPqpJob(t, i));
    }
  }
  return jobs;
}

}  // namespace streamtune::workloads
