// PQP synthetic query workload (Sec. V-A, from the ZeroTune paper).
//
// Three parameterized templates: Linear (8 query variants), 2-way-join (16)
// and 3-way-join (32). Variants differ deterministically (seeded by template
// and index) in chain length, operator mix, window configuration and tuple
// widths, reflecting the diversity the paper uses to test generalization.
// Source-rate units W_u per Table II: Linear 5K, 2-way-join 0.5K,
// 3-way-join 0.25K records/second (Flink only).

#pragma once

#include <string>
#include <vector>

#include "dataflow/job_graph.h"

namespace streamtune::workloads {

/// The three PQP query templates.
enum class PqpTemplate { kLinear, kTwoWayJoin, kThreeWayJoin };

const char* PqpTemplateName(PqpTemplate t);

/// Number of query variants the paper evaluates per template.
int PqpVariantCount(PqpTemplate t);

/// Table II W_u for a template (records/second).
double PqpRateUnit(PqpTemplate t);

/// Builds variant `index` (in [0, PqpVariantCount)) of a template. Sources
/// carry W_u as their base rate.
JobGraph BuildPqpJob(PqpTemplate t, int index);

/// All variants of all templates (8 + 16 + 32 = 56 jobs).
std::vector<JobGraph> AllPqpJobs();

}  // namespace streamtune::workloads
