#include "workloads/cost_config.h"

namespace streamtune::workloads {

double CostScaleFor(const std::string& name) {
  auto starts_with = [&](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  auto ends_with = [&](const char* suffix) {
    std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  if (starts_with("pqp-")) return 15.0;               // heavyweight operators
  if (starts_with("nexmark-") && ends_with("-timely")) {
    return 0.0015;  // native Rust operators
  }
  return 1.0;  // Flink baseline
}

sim::CostModelConfig CostConfigFor(const JobGraph& job) {
  sim::CostModelConfig cfg;
  cfg.cost_scale = CostScaleFor(job.name());
  return cfg;
}

}  // namespace streamtune::workloads
