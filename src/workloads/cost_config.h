// Per-workload cost-model calibration.
//
// The three workload families run on very different "hardware" in the paper:
//   - Nexmark-on-Flink: JVM operators with serialization overhead (baseline
//     per-record costs);
//   - Nexmark-on-Timely: native Rust operators, orders of magnitude cheaper
//     per record (which is why Table II's Timely rate units are in the
//     millions);
//   - PQP: the ZeroTune testbed's heavyweight synthetic operators, whose
//     rate units are only hundreds of records/second.
// This helper picks a calibrated cost scale from the job's name so each
// family exercises meaningful parallelism ranges under its Table II rates.

#pragma once

#include "dataflow/job_graph.h"
#include "sim/cost_model.h"

namespace streamtune::workloads {

/// Cost-model configuration matched to the workload family of `job`
/// (by job-name prefix; unknown names get the Flink baseline).
sim::CostModelConfig CostConfigFor(const JobGraph& job);

/// The scale factors behind CostConfigFor, exposed for tests.
double CostScaleFor(const std::string& job_name);

}  // namespace streamtune::workloads
