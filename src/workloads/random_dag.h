// Random dataflow DAG generation for the pre-training corpus.
//
// Produces valid streaming jobs of varied shape (1-3 sources, unary chains,
// optional joins and aggregations, <= ~20 operators) so the pre-training
// history covers the structural diversity shown in Fig. 5.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dataflow/job_graph.h"

namespace streamtune::workloads {

/// Shape controls for random job generation.
struct RandomDagConfig {
  int min_sources = 1;
  int max_sources = 3;
  int max_chain_length = 3;
  /// Source-rate unit range (uniform log-ish choice between the two).
  double min_rate_unit = 50e3;
  double max_rate_unit = 2e6;
};

/// Generates one random valid streaming job.
JobGraph GenerateRandomDag(Rng* rng, const RandomDagConfig& config = {});

/// Generates `count` random jobs from a base seed.
std::vector<JobGraph> GenerateRandomDags(int count, uint64_t seed,
                                         const RandomDagConfig& config = {});

}  // namespace streamtune::workloads
