#include "index/nearest_center_index.h"

#include <array>
#include <cmath>

#include "graph/ged_policy.h"

namespace streamtune::index {

namespace {

constexpr double kEps = 1e-9;

// Stable counting sort of all columns by score descending (key = max score
// minus score), ties by ascending column id. O(n + kSignatureBits).
std::vector<int32_t> OrderByScoreDesc(const std::vector<uint16_t>& scores) {
  std::array<int32_t, kSignatureBits + 2> start{};
  for (uint16_t s : scores) ++start[kSignatureBits - s + 1];
  for (int b = 1; b <= kSignatureBits + 1; ++b) start[b] += start[b - 1];
  std::vector<int32_t> order(scores.size());
  for (int32_t i = 0; i < static_cast<int32_t>(scores.size()); ++i) {
    order[start[kSignatureBits - scores[i]]++] = i;
  }
  return order;
}

// Stable counting sort by (lower bound ascending, score descending), ties
// by ascending column id. FeatureLowerBound is integer-valued (node count,
// histogram sums and edge-count differences), so the composite key
// lb * (kSignatureBits + 1) + (kSignatureBits - score) is exact.
// O(n + max_lb * kSignatureBits).
std::vector<int32_t> OrderByLbThenScore(const std::vector<double>& lbs,
                                        const std::vector<uint16_t>& scores) {
  const int n = static_cast<int>(lbs.size());
  long long max_lb = 0;
  for (double lb : lbs) {
    max_lb = std::max(max_lb, static_cast<long long>(lb));
  }
  const long long stride = kSignatureBits + 1;
  auto key = [&](int i) {
    return static_cast<long long>(lbs[i]) * stride +
           (kSignatureBits - scores[i]);
  };
  std::vector<int32_t> start((max_lb + 1) * stride + 1, 0);
  for (int i = 0; i < n; ++i) ++start[key(i) + 1];
  for (size_t b = 1; b < start.size(); ++b) start[b] += start[b - 1];
  std::vector<int32_t> order(n);
  for (int32_t i = 0; i < n; ++i) order[start[key(i)]++] = i;
  return order;
}

}  // namespace

void NearestCenterIndex::CopyFrom(const NearestCenterIndex& other) {
  slices_ = other.slices_;
  // Query stats deliberately start cold (see the header's thread-safety
  // note); don't touch other's mutex — only our own, in case a stale
  // reader still samples this object mid-assignment.
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = QueryStats{};
}

void NearestCenterIndex::MoveFrom(NearestCenterIndex& other) {
  slices_ = std::move(other.slices_);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = QueryStats{};
}

void NearestCenterIndex::Insert(const JobGraph& g) {
  slices_.Insert(ComputeWlSignature(g), ComputeGraphFeatures(g));
}

void NearestCenterIndex::Insert(const WlSignature& sig,
                                const GraphFeatures& features) {
  slices_.Insert(sig, features);
}

void NearestCenterIndex::RecordQuery(int candidates, int evaluated) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.queries += 1;
  stats_.candidates += candidates;
  stats_.evaluated += evaluated;
}

NearestCenterIndex::QueryStats NearestCenterIndex::query_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

NearestCenterIndex::NearestResult NearestCenterIndex::Nearest(
    const JobGraph& query, const GraphAccessor& graph_at,
    graph::GedCache* cache) const {
  NearestResult result;
  const int n = slices_.size();
  if (n == 0) return result;

  const WlSignature sig = ComputeWlSignature(query);
  const GraphFeatures qf = ComputeGraphFeatures(query);
  std::vector<uint16_t> scores;
  slices_.Scores(sig, &scores);

  std::vector<double> lbs(n);
  for (int i = 0; i < n; ++i) {
    lbs[i] = FeatureLowerBound(qf, slices_.features(i));
  }

  // The one unthresholded GED call goes to the probe: the lower-bound
  // argmin (ties: higher signature score, then lower id). A max-overlap
  // score alone can be a *superset* signature — a much larger graph
  // containing every query probe — whose unthresholded search is the
  // expensive kind; the lb-argmin is the structurally closest column
  // instead, so `best` starts small and every later search runs hard-
  // thresholded. An exact duplicate (lb 0, maximal score) is always the
  // probe, making the duplicate-hit path one GED call of distance zero.
  int probe = 0;
  for (int i = 1; i < n; ++i) {
    if (lbs[i] < lbs[probe] ||
        (lbs[i] == lbs[probe] && scores[i] > scores[probe])) {
      probe = i;
    }
  }
  // Uncached searches take the same per-pair policy route the cache's miss
  // path takes (exact answers are policy-independent, so the two-stage
  // exactness argument below is unaffected).
  double best;
  {
    const graph::GedOptions opts;
    const JobGraph& candidate = graph_at(probe);
    const graph::GedResult r =
        cache ? cache->Compute(query, candidate, opts)
              : graph::PolicyComputeGed(query, candidate, opts);
    best = r.distance;
  }
  int best_idx = probe;
  int evaluated = 1;
  // A probe at distance zero ends the search: all ged-0 columns share the
  // query's signature and features, so they all carry (lb 0, maximal
  // score) and the probe scan — ascending, strict improvement only —
  // already picked the lowest-id one.
  if (best > kEps) {
    for (int32_t idx : OrderByLbThenScore(lbs, scores)) {
      if (idx == probe) continue;
      // Sound prune: ged >= lb > best means this column cannot hold the
      // minimum and cannot even tie it (a tie needs ged == best < lb <=
      // ged). lb == best is NOT pruned — the column could tie at a lower
      // index. The order is lb-ascending and `best` only decreases, so
      // every later column is pruned too: stop outright.
      if (lbs[idx] > best + kEps) break;
      graph::GedOptions opts;
      opts.threshold = best;
      const JobGraph& candidate = graph_at(idx);
      const graph::GedResult r =
          cache ? cache->Compute(query, candidate, opts)
                : graph::PolicyComputeGed(query, candidate, opts);
      ++evaluated;
      if (r.distance < best - kEps) {
        // The probe ran unthresholded, so `best` starts exact; later
        // improvements completed under threshold = old best, so they are
        // exact too (pruned searches report > threshold, never less).
        best = r.distance;
        best_idx = idx;
      } else if (r.exact && std::abs(r.distance - best) <= kEps &&
                 idx < best_idx) {
        best_idx = idx;
      }
      // GED 0 cannot be beaten or tied at a lower index later: a ged-0
      // column matches the query's signature and features, so every such
      // column shares the (lb 0, maximal score) bucket, visited in
      // ascending id order.
      if (best <= kEps) break;
    }
  }

  RecordQuery(n, evaluated);
  result.index = best_idx;
  result.distance = best;
  result.evaluated = evaluated;
  result.pruned = n - evaluated;
  return result;
}

std::vector<int> NearestCenterIndex::CandidatesWithin(const JobGraph& query,
                                                      double tau) const {
  const int n = slices_.size();
  std::vector<int> out;
  if (n == 0) return out;
  const WlSignature sig = ComputeWlSignature(query);
  const GraphFeatures qf = ComputeGraphFeatures(query);
  std::vector<uint16_t> scores;
  slices_.Scores(sig, &scores);
  for (int32_t idx : OrderByScoreDesc(scores)) {
    if (FeatureLowerBound(qf, slices_.features(idx)) <= tau + kEps) {
      out.push_back(idx);
    }
  }
  RecordQuery(n, 0);
  return out;
}

}  // namespace streamtune::index
