// WL-label signatures + scalar features: the per-graph fingerprint of the
// KB's bit-sliced nearest-center prefilter (see index/bitsliced_index.h).
//
// A signature is a fixed-width Bloom-style bit set folded from the graph's
// Weisfeiler-Leman refinement (JobGraph::WlColors — the same pass that
// backs CanonicalHash): per-node final colors (unigrams), raw operator
// types, and per-edge (color_from, color_to) pairs (directed 2-grams). Two
// isomorphic graphs produce identical signatures; similar graphs share many
// bits, so popcount(sig_a AND sig_b) is a cheap similarity proxy used to
// ORDER candidates — it carries no soundness burden.
//
// Soundness lives in the scalar features: node count, edge count, and the
// operator-type histogram are exactly the inputs of the admissible
// graph::LabelSetLowerBound, so FeatureLowerBound(features(a), features(b))
// == LabelSetLowerBound(a, b) for the valid DAGs this repo builds. A
// candidate is pruned only when that bound exceeds the best distance found
// so far, which is what keeps the two-stage search exact.

#pragma once

#include <array>
#include <cstdint>

#include "dataflow/job_graph.h"
#include "dataflow/operator.h"

namespace streamtune::index {

/// Signature width. 256 bits = 4 words keeps one signature in half a cache
/// line and lets the bit-sliced scan process 256 corpus columns per slice.
inline constexpr int kSignatureBits = 256;
inline constexpr int kSignatureWords = kSignatureBits / 64;

/// One graph's Bloom-style WL bit signature.
struct WlSignature {
  std::array<uint64_t, kSignatureWords> words{};

  void Set(uint32_t bit) {
    words[(bit % kSignatureBits) / 64] |= 1ULL << (bit % 64);
  }
  bool Test(uint32_t bit) const {
    return (words[(bit % kSignatureBits) / 64] >> (bit % 64)) & 1ULL;
  }
  int Popcount() const;

  bool operator==(const WlSignature&) const = default;
};

/// The scalar features feeding the sound lower bound: exactly the signals
/// graph::LabelSetLowerBound reads (label multiset + edge count).
struct GraphFeatures {
  int32_t nodes = 0;
  int32_t edges = 0;
  std::array<int32_t, kNumOperatorTypes> type_hist{};

  bool operator==(const GraphFeatures&) const = default;
};

GraphFeatures ComputeGraphFeatures(const JobGraph& g);

/// Folds g's WL colors, operator types, and edge color pairs into a
/// signature. Isomorphism-invariant (all three inputs are multisets of
/// relabeling-independent values). One WL pass per call; costs the same as
/// an uncached CanonicalHash().
WlSignature ComputeWlSignature(const JobGraph& g);

/// popcount(a AND b): the candidate-ordering score of the prefilter.
int SignatureOverlap(const WlSignature& a, const WlSignature& b);

/// Admissible GED lower bound from features alone. For valid DAGs (no
/// antiparallel edge pairs — guaranteed by JobGraph::Validate, which every
/// admitted record passes) this equals graph::LabelSetLowerBound(a, b):
/// max(n_a, n_b) - sum_t min(hist_a[t], hist_b[t]) + |e_a - e_b|.
double FeatureLowerBound(const GraphFeatures& a, const GraphFeatures& b);

}  // namespace streamtune::index
