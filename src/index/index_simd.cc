#include "index/index_simd.h"

#include <cstdlib>

#if defined(__AVX2__)

#include <immintrin.h>

namespace streamtune::index::simd {

bool CompiledIn() { return true; }

// out[c] = sum over set query bits s of slice-row bit (s, c). Each slice
// row is 256 column-bits (= one ymm register); rows for set query bits are
// accumulated into 9 vertical bit-plane counters (max count 256 needs 9
// bits) with a ripple-carry add — the textbook "positional popcount"
// scheme. All ops are integer bitwise, so this is bit-identical to the
// scalar core in bitsliced_index.cc.
void ScoreGroupAvx2(const uint64_t* slices, const uint64_t* query,
                    uint16_t* out) {
  constexpr int kPlanes = 9;
  __m256i planes[kPlanes];
  for (int p = 0; p < kPlanes; ++p) planes[p] = _mm256_setzero_si256();

  for (int w = 0; w < 4; ++w) {
    uint64_t qword = query[w];
    while (qword != 0) {
      const int bit = __builtin_ctzll(qword);
      qword &= qword - 1;
      const int s = w * 64 + bit;
      __m256i carry = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(slices + 4 * s));
      for (int p = 0; p < kPlanes; ++p) {
        const __m256i t = _mm256_and_si256(planes[p], carry);
        planes[p] = _mm256_xor_si256(planes[p], carry);
        carry = t;
      }
    }
  }

  alignas(32) uint64_t plane_words[kPlanes][4];
  for (int p = 0; p < kPlanes; ++p) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(plane_words[p]), planes[p]);
  }
  for (int w = 0; w < 4; ++w) {
    for (int j = 0; j < 64; ++j) {
      unsigned count = 0;
      for (int p = 0; p < kPlanes; ++p) {
        count |= static_cast<unsigned>((plane_words[p][w] >> j) & 1ULL) << p;
      }
      out[w * 64 + j] = static_cast<uint16_t>(count);
    }
  }
}

}  // namespace streamtune::index::simd

#else  // !defined(__AVX2__)

namespace streamtune::index::simd {

// Unreachable stubs: the dispatch in bitsliced_index.cc never installs
// these when CompiledIn() is false.
bool CompiledIn() { return false; }

void ScoreGroupAvx2(const uint64_t*, const uint64_t*, uint16_t*) {
  std::abort();
}

}  // namespace streamtune::index::simd

#endif
