// AVX2 core of the bit-sliced signature scan.
//
// Same contract as ml/matrix_simd.h: index_simd.cc is the only index TU
// compiled with -mavx2 (see src/index/CMakeLists.txt), everything here is
// reached only through the runtime dispatch in bitsliced_index.cc, and on
// targets compiled without the flags the TU carries unreachable stubs with
// CompiledIn() == false. The kernel is pure integer bitwise work (AND, XOR,
// shifts, popcount extraction), so the AVX2 and scalar paths are
// bit-identical by construction — no tolerance-pinned goldens needed.

#pragma once

#include <cstdint>

namespace streamtune::index::simd {

/// True when this TU was compiled with AVX2 enabled.
bool CompiledIn();

/// Scores one slice group of 256 columns: out[c] = popcount of the AND of
/// the query signature with column c's signature. `slices` holds
/// kSignatureBits rows of 4 words (one bit per column, see
/// BitslicedIndex's layout contract); `query` is the 4-word query
/// signature; `out` receives 256 counts in [0, 256].
void ScoreGroupAvx2(const uint64_t* slices, const uint64_t* query,
                    uint16_t* out);

}  // namespace streamtune::index::simd
