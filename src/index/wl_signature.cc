#include "index/wl_signature.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

namespace streamtune::index {

namespace {

// splitmix64 finalizer, same mixing structure as the JobGraph hash helpers
// (local copy: the signature needs good bit dispersion, not equality with
// the CanonicalHash internals).
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Combine(uint64_t h, uint64_t v) {
  return Mix(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

// Distinct salts per probe family, so a node color, an operator type, and
// an edge pair never collide by construction alone.
constexpr uint64_t kColorSaltA = 0xC0102A5ULL;
constexpr uint64_t kColorSaltB = 0xC0102B5ULL;
constexpr uint64_t kTypeSalt = 0x7195A17ULL;
constexpr uint64_t kEdgeSalt = 0xED6E5A17ULL;

}  // namespace

int WlSignature::Popcount() const {
  int n = 0;
  for (uint64_t w : words) n += std::popcount(w);
  return n;
}

GraphFeatures ComputeGraphFeatures(const JobGraph& g) {
  GraphFeatures f;
  f.nodes = g.num_operators();
  f.edges = g.num_edges();
  for (const OperatorSpec& op : g.operators()) {
    ++f.type_hist[static_cast<int>(op.type) % kNumOperatorTypes];
  }
  return f;
}

WlSignature ComputeWlSignature(const JobGraph& g) {
  WlSignature sig;
  const std::vector<uint64_t> colors = g.WlColors();
  for (int v = 0; v < g.num_operators(); ++v) {
    // Two probes per final color (Bloom-style) + one per raw type. The
    // type probe keeps coarse similarity visible even when refinement
    // drives every color distinct.
    sig.Set(static_cast<uint32_t>(Mix(colors[v] ^ kColorSaltA)));
    sig.Set(static_cast<uint32_t>(Mix(colors[v] ^ kColorSaltB)));
    sig.Set(static_cast<uint32_t>(
        Mix(static_cast<uint64_t>(g.op(v).type) ^ kTypeSalt)));
  }
  // Directed color 2-grams: one probe per edge.
  for (const auto& [from, to] : g.edges()) {
    sig.Set(static_cast<uint32_t>(
        Mix(Combine(colors[from], colors[to]) ^ kEdgeSalt)));
  }
  return sig;
}

int SignatureOverlap(const WlSignature& a, const WlSignature& b) {
  int n = 0;
  for (int w = 0; w < kSignatureWords; ++w) {
    n += std::popcount(a.words[w] & b.words[w]);
  }
  return n;
}

double FeatureLowerBound(const GraphFeatures& a, const GraphFeatures& b) {
  int common = 0;
  for (int t = 0; t < kNumOperatorTypes; ++t) {
    common += std::min(a.type_hist[t], b.type_hist[t]);
  }
  const int node_lb = std::max(a.nodes, b.nodes) - common;
  const int edge_lb = std::abs(a.edges - b.edges);
  return static_cast<double>(node_lb + edge_lb);
}

}  // namespace streamtune::index
