#include "index/bitsliced_index.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "index/index_simd.h"
#include "ml/cpu_features.h"

namespace streamtune::index {

namespace {

using ml::ForceScalarRequested;
using ml::HostCpuFeatures;

// Scalar twin of simd::ScoreGroupAvx2: the identical vertical-counter
// circuit on 4-word lanes instead of one ymm register. Keep the two in
// lockstep — bit-identity between them is what the forced-scalar CI shard
// pins.
void ScoreGroupScalar(const uint64_t* slices, const uint64_t* query,
                      uint16_t* out) {
  constexpr int kPlanes = 9;
  uint64_t planes[kPlanes][kSignatureWords] = {};

  for (int w = 0; w < kSignatureWords; ++w) {
    uint64_t qword = query[w];
    while (qword != 0) {
      const int bit = std::countr_zero(qword);
      qword &= qword - 1;
      const uint64_t* row = slices + kSignatureWords * (w * 64 + bit);
      uint64_t carry[kSignatureWords];
      std::memcpy(carry, row, sizeof(carry));
      for (int p = 0; p < kPlanes; ++p) {
        for (int l = 0; l < kSignatureWords; ++l) {
          const uint64_t t = planes[p][l] & carry[l];
          planes[p][l] ^= carry[l];
          carry[l] = t;
        }
      }
    }
  }

  for (int w = 0; w < kSignatureWords; ++w) {
    for (int j = 0; j < 64; ++j) {
      unsigned count = 0;
      for (int p = 0; p < kPlanes; ++p) {
        count |= static_cast<unsigned>((planes[p][w] >> j) & 1ULL) << p;
      }
      out[w * 64 + j] = static_cast<uint16_t>(count);
    }
  }
}

// ---- Runtime dispatch (same shape as ml/matrix.cc) -------------------------

struct IndexKernelTable {
  void (*score_group)(const uint64_t*, const uint64_t*, uint16_t*);
};

constexpr IndexKernelTable kScalarTable{ScoreGroupScalar};
constexpr IndexKernelTable kAvx2Table{simd::ScoreGroupAvx2};

constinit const char* g_index_dispatch_name = "scalar";
constinit IndexKernelTable g_index_kernels = kScalarTable;

void SelectIndexKernels() {
  if (simd::CompiledIn() && HostCpuFeatures().avx2 &&
      !ForceScalarRequested()) {
    g_index_kernels = kAvx2Table;
    g_index_dispatch_name = "avx2";
  } else {
    g_index_kernels = kScalarTable;
    g_index_dispatch_name = "scalar";
  }
}

struct IndexDispatchInit {
  IndexDispatchInit() { SelectIndexKernels(); }
};
IndexDispatchInit g_index_dispatch_init;

}  // namespace

const char* ActiveIndexDispatch() { return g_index_dispatch_name; }

void ReinitIndexDispatchForTest() { SelectIndexKernels(); }

void BitslicedIndex::Insert(const WlSignature& sig,
                            const GraphFeatures& features) {
  const int col = size();
  if (col % kGroupCols == 0) {
    slices_.resize(slices_.size() + kWordsPerGroup, 0);
  }
  uint64_t* group = slices_.data() +
                    static_cast<size_t>(col / kGroupCols) * kWordsPerGroup;
  const int lane_word = (col % kGroupCols) / 64;
  const uint64_t lane_bit = 1ULL << (col % 64);
  for (int w = 0; w < kSignatureWords; ++w) {
    uint64_t word = sig.words[w];
    while (word != 0) {
      const int s = w * 64 + std::countr_zero(word);
      word &= word - 1;
      group[s * kSignatureWords + lane_word] |= lane_bit;
    }
  }
  features_.push_back(features);
}

WlSignature BitslicedIndex::signature(int i) const {
  WlSignature sig;
  const uint64_t* group =
      slices_.data() + static_cast<size_t>(i / kGroupCols) * kWordsPerGroup;
  const int lane_word = (i % kGroupCols) / 64;
  const uint64_t lane_bit = 1ULL << (i % 64);
  for (int s = 0; s < kSignatureBits; ++s) {
    if (group[s * kSignatureWords + lane_word] & lane_bit) {
      sig.Set(static_cast<uint32_t>(s));
    }
  }
  return sig;
}

void BitslicedIndex::Scores(const WlSignature& query,
                            std::vector<uint16_t>* scores) const {
  const int n = size();
  scores->resize(static_cast<size_t>(n));
  uint16_t group_scores[kGroupCols];
  for (int g = 0; g * kGroupCols < n; ++g) {
    g_index_kernels.score_group(
        slices_.data() + static_cast<size_t>(g) * kWordsPerGroup,
        query.words.data(), group_scores);
    const int base = g * kGroupCols;
    const int cols = std::min(kGroupCols, n - base);
    std::memcpy(scores->data() + base, group_scores,
                static_cast<size_t>(cols) * sizeof(uint16_t));
  }
}

void BitslicedIndex::Clear() {
  slices_.clear();
  features_.clear();
}

}  // namespace streamtune::index
