// Two-stage exact nearest-center search: signature scan -> lower-bound
// prune -> GED only on survivors.
//
// Drop-in replacement for the linear graph::NearestCenter scan, built for
// corpora where "linear in the number of graphs x one A* search per pair"
// stops being funny (the KB admission path of the control plane). The
// result is bit-identical to the linear scan — same index, same distance —
// because the two stages split responsibilities:
//
//   1. ORDER (unsound, cheap): the bit-sliced AND-popcount scan ranks all
//      candidates by signature overlap, most-similar first. A bad ranking
//      costs time, never correctness.
//   2. PRUNE + VERIFY (sound): the single unthresholded GED call goes to
//      the *probe* — the FeatureLowerBound argmin (ties: higher score,
//      then lower id), the structurally closest column and, when an exact
//      duplicate exists, that duplicate — so `best` starts small. The
//      remaining candidates are visited in lower-bound-ascending order
//      (ties: score descending, then id): the first one whose admissible
//      lower bound exceeds `best` ends the search outright (everything
//      after it is bounded even higher), every earlier one is measured
//      with a threshold-pruned GED search at threshold = best.
//
// Exactness argument (property-tested in tests/index_test.cc, documented in
// DESIGN.md §13): `best` is always an exact distance achieved by some
// candidate, and it only decreases. A candidate with true distance d* =
// min never gets pruned (its lower bound is <= d* <= best) and its search
// runs at threshold >= d*, so it completes exactly. Threshold-pruned
// non-answers report a value strictly greater than the threshold (hence
// greater than the final best) and cannot displace the minimum; equal
// distances resolve to the lowest index, matching std::min_element. The
// one precondition is that no search exhausts its expansion budget — with
// the default 500k budget and the <= 63-operator DAGs this repo builds,
// exhaustion does not occur (and the randomized equality test would catch
// it if it did).
//
// Thread safety: Nearest()/CandidatesWithin() are const and safe to call
// concurrently on a shared index (query stats sit behind an internal
// mutex), provided the usual graph contract holds — accessor-returned
// graphs adjacency-warmed before publication, exactly as KB snapshots
// already guarantee. Copies and moves transfer the signature matrix but
// start with cold query stats, mirroring how graph copies start with cold
// lazy caches (JobGraph::WarmAdjacency).

#pragma once

#include <functional>
#include <limits>
#include <mutex>
#include <vector>

#include "common/annotations.h"
#include "graph/ged_cache.h"
#include "index/bitsliced_index.h"

namespace streamtune::index {

class NearestCenterIndex {
 public:
  /// Resolves a column id to its graph. The index stores only signatures
  /// and features (32 B + 40 B per graph); graph ownership stays with the
  /// caller — a bundle's cluster vector, a corpus record vector, or a
  /// generator re-materializing graphs on demand at bench scale.
  using GraphAccessor = std::function<const JobGraph&(int)>;

  NearestCenterIndex() = default;
  NearestCenterIndex(const NearestCenterIndex& other) { CopyFrom(other); }
  NearestCenterIndex& operator=(const NearestCenterIndex& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  NearestCenterIndex(NearestCenterIndex&& other) noexcept {
    MoveFrom(other);
  }
  NearestCenterIndex& operator=(NearestCenterIndex&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  /// Appends `g` as the next column (computes its signature + features).
  void Insert(const JobGraph& g);
  /// Appends a pre-computed column (deserialization path).
  void Insert(const WlSignature& sig, const GraphFeatures& features);

  int size() const { return slices_.size(); }
  bool empty() const { return slices_.empty(); }
  const BitslicedIndex& slices() const { return slices_; }

  struct NearestResult {
    /// Argmin column (-1 on an empty index). On ties the lowest index,
    /// matching std::min_element over a full distance vector.
    int index = -1;
    /// Exact GED to column `index` (+inf on an empty index).
    double distance = std::numeric_limits<double>::infinity();
    /// GED searches issued (including cache-served ones).
    int evaluated = 0;
    /// Candidates skipped on the lower bound alone — the work the index
    /// saved over a linear scan.
    int pruned = 0;
  };

  /// The two-stage search. `graph_at` must resolve every id in [0, size());
  /// `cache` (optional) is consulted exactly like the linear scan consults
  /// it — GedCache's order-independent answer policy is what keeps results
  /// stable under either traversal order.
  NearestResult Nearest(const JobGraph& query, const GraphAccessor& graph_at,
                        graph::GedCache* cache = nullptr) const;

  /// Prefilter listing: column ids whose lower bound admits GED <= tau,
  /// ordered by signature overlap (descending, ties by ascending id). A
  /// superset of the true <= tau set — callers verify survivors with GED.
  std::vector<int> CandidatesWithin(const JobGraph& query, double tau) const;

  /// Cumulative query-side counters since construction (copies start at
  /// zero). candidates - evaluated = total GED calls avoided.
  struct QueryStats {
    long long queries = 0;
    long long candidates = 0;
    long long evaluated = 0;
  };
  QueryStats query_stats() const;

 private:
  void CopyFrom(const NearestCenterIndex& other);
  void MoveFrom(NearestCenterIndex& other);
  void RecordQuery(int candidates, int evaluated) const;

  BitslicedIndex slices_;

  /// Guards only the cumulative counters: Nearest() is logically const and
  /// concurrent, so the stats it maintains live behind their own mutex
  /// (same shape as the lazily-warmed members of PerfModel).
  mutable std::mutex stats_mu_;
  mutable QueryStats stats_ STREAMTUNE_GUARDED_BY(stats_mu_);
};

}  // namespace streamtune::index
