// COBS-style bit-sliced (transposed) signature matrix with AND-popcount
// candidate scans.
//
// Row-major signature storage would make a scan read 32 bytes per corpus
// graph; transposing it — bit s of every graph stored contiguously — turns
// the scan into popcount accumulation over only the slices whose query bit
// is set (score(c) = sum_s q_s AND sig_c[s]), touching memory proportional
// to the query's popcount instead of the signature width.
//
// Layout contract (shared by the scalar and AVX2 cores): columns (graphs)
// are packed into groups of kGroupCols = 256. Within a group, slice s
// (s in [0, kSignatureBits)) is kSignatureWords = 4 consecutive words, and
// column c's bit lives in word (c % 256) / 64 at bit (c % 64):
//
//   slices_[group * 1024 + s * 4 + w]   — one group = 8 KiB, cache-friendly
//
// so one slice row is exactly 256 column-bits = one AVX2 register. Scores
// are accumulated in 9 vertical bit-plane counters (max count 256 needs 9
// bits) with ripple-carry adds; the scalar and AVX2 cores are the same
// integer bitwise circuit and therefore bit-identical. Core selection
// mirrors ml/matrix.cc: a table picked once at static-init from
// HostCpuFeatures() x simd::CompiledIn() x STREAMTUNE_FORCE_SCALAR.
//
// Incremental: Insert appends a column (allocating a zeroed group every 256
// inserts); nothing is ever rewritten, so an index extended copy-on-write
// shares no state with its source. Persistence goes through kb_store's
// "index" STKB section, which reads columns back via signature()/features()
// and replays Insert.

#pragma once

#include <cstdint>
#include <vector>

#include "index/wl_signature.h"

namespace streamtune::index {

/// The transposed signature matrix over one corpus (or one center set).
class BitslicedIndex {
 public:
  static constexpr int kGroupCols = 256;
  static constexpr int kWordsPerGroup = kSignatureBits * kSignatureWords;

  /// Appends one column; column ids are dense in insertion order.
  void Insert(const WlSignature& sig, const GraphFeatures& features);

  int size() const { return static_cast<int>(features_.size()); }
  bool empty() const { return features_.empty(); }

  const GraphFeatures& features(int i) const { return features_[i]; }

  /// Column i's signature, gathered back out of the slices (used by
  /// persistence and tests; O(kSignatureBits)).
  WlSignature signature(int i) const;

  /// scores->at(c) = popcount(query AND column c's signature) for every
  /// column. The hot scan of the two-stage nearest-center search.
  void Scores(const WlSignature& query, std::vector<uint16_t>* scores) const;

  void Clear();

 private:
  std::vector<uint64_t> slices_;
  std::vector<GraphFeatures> features_;
};

/// Which score core the dispatch selected ("scalar" or "avx2").
const char* ActiveIndexDispatch();

/// Re-runs core selection (tests flip STREAMTUNE_FORCE_SCALAR around this).
void ReinitIndexDispatchForTest();

}  // namespace streamtune::index
