// Fixed-size worker pool with a deterministic ParallelFor helper.
//
// Design constraints (see DESIGN.md "Concurrency model"):
//   - The calling thread always participates in the loop, so a pool with
//     `num_threads = N` uses N-1 background workers and never idles the
//     caller. `num_threads = 1` (or an empty pool) degenerates to a plain
//     serial loop — the knob that restores pre-concurrency behaviour.
//   - ParallelFor invoked from inside a pool worker runs inline and serial
//     (no nested fan-out, no deadlock); likewise a ThreadPool constructed on
//     a worker thread spawns no workers. Outer loops parallelize, inner
//     loops degrade gracefully.
//   - Exceptions thrown by the body are captured and the one with the
//     lowest index is rethrown on the calling thread after all workers
//     quiesce, so failure behaviour matches the serial loop.
//   - Determinism is the caller's job but is easy: each index runs exactly
//     once, so writing results to slot i and reducing in index order after
//     the join is bit-identical to the serial loop.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace streamtune {

/// A fixed set of background workers executing ParallelFor index ranges.
class ThreadPool {
 public:
  /// `num_threads <= 0` resolves to std::thread::hardware_concurrency().
  /// The pool spawns `resolved - 1` background workers (the caller is the
  /// remaining thread). Constructed inside a pool worker, it spawns none.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in ParallelFor (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes fn(i) exactly once for every i in [begin, end), distributing
  /// indices dynamically over the workers and the calling thread. Blocks
  /// until every index completed. If any invocation throws, the exception
  /// raised at the lowest index is rethrown here once the range is
  /// abandoned. Safe to call repeatedly; serial when the pool is empty or
  /// when called from inside a worker.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

  /// Resolves a requested thread count: <= 0 becomes
  /// hardware_concurrency() (at least 1).
  static int ResolveThreads(int requested);

  /// True when the calling thread is a ThreadPool worker (any pool).
  static bool InWorker();

 private:
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t end = 0;
    std::int64_t next = 0;       // guarded by mu_
    int active_workers = 0;      // workers still inside RunJob
    bool failed = false;         // an exception was recorded
    int64_t error_index = -1;    // lowest failing index so far
    std::exception_ptr error;    // exception at error_index
  };

  void WorkerLoop();
  // Claims and runs indices of the current job until exhausted or failed.
  void RunJob(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a job / shutdown
  std::condition_variable done_cv_;  // caller waits for job completion
  Job* job_ = nullptr;               // non-null while a ParallelFor runs
  uint64_t job_gen_ = 0;             // bumps when a new job is published
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace streamtune
