// Fixed-size worker pool with a deterministic ParallelFor helper.
//
// Design constraints (see DESIGN.md "Concurrency model"):
//   - The calling thread always participates in the loop, so a pool with
//     `num_threads = N` uses N-1 background workers and never idles the
//     caller. `num_threads = 1` (or an empty pool) degenerates to a plain
//     serial loop — the knob that restores pre-concurrency behaviour.
//   - ParallelFor invoked from inside a pool worker runs inline and serial
//     (no nested fan-out, no deadlock); likewise a ThreadPool constructed on
//     a worker thread spawns no workers. Outer loops parallelize, inner
//     loops degrade gracefully.
//   - Exceptions thrown by the body are captured and the one with the
//     lowest index is rethrown on the calling thread after all workers
//     quiesce, so failure behaviour matches the serial loop.
//   - Determinism is the caller's job but is easy: each index runs exactly
//     once, so writing results to slot i and reducing in index order after
//     the join is bit-identical to the serial loop.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace streamtune {

/// A fixed set of background workers executing ParallelFor index ranges.
class ThreadPool {
 public:
  /// `num_threads <= 0` resolves to std::thread::hardware_concurrency().
  /// The pool spawns `resolved - 1` background workers (the caller is the
  /// remaining thread). Constructed inside a pool worker, it spawns none.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in ParallelFor (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes fn(i) exactly once for every i in [begin, end), distributing
  /// indices dynamically over the workers and the calling thread. Blocks
  /// until every index completed. If any invocation throws, the exception
  /// raised at the lowest index is rethrown here once the range is
  /// abandoned. Safe to call repeatedly; serial when the pool is empty or
  /// when called from inside a worker.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

  /// Resolves a requested thread count: <= 0 becomes
  /// hardware_concurrency() (at least 1).
  static int ResolveThreads(int requested);

  /// True when the calling thread is a ThreadPool worker (any pool).
  static bool InWorker();

 private:
  struct Job {
    // fn/end are set once before the job is published and read-only after.
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t end = 0;
    std::int64_t next STREAMTUNE_GUARDED_BY(mu_) = 0;
    // Workers still inside RunJob.
    int active_workers STREAMTUNE_GUARDED_BY(mu_) = 0;
    // An exception was recorded.
    bool failed STREAMTUNE_GUARDED_BY(mu_) = false;
    // Lowest failing index so far.
    int64_t error_index STREAMTUNE_GUARDED_BY(mu_) = -1;
    // Exception raised at error_index.
    std::exception_ptr error STREAMTUNE_GUARDED_BY(mu_);
  };

  void WorkerLoop();
  // Claims and runs indices of the current job until exhausted or failed.
  void RunJob(std::unique_lock<std::mutex>& lock) STREAMTUNE_REQUIRES(mu_);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a job / shutdown
  std::condition_variable done_cv_;  // caller waits for job completion
  // Non-null while a ParallelFor runs.
  Job* job_ STREAMTUNE_GUARDED_BY(mu_) = nullptr;
  // Bumps when a new job is published.
  uint64_t job_gen_ STREAMTUNE_GUARDED_BY(mu_) = 0;
  bool shutdown_ STREAMTUNE_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace streamtune
