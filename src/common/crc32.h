// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the knowledge-base store to checksum each file section so that
// bit flips and truncation in persisted state are detected at load time
// instead of silently corrupting models.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace streamtune {

/// CRC-32 of `len` bytes starting at `data`. `seed` allows incremental
/// computation: pass a previous return value to continue a running checksum.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// CRC-32 of a string's bytes.
inline uint32_t Crc32(const std::string& s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace streamtune
