// Runtime selection among deterministic parallel-reduction strategies.
//
// Every reduction in this codebase used to run one fixed shape: ParallelFor
// into a slot per item, then a serial fold in index order (the "ordered
// fold"). That shape is always correct but not always fast — it materializes
// one accumulator per item and re-reads the whole slot array on one thread.
// Following the parallel-groupby playbook (competing GROUP BY strategies
// picked at runtime by a small cost model), ParallelReduce offers three
// strategies and a StrategySelector that picks one per call site from cheap
// observables: item count, a per-item cost estimate (caller hint or a timed
// warmup slice), accumulator size and thread count.
//
// Determinism contract (DESIGN.md §14): every strategy returns a result
// bit-identical to the serial left fold at any thread count. The caller
// declares the algebra of its combine operator, and the selector only picks
// strategies that are exact for that algebra:
//
//   kOrderedOnly   combine is not (bitwise) reassociable — e.g. a running
//                  double sum of arbitrary values. Only the ordered fold is
//                  legal; requests for other strategies are clamped.
//   kAssociative   combine(combine(a, b), c) is bit-identical to
//                  combine(a, combine(b, c)) on the value domain — e.g.
//                  list concatenation, first-error-by-lowest-index. Ordered
//                  fold and tree merge are legal.
//   kCommutative   associative and combine(a, b) bit-identical to
//                  combine(b, a) — e.g. integer sums, min/max, bitwise or,
//                  argmax with a canonical index tie-break, fixed-point
//                  sums. All strategies (including radix sharding) are
//                  legal.
//
// Declaring an algebra asserts *bitwise* exactness, not mathematical
// associativity: a plain double sum is mathematically associative but not
// bitwise so, and must be declared kOrderedOnly.
//
// Pinning: the environment variable STREAMTUNE_REDUCE_STRATEGY
// (ordered|tree|radix|auto) or ReduceOptions::strategy overrides the
// selector for reproducibility studies; pins are still clamped to the
// declared algebra, so a pin can never change a result.

#pragma once

#include <cstdint>

namespace streamtune {

/// The competing reduction shapes (see parallel_reduce.h for each one).
enum class ReduceStrategy {
  kAuto = 0,     ///< let StrategySelector pick
  kOrderedFold,  ///< slot per item + serial fold in index order (pre-PR shape)
  kTreeMerge,    ///< fixed contiguous chunks + canonical binary tree merge
  kRadixShard,   ///< index-residue shards + ascending shard-id merge
};

/// What the caller guarantees about its combine operator (bitwise).
enum class CombineAlgebra {
  kOrderedOnly = 0,
  kAssociative,
  kCommutative,
};

const char* ToString(ReduceStrategy s);
const char* ToString(CombineAlgebra a);

/// Per-call knobs for ParallelReduce.
struct ReduceOptions {
  /// kAuto defers to StrategySelector (or the env pin); anything else is a
  /// per-call pin, clamped to what `algebra` allows.
  ReduceStrategy strategy = ReduceStrategy::kAuto;
  /// The caller's exactness contract for `combine` (see file comment).
  CombineAlgebra algebra = CombineAlgebra::kOrderedOnly;
  /// Estimated cost of one map(i) call in nanoseconds; 0 = unknown, let
  /// ParallelReduce time a warmup slice when a choice actually exists.
  double cost_hint_ns = 0.0;
};

/// Process-wide execution counters (satellite observability): how often each
/// strategy actually ran, and whether the pick came from the selector or a
/// pin. Sampled into bench JSON next to the GED policy histogram.
struct StrategyStatsSnapshot {
  uint64_t ordered = 0;
  uint64_t tree = 0;
  uint64_t radix = 0;
  /// Executions whose strategy came from the cost model (opts + env = auto).
  uint64_t auto_picks = 0;
  /// Executions pinned by options or STREAMTUNE_REDUCE_STRATEGY.
  uint64_t pinned_picks = 0;
  /// Requested strategy was illegal for the declared algebra and was
  /// downgraded (radix -> tree -> ordered).
  uint64_t clamped = 0;
  uint64_t total() const { return ordered + tree + radix; }
};

/// The cost model + bookkeeping. All methods are static and thread-safe.
class StrategySelector {
 public:
  /// Picks the strategy for one reduction: env pin, then options pin, then
  /// the cost model — always clamped to `algebra`. `items` is the number of
  /// mapped items, `threads` the pool width, `accumulator_bytes` sizeof of
  /// the accumulator type, `cost_ns` the per-item estimate (0 = unknown).
  static ReduceStrategy Pick(int64_t items, int threads,
                             int64_t accumulator_bytes,
                             const ReduceOptions& opts);

  /// Downgrades `s` to the strongest strategy legal under `algebra`
  /// (radix needs kCommutative, tree needs kAssociative; ordered is always
  /// legal). kAuto passes through.
  static ReduceStrategy ClampToAlgebra(ReduceStrategy s, CombineAlgebra a);

  /// Parses STREAMTUNE_REDUCE_STRATEGY; kAuto when unset/unrecognized.
  /// Read per call (reductions are coarse-grained, getenv is cheap) so
  /// tests can flip the pin without process restarts.
  static ReduceStrategy EnvPin();

  /// True when Pick() would consult the cost model — i.e. no env/options
  /// pin and more than one strategy is legal for `algebra`. ParallelReduce
  /// uses this to decide whether a warmup slice is worth timing.
  static bool WantsCostEstimate(const ReduceOptions& opts);

  /// Records one executed reduction for the stats snapshot.
  static void RecordExecution(ReduceStrategy executed, bool pinned,
                              bool clamped);

  static StrategyStatsSnapshot Snapshot();
  static void ResetStats();

  /// Monotonic nanosecond clock for warmup-slice timing. Timing never
  /// changes a result (all legal strategies are bit-identical), only which
  /// one runs, so this is determinism-safe despite being a clock.
  static int64_t NowNanos();
};

}  // namespace streamtune
