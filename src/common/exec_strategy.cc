#include "common/exec_strategy.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace streamtune {

namespace {

// Cost-model thresholds (DESIGN.md §14). Tuned against BENCH_exec.json on
// the reference box; all of them only steer which bit-identical strategy
// runs, never what it computes.
//
// Below this item count the slot array fits in L1 and the fold is a blip:
// the ordered shape costs nothing measurable, so keep the pre-PR behavior.
constexpr int64_t kSmallItems = 64;
// Radix sharding walks the index space with stride = shard count, which is
// only worth it for very large, very cheap items where the strided partial
// accumulation amortizes (the parallel-groupby "radix partitioning" regime).
constexpr int64_t kRadixMinItems = int64_t{1} << 16;
constexpr double kRadixMaxItemNs = 100.0;

struct Counters {
  std::atomic<uint64_t> ordered{0};
  std::atomic<uint64_t> tree{0};
  std::atomic<uint64_t> radix{0};
  std::atomic<uint64_t> auto_picks{0};
  std::atomic<uint64_t> pinned_picks{0};
  std::atomic<uint64_t> clamped{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

}  // namespace

const char* ToString(ReduceStrategy s) {
  switch (s) {
    case ReduceStrategy::kAuto:
      return "auto";
    case ReduceStrategy::kOrderedFold:
      return "ordered";
    case ReduceStrategy::kTreeMerge:
      return "tree";
    case ReduceStrategy::kRadixShard:
      return "radix";
  }
  return "?";
}

const char* ToString(CombineAlgebra a) {
  switch (a) {
    case CombineAlgebra::kOrderedOnly:
      return "ordered-only";
    case CombineAlgebra::kAssociative:
      return "associative";
    case CombineAlgebra::kCommutative:
      return "commutative";
  }
  return "?";
}

ReduceStrategy StrategySelector::ClampToAlgebra(ReduceStrategy s,
                                                CombineAlgebra a) {
  if (s == ReduceStrategy::kRadixShard && a != CombineAlgebra::kCommutative) {
    s = ReduceStrategy::kTreeMerge;
  }
  if (s == ReduceStrategy::kTreeMerge && a == CombineAlgebra::kOrderedOnly) {
    s = ReduceStrategy::kOrderedFold;
  }
  return s;
}

ReduceStrategy StrategySelector::EnvPin() {
  const char* v = std::getenv("STREAMTUNE_REDUCE_STRATEGY");
  if (v == nullptr) return ReduceStrategy::kAuto;
  if (std::strcmp(v, "ordered") == 0) return ReduceStrategy::kOrderedFold;
  if (std::strcmp(v, "tree") == 0) return ReduceStrategy::kTreeMerge;
  if (std::strcmp(v, "radix") == 0) return ReduceStrategy::kRadixShard;
  return ReduceStrategy::kAuto;
}

bool StrategySelector::WantsCostEstimate(const ReduceOptions& opts) {
  if (opts.algebra == CombineAlgebra::kOrderedOnly) return false;
  if (opts.strategy != ReduceStrategy::kAuto) return false;
  return EnvPin() == ReduceStrategy::kAuto;
}

ReduceStrategy StrategySelector::Pick(int64_t items, int threads,
                                      int64_t accumulator_bytes,
                                      const ReduceOptions& opts) {
  (void)threads;  // observable kept for future models; today's rules are
                  // item/cost/size-driven so 1-thread boxes benefit too.
  // Env pin beats the per-call pin beats the model: the env knob exists to
  // reproduce a run without touching call sites.
  ReduceStrategy s = EnvPin();
  if (s == ReduceStrategy::kAuto) s = opts.strategy;
  if (s != ReduceStrategy::kAuto) return ClampToAlgebra(s, opts.algebra);

  if (opts.algebra == CombineAlgebra::kOrderedOnly ||
      items < kSmallItems) {
    return ReduceStrategy::kOrderedFold;
  }
  // A non-ordered strategy folds chunk partials in registers instead of
  // materializing items * sizeof(T) of slots and re-reading them serially;
  // whenever the algebra allows one, it is at worst neutral. Radix only for
  // the huge-and-cheap regime; tree everywhere else.
  (void)accumulator_bytes;
  if (opts.algebra == CombineAlgebra::kCommutative &&
      items >= kRadixMinItems && opts.cost_hint_ns > 0.0 &&
      opts.cost_hint_ns < kRadixMaxItemNs) {
    return ReduceStrategy::kRadixShard;
  }
  return ReduceStrategy::kTreeMerge;
}

void StrategySelector::RecordExecution(ReduceStrategy executed, bool pinned,
                                       bool clamped) {
  Counters& c = counters();
  switch (executed) {
    case ReduceStrategy::kOrderedFold:
      c.ordered.fetch_add(1, std::memory_order_relaxed);
      break;
    case ReduceStrategy::kTreeMerge:
      c.tree.fetch_add(1, std::memory_order_relaxed);
      break;
    case ReduceStrategy::kRadixShard:
      c.radix.fetch_add(1, std::memory_order_relaxed);
      break;
    case ReduceStrategy::kAuto:
      break;  // never executed
  }
  (pinned ? c.pinned_picks : c.auto_picks)
      .fetch_add(1, std::memory_order_relaxed);
  if (clamped) c.clamped.fetch_add(1, std::memory_order_relaxed);
}

StrategyStatsSnapshot StrategySelector::Snapshot() {
  const Counters& c = counters();
  StrategyStatsSnapshot s;
  s.ordered = c.ordered.load(std::memory_order_relaxed);
  s.tree = c.tree.load(std::memory_order_relaxed);
  s.radix = c.radix.load(std::memory_order_relaxed);
  s.auto_picks = c.auto_picks.load(std::memory_order_relaxed);
  s.pinned_picks = c.pinned_picks.load(std::memory_order_relaxed);
  s.clamped = c.clamped.load(std::memory_order_relaxed);
  return s;
}

void StrategySelector::ResetStats() {
  Counters& c = counters();
  c.ordered.store(0, std::memory_order_relaxed);
  c.tree.store(0, std::memory_order_relaxed);
  c.radix.store(0, std::memory_order_relaxed);
  c.auto_picks.store(0, std::memory_order_relaxed);
  c.pinned_picks.store(0, std::memory_order_relaxed);
  c.clamped.store(0, std::memory_order_relaxed);
}

int64_t StrategySelector::NowNanos() {
  // Warmup-slice timing: the clock steers only which of several
  // bit-identical strategies runs, never a computed value, so it cannot
  // break run-to-run determinism of results.
  const auto now =
      std::chrono::steady_clock::now();  // NOLINT(st-determinism-random)
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace streamtune
