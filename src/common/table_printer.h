// Console table formatting for the benchmark harness.
//
// Benches reproduce the paper's tables/figures as aligned text tables; this
// keeps their output uniform and diff-friendly.

#pragma once

#include <string>
#include <vector>

namespace streamtune {

/// Builds and prints an aligned, pipe-delimited text table.
class TablePrinter {
 public:
  /// Creates a table with the given title and column headers.
  TablePrinter(std::string title, std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 2);

  /// Renders the full table (title, rule, headers, rows) as a string.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streamtune
