#include "common/thread_pool.h"

#include <algorithm>

namespace streamtune {

namespace {
thread_local bool tls_in_worker = false;
}  // namespace

int ThreadPool::ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::InWorker() { return tls_in_worker; }

ThreadPool::ThreadPool(int num_threads) {
  int resolved = ResolveThreads(num_threads);
  // Nested pools (constructed on a worker thread) stay empty: the outer
  // pool already owns the hardware, and inner loops run inline anyway.
  if (tls_in_worker) resolved = 1;
  workers_.reserve(resolved - 1);
  for (int i = 0; i < resolved - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunJob(std::unique_lock<std::mutex>& lock) {
  Job* job = job_;
  ++job->active_workers;
  while (!job->failed && job->next < job->end) {
    int64_t i = job->next++;
    lock.unlock();
    bool threw = false;
    std::exception_ptr eptr;
    try {
      (*job->fn)(i);
    } catch (...) {
      threw = true;
      eptr = std::current_exception();
    }
    lock.lock();
    if (threw && (!job->failed || i < job->error_index)) {
      job->failed = true;
      job->error_index = i;
      job->error = eptr;
    }
  }
  if (--job->active_workers == 0) done_cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t last_gen = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (job_ != nullptr && job_gen_ != last_gen);
    });
    if (shutdown_) return;
    last_gen = job_gen_;
    RunJob(lock);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (end <= begin) return;
  if (workers_.empty() || end - begin == 1 || tls_in_worker) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.end = end;

  std::unique_lock<std::mutex> lock(mu_);
  // One range at a time; concurrent external callers queue up here.
  done_cv_.wait(lock, [&] { return job_ == nullptr; });
  job.next = begin;
  job_ = &job;
  ++job_gen_;
  work_cv_.notify_all();
  // The caller participates; while it does, it counts as a worker so any
  // pool or ParallelFor the body creates degrades to serial, exactly like
  // the background workers.
  tls_in_worker = true;
  RunJob(lock);
  tls_in_worker = false;
  done_cv_.wait(lock, [&] {
    return job.active_workers == 0 && (job.failed || job.next >= job.end);
  });
  job_ = nullptr;
  // Snapshot the outcome while still holding mu_ — after the unlock the
  // annotations no longer permit touching the guarded Job fields.
  bool failed = job.failed;
  std::exception_ptr error = job.error;
  lock.unlock();
  done_cv_.notify_all();  // release any queued external caller

  if (failed) std::rethrow_exception(error);
}

}  // namespace streamtune
