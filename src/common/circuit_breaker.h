// Three-state circuit breaker driven by a virtual clock.
//
// The control plane wraps every per-job deploy/measure path in a breaker so
// a job whose engine endpoint is persistently failing stops burning retry
// budget and thread-pool time on it. Classic state machine:
//
//   closed    — requests flow; `failure_threshold` consecutive failures
//               trip the breaker open.
//   open      — requests are refused until `open_minutes` of virtual time
//               elapse, then the breaker moves to half-open.
//   half-open — a limited number of probe requests are admitted; one
//               success closes the breaker, one failure re-opens it (and
//               re-arms the cooldown).
//
// All transitions are functions of (recorded outcomes, virtual timestamps),
// so breaker behaviour is deterministic and replayable. Not thread-safe:
// each breaker belongs to exactly one job's state, touched by one decision
// at a time.

#pragma once

namespace streamtune {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Short human-readable state name ("closed" / "open" / "half-open").
const char* BreakerStateName(BreakerState s);

struct CircuitBreakerOptions {
  /// Consecutive failures (in closed state) that trip the breaker.
  int failure_threshold = 3;
  /// Virtual minutes the breaker stays open before probing.
  double open_minutes = 30.0;
  /// Probe requests admitted per half-open episode.
  int half_open_probes = 1;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  /// True when a request may proceed at virtual time `now_minutes`. An open
  /// breaker whose cooldown has elapsed transitions to half-open here and
  /// admits up to `half_open_probes` probes.
  bool AllowRequest(double now_minutes);

  /// Records a successful request. Closes a half-open breaker and clears
  /// the consecutive-failure count.
  void RecordSuccess();

  /// Records a failed request at virtual time `now_minutes`. Trips a closed
  /// breaker at the threshold; re-opens a half-open breaker immediately.
  void RecordFailure(double now_minutes);

  BreakerState state() const { return state_; }
  /// Times the breaker has tripped open (half-open re-opens included) —
  /// the watchdog's quarantine signal.
  int trip_count() const { return trip_count_; }
  int consecutive_failures() const { return consecutive_failures_; }
  /// Virtual time at which an open breaker becomes half-open (meaningless
  /// unless state() == kOpen).
  double reopen_minutes() const { return opened_minutes_ + options_.open_minutes; }

 private:
  void TripOpen(double now_minutes);

  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int trip_count_ = 0;
  double opened_minutes_ = 0;
  int half_open_probes_left_ = 0;
};

}  // namespace streamtune
