#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace streamtune {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (q <= 0) return xs.front();
  if (q >= 100) return xs.back();
  double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double MinMaxScale(double x, double lo, double hi) {
  if (hi <= lo) return 0.0;
  return Clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> xs,
                                                    size_t points) {
  std::vector<std::pair<double, double>> cdf;
  if (xs.empty() || points == 0) return cdf;
  std::sort(xs.begin(), xs.end());
  cdf.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double frac = points == 1 ? 1.0
                              : static_cast<double>(i) /
                                    static_cast<double>(points - 1);
    size_t idx = static_cast<size_t>(
        frac * static_cast<double>(xs.size() - 1) + 0.5);
    cdf.emplace_back(xs[idx], static_cast<double>(idx + 1) /
                                  static_cast<double>(xs.size()));
  }
  return cdf;
}

}  // namespace streamtune
