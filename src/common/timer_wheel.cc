#include "common/timer_wheel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace streamtune {

TimerWheel::TimerWheel(double tick_minutes, int num_shards, int wheel_ticks)
    : tick_minutes_(tick_minutes > 0 ? tick_minutes : 0.5),
      wheel_ticks_(wheel_ticks > 1 ? wheel_ticks : 2),
      shards_(static_cast<size_t>(num_shards > 0 ? num_shards : 1)) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.buckets.resize(static_cast<size_t>(wheel_ticks_));
  }
}

int64_t TimerWheel::TickFor(double due_minutes) const {
  double raw = std::floor(due_minutes / tick_minutes_);
  int64_t tick =
      raw >= static_cast<double>(std::numeric_limits<int64_t>::max() / 2)
          ? std::numeric_limits<int64_t>::max() / 2
          : static_cast<int64_t>(raw);
  // Virtual time never runs backwards: anything at or before the current
  // tick fires in the next batch instead.
  return std::max(tick, now_tick_ + 1);
}

void TimerWheel::Schedule(int64_t id, double due_minutes) {
  int64_t tick = TickFor(due_minutes);
  Shard& shard =
      shards_[static_cast<size_t>(id < 0 ? -id : id) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (tick - now_tick_ <= wheel_ticks_) {
    shard.buckets[static_cast<size_t>(tick % wheel_ticks_)].push_back(
        {tick, id});
  } else {
    shard.overflow[tick].push_back(id);
  }
  ++shard.count;
}

size_t TimerWheel::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.count;
  }
  return total;
}

std::vector<int64_t> TimerWheel::PopDueBatch() {
  // Earliest occupied tick across every shard: near buckets hold ticks
  // within one wheel revolution of `now`, so the minimum is found by either
  // scanning buckets (bounded by the revolution) or consulting the ordered
  // overflow maps. Scanning cost is proportional to the tick gap between
  // batches — short for decision-interval-sized gaps.
  int64_t best = std::numeric_limits<int64_t>::max();
  bool any_near = false;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.count == 0) continue;
    size_t in_overflow = 0;
    for (const auto& [tick, ids] : shard.overflow) {
      in_overflow += ids.size();
    }
    if (!shard.overflow.empty()) {
      best = std::min(best, shard.overflow.begin()->first);
    }
    if (in_overflow < shard.count) any_near = true;
  }
  if (any_near) {
    // Some shard has a near event, which by construction lies in
    // (now, now + wheel_ticks]; scan the revolution for the earliest.
    for (int64_t tick = now_tick_ + 1;
         tick <= now_tick_ + wheel_ticks_ && tick < best; ++tick) {
      bool found = false;
      for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto& bucket =
            shard.buckets[static_cast<size_t>(tick % wheel_ticks_)];
        for (const auto& [entry_tick, id] : bucket) {
          if (entry_tick == tick) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (found) {
        best = tick;
        break;
      }
    }
  }
  if (best == std::numeric_limits<int64_t>::max()) return {};

  now_tick_ = best;
  std::vector<int64_t> due;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& bucket = shard.buckets[static_cast<size_t>(best % wheel_ticks_)];
    for (size_t i = 0; i < bucket.size();) {
      if (bucket[i].first == best) {
        due.push_back(bucket[i].second);
        bucket[i] = bucket.back();
        bucket.pop_back();
        --shard.count;
      } else {
        ++i;
      }
    }
    auto it = shard.overflow.find(best);
    if (it != shard.overflow.end()) {
      for (int64_t id : it->second) {
        due.push_back(id);
        --shard.count;
      }
      shard.overflow.erase(it);
    }
    // Cascade: overflow ticks that entered the new revolution move into the
    // near buckets so future scans see them.
    while (!shard.overflow.empty() &&
           shard.overflow.begin()->first - now_tick_ <= wheel_ticks_) {
      auto first = shard.overflow.begin();
      auto& target =
          shard.buckets[static_cast<size_t>(first->first % wheel_ticks_)];
      for (int64_t id : first->second) target.push_back({first->first, id});
      shard.overflow.erase(first);
    }
  }
  // Canonical order: batch content is a pure function of the schedule
  // calls, independent of shard layout or insertion interleaving.
  std::sort(due.begin(), due.end());
  return due;
}

}  // namespace streamtune
