#include "common/circuit_breaker.h"

namespace streamtune {

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::TripOpen(double now_minutes) {
  state_ = BreakerState::kOpen;
  opened_minutes_ = now_minutes;
  ++trip_count_;
}

bool CircuitBreaker::AllowRequest(double now_minutes) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_minutes >= reopen_minutes()) {
        state_ = BreakerState::kHalfOpen;
        half_open_probes_left_ = options_.half_open_probes;
      } else {
        return false;
      }
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (half_open_probes_left_ <= 0) return false;
      --half_open_probes_left_;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::RecordFailure(double now_minutes) {
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    TripOpen(now_minutes);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    TripOpen(now_minutes);
  }
}

}  // namespace streamtune
