// Thread-safety annotation macros checked by the self-hosted analyzer.
//
// The project toolchain is g++, which has no -Wthread-safety, so these
// macros expand to nothing at compile time (or to the real Clang attributes
// when a Clang build shows up). Their teeth come from `st_analyze`
// (src/analysis/): the `st-lock-guarded-by` rule verifies that every member
// declared STREAMTUNE_GUARDED_BY(mu) is only touched in scopes that hold a
// lock_guard / unique_lock / shared_lock / scoped_lock on `mu`, or inside
// functions annotated STREAMTUNE_REQUIRES(mu).
//
// Usage:
//   std::mutex mu_;
//   int counter_ STREAMTUNE_GUARDED_BY(mu_);
//   void Drain() STREAMTUNE_REQUIRES(mu_);  // caller must hold mu_
//
// Constructors and destructors are exempt (no concurrent access can exist
// before the object is shared or after teardown begins); anything else that
// is safe for a non-obvious reason takes // NOLINT(st-lock-guarded-by).
//
// STREAMTUNE_DETERMINISM_SAFE marks a function as bit-deterministic even
// though the interprocedural taint analysis (st-determinism-transitive)
// would conclude otherwise — e.g. a seeded draw whose nondeterministic
// ingredient is provably order-insensitive. It is the sanctioned escape
// hatch: the annotation clears the function's taint and stops propagation
// to its callers. Always pair it with a comment justifying why.

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define STREAMTUNE_GUARDED_BY(mu) __attribute__((guarded_by(mu)))
#define STREAMTUNE_REQUIRES(mu) __attribute__((exclusive_locks_required(mu)))
#endif
#endif

#ifndef STREAMTUNE_GUARDED_BY
#define STREAMTUNE_GUARDED_BY(mu)
#define STREAMTUNE_REQUIRES(mu)
#endif

// No compiler backing in any toolchain: purely an analyzer-visible marker.
#define STREAMTUNE_DETERMINISM_SAFE
