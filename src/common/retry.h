// Bounded retry with exponential backoff for transient engine failures.
//
// Production reconfiguration and metric endpoints fail transiently (the
// chaos engine reproduces this); tuners route every Deploy/Measure through
// these helpers so one dropped call does not kill a whole tuning process.
// Backoff waits are virtual: each sleep is reported through a `charge`
// callback so engines can account it on their virtual clock (Fig. 7b
// tuning-minutes semantics), keeping runs deterministic and instant.

#pragma once

#include <functional>

#include "common/rng.h"
#include "common/status.h"

namespace streamtune {

/// Knobs for RetryWithBackoff. Defaults survive the standard fault plan's
/// bounded bursts (<= 2 consecutive transient failures per call site).
struct RetryOptions {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 4;
  /// Virtual minutes slept before the first re-attempt.
  double initial_backoff_minutes = 0.5;
  /// Backoff multiplier per additional re-attempt.
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff sleep.
  double max_backoff_minutes = 8.0;
  /// Symmetric jitter fraction in [0, 1): each sleep is scaled by a factor
  /// drawn uniformly from [1 - jitter_frac, 1 + jitter_frac). 0 disables
  /// jitter (and draws nothing, keeping legacy call sites bit-identical).
  /// Jitter is deterministic: the draw sequence depends only on
  /// `jitter_seed`, and jittered sleeps are charged to the virtual clock
  /// like un-jittered ones.
  double jitter_frac = 0;
  uint64_t jitter_seed = 0x7e7a11;
};

/// The base (pre-jitter) sleep before re-attempt number `retry` (0-based).
/// Exponential growth clamped against overflow: once the exponent would
/// exceed `max_backoff_minutes` the value saturates there, so arbitrarily
/// high attempt counts never produce inf/NaN sleeps or overflow the
/// accumulated backoff stats.
double BackoffMinutes(const RetryOptions& opts, int retry);

/// Counters accumulated across retried calls.
struct RetryStats {
  /// Re-attempts performed (beyond each first attempt).
  int retries = 0;
  /// Virtual minutes spent backing off.
  double backoff_minutes = 0;
};

/// True when `status` is worth re-attempting: transient conditions only.
/// Logic errors (InvalidArgument, FailedPrecondition, ...) never retry.
bool IsRetryable(const Status& status);

/// The per-call backoff sequence: overflow-clamped exponential base plus the
/// optional deterministic jitter stream. One instance per retried call, so
/// the jitter draws of concurrent call sites never interleave.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryOptions& opts)
      : opts_(opts), rng_(opts.jitter_seed) {}

  /// The (jittered) sleep before re-attempt number `retry` (0-based). Must
  /// be called with consecutive retry numbers: the jitter stream advances
  /// one draw per call. Draws nothing when jitter is disabled.
  double SleepMinutes(int retry) {
    double sleep = BackoffMinutes(opts_, retry);
    if (opts_.jitter_frac > 0) {
      sleep *= 1.0 + opts_.jitter_frac * (2.0 * rng_.Uniform() - 1.0);
    }
    return sleep;
  }

 private:
  RetryOptions opts_;
  Rng rng_;
};

/// Runs `attempt` up to `opts.max_attempts` times. Retryable failures sleep
/// an exponentially growing virtual backoff between attempts, reported to
/// `charge(minutes)` (may be null). Returns the first OK or the last error.
Status RetryWithBackoff(const RetryOptions& opts,
                        const std::function<Status()>& attempt,
                        const std::function<void(double)>& charge = nullptr,
                        RetryStats* stats = nullptr);

/// Result-returning flavor of RetryWithBackoff.
template <typename T>
Result<T> RetryResultWithBackoff(
    const RetryOptions& opts, const std::function<Result<T>()>& attempt,
    const std::function<void(double)>& charge = nullptr,
    RetryStats* stats = nullptr) {
  BackoffSchedule schedule(opts);
  Result<T> last = attempt();
  for (int tries = 1;
       !last.ok() && IsRetryable(last.status()) && tries < opts.max_attempts;
       ++tries) {
    double sleep = schedule.SleepMinutes(tries - 1);
    if (charge) charge(sleep);
    if (stats) {
      ++stats->retries;
      stats->backoff_minutes += sleep;
    }
    last = attempt();
  }
  return last;
}

}  // namespace streamtune
