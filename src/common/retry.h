// Bounded retry with exponential backoff for transient engine failures.
//
// Production reconfiguration and metric endpoints fail transiently (the
// chaos engine reproduces this); tuners route every Deploy/Measure through
// these helpers so one dropped call does not kill a whole tuning process.
// Backoff waits are virtual: each sleep is reported through a `charge`
// callback so engines can account it on their virtual clock (Fig. 7b
// tuning-minutes semantics), keeping runs deterministic and instant.

#pragma once

#include <functional>

#include "common/status.h"

namespace streamtune {

/// Knobs for RetryWithBackoff. Defaults survive the standard fault plan's
/// bounded bursts (<= 2 consecutive transient failures per call site).
struct RetryOptions {
  /// Total attempts, including the first (1 = no retry).
  int max_attempts = 4;
  /// Virtual minutes slept before the first re-attempt.
  double initial_backoff_minutes = 0.5;
  /// Backoff multiplier per additional re-attempt.
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff sleep.
  double max_backoff_minutes = 8.0;
};

/// Counters accumulated across retried calls.
struct RetryStats {
  /// Re-attempts performed (beyond each first attempt).
  int retries = 0;
  /// Virtual minutes spent backing off.
  double backoff_minutes = 0;
};

/// True when `status` is worth re-attempting: transient conditions only.
/// Logic errors (InvalidArgument, FailedPrecondition, ...) never retry.
bool IsRetryable(const Status& status);

/// Runs `attempt` up to `opts.max_attempts` times. Retryable failures sleep
/// an exponentially growing virtual backoff between attempts, reported to
/// `charge(minutes)` (may be null). Returns the first OK or the last error.
Status RetryWithBackoff(const RetryOptions& opts,
                        const std::function<Status()>& attempt,
                        const std::function<void(double)>& charge = nullptr,
                        RetryStats* stats = nullptr);

/// Result-returning flavor of RetryWithBackoff.
template <typename T>
Result<T> RetryResultWithBackoff(
    const RetryOptions& opts, const std::function<Result<T>()>& attempt,
    const std::function<void(double)>& charge = nullptr,
    RetryStats* stats = nullptr) {
  double backoff = opts.initial_backoff_minutes;
  Result<T> last = attempt();
  for (int tries = 1;
       !last.ok() && IsRetryable(last.status()) && tries < opts.max_attempts;
       ++tries) {
    double sleep = backoff < opts.max_backoff_minutes
                       ? backoff
                       : opts.max_backoff_minutes;
    if (charge) charge(sleep);
    if (stats) {
      ++stats->retries;
      stats->backoff_minutes += sleep;
    }
    backoff *= opts.backoff_multiplier;
    last = attempt();
  }
  return last;
}

}  // namespace streamtune
