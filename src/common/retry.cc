#include "common/retry.h"

#include <algorithm>

namespace streamtune {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

double BackoffMinutes(const RetryOptions& opts, int retry) {
  // Repeated multiply (not pow) keeps the unsaturated sequence bit-identical
  // to the historical implementation; the early break saturates the series
  // so arbitrarily high attempt counts stay O(log) and finite.
  double backoff = opts.initial_backoff_minutes;
  for (int i = 0; i < retry; ++i) {
    if (backoff >= opts.max_backoff_minutes) break;
    backoff *= opts.backoff_multiplier;
  }
  return std::min(backoff, opts.max_backoff_minutes);
}

Status RetryWithBackoff(const RetryOptions& opts,
                        const std::function<Status()>& attempt,
                        const std::function<void(double)>& charge,
                        RetryStats* stats) {
  BackoffSchedule schedule(opts);
  Status last = attempt();
  for (int tries = 1;
       !last.ok() && IsRetryable(last) && tries < opts.max_attempts;
       ++tries) {
    double sleep = schedule.SleepMinutes(tries - 1);
    if (charge) charge(sleep);
    if (stats) {
      ++stats->retries;
      stats->backoff_minutes += sleep;
    }
    last = attempt();
  }
  return last;
}

}  // namespace streamtune
