#include "common/retry.h"

namespace streamtune {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

Status RetryWithBackoff(const RetryOptions& opts,
                        const std::function<Status()>& attempt,
                        const std::function<void(double)>& charge,
                        RetryStats* stats) {
  double backoff = opts.initial_backoff_minutes;
  Status last = attempt();
  for (int tries = 1;
       !last.ok() && IsRetryable(last) && tries < opts.max_attempts;
       ++tries) {
    double sleep = backoff < opts.max_backoff_minutes
                       ? backoff
                       : opts.max_backoff_minutes;
    if (charge) charge(sleep);
    if (stats) {
      ++stats->retries;
      stats->backoff_minutes += sleep;
    }
    backoff *= opts.backoff_multiplier;
    last = attempt();
  }
  return last;
}

}  // namespace streamtune
