// Status / Result error-handling primitives (RocksDB/Arrow-style).
//
// Library code in this project reports recoverable errors through Status (or
// Result<T> when a value is produced) rather than exceptions, so callers can
// handle failures explicitly on hot paths.

#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace streamtune {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  /// Transient failure (engine briefly unreachable, metric window dropped).
  /// The only code the retry helpers consider worth re-attempting.
  kUnavailable,
};

/// Returns a short human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

/// Outcome of an operation that produces no value: OK or an error with a
/// code and message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {

/// Terminates the process with the offending status. Accessing the value of
/// an errored Result is a programming error; unlike an assert, this fires in
/// every build type, so release builds fail loudly instead of reading an
/// empty optional (undefined behavior).
[[noreturn]] inline void FatalResultAccess(const Status& status) {
  std::fprintf(stderr, "fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts with the status message (all build types).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) internal::FatalResultAccess(status_);
    return *value_;
  }
  T& value() & {
    if (!ok()) internal::FatalResultAccess(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) internal::FatalResultAccess(status_);
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` if errored.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

  /// Pointer to the value, or nullptr if errored — lets retry/sanitize
  /// paths inspect an outcome without risking a fatal access.
  const T* value_if_ok() const { return ok() ? &*value_ : nullptr; }
  T* value_if_ok() { return ok() ? &*value_ : nullptr; }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define ST_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::streamtune::Status _st = (expr);        \
    if (!_st.ok()) return _st;                \
  } while (0)

#define ST_CONCAT_INNER_(a, b) a##b
#define ST_CONCAT_(a, b) ST_CONCAT_INNER_(a, b)
#define ST_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define ST_ASSIGN_OR_RETURN(lhs, expr) \
  ST_ASSIGN_OR_RETURN_IMPL_(ST_CONCAT_(_st_result_, __LINE__), lhs, expr)

}  // namespace streamtune
