// ParallelReduce: deterministic parallel reductions with a runtime-selected
// execution strategy (see exec_strategy.h for the selection rules and the
// algebra contract, DESIGN.md §14 for the determinism argument).
//
// Reduces map(i) over i in [begin, end) into `init` with `combine`:
//
//   T acc = init;
//   for (i = begin; i < end; ++i) combine(acc, map(i));   // the reference
//
// Every strategy is bit-identical to that serial left fold at any thread
// count, *given* the caller's declared CombineAlgebra is honest:
//
//   kOrderedFold  ParallelFor writes map(i) into slot i, then the caller
//                 thread folds the slots in index order. Exactly the pre-PR
//                 gather-then-fold shape (including its O(items) slot
//                 array); legal for every algebra because the combines run
//                 in serial index order.
//   kTreeMerge    the range is cut into a fixed number of contiguous chunks
//                 (a function of the item count only, never the thread
//                 count); each chunk is folded left-to-right into a local
//                 accumulator, and chunk partials merge pairwise along a
//                 canonical binary tree (leaf order = chunk order). Every
//                 combine is between adjacent index ranges, so bitwise
//                 associativity suffices.
//   kRadixShard   shard s accumulates items with (i - begin) % shards == s
//                 in ascending index order; shard partials merge in
//                 ascending shard id. Item order interleaves across shards,
//                 so bitwise commutativity is required.
//
// map(i) runs exactly once per index under every strategy (side effects such
// as cache fills are safe); the warmup slice is the serial prefix of the
// same fold, not a rehearsal. T must be copy-constructible (strategies seed
// partials by copying `init`). Exceptions surface like ParallelFor's: the
// lowest failing unit is rethrown on the caller.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/exec_strategy.h"
#include "common/thread_pool.h"

namespace streamtune {

namespace internal {

/// Fixed fan-in knobs. Thread-count independent on purpose: the merge
/// topology (and therefore every intermediate value) is a function of the
/// input size only, which is what makes a 1-thread and a 64-thread run
/// byte-for-byte comparable even for mis-declared algebras.
inline constexpr int64_t kTreeChunks = 64;
inline constexpr int64_t kRadixShards = 32;
/// Items folded serially (and timed) to estimate per-item cost when the
/// selector has a real choice and no caller hint.
inline constexpr int64_t kWarmupItems = 16;
/// Below this, a warmup slice would measure a range too small to matter.
inline constexpr int64_t kWarmupMinRange = 256;

}  // namespace internal

template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(ThreadPool* pool, int64_t begin, int64_t end, T init,
                 const MapFn& map, const CombineFn& combine,
                 ReduceOptions opts = {}) {
  T acc = std::move(init);
  const int64_t n = end - begin;
  if (n <= 0) return acc;

  // No pool: the serial reference fold, verbatim.
  if (pool == nullptr) {
    for (int64_t i = begin; i < end; ++i) combine(acc, map(i));
    StrategySelector::RecordExecution(ReduceStrategy::kOrderedFold,
                                      /*pinned=*/false, /*clamped=*/false);
    return acc;
  }

  // What would run absent the cost model (for the pinned/clamped counters).
  ReduceStrategy requested = StrategySelector::EnvPin();
  if (requested == ReduceStrategy::kAuto) requested = opts.strategy;
  const bool pinned = requested != ReduceStrategy::kAuto;
  const bool clamped =
      pinned &&
      StrategySelector::ClampToAlgebra(requested, opts.algebra) != requested;

  // Warmup slice: serially fold a short prefix — it is part of the real
  // reduction, every index still runs exactly once — and time it to feed
  // the selector a per-item cost estimate.
  int64_t start = begin;
  if (opts.cost_hint_ns <= 0.0 && n >= internal::kWarmupMinRange &&
      StrategySelector::WantsCostEstimate(opts)) {
    const int64_t warm = internal::kWarmupItems;
    const int64_t t0 = StrategySelector::NowNanos();
    for (int64_t i = begin; i < begin + warm; ++i) combine(acc, map(i));
    const int64_t t1 = StrategySelector::NowNanos();
    opts.cost_hint_ns = static_cast<double>(t1 - t0) / warm;
    start = begin + warm;
  }
  const int64_t m = end - start;

  const ReduceStrategy strategy = StrategySelector::Pick(
      m, pool->num_threads(), static_cast<int64_t>(sizeof(T)), opts);
  StrategySelector::RecordExecution(strategy, pinned, clamped);

  switch (strategy) {
    case ReduceStrategy::kOrderedFold: {
      std::vector<T> slots(m, acc);  // overwritten below, value irrelevant
      pool->ParallelFor(start, end,
                        [&](int64_t i) { slots[i - start] = map(i); });
      for (int64_t j = 0; j < m; ++j) combine(acc, slots[j]);
      return acc;
    }
    case ReduceStrategy::kTreeMerge: {
      const int64_t chunks = std::min<int64_t>(internal::kTreeChunks, m);
      // parts[c] is seeded from the chunk's own first item rather than a
      // copy of `acc` — no identity element is required of T, and the final
      // combine(acc, parts[0]) is the only place the prefix meets the rest,
      // exactly as associativity licenses. The fill value below is storage
      // only; every slot is overwritten.
      std::vector<T> parts(chunks, acc);
      pool->ParallelFor(0, chunks, [&](int64_t c) {
        const int64_t lo = start + m * c / chunks;
        const int64_t hi = start + m * (c + 1) / chunks;
        T local = map(lo);
        for (int64_t i = lo + 1; i < hi; ++i) combine(local, map(i));
        parts[c] = std::move(local);
      });
      // Canonical binary tree over chunk partials, leaves in chunk order.
      for (int64_t stride = 1; stride < chunks; stride *= 2) {
        for (int64_t j = 0; j + stride < chunks; j += 2 * stride) {
          combine(parts[j], parts[j + stride]);
        }
      }
      combine(acc, parts[0]);
      return acc;
    }
    case ReduceStrategy::kRadixShard: {
      const int64_t shards = std::min<int64_t>(internal::kRadixShards, m);
      std::vector<T> parts(shards, acc);
      pool->ParallelFor(0, shards, [&](int64_t s) {
        T local = map(start + s);
        for (int64_t i = start + s + shards; i < end; i += shards) {
          combine(local, map(i));
        }
        parts[s] = std::move(local);
      });
      // Canonical merge order: ascending shard id.
      for (int64_t s = 0; s < shards; ++s) combine(acc, parts[s]);
      return acc;
    }
    case ReduceStrategy::kAuto:
      break;  // Pick() never returns kAuto
  }
  for (int64_t i = start; i < end; ++i) combine(acc, map(i));
  return acc;
}

}  // namespace streamtune
