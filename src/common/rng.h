// Deterministic random-number utilities.
//
// All stochastic components (simulator noise, corpus generation, ML weight
// init, k-means seeding) draw from an explicitly seeded Rng so experiments
// are reproducible run-to-run.

#pragma once

#include <cassert>
#include <cstdint>
#include <cmath>
#include <vector>

namespace streamtune {

/// Small, fast, explicitly seeded PRNG (splitmix64 core) with the handful of
/// distributions this project needs. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    assert(lo <= hi);
    return lo + static_cast<int>(NextU64() %
                                 static_cast<uint64_t>(hi - lo + 1));
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextU64() % i;
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator (for parallel components).
  Rng Fork() { return Rng(NextU64()); }

 private:
  uint64_t state_;
};

}  // namespace streamtune
