// Small numeric helpers shared across modules.

#pragma once

#include <cstddef>
#include <vector>

namespace streamtune {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0, 100]. Sorts a copy.
double Percentile(std::vector<double> xs, double q);

/// Min-max scaling of `x` from [lo, hi] to [0, 1]; clamps outside the range.
/// If hi == lo the result is 0.
double MinMaxScale(double x, double lo, double hi);

/// Numerically stable logistic sigmoid.
double Sigmoid(double x);

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// Empirical CDF of `xs` evaluated at `points.size()` evenly spaced quantile
/// levels; returns (value, cumulative-fraction) pairs sorted by value.
std::vector<std::pair<double, double>> EmpiricalCdf(std::vector<double> xs,
                                                    size_t points = 100);

}  // namespace streamtune
