#include "common/table_printer.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace streamtune {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t k = row[c].size(); k < widths[c]; ++k) os << ' ';
      os << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  os << render_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    for (size_t k = 0; k < widths[c] + 2; ++k) os << '-';
    os << "|";
  }
  os << "\n";
  for (const auto& row : rows_) os << render_row(row);
  return os.str();
}

void TablePrinter::Print() const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace streamtune
