// Sharded timer wheel over a virtual clock.
//
// The control plane schedules one future "decision due" event per live job
// and repeatedly asks for the earliest batch of due events. A classic
// hashed-and-hierarchical timer wheel gives O(1) insertion into the near
// future plus an overflow map for far-out timers; sharding by id spreads
// insertion locking so pool workers can schedule follow-up timers straight
// from decision callbacks.
//
// Determinism contract: PopDueBatch drains *all* events of the earliest
// occupied tick across every shard and returns them sorted by id, so the
// batch composition and order depend only on the schedule calls made — never
// on shard layout, insertion interleaving, or thread timing. Virtual time
// only moves forward: scheduling at or before the current tick lands in the
// next tick rather than the past.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/annotations.h"

namespace streamtune {

/// A sharded virtual-time timer wheel of int64 ids. Schedule() is
/// thread-safe; PopDueBatch()/now()/size() must be called from the single
/// scheduler thread with no concurrent Schedule() in flight (the control
/// plane's event loop alternates a parallel decision phase that schedules
/// with a serial drain phase that pops).
class TimerWheel {
 public:
  /// `tick_minutes` is the wheel resolution: events inside the same tick are
  /// one batch. `wheel_ticks` is the span of the O(1) near wheel per shard;
  /// further-out events go to the overflow map and cascade in lazily.
  explicit TimerWheel(double tick_minutes = 0.5, int num_shards = 8,
                      int wheel_ticks = 1024);

  /// Schedules `id` at virtual time `due_minutes` (clamped to the tick after
  /// `now()` when not in the future). Ids are not deduplicated: scheduling
  /// twice yields two events.
  void Schedule(int64_t id, double due_minutes);

  /// Advances the clock to the earliest occupied tick and returns every id
  /// due there, sorted ascending. Empty result means no timers are pending.
  std::vector<int64_t> PopDueBatch();

  /// Virtual minutes of the last popped tick (0 before the first pop).
  double now_minutes() const { return static_cast<double>(now_tick_) * tick_minutes_; }

  /// Pending events across all shards.
  size_t size() const;

  double tick_minutes() const { return tick_minutes_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Near future: bucket b holds ticks with tick % wheel_ticks == b.
    std::vector<std::vector<std::pair<int64_t, int64_t>>> buckets
        STREAMTUNE_GUARDED_BY(mu);  // (tick, id)
    /// Far future (beyond one wheel revolution from `now`).
    std::map<int64_t, std::vector<int64_t>> overflow STREAMTUNE_GUARDED_BY(mu);
    size_t count STREAMTUNE_GUARDED_BY(mu) = 0;
  };

  int64_t TickFor(double due_minutes) const;

  const double tick_minutes_;
  const int wheel_ticks_;
  std::vector<Shard> shards_;
  /// Tick of the last popped batch; events land strictly after it.
  int64_t now_tick_ = 0;
};

}  // namespace streamtune
