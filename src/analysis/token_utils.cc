#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

bool IsOpener(const Token& t, char* close) {
  if (t.kind != TokenKind::kPunct || t.text.size() != 1) return false;
  switch (t.text[0]) {
    case '(':
      *close = ')';
      return true;
    case '[':
      *close = ']';
      return true;
    case '{':
      *close = '}';
      return true;
  }
  return false;
}

bool IsQualifierIdent(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "try" || s == "volatile" || s == "&&" ||
         s == "STREAMTUNE_DETERMINISM_SAFE";
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

// Annotation-style macros that may sit between a parameter list and the
// function body; their argument group is skipped when walking backwards.
bool IsAnnotationMacro(const std::string& s) {
  return s == "noexcept" || s == "STREAMTUNE_REQUIRES" ||
         s == "STREAMTUNE_GUARDED_BY";
}

// Index of the `<` opening the template argument list whose `>` (or `>>`)
// sits at `k`, or -1. Angle depth only; declarations contain no comparison
// operators, so this is exact there.
int SkipAngleBackward(const std::vector<Token>& toks, int k) {
  int depth = 0;
  for (int j = k; j >= 0; --j) {
    if (toks[j].IsPunct(">")) ++depth;
    if (toks[j].IsPunct(">>")) depth += 2;
    if (toks[j].IsPunct("<") && --depth == 0) return j;
    if (toks[j].IsPunct(";") || toks[j].IsPunct("{")) break;
  }
  return -1;
}

// Steps backward over one (possibly qualified) name: `k` points at the
// token before the name ident on return. Handles `Ns::Class::~Name` and
// template qualifiers like `Holder<T>::Name`.
int SkipNameBackward(const std::vector<Token>& toks, int name_idx) {
  int k = name_idx - 1;
  if (k >= 0 && toks[k].IsPunct("~")) --k;
  while (k >= 1 && toks[k].IsPunct("::")) {
    int prev = k - 1;
    // `Holder<T>::` — step over the template argument list first.
    if (toks[prev].IsPunct(">") || toks[prev].IsPunct(">>")) {
      int open = SkipAngleBackward(toks, prev);
      if (open <= 0) break;
      prev = open - 1;
    }
    if (toks[prev].kind != TokenKind::kIdent) break;
    k = prev - 1;
    if (k >= 0 && toks[k].IsPunct("~")) --k;
  }
  return k;
}

// Shared backward walk from a `{` at `b`. On success sets *param_close to
// the index of the `)` closing the parameter list and returns true.
bool FindParamList(const std::vector<Token>& toks, int b, int* param_close) {
  int j = b - 1;
  while (j >= 0) {
    const Token& t = toks[j];
    if (t.kind == TokenKind::kPreproc) {
      --j;
      continue;
    }
    if (t.kind == TokenKind::kIdent) {
      if (IsQualifierIdent(t.text)) {
        --j;
        continue;
      }
      return false;  // namespace / class name, else, do, enum, ...
    }
    if (t.IsPunct("&") || t.IsPunct("&&")) {  // ref-qualified member fn
      --j;
      continue;
    }
    if (t.IsPunct(")")) {
      int o = MatchBackward(toks, j);
      if (o <= 0) return false;
      const Token& before = toks[o - 1];
      if (before.kind == TokenKind::kIdent) {
        if (IsControlKeyword(before.text)) return false;
        if (IsAnnotationMacro(before.text)) {
          j = o - 2;  // skip the macro call and keep walking
          continue;
        }
        int k = SkipNameBackward(toks, o - 1);
        if (k >= 0 && (toks[k].IsPunct(",") || toks[k].IsPunct(":"))) {
          j = k - 1;  // constructor-initializer item; keep walking left
          continue;
        }
        *param_close = j;
        return true;
      }
      if (before.IsPunct("]") || before.IsPunct(">")) {
        *param_close = j;  // lambda or templated name
        return true;
      }
      // Operator functions: `operator()(args)`, `operator<(rhs)`, ... — the
      // token before the parameter list is punctuation, not a plain ident.
      if (OperatorKeywordBefore(toks, o) >= 0) {
        *param_close = j;
        return true;
      }
      return false;
    }
    return false;
  }
  return false;
}

}  // namespace

int OperatorKeywordBefore(const std::vector<Token>& toks, int paren) {
  int k = paren - 1;
  if (k < 1) return -1;
  if (toks[k].IsPunct(")") && toks[k - 1].IsPunct("(")) {
    k -= 2;  // operator()
  } else if (toks[k].IsPunct("]") && toks[k - 1].IsPunct("[")) {
    k -= 2;  // operator[]
  } else if (toks[k].kind == TokenKind::kPunct) {
    --k;  // symbolic operator: one token (multi-char ops are single tokens)
  } else if (toks[k].kind == TokenKind::kIdent) {
    --k;  // conversion operator: `operator bool`, `operator SomeType`
  } else {
    return -1;
  }
  if (k >= 0 && toks[k].IsIdent("operator")) return k;
  return -1;
}

int MatchForward(const std::vector<Token>& toks, size_t i) {
  char close = 0;
  if (i >= toks.size() || !IsOpener(toks[i], &close)) return -1;
  const std::string open = toks[i].text;
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != TokenKind::kPunct || toks[j].text.size() != 1) continue;
    if (toks[j].text[0] == open[0]) ++depth;
    if (toks[j].text[0] == close && --depth == 0) return static_cast<int>(j);
  }
  return -1;
}

int MatchBackward(const std::vector<Token>& toks, size_t i) {
  if (i >= toks.size() || toks[i].kind != TokenKind::kPunct ||
      toks[i].text.size() != 1) {
    return -1;
  }
  char close = toks[i].text[0];
  char open = close == ')' ? '(' : close == ']' ? '[' : close == '}' ? '{' : 0;
  if (open == 0) return -1;
  int depth = 0;
  for (int j = static_cast<int>(i); j >= 0; --j) {
    if (toks[j].kind != TokenKind::kPunct || toks[j].text.size() != 1) continue;
    if (toks[j].text[0] == close) ++depth;
    if (toks[j].text[0] == open && --depth == 0) return j;
  }
  return -1;
}

std::vector<int> EnclosingBraces(const std::vector<Token>& toks) {
  std::vector<int> encl(toks.size(), -1);
  std::vector<int> stack;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].IsPunct("}") && !stack.empty()) stack.pop_back();
    encl[i] = stack.empty() ? -1 : stack.back();
    if (toks[i].IsPunct("{")) stack.push_back(static_cast<int>(i));
  }
  return encl;
}

bool IsFunctionBody(const std::vector<Token>& toks, int b) {
  int param_close = -1;
  return FindParamList(toks, b, &param_close);
}

int OutermostFunctionBody(const std::vector<Token>& toks,
                          const std::vector<int>& encl, size_t i) {
  int result = -1;
  for (int b = encl[i]; b != -1; b = encl[b]) {
    if (IsFunctionBody(toks, b)) result = b;
  }
  return result;
}

std::string FunctionNameAtParamOpen(const std::vector<Token>& toks, int o) {
  if (o <= 0) return "";
  int kop = OperatorKeywordBefore(toks, o);
  if (kop >= 0) {
    // "operator()" / "operator[]" / "operator<" / "operator bool".
    std::string name = "operator";
    for (int k = kop + 1; k < o; ++k) {
      if (toks[k].kind == TokenKind::kIdent) name += " ";
      name += toks[k].text;
    }
    return name;
  }
  const Token& name = toks[o - 1];
  if (name.kind != TokenKind::kIdent) return "";  // lambda
  if (o >= 2 && toks[o - 2].IsPunct("~")) return "~" + name.text;
  return name.text;
}

std::string FunctionNameForBody(const std::vector<Token>& toks, int b) {
  int param_close = -1;
  if (!FindParamList(toks, b, &param_close)) return "";
  return FunctionNameAtParamOpen(toks, MatchBackward(toks, param_close));
}

std::string FunctionQualifierForBody(const std::vector<Token>& toks,
                                     const std::vector<int>& encl, int b) {
  int param_close = -1;
  if (!FindParamList(toks, b, &param_close)) return "";
  int o = MatchBackward(toks, param_close);
  if (o <= 0) return "";
  // Start of the (possibly operator) name.
  int kop = OperatorKeywordBefore(toks, o);
  int name_start = kop >= 0 ? kop : o - 1;
  if (kop < 0 && toks[name_start].kind != TokenKind::kIdent) return "";
  if (kop < 0 && name_start >= 1 && toks[name_start - 1].IsPunct("~"))
    --name_start;
  // Out-of-line `Class::Name` / `Class<T>::Name` qualifier.
  int k = name_start - 1;
  if (k >= 1 && toks[k].IsPunct("::")) {
    int prev = k - 1;
    if (toks[prev].IsPunct(">") || toks[prev].IsPunct(">>")) {
      int open = SkipAngleBackward(toks, prev);
      if (open <= 0) return "";
      prev = open - 1;
    }
    if (toks[prev].kind == TokenKind::kIdent) return toks[prev].text;
    return "";
  }
  // In-class definition: the innermost enclosing class.
  return EnclosingClassName(toks, encl, static_cast<size_t>(b));
}

std::string EnclosingClassName(const std::vector<Token>& toks,
                               const std::vector<int>& encl, size_t i) {
  for (int b = encl[i]; b != -1; b = encl[b]) {
    // Walk back from the brace looking for `class|struct Name [: bases]`.
    int j = b - 1;
    while (j >= 0) {
      const Token& t = toks[j];
      if (t.kind == TokenKind::kIdent) {
        if (t.text == "class" || t.text == "struct") {
          // Name = first plain ident after the keyword (skips attributes).
          for (int k = j + 1; k < b; ++k) {
            if (toks[k].kind == TokenKind::kIdent &&
                toks[k].text != "final" && toks[k].text != "alignas") {
              return toks[k].text;
            }
          }
          return "";
        }
        --j;
        continue;
      }
      if (t.IsPunct(":") || t.IsPunct(",") || t.IsPunct("::") ||
          t.IsPunct("<") || t.IsPunct(">") || t.kind == TokenKind::kNumber ||
          t.kind == TokenKind::kPreproc) {
        --j;
        continue;
      }
      break;  // `;`, `{`, `)`, `=`, ... — not a class head
    }
  }
  return "";
}

bool IsCtorOrDtorBody(const std::vector<Token>& toks,
                      const std::vector<int>& encl, int b) {
  std::string name = FunctionNameForBody(toks, b);
  if (name.empty()) return false;
  bool dtor = name[0] == '~';
  std::string plain = dtor ? name.substr(1) : name;

  // Qualified out-of-line definition: `T::T(`, `T::~T(`, `T<X>::T(`.
  int param_close = -1;
  if (FindParamList(toks, b, &param_close)) {
    int o = MatchBackward(toks, param_close);
    int k = o - 2;  // before the name ident
    if (k >= 0 && toks[k].IsPunct("~")) --k;
    if (k >= 1 && toks[k].IsPunct("::")) {
      int prev = k - 1;
      if (toks[prev].IsPunct(">") || toks[prev].IsPunct(">>")) {
        int open = SkipAngleBackward(toks, prev);
        prev = open > 0 ? open - 1 : -1;
      }
      if (prev >= 0 && toks[prev].kind == TokenKind::kIdent &&
          toks[prev].text == plain) {
        return true;
      }
    }
  }
  // Inline definition inside the class body.
  return !plain.empty() &&
         EnclosingClassName(toks, encl, static_cast<size_t>(b)) == plain;
}

}  // namespace streamtune::analysis
