#include "analysis/rules.h"

namespace streamtune::analysis {

std::vector<std::unique_ptr<Rule>> BuildAllRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(MakeDeterminismRandomRule());
  rules.push_back(MakeDeterminismUnorderedIterRule());
  rules.push_back(MakeStatusIgnoredRule());
  rules.push_back(MakeStatusValueRule());
  rules.push_back(MakeLockGuardedByRule());
  rules.push_back(MakeBannedEndlRule());
  rules.push_back(MakeBannedPrintfRule());
  rules.push_back(MakePragmaOnceRule());
  return rules;
}

}  // namespace streamtune::analysis
