// Banned-API and include-hygiene rules.
//
//   st-banned-endl    std::endl flushes on every use; library code (src/)
//                     must use '\n' and flush explicitly when needed.
//   st-banned-printf  printf/puts bypass the project's stream-based output
//                     discipline; allowed only in tools/ (the CLI) and
//                     bench/ (throwaway progress output).
//   st-pragma-once    every header starts with #pragma once (before any
//                     code token) so double inclusion cannot happen.

#include "analysis/project_index.h"
#include "analysis/rules.h"

namespace streamtune::analysis {

namespace {

class BannedEndlRule : public Rule {
 public:
  const char* name() const override { return "st-banned-endl"; }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (file.origin != FileOrigin::kSrc) return;
    for (const Token& t : file.src.tokens) {
      if (t.IsIdent("endl")) {
        out->push_back(Finding{
            file.path, t.line, name(),
            "std::endl flushes the stream on every call (a hot-path hazard);"
            " use '\\n' and flush explicitly where needed"});
      }
    }
  }
};

class BannedPrintfRule : public Rule {
 public:
  const char* name() const override { return "st-banned-printf"; }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (file.origin != FileOrigin::kSrc && file.origin != FileOrigin::kTests)
      return;
    const std::vector<Token>& toks = file.src.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdent) continue;
      if (t.text != "printf" && t.text != "puts") continue;
      // Member calls (`logger.printf(...)`) are someone else's API.
      if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")))
        continue;
      out->push_back(Finding{
          file.path, t.line, name(),
          t.text + " is reserved for tools/ and bench/; library code "
                   "returns strings or writes to a caller-supplied stream"});
    }
  }
};

class PragmaOnceRule : public Rule {
 public:
  const char* name() const override { return "st-pragma-once"; }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!file.is_header || file.src.tokens.empty()) return;
    const Token& first = file.src.tokens.front();
    bool ok = first.kind == TokenKind::kPreproc &&
              first.text.find("#pragma") != std::string::npos &&
              first.text.find("once") != std::string::npos;
    if (!ok) {
      out->push_back(Finding{
          file.path, 1, name(),
          "header must start with #pragma once (before any code token)"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeBannedEndlRule() {
  return std::make_unique<BannedEndlRule>();
}
std::unique_ptr<Rule> MakeBannedPrintfRule() {
  return std::make_unique<BannedPrintfRule>();
}
std::unique_ptr<Rule> MakePragmaOnceRule() {
  return std::make_unique<PragmaOnceRule>();
}

}  // namespace streamtune::analysis
