#include "analysis/source_file.h"

#include <fstream>
#include <sstream>

namespace streamtune::analysis {

FileOrigin ClassifyPath(const std::string& rel_path) {
  auto has_prefix = [&](const char* p) {
    return rel_path.rfind(p, 0) == 0;
  };
  if (has_prefix("src/")) return FileOrigin::kSrc;
  if (has_prefix("tests/")) return FileOrigin::kTests;
  if (has_prefix("tools/")) return FileOrigin::kTools;
  if (has_prefix("bench/")) return FileOrigin::kBench;
  if (has_prefix("examples/")) return FileOrigin::kExamples;
  return FileOrigin::kOther;
}

std::string PathStem(const std::string& rel_path) {
  size_t slash = rel_path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? rel_path : rel_path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

SourceFile SourceFile::FromContent(const std::string& rel_path,
                                   std::string_view content) {
  SourceFile f;
  f.path = rel_path;
  f.origin = ClassifyPath(rel_path);
  f.is_header = rel_path.size() >= 2 &&
                rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
  f.src = Tokenize(content);
  return f;
}

Result<SourceFile> SourceFile::Load(const std::string& root,
                                    const std::string& rel_path) {
  std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + full);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromContent(rel_path, buf.str());
}

}  // namespace streamtune::analysis
