// One analyzed file: its tokens, suppressions, and path classification.

#pragma once

#include <string>

#include "analysis/tokenizer.h"
#include "common/status.h"

namespace streamtune::analysis {

/// Which top-level tree a file lives in; several rules scope by origin
/// (e.g. printf is fine in the CLI and benches, banned in library code).
enum class FileOrigin {
  kSrc,
  kTests,
  kTools,
  kBench,
  kExamples,
  kOther,
};

FileOrigin ClassifyPath(const std::string& rel_path);

/// Basename without directory or extension ("src/kb/kb_service.h" ->
/// "kb_service"). The lock rule uses it to pair a header with its .cc.
std::string PathStem(const std::string& rel_path);

struct SourceFile {
  std::string path;  // root-relative, '/'-separated
  FileOrigin origin = FileOrigin::kOther;
  bool is_header = false;
  TokenizedSource src;

  /// Reads and tokenizes `root`/`rel_path`.
  static Result<SourceFile> Load(const std::string& root,
                                 const std::string& rel_path);

  /// Builds a SourceFile from in-memory content (fixture tests).
  static SourceFile FromContent(const std::string& rel_path,
                                std::string_view content);

  bool Suppressed(int line, const std::string& rule) const {
    return IsSuppressed(src.nolint, line, rule);
  }
};

}  // namespace streamtune::analysis
