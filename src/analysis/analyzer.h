// Analyzer driver. Three phases:
//
//   scan   (parallel)    read + hash every file; tokenize and extract
//                        per-file facts, or reuse them from the incremental
//                        cache on a content-hash match;
//   rules  (parallel)    per-file rules for files whose cached findings are
//                        stale (content changed, or the cross-file index
//                        fingerprint moved);
//   graph  (sequential)  call-graph construction, SCC condensation, and the
//                        interprocedural rules (determinism taint,
//                        lock-order cycles, requires-unheld).
//
// Findings from all phases are merged, deduplicated per (file, line, rule),
// then filtered by NOLINT markers and the baseline — in that order, so a
// warm cached run produces byte-identical output to a cold one.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/graph_rules.h"
#include "analysis/rule.h"
#include "common/status.h"

namespace streamtune::analysis {

struct AnalyzerOptions {
  /// Repository root; analyzed paths are resolved and reported relative to
  /// it. Empty = current working directory.
  std::string root;
  /// Files or directories (root-relative). Directories are walked
  /// recursively for *.h / *.cc, skipping `analysis_fixtures` and build
  /// trees; explicitly named files are always analyzed, fixtures included.
  std::vector<std::string> paths;
  /// When non-empty, only rules whose name is listed are reported. The
  /// filter is applied to the merged findings, not at rule-run time, so the
  /// cache always holds the full-rule result.
  std::set<std::string> enabled_rules;
  /// Baseline findings (by Key()) to subtract from the report.
  std::set<std::string> baseline;
  /// Incremental cache file. Empty = no caching (every run is cold).
  std::string cache_path;
  /// Threads for the scan and rules phases; <= 0 = hardware concurrency.
  int threads = 0;
};

struct AnalysisReport {
  std::vector<Finding> findings;    // sorted, post-NOLINT, post-baseline
  int files_analyzed = 0;
  int suppressed_nolint = 0;    // dropped by NOLINT markers
  int suppressed_baseline = 0;  // dropped by the baseline file
  /// Cache effectiveness: every analyzed file is counted in exactly one.
  int files_retokenized = 0;
  int files_from_cache = 0;
  /// Call-graph and interprocedural-analysis statistics (--stats).
  GraphAnalysisStats graph;
  /// Phase wall times, milliseconds.
  double scan_ms = 0;
  double rules_ms = 0;
  double graph_ms = 0;
};

/// Runs the analyzer. Fails only on environment errors (unreadable root or
/// explicitly named file); findings are data, not errors.
Result<AnalysisReport> RunAnalyzer(const AnalyzerOptions& options);

/// Loads a baseline file (one Finding::Key() per line, '#' comments).
Result<std::set<std::string>> LoadBaseline(const std::string& path);

/// Writes `findings` as a baseline file.
Status WriteBaseline(const std::string& path,
                     const std::vector<Finding>& findings);

}  // namespace streamtune::analysis
