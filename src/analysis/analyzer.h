// Analyzer driver: collects files, builds the cross-file ProjectIndex,
// runs every rule, applies NOLINT suppressions and the baseline, and
// reports findings in a stable order.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/rule.h"
#include "common/status.h"

namespace streamtune::analysis {

struct AnalyzerOptions {
  /// Repository root; analyzed paths are resolved and reported relative to
  /// it. Empty = current working directory.
  std::string root;
  /// Files or directories (root-relative). Directories are walked
  /// recursively for *.h / *.cc, skipping `analysis_fixtures` and build
  /// trees; explicitly named files are always analyzed, fixtures included.
  std::vector<std::string> paths;
  /// When non-empty, only rules whose name is listed run.
  std::set<std::string> enabled_rules;
  /// Baseline findings (by Key()) to subtract from the report.
  std::set<std::string> baseline;
};

struct AnalysisReport {
  std::vector<Finding> findings;    // sorted, post-NOLINT, post-baseline
  int files_analyzed = 0;
  int suppressed_nolint = 0;   // dropped by NOLINT markers
  int suppressed_baseline = 0; // dropped by the baseline file
};

/// Runs the analyzer. Fails only on environment errors (unreadable root or
/// explicitly named file); findings are data, not errors.
Result<AnalysisReport> RunAnalyzer(const AnalyzerOptions& options);

/// Loads a baseline file (one Finding::Key() per line, '#' comments).
Result<std::set<std::string>> LoadBaseline(const std::string& path);

/// Writes `findings` as a baseline file.
Status WriteBaseline(const std::string& path,
                     const std::vector<Finding>& findings);

}  // namespace streamtune::analysis
