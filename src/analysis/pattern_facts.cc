#include "analysis/pattern_facts.h"

#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

bool IsLockType(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "shared_lock" ||
         s == "scoped_lock";
}

}  // namespace

bool IsGlobalOrStdCall(const std::vector<Token>& toks, size_t i) {
  if (i + 1 >= toks.size() || !toks[i + 1].IsPunct("(")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.IsPunct(".") || prev.IsPunct("->")) return false;
  if (prev.IsPunct("::")) {
    return i >= 2 && toks[i - 2].IsIdent("std");
  }
  return true;
}

std::vector<LockSite> CollectLockSites(const std::vector<Token>& toks,
                                       const std::vector<int>& encl) {
  std::vector<LockSite> sites;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent || !IsLockType(toks[i].text))
      continue;
    size_t j = i + 1;
    if (j < toks.size() && toks[j].IsPunct("<")) {  // template args
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].IsPunct("<")) ++depth;
        if (toks[j].IsPunct(">") && --depth == 0) break;
      }
      if (j >= toks.size()) continue;
      ++j;
    }
    // Declaration form: `lock_guard<...> name(args);` — skip the variable
    // name, then harvest the argument identifiers.
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdent) continue;
    ++j;
    if (j >= toks.size() || !toks[j].IsPunct("(")) continue;
    int close = MatchForward(toks, j);
    if (close < 0) continue;
    LockSite site;
    site.pos = i;
    site.scope = encl[i];
    std::string last;
    for (int k = static_cast<int>(j) + 1; k < close; ++k) {
      if (toks[k].kind == TokenKind::kIdent) last = toks[k].text;
      if (toks[k].IsPunct(",")) {
        if (!last.empty()) site.mutexes.push_back(last);
        last.clear();
      }
    }
    if (!last.empty()) site.mutexes.push_back(last);
    if (!site.mutexes.empty()) sites.push_back(std::move(site));
  }
  return sites;
}

std::set<std::string> CollectUnorderedVars(const std::vector<Token>& toks) {
  std::set<std::string> unordered_types = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  // Pass 1: `using Alias = ... unordered_xxx ... ;`
  std::set<std::string> aliases;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!toks[i].IsIdent("using")) continue;
    if (toks[i + 1].kind != TokenKind::kIdent || !toks[i + 2].IsPunct("="))
      continue;
    for (size_t j = i + 3; j < toks.size() && !toks[j].IsPunct(";"); ++j) {
      if (toks[j].kind == TokenKind::kIdent &&
          unordered_types.count(toks[j].text) > 0) {
        aliases.insert(toks[i + 1].text);
        break;
      }
    }
  }

  // Pass 2: declarations `unordered_map<...> [&*]* name` (or alias name).
  std::set<std::string> vars;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    bool is_unordered = unordered_types.count(t.text) > 0;
    bool is_alias = aliases.count(t.text) > 0;
    if (!is_unordered && !is_alias) continue;
    size_t j = i + 1;
    if (is_unordered) {
      if (!toks[j].IsPunct("<")) continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].IsPunct("<")) ++depth;
        if (toks[j].IsPunct(">") && --depth == 0) break;
        if (toks[j].IsPunct(">>")) {
          depth -= 2;
          if (depth <= 0) break;
        }
        if (toks[j].IsPunct(";") || toks[j].IsPunct("{")) break;
      }
      if (j >= toks.size() || depth > 0) continue;
      ++j;  // past '>'
    }
    while (j < toks.size() &&
           (toks[j].IsPunct("&") || toks[j].IsPunct("*") ||
            toks[j].IsPunct("&&") || toks[j].IsIdent("const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdent) {
      vars.insert(toks[j].text);
    }
  }
  return vars;
}

std::vector<UnorderedIterSite> FindOrderSensitiveUnorderedLoops(
    const std::vector<Token>& toks, const std::set<std::string>& vars) {
  std::vector<UnorderedIterSite> sites;
  if (vars.empty()) return sites;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("for") || !toks[i + 1].IsPunct("(")) continue;
    int close = MatchForward(toks, i + 1);
    if (close < 0) continue;
    // Range-for: a top-level ':' and no ';' inside the parens.
    int colon = -1;
    bool classic = false;
    int depth = 0;
    for (int j = static_cast<int>(i) + 2; j < close; ++j) {
      if (toks[j].IsPunct("(") || toks[j].IsPunct("[") ||
          toks[j].IsPunct("{") || toks[j].IsPunct("<")) {
        ++depth;
      } else if (toks[j].IsPunct(")") || toks[j].IsPunct("]") ||
                 toks[j].IsPunct("}") || toks[j].IsPunct(">")) {
        --depth;
      } else if (depth == 0 && toks[j].IsPunct(";")) {
        classic = true;
        break;
      } else if (depth == 0 && colon < 0 && toks[j].IsPunct(":")) {
        colon = j;
      }
    }
    if (classic || colon < 0) continue;
    // Range expression: last identifier names the container.
    std::string range_var;
    for (int j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdent) range_var = toks[j].text;
    }
    if (range_var.empty() || vars.count(range_var) == 0) continue;

    // Loop body: `{...}` or a single statement up to ';'.
    size_t body_begin = close + 1;
    size_t body_end;
    if (body_begin < toks.size() && toks[body_begin].IsPunct("{")) {
      int m = MatchForward(toks, body_begin);
      if (m < 0) continue;
      body_end = static_cast<size_t>(m);
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && !toks[body_end].IsPunct(";"))
        ++body_end;
    }
    // Order-sensitive body: in-place accumulation or appending to an
    // output container / stream.
    for (size_t j = body_begin; j < body_end; ++j) {
      const Token& b = toks[j];
      bool accumulate = b.IsPunct("+=") || b.IsPunct("-=") ||
                        b.IsPunct("*=") || b.IsPunct("<<");
      bool append = b.kind == TokenKind::kIdent &&
                    (b.text == "push_back" || b.text == "emplace_back" ||
                     b.text == "push_front" || b.text == "append" ||
                     b.text == "insert" || b.text == "emplace");
      if (accumulate || append) {
        sites.push_back(
            UnorderedIterSite{toks[i].line, i, range_var, b.text});
        break;
      }
    }
  }
  return sites;
}

}  // namespace streamtune::analysis
