// Lock-discipline rule: every member declared STREAMTUNE_GUARDED_BY(mu)
// may only be touched in scopes that (syntactically) hold a
// lock_guard/unique_lock/shared_lock/scoped_lock on `mu`, inside functions
// annotated STREAMTUNE_REQUIRES(mu), or inside constructors/destructors
// (where the object cannot be shared yet / anymore).
//
// Scoping: a guarded member declared in foo.h is only enforced in files
// with stem "foo" (foo.h + foo.cc) — token-level analysis cannot resolve
// which class an identifier belongs to across translation units, and in
// this codebase every mutex-protected class keeps its accesses in its own
// header/source pair.

#include "analysis/pattern_facts.h"
#include "analysis/project_index.h"
#include "analysis/rules.h"
#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

bool ChainContains(const std::vector<int>& encl, size_t use, int scope) {
  for (int b = encl[use]; b != -1; b = encl[b]) {
    if (b == scope) return true;
  }
  return scope == -1;  // file scope encloses everything
}

class LockGuardedByRule : public Rule {
 public:
  const char* name() const override { return "st-lock-guarded-by"; }

  void Check(const SourceFile& file, const ProjectIndex& index,
             std::vector<Finding>* out) const override {
    std::string stem = PathStem(file.path);
    std::vector<const GuardedMember*> members;
    for (const GuardedMember& g : index.guarded_members) {
      if (g.file_stem == stem) members.push_back(&g);
    }
    if (members.empty()) return;

    const std::vector<Token>& toks = file.src.tokens;
    std::vector<int> encl = EnclosingBraces(toks);
    std::vector<LockSite> locks = CollectLockSites(toks, encl);

    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdent) continue;
      for (const GuardedMember* g : members) {
        if (toks[i].text != g->member) continue;
        // The declaration itself (and its annotation) is not a use.
        if (file.path == g->decl_file && toks[i].line == g->decl_line)
          continue;
        if (Held(toks, encl, locks, index, i, *g)) continue;
        out->push_back(Finding{
            file.path, toks[i].line, name(),
            "'" + g->member + "' is STREAMTUNE_GUARDED_BY(" + g->mutex +
                ") but this access holds no lock on it; take a lock_guard "
                "or annotate the function STREAMTUNE_REQUIRES(" + g->mutex +
                ")"});
      }
    }
  }

 private:
  static bool Held(const std::vector<Token>& toks,
                   const std::vector<int>& encl,
                   const std::vector<LockSite>& locks,
                   const ProjectIndex& index, size_t use,
                   const GuardedMember& g) {
    // Outside any function body: a declaration-ish mention (e.g. sizeof in
    // a static_assert), not a runtime access.
    int outer = OutermostFunctionBody(toks, encl, use);
    if (outer < 0) return true;
    // Constructors/destructors are exempt.
    if (IsCtorOrDtorBody(toks, encl, outer)) return true;
    // STREAMTUNE_REQUIRES on any enclosing function (incl. out-of-line
    // definitions found via the declaration in the header).
    for (int b = encl[use]; b != -1; b = encl[b]) {
      if (!IsFunctionBody(toks, b)) continue;
      std::string fn = FunctionNameForBody(toks, b);
      auto it = index.requires_mutexes.find(fn);
      if (it != index.requires_mutexes.end() &&
          it->second.count(g.mutex) > 0) {
        return true;
      }
    }
    // A lock on the right mutex, declared earlier, in a still-open scope.
    for (const LockSite& l : locks) {
      if (l.pos >= use) continue;
      bool names_mutex = false;
      for (const std::string& m : l.mutexes) {
        if (m == g.mutex) names_mutex = true;
      }
      if (names_mutex && ChainContains(encl, use, l.scope)) return true;
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLockGuardedByRule() {
  return std::make_unique<LockGuardedByRule>();
}

}  // namespace streamtune::analysis
