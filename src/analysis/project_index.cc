#include "analysis/project_index.h"

#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

// Registers functions declared as `Status Name(` / `Result<...> Name(`.
// Qualified return types (`streamtune::Status`) work because the pattern
// keys on the last type token before the name.
void CollectStatusFunctions(const SourceFile& file,
                            std::set<std::string>* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    // `x.status()` / `obj->Result` member accesses are not return types.
    if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")))
      continue;
    size_t name_idx = 0;
    if (t.text == "Status") {
      name_idx = i + 1;
    } else if (t.text == "Result" && toks[i + 1].IsPunct("<")) {
      // Skip the template argument list (tracking <> depth; good enough for
      // declarations, which contain no comparison operators).
      int depth = 0;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].IsPunct("<")) ++depth;
        if (toks[j].IsPunct(">") && --depth == 0) break;
        if (toks[j].IsPunct(">>")) {
          depth -= 2;
          if (depth <= 0) break;
        }
        if (toks[j].IsPunct(";") || toks[j].IsPunct("{")) break;  // bail
      }
      if (j >= toks.size() || depth > 0) continue;
      name_idx = j + 1;
    } else {
      continue;
    }
    if (name_idx + 1 >= toks.size()) continue;
    const Token& name = toks[name_idx];
    if (name.kind != TokenKind::kIdent) continue;
    if (!toks[name_idx + 1].IsPunct("(")) continue;
    out->insert(name.text);
  }
}

// Registers functions declared as `void Name(`. A name carrying both a
// Status/Result declaration and a void declaration anywhere in the project
// cannot be resolved at a call site by name alone.
void CollectVoidFunctions(const SourceFile& file,
                          std::set<std::string>* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("void")) continue;
    if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")))
      continue;
    const Token& name = toks[i + 1];
    if (name.kind != TokenKind::kIdent) continue;  // skips `void*` returns
    if (!toks[i + 2].IsPunct("(")) continue;
    out->insert(name.text);
  }
}

// Registers `Type member STREAMTUNE_GUARDED_BY(mu);` declarations.
void CollectGuardedMembers(const SourceFile& file,
                           std::vector<GuardedMember>* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("STREAMTUNE_GUARDED_BY")) continue;
    if (!toks[i + 1].IsPunct("(")) continue;
    int close = MatchForward(toks, i + 1);
    if (close < 0) continue;
    // Mutex = last identifier inside the parens (handles `shard.mu`).
    std::string mutex;
    for (int j = static_cast<int>(i) + 2; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdent) mutex = toks[j].text;
    }
    // Member = identifier immediately before the macro (skipping a
    // possible array extent `name[N]`).
    int m = static_cast<int>(i) - 1;
    if (m >= 0 && toks[m].IsPunct("]")) m = MatchBackward(toks, m) - 1;
    if (m < 0 || toks[m].kind != TokenKind::kIdent || mutex.empty()) continue;
    GuardedMember g;
    g.member = toks[m].text;
    g.mutex = mutex;
    g.file_stem = PathStem(file.path);
    g.decl_file = file.path;
    g.decl_line = toks[i].line;
    out->push_back(std::move(g));
  }
}

// Registers `... Name(...) STREAMTUNE_REQUIRES(mu)` on declarations or
// definitions, in headers or .cc files.
void CollectRequires(const SourceFile& file,
                     std::map<std::string, std::set<std::string>>* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("STREAMTUNE_REQUIRES")) continue;
    if (!toks[i + 1].IsPunct("(")) continue;
    int close = MatchForward(toks, i + 1);
    if (close < 0) continue;
    std::string mutex;
    for (int j = static_cast<int>(i) + 2; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdent) mutex = toks[j].text;
    }
    // The macro follows the parameter list: `)` [qualifiers] REQUIRES(...).
    int j = static_cast<int>(i) - 1;
    while (j >= 0 && toks[j].kind == TokenKind::kIdent &&
           (toks[j].text == "const" || toks[j].text == "noexcept" ||
            toks[j].text == "override" || toks[j].text == "final")) {
      --j;
    }
    if (j < 0 || !toks[j].IsPunct(")")) continue;
    int o = MatchBackward(toks, j);
    if (o <= 0 || toks[o - 1].kind != TokenKind::kIdent) continue;
    if (!mutex.empty()) (*out)[toks[o - 1].text].insert(mutex);
  }
}

}  // namespace

void ProjectIndex::AddFile(const SourceFile& file) {
  CollectStatusFunctions(file, &status_functions);
  CollectVoidFunctions(file, &void_functions);
  CollectGuardedMembers(file, &guarded_members);
  CollectRequires(file, &requires_mutexes);
}

}  // namespace streamtune::analysis
