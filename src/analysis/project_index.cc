#include "analysis/project_index.h"

#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

// From `idx` — the first token after a return type — steps forward over
// `Class::` and `Holder<T>::` qualifiers and returns the index of the
// function-name identifier directly followed by `(`, or -1. This is what
// lets out-of-line definitions (`Status KbService::Admit(`) and out-of-line
// template members (`Result<T> Holder<T>::Get(`) register like plain
// declarations do.
int QualifiedNameEnd(const std::vector<Token>& toks, size_t idx) {
  size_t j = idx;
  while (j + 1 < toks.size()) {
    if (toks[j].kind != TokenKind::kIdent) return -1;
    size_t next = j + 1;
    if (toks[next].IsPunct("(")) return static_cast<int>(j);
    if (toks[next].IsPunct("<")) {
      int depth = 0;
      size_t k = next;
      for (; k < toks.size(); ++k) {
        if (toks[k].IsPunct("<")) ++depth;
        if (toks[k].IsPunct(">") && --depth == 0) break;
        if (toks[k].IsPunct(">>")) {
          depth -= 2;
          if (depth <= 0) break;
        }
        if (toks[k].IsPunct(";") || toks[k].IsPunct("{")) return -1;
      }
      if (k >= toks.size() || depth > 0) return -1;
      next = k + 1;
      if (next >= toks.size() || !toks[next].IsPunct("::")) return -1;
      j = next + 1;
      continue;
    }
    if (toks[next].IsPunct("::")) {
      j = next + 2;
      continue;
    }
    return -1;
  }
  return -1;
}

// Resolves the function name an annotation macro at `i` is attached to:
// walks left over other trailing qualifiers to the `)` of the parameter
// list, then reads the (possibly operator) name before it. "" on failure.
std::string AnnotatedFunctionName(const std::vector<Token>& toks, int i) {
  int j = i - 1;
  while (j >= 0 && toks[j].kind == TokenKind::kIdent &&
         (toks[j].text == "const" || toks[j].text == "noexcept" ||
          toks[j].text == "override" || toks[j].text == "final")) {
    --j;
  }
  // Another annotation macro's argument group in between, e.g.
  // `) STREAMTUNE_REQUIRES(mu) STREAMTUNE_DETERMINISM_SAFE`.
  if (j >= 1 && toks[j].IsPunct(")")) {
    int o = MatchBackward(toks, j);
    if (o > 0 && toks[o - 1].kind == TokenKind::kIdent &&
        (toks[o - 1].text == "STREAMTUNE_REQUIRES" ||
         toks[o - 1].text == "STREAMTUNE_GUARDED_BY")) {
      j = o - 2;
      while (j >= 0 && toks[j].kind == TokenKind::kIdent &&
             (toks[j].text == "const" || toks[j].text == "noexcept")) {
        --j;
      }
    }
  }
  if (j < 0 || !toks[j].IsPunct(")")) return "";
  return FunctionNameAtParamOpen(toks, MatchBackward(toks, j));
}

// Registers functions declared as `Status Name(` / `Result<...> Name(`,
// including out-of-line `Status Class::Name(` definitions. Qualified return
// types (`streamtune::Status`) work because the pattern keys on the last
// type token before the name.
void CollectStatusFunctions(const SourceFile& file, FileFacts* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    // `x.status()` / `obj->Result` member accesses are not return types.
    if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")))
      continue;
    size_t name_idx = 0;
    if (t.text == "Status") {
      name_idx = i + 1;
    } else if (t.text == "Result" && toks[i + 1].IsPunct("<")) {
      // Skip the template argument list (tracking <> depth; good enough for
      // declarations, which contain no comparison operators).
      int depth = 0;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].IsPunct("<")) ++depth;
        if (toks[j].IsPunct(">") && --depth == 0) break;
        if (toks[j].IsPunct(">>")) {
          depth -= 2;
          if (depth <= 0) break;
        }
        if (toks[j].IsPunct(";") || toks[j].IsPunct("{")) break;  // bail
      }
      if (j >= toks.size() || depth > 0) continue;
      name_idx = j + 1;
    } else {
      continue;
    }
    if (name_idx + 1 >= toks.size()) continue;
    int end = QualifiedNameEnd(toks, name_idx);
    if (end < 0) continue;
    out->status_functions.insert(toks[end].text);
  }
}

// Registers functions declared as `void Name(` (including out-of-line
// `void Class::Name(`). A name carrying both a Status/Result declaration
// and a void declaration anywhere in the project cannot be resolved at a
// call site by name alone.
void CollectVoidFunctions(const SourceFile& file, FileFacts* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("void")) continue;
    if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")))
      continue;
    if (toks[i + 1].kind != TokenKind::kIdent) continue;  // `void*` returns
    int end = QualifiedNameEnd(toks, i + 1);
    if (end < 0) continue;
    out->void_functions.insert(toks[end].text);
  }
}

// Registers `Type member STREAMTUNE_GUARDED_BY(mu);` declarations.
void CollectGuardedMembers(const SourceFile& file, FileFacts* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("STREAMTUNE_GUARDED_BY")) continue;
    if (!toks[i + 1].IsPunct("(")) continue;
    int close = MatchForward(toks, i + 1);
    if (close < 0) continue;
    // Mutex = last identifier inside the parens (handles `shard.mu`).
    std::string mutex;
    for (int j = static_cast<int>(i) + 2; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdent) mutex = toks[j].text;
    }
    // Member = identifier immediately before the macro (skipping a
    // possible array extent `name[N]`).
    int m = static_cast<int>(i) - 1;
    if (m >= 0 && toks[m].IsPunct("]")) m = MatchBackward(toks, m) - 1;
    if (m < 0 || toks[m].kind != TokenKind::kIdent || mutex.empty()) continue;
    GuardedMember g;
    g.member = toks[m].text;
    g.mutex = mutex;
    g.file_stem = PathStem(file.path);
    g.decl_file = file.path;
    g.decl_line = toks[i].line;
    out->guarded_members.push_back(std::move(g));
  }
}

// Registers `... Name(...) STREAMTUNE_REQUIRES(mu)` on declarations or
// definitions, in headers or .cc files — including operator functions.
void CollectRequires(const SourceFile& file, FileFacts* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("STREAMTUNE_REQUIRES")) continue;
    if (!toks[i + 1].IsPunct("(")) continue;
    int close = MatchForward(toks, i + 1);
    if (close < 0) continue;
    std::string mutex;
    for (int j = static_cast<int>(i) + 2; j < close; ++j) {
      if (toks[j].kind == TokenKind::kIdent) mutex = toks[j].text;
    }
    std::string fn = AnnotatedFunctionName(toks, static_cast<int>(i));
    if (fn.empty() || mutex.empty()) continue;
    out->requires_mutexes[fn].insert(mutex);
  }
}

// Registers `... Name(...) STREAMTUNE_DETERMINISM_SAFE` vetting marks.
void CollectDeterminismSafe(const SourceFile& file, FileFacts* out) {
  const std::vector<Token>& toks = file.src.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].IsIdent("STREAMTUNE_DETERMINISM_SAFE")) continue;
    std::string fn = AnnotatedFunctionName(toks, static_cast<int>(i));
    if (!fn.empty()) out->determinism_safe.insert(fn);
  }
}

}  // namespace

FileFacts ExtractFileFacts(const SourceFile& file) {
  FileFacts facts;
  facts.path = file.path;
  facts.origin = file.origin;
  CollectStatusFunctions(file, &facts);
  CollectVoidFunctions(file, &facts);
  CollectGuardedMembers(file, &facts);
  CollectRequires(file, &facts);
  CollectDeterminismSafe(file, &facts);
  facts.summary = BuildFileSummary(file);
  return facts;
}

void ProjectIndex::Add(const FileFacts& facts) {
  status_functions.insert(facts.status_functions.begin(),
                          facts.status_functions.end());
  void_functions.insert(facts.void_functions.begin(),
                        facts.void_functions.end());
  determinism_safe_functions.insert(facts.determinism_safe.begin(),
                                    facts.determinism_safe.end());
  guarded_members.insert(guarded_members.end(), facts.guarded_members.begin(),
                         facts.guarded_members.end());
  std::string stem = PathStem(facts.path);
  for (const auto& [fn, mus] : facts.requires_mutexes) {
    requires_mutexes[fn].insert(mus.begin(), mus.end());
    requires_decl_stems[fn].insert(stem);
  }
}

void ProjectIndex::AddFile(const SourceFile& file) {
  Add(ExtractFileFacts(file));
}

}  // namespace streamtune::analysis
