// Rule interface and finding model for the self-hosted analyzer.

#pragma once

#include <string>
#include <vector>

#include "analysis/source_file.h"

namespace streamtune::analysis {

struct ProjectIndex;

/// One diagnostic: where, which rule, and a human-readable message.
struct Finding {
  std::string file;  // root-relative path
  int line = 0;
  std::string rule;     // e.g. "st-determinism-random"
  std::string message;  // one sentence, no trailing period needed

  /// "file:line: [rule] message" — the CLI output line.
  std::string ToString() const;
  /// "file:line:rule" — the stable identity used by baselines and goldens.
  std::string Key() const;

  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule;
  }
  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    // Identity stops at (file, line, rule); the message tie-break only
    // makes dedup keep a deterministic representative when two rules'
    // messages collide on one key.
    return message < o.message;
  }
};

/// A single invariant check. Rules are stateless: Check() may be called for
/// any number of files in any order, and must emit findings deterministically
/// (the driver sorts, but messages must not depend on iteration order).
class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable rule id, used in output, NOLINT lists, and baselines. All rule
  /// ids start with "st-".
  virtual const char* name() const = 0;
  virtual void Check(const SourceFile& file, const ProjectIndex& index,
                     std::vector<Finding>* out) const = 0;
};

}  // namespace streamtune::analysis
