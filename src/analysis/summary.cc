#include "analysis/summary.h"

#include <algorithm>

#include "analysis/pattern_facts.h"
#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

// Identifiers that look like calls (`name(`) but never are.
bool IsNonCallKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "assert" ||
         s == "defined" || s == "noexcept" || s == "alignas";
}

// Keywords that may directly precede a genuine call expression, so a
// preceding identifier from this set does NOT make `name(` a declaration.
bool IsCallContextKeyword(const std::string& s) {
  return s == "return" || s == "throw" || s == "new" || s == "delete" ||
         s == "else" || s == "do" || s == "case" || s == "goto" ||
         s == "co_return" || s == "co_yield" || s == "co_await";
}

// A seed suppressed for any determinism rule must not taint callers: the
// NOLINT is a reviewed claim that this use is safe.
bool SeedSuppressed(const NolintMap& nolint, int line) {
  return IsSuppressed(nolint, line, "st-determinism-random") ||
         IsSuppressed(nolint, line, "st-determinism-unordered-iter") ||
         IsSuppressed(nolint, line, "st-determinism-transitive");
}

struct BodyInfo {
  int begin = 0;  // '{' token index
  int end = 0;    // matching '}' token index
  int fn = -1;    // index into FileSummary::functions
};

// `map<Key*, ...>` / `set<Key*>` declarations order by pointer value, which
// differs between runs. Returns the line of the declaration or -1.
int PointerKeyedDecl(const std::vector<Token>& toks, size_t i) {
  if (toks[i].text != "map" && toks[i].text != "set") return -1;
  if (i + 1 >= toks.size() || !toks[i + 1].IsPunct("<")) return -1;
  if (i > 0 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")))
    return -1;
  int depth = 1;
  bool star_last = false;
  for (size_t j = i + 2; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.IsPunct("<") || t.IsPunct("(") || t.IsPunct("[")) ++depth;
    if (t.IsPunct(">") || t.IsPunct(")") || t.IsPunct("]")) --depth;
    if (t.IsPunct(">>")) depth -= 2;
    if (depth <= 0 || (depth == 1 && t.IsPunct(","))) {
      return star_last ? toks[i].line : -1;
    }
    if (t.IsPunct(";") || t.IsPunct("{")) return -1;  // not a template list
    star_last = t.IsPunct("*");
  }
  return -1;
}

}  // namespace

FileSummary BuildFileSummary(const SourceFile& file) {
  FileSummary out;
  const std::vector<Token>& toks = file.src.tokens;
  const NolintMap& nolint = file.src.nolint;
  if (toks.empty()) return out;
  std::vector<int> encl = EnclosingBraces(toks);

  // 1. Named function bodies, and for every token the innermost one that
  // owns it (inner bodies — local structs — override their enclosing one).
  std::vector<BodyInfo> bodies;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].IsPunct("{") || !IsFunctionBody(toks, static_cast<int>(i)))
      continue;
    std::string name = FunctionNameForBody(toks, static_cast<int>(i));
    if (name.empty()) continue;  // lambdas belong to their enclosing function
    int close = MatchForward(toks, i);
    if (close < 0) continue;
    FunctionSummary fn;
    fn.name = name;
    fn.qualifier =
        FunctionQualifierForBody(toks, encl, static_cast<int>(i));
    fn.line = toks[i].line;
    fn.is_ctor_dtor = IsCtorOrDtorBody(toks, encl, static_cast<int>(i));
    bodies.push_back(BodyInfo{static_cast<int>(i), close,
                              static_cast<int>(out.functions.size())});
    out.functions.push_back(std::move(fn));
  }
  std::vector<int> owner(toks.size(), -1);
  for (const BodyInfo& b : bodies) {  // ascending begin: inner wins
    for (int j = b.begin + 1; j < b.end; ++j) owner[j] = b.fn;
  }

  // 2. Argument ranges of ParallelFor / ParallelReduce calls.
  std::vector<char> in_parallel(toks.size(), 0);
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent) continue;
    if (toks[i].text != "ParallelFor" && toks[i].text != "ParallelReduce")
      continue;
    if (!toks[i + 1].IsPunct("(")) continue;
    int close = MatchForward(toks, i + 1);
    if (close < 0) continue;
    for (int j = static_cast<int>(i) + 2; j < close; ++j) in_parallel[j] = 1;
  }

  // 3. Lock sites, attributed to their owning function; held-mutex context
  // at an arbitrary token = every earlier site in a still-open scope of the
  // same function.
  std::vector<LockSite> locks = CollectLockSites(toks, encl);
  auto held_at = [&](size_t pos) {
    std::vector<std::string> held;
    for (const LockSite& l : locks) {
      if (l.pos >= pos || owner[l.pos] != owner[pos]) continue;
      bool open = false;
      for (int b = encl[pos]; b != -1; b = encl[b]) {
        if (b == l.scope) {
          open = true;
          break;
        }
      }
      if (!open && l.scope != -1) continue;
      for (const std::string& m : l.mutexes) {
        if (std::find(held.begin(), held.end(), m) == held.end())
          held.push_back(m);
      }
    }
    return held;
  };
  for (const LockSite& l : locks) {
    if (owner[l.pos] < 0) continue;
    LockAcquireSummary a;
    a.line = toks[l.pos].line;
    a.mutexes = l.mutexes;
    a.held_before = held_at(l.pos);
    out.functions[owner[l.pos]].locks.push_back(std::move(a));
  }

  // 4. Direct nondeterminism seeds.
  auto add_seed = [&](size_t pos, std::string what) {
    int fn = owner[pos];
    int line = toks[pos].line;
    if (fn < 0 || SeedSuppressed(nolint, line)) return;
    out.functions[fn].seeds.push_back(TaintSeed{line, std::move(what)});
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    if (t.text == "random_device") {
      add_seed(i, "std::random_device");
    } else if (t.text == "system_clock" || t.text == "steady_clock" ||
               t.text == "high_resolution_clock") {
      add_seed(i, "wall clock (" + t.text + ")");
    } else if ((t.text == "rand" || t.text == "srand" || t.text == "time") &&
               IsGlobalOrStdCall(toks, i)) {
      add_seed(i, t.text + "()");
    } else if (t.text == "get_id" && i >= 2 && toks[i - 1].IsPunct("::") &&
               toks[i - 2].IsIdent("this_thread")) {
      add_seed(i, "this_thread::get_id()");
    } else {
      int line = PointerKeyedDecl(toks, i);
      if (line >= 0) add_seed(i, "pointer-keyed " + t.text + " ordering");
    }
  }
  std::set<std::string> unordered_vars = CollectUnorderedVars(toks);
  for (const UnorderedIterSite& s :
       FindOrderSensitiveUnorderedLoops(toks, unordered_vars)) {
    add_seed(s.pos, "order-sensitive iteration over unordered '" +
                        s.range_var + "'");
  }

  // 5. Call sites.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent || !toks[i + 1].IsPunct("(")) continue;
    if (owner[i] < 0) continue;
    if (IsNonCallKeyword(t.text)) continue;
    int p = static_cast<int>(i) - 1;
    while (p >= 0 && toks[p].kind == TokenKind::kPreproc) --p;
    if (p >= 0) {
      const Token& prev = toks[p];
      // `Type name(...)` / `Type* name(...)` / `vector<T> name(...)` are
      // declarations, not calls.
      if (prev.kind == TokenKind::kIdent && !IsCallContextKeyword(prev.text))
        continue;
      if (prev.IsPunct("*") || prev.IsPunct("&") || prev.IsPunct(">") ||
          prev.IsIdent("operator")) {
        continue;
      }
    }
    CallSiteSummary c;
    c.callee = t.text;
    c.line = t.line;
    c.in_parallel_callback = in_parallel[i] != 0;
    c.held_mutexes = held_at(i);
    out.functions[owner[i]].calls.push_back(std::move(c));
  }
  return out;
}

}  // namespace streamtune::analysis
