// Interprocedural analyses over the cross-TU call graph:
//
//  st-determinism-transitive  a function whose *callees* (transitively)
//                             consult entropy, wall clocks, thread ids, or
//                             hash-order is called from a ParallelFor /
//                             ParallelReduce map or combine callback.
//  st-lock-order-cycle        two code paths acquire the same mutexes in
//                             opposite orders (composed along call edges).
//  st-requires-unheld         a call to a STREAMTUNE_REQUIRES(mu) function
//                             where mu is provably not held.
//
// All three propagate facts bottom-up over the SCC condensation and only
// flow through resolved (unambiguous) call edges: a name the graph cannot
// attribute to one definition silently stops propagation rather than guess.

#pragma once

#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/rule.h"

namespace streamtune::analysis {

struct GraphAnalysisStats {
  CallGraphStats call_graph;
  int tainted_functions = 0;   // nodes transitively nondeterministic
  int lock_order_edges = 0;    // distinct held->acquired mutex pairs
  int lock_order_cycles = 0;   // mutex SCCs of size >= 2
};

/// Names of the rules this layer can emit (for --list-rules and filters).
std::vector<std::string> GraphRuleNames();

/// Runs all three analyses; appends raw findings (suppression is applied by
/// the caller, which owns the per-file NOLINT maps).
void RunGraphRules(const std::vector<FileFacts>& facts, const CallGraph& graph,
                   const ProjectIndex& index, std::vector<Finding>* out,
                   GraphAnalysisStats* stats);

}  // namespace streamtune::analysis
