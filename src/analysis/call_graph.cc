#include "analysis/call_graph.h"

#include <algorithm>
#include <set>

#include "analysis/source_file.h"

namespace streamtune::analysis {

CallGraph CallGraph::Build(const std::vector<FileFacts>& facts) {
  CallGraph g;

  // Nodes: one per distinct unqualified name with a definition.
  for (const FileFacts& f : facts) {
    for (const FunctionSummary& fn : f.summary.functions) {
      auto [it, inserted] =
          g.by_name_.emplace(fn.name, static_cast<int>(g.nodes_.size()));
      if (inserted) {
        CallGraphNode node;
        node.name = fn.name;
        g.nodes_.push_back(std::move(node));
      }
      g.nodes_[it->second].defs.push_back(FunctionDef{&fn, f.path, f.origin});
      ++g.stats_.functions;
    }
  }

  // Ambiguity: definitions under two class qualifiers are different
  // functions sharing a name; free functions in two unrelated stems likewise
  // (a .h/.cc pair shares one stem and stays unambiguous).
  for (CallGraphNode& node : g.nodes_) {
    std::set<std::string> qualifiers;
    std::set<std::string> free_stems;
    for (const FunctionDef& d : node.defs) {
      qualifiers.insert(d.summary->qualifier);
      if (d.summary->qualifier.empty()) free_stems.insert(PathStem(d.file));
    }
    node.ambiguous = qualifiers.size() >= 2 || free_stems.size() >= 2;
    if (node.ambiguous) ++g.stats_.ambiguous_nodes;
  }
  g.stats_.nodes = static_cast<int>(g.nodes_.size());

  // Edges, deduplicated per caller node.
  for (int caller = 0; caller < static_cast<int>(g.nodes_.size()); ++caller) {
    std::set<int> resolved;
    std::set<std::string> ambiguous;
    std::set<std::string> external;
    for (const FunctionDef& d : g.nodes_[caller].defs) {
      for (const CallSiteSummary& c : d.summary->calls) {
        auto it = g.by_name_.find(c.callee);
        if (it == g.by_name_.end()) {
          external.insert(c.callee);
        } else if (g.nodes_[it->second].ambiguous) {
          ambiguous.insert(c.callee);
        } else {
          resolved.insert(it->second);
        }
      }
    }
    g.nodes_[caller].callees.assign(resolved.begin(), resolved.end());
    g.stats_.resolved_edges += static_cast<int>(resolved.size());
    g.stats_.ambiguous_edges += static_cast<int>(ambiguous.size());
    g.stats_.external_edges += static_cast<int>(external.size());
  }

  g.RunTarjan();
  g.stats_.scc_count = static_cast<int>(g.sccs_.size());
  for (const std::vector<int>& scc : g.sccs_) {
    if (scc.size() >= 2) ++g.stats_.nontrivial_sccs;
  }
  return g;
}

int CallGraph::NodeId(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

// Iterative Tarjan (explicit stack — the graph can contain long call
// chains). Emission order is reverse-topological over the condensation:
// every SCC is emitted after all SCCs it calls into, which makes ascending
// scc id the bottom-up order the propagation passes walk.
void CallGraph::RunTarjan() {
  int n = static_cast<int>(nodes_.size());
  std::vector<int> index(n, -1), low(n, 0), next_child(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack, call_stack;
  int counter = 0;

  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    call_stack.push_back(start);
    while (!call_stack.empty()) {
      int v = call_stack.back();
      if (index[v] == -1) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (next_child[v] < static_cast<int>(nodes_[v].callees.size())) {
        int w = nodes_[v].callees[next_child[v]++];
        if (index[w] == -1) {
          call_stack.push_back(w);
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        std::vector<int> scc;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          nodes_[w].scc = static_cast<int>(sccs_.size());
          scc.push_back(w);
        } while (w != v);
        std::sort(scc.begin(), scc.end());
        sccs_.push_back(std::move(scc));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        int parent = call_stack.back();
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
}

}  // namespace streamtune::analysis
