// Shared structural helpers over the flat token stream: bracket matching,
// scope chains, and function-body recognition. All positions are indices
// into a SourceFile's token vector.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/token.h"

namespace streamtune::analysis {

/// Index of the closer matching the opener at `i` (one of ( [ {), or -1
/// when unbalanced. Preprocessor tokens are opaque and ignored.
int MatchForward(const std::vector<Token>& toks, size_t i);

/// Index of the opener matching the closer at `i`, or -1.
int MatchBackward(const std::vector<Token>& toks, size_t i);

/// For every token, the index of the innermost `{` strictly enclosing it
/// (-1 at file scope). For a `{` token the entry is its parent brace, so
/// walking `encl[b]` repeatedly climbs the scope chain.
std::vector<int> EnclosingBraces(const std::vector<Token>& toks);

/// True when the `{` at `b` opens a function (or lambda) body rather than a
/// class / namespace / enum / initializer. Recognizes parameter lists,
/// constructor initializer lists, and trailing qualifiers
/// (const/noexcept/override/final plus annotation macros).
bool IsFunctionBody(const std::vector<Token>& toks, int b);

/// The outermost function-body `{` enclosing token `i` (skips lambda bodies
/// nested inside a real function), or -1 when `i` is not inside a function.
int OutermostFunctionBody(const std::vector<Token>& toks,
                          const std::vector<int>& encl, size_t i);

/// Unqualified name of the function whose body opens at `b` ("" when it
/// cannot be determined, e.g. a lambda). For "KbService::Admit" returns
/// "Admit"; for a destructor returns "~KbService"; for a call operator
/// returns "operator()" and for a conversion operator "operator bool".
std::string FunctionNameForBody(const std::vector<Token>& toks, int b);

/// Qualifier of the function whose body opens at `b`: the class name from an
/// out-of-line `Class::Name` / `Class<T>::Name` definition, or the innermost
/// enclosing class for an in-class definition, or "" for a free function.
std::string FunctionQualifierForBody(const std::vector<Token>& toks,
                                     const std::vector<int>& encl, int b);

/// Index of the `operator` keyword when the tokens just before the `(` at
/// `paren` spell an operator-function name (`operator()`, `operator[]`,
/// `operator<`, `operator bool`, ...); -1 otherwise.
int OperatorKeywordBefore(const std::vector<Token>& toks, int paren);

/// Unqualified function name read backwards from the `(` at `o` that opens
/// its parameter list: "Admit", "~KbService", "operator()", "operator bool".
/// "" when the preceding tokens do not spell a function name.
std::string FunctionNameAtParamOpen(const std::vector<Token>& toks, int o);

/// Name of the innermost class/struct whose body encloses token `i`, or ""
/// (used to exempt constructors/destructors declared inline in the class).
std::string EnclosingClassName(const std::vector<Token>& toks,
                               const std::vector<int>& encl, size_t i);

/// True when the function whose body opens at `b` is a constructor or
/// destructor: its name matches its qualifier ("T::T", "T::~T") or the
/// enclosing class name.
bool IsCtorOrDtorBody(const std::vector<Token>& toks,
                      const std::vector<int>& encl, int b);

}  // namespace streamtune::analysis
