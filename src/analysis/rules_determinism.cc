// Determinism rules. Every headline equivalence claim in this repo (serial
// vs parallel bit-identity, cross-process KB round-trips) dies the moment
// library code consults a wall clock, an OS entropy source, or the
// iteration order of a hash container. These rules keep those ingredients
// out of src/ and tests/ (bench/ and tools/ may time and print freely).

#include <set>

#include "analysis/project_index.h"
#include "analysis/rules.h"
#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

bool InLibraryScope(const SourceFile& f) {
  return f.origin == FileOrigin::kSrc || f.origin == FileOrigin::kTests;
}

// True when the identifier at i is a plain or std-qualified call target
// (not a member access `x.time(...)` or a foreign qualifier `foo::time`).
bool IsGlobalOrStdCall(const std::vector<Token>& toks, size_t i) {
  if (i + 1 >= toks.size() || !toks[i + 1].IsPunct("(")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.IsPunct(".") || prev.IsPunct("->")) return false;
  if (prev.IsPunct("::")) {
    return i >= 2 && toks[i - 2].IsIdent("std");
  }
  return true;
}

class DeterminismRandomRule : public Rule {
 public:
  const char* name() const override { return "st-determinism-random"; }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!InLibraryScope(file)) return;
    const std::vector<Token>& toks = file.src.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdent) continue;
      if (t.text == "random_device") {
        Emit(file, t.line,
             "std::random_device is non-deterministic; seed an rng::Pcg32 "
             "(or std::mt19937_64) from a config seed instead",
             out);
      } else if (t.text == "system_clock" || t.text == "steady_clock" ||
                 t.text == "high_resolution_clock") {
        Emit(file, t.line,
             "wall-clock time (" + t.text +
                 ") breaks reproducibility; use the simulator's virtual "
                 "clock (sim::StreamEngine minutes) instead",
             out);
      } else if ((t.text == "rand" || t.text == "srand") &&
                 IsGlobalOrStdCall(toks, i)) {
        Emit(file, t.line,
             t.text + "() draws from hidden global state; use a seeded "
                      "rng::Pcg32 instead",
             out);
      } else if (t.text == "time" && IsGlobalOrStdCall(toks, i)) {
        Emit(file, t.line,
             "time() reads the wall clock; use the simulator's virtual "
             "clock instead",
             out);
      }
    }
  }

 private:
  void Emit(const SourceFile& file, int line, std::string msg,
            std::vector<Finding>* out) const {
    out->push_back(Finding{file.path, line, name(), std::move(msg)});
  }
};

// Collects identifiers declared in this file with an unordered container
// type (members, locals, parameters), following one level of `using`
// aliases declared in the same file.
std::set<std::string> CollectUnorderedVars(const std::vector<Token>& toks) {
  std::set<std::string> unordered_types = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  // Pass 1: `using Alias = ... unordered_xxx ... ;`
  std::set<std::string> aliases;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!toks[i].IsIdent("using")) continue;
    if (toks[i + 1].kind != TokenKind::kIdent || !toks[i + 2].IsPunct("="))
      continue;
    for (size_t j = i + 3; j < toks.size() && !toks[j].IsPunct(";"); ++j) {
      if (toks[j].kind == TokenKind::kIdent &&
          unordered_types.count(toks[j].text) > 0) {
        aliases.insert(toks[i + 1].text);
        break;
      }
    }
  }

  // Pass 2: declarations `unordered_map<...> [&*]* name` (or alias name).
  std::set<std::string> vars;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    bool is_unordered = unordered_types.count(t.text) > 0;
    bool is_alias = aliases.count(t.text) > 0;
    if (!is_unordered && !is_alias) continue;
    size_t j = i + 1;
    if (is_unordered) {
      if (!toks[j].IsPunct("<")) continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].IsPunct("<")) ++depth;
        if (toks[j].IsPunct(">") && --depth == 0) break;
        if (toks[j].IsPunct(">>")) {
          depth -= 2;
          if (depth <= 0) break;
        }
        if (toks[j].IsPunct(";") || toks[j].IsPunct("{")) break;
      }
      if (j >= toks.size() || depth > 0) continue;
      ++j;  // past '>'
    }
    while (j < toks.size() &&
           (toks[j].IsPunct("&") || toks[j].IsPunct("*") ||
            toks[j].IsPunct("&&") || toks[j].IsIdent("const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdent) {
      vars.insert(toks[j].text);
    }
  }
  return vars;
}

class DeterminismUnorderedIterRule : public Rule {
 public:
  const char* name() const override {
    return "st-determinism-unordered-iter";
  }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!InLibraryScope(file)) return;
    const std::vector<Token>& toks = file.src.tokens;
    std::set<std::string> unordered_vars = CollectUnorderedVars(toks);
    if (unordered_vars.empty()) return;

    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!toks[i].IsIdent("for") || !toks[i + 1].IsPunct("(")) continue;
      int close = MatchForward(toks, i + 1);
      if (close < 0) continue;
      // Range-for: a top-level ':' and no ';' inside the parens.
      int colon = -1;
      bool classic = false;
      int depth = 0;
      for (int j = static_cast<int>(i) + 2; j < close; ++j) {
        if (toks[j].IsPunct("(") || toks[j].IsPunct("[") ||
            toks[j].IsPunct("{") || toks[j].IsPunct("<")) {
          ++depth;
        } else if (toks[j].IsPunct(")") || toks[j].IsPunct("]") ||
                   toks[j].IsPunct("}") || toks[j].IsPunct(">")) {
          --depth;
        } else if (depth == 0 && toks[j].IsPunct(";")) {
          classic = true;
          break;
        } else if (depth == 0 && colon < 0 && toks[j].IsPunct(":")) {
          colon = j;
        }
      }
      if (classic || colon < 0) continue;
      // Range expression: last identifier names the container.
      std::string range_var;
      for (int j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokenKind::kIdent) range_var = toks[j].text;
      }
      if (range_var.empty() || unordered_vars.count(range_var) == 0) continue;

      // Loop body: `{...}` or a single statement up to ';'.
      size_t body_begin = close + 1;
      size_t body_end;
      if (body_begin < toks.size() && toks[body_begin].IsPunct("{")) {
        int m = MatchForward(toks, body_begin);
        if (m < 0) continue;
        body_end = static_cast<size_t>(m);
      } else {
        body_end = body_begin;
        while (body_end < toks.size() && !toks[body_end].IsPunct(";"))
          ++body_end;
      }
      // Order-sensitive body: in-place accumulation or appending to an
      // output container / stream.
      for (size_t j = body_begin; j < body_end; ++j) {
        const Token& b = toks[j];
        bool accumulate = b.IsPunct("+=") || b.IsPunct("-=") ||
                          b.IsPunct("*=") || b.IsPunct("<<");
        bool append = b.kind == TokenKind::kIdent &&
                      (b.text == "push_back" || b.text == "emplace_back" ||
                       b.text == "push_front" || b.text == "append" ||
                       b.text == "insert" || b.text == "emplace");
        if (accumulate || append) {
          out->push_back(Finding{
              file.path, toks[i].line, name(),
              "iteration over unordered container '" + range_var +
                  "' feeds an order-sensitive reduction ('" + b.text +
                  "'); iterate a sorted copy or use an ordered container"});
          break;
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeDeterminismRandomRule() {
  return std::make_unique<DeterminismRandomRule>();
}
std::unique_ptr<Rule> MakeDeterminismUnorderedIterRule() {
  return std::make_unique<DeterminismUnorderedIterRule>();
}

}  // namespace streamtune::analysis
