// Determinism rules. Every headline equivalence claim in this repo (serial
// vs parallel bit-identity, cross-process KB round-trips) dies the moment
// library code consults a wall clock, an OS entropy source, or the
// iteration order of a hash container. These rules keep those ingredients
// out of src/ and tests/ (bench/ and tools/ may time and print freely).
//
// The transitive variant — a helper that is clean here but reaches one of
// these ingredients through calls — is covered by the interprocedural
// st-determinism-transitive analysis in graph_rules.cc.

#include <set>

#include "analysis/pattern_facts.h"
#include "analysis/project_index.h"
#include "analysis/rules.h"
#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

bool InLibraryScope(const SourceFile& f) {
  return f.origin == FileOrigin::kSrc || f.origin == FileOrigin::kTests;
}

class DeterminismRandomRule : public Rule {
 public:
  const char* name() const override { return "st-determinism-random"; }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!InLibraryScope(file)) return;
    const std::vector<Token>& toks = file.src.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdent) continue;
      if (t.text == "random_device") {
        Emit(file, t.line,
             "std::random_device is non-deterministic; seed an rng::Pcg32 "
             "(or std::mt19937_64) from a config seed instead",
             out);
      } else if (t.text == "system_clock" || t.text == "steady_clock" ||
                 t.text == "high_resolution_clock") {
        Emit(file, t.line,
             "wall-clock time (" + t.text +
                 ") breaks reproducibility; use the simulator's virtual "
                 "clock (sim::StreamEngine minutes) instead",
             out);
      } else if ((t.text == "rand" || t.text == "srand") &&
                 IsGlobalOrStdCall(toks, i)) {
        Emit(file, t.line,
             t.text + "() draws from hidden global state; use a seeded "
                      "rng::Pcg32 instead",
             out);
      } else if (t.text == "time" && IsGlobalOrStdCall(toks, i)) {
        Emit(file, t.line,
             "time() reads the wall clock; use the simulator's virtual "
             "clock instead",
             out);
      }
    }
  }

 private:
  void Emit(const SourceFile& file, int line, std::string msg,
            std::vector<Finding>* out) const {
    out->push_back(Finding{file.path, line, name(), std::move(msg)});
  }
};

class DeterminismUnorderedIterRule : public Rule {
 public:
  const char* name() const override {
    return "st-determinism-unordered-iter";
  }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!InLibraryScope(file)) return;
    const std::vector<Token>& toks = file.src.tokens;
    std::set<std::string> unordered_vars = CollectUnorderedVars(toks);
    for (const UnorderedIterSite& s :
         FindOrderSensitiveUnorderedLoops(toks, unordered_vars)) {
      out->push_back(Finding{
          file.path, s.line, name(),
          "iteration over unordered container '" + s.range_var +
              "' feeds an order-sensitive reduction ('" + s.sink +
              "'); iterate a sorted copy or use an ordered container"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeDeterminismRandomRule() {
  return std::make_unique<DeterminismRandomRule>();
}
std::unique_ptr<Rule> MakeDeterminismUnorderedIterRule() {
  return std::make_unique<DeterminismUnorderedIterRule>();
}

}  // namespace streamtune::analysis
