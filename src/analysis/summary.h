// Per-file function summaries: the compact facts the interprocedural layer
// (call graph, determinism taint, lock-order analysis) composes across
// translation units. Extraction is purely local — a summary depends only on
// one file's tokens — which is what makes summaries cacheable by content
// hash and the scan phase embarrassingly parallel.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/source_file.h"

namespace streamtune::analysis {

/// One nondeterminism ingredient used directly in a function body.
struct TaintSeed {
  int line = 0;
  std::string what;  // human-readable, e.g. "rand()" or "wall clock"
};

/// One lock_guard/unique_lock/shared_lock/scoped_lock declaration.
struct LockAcquireSummary {
  int line = 0;
  std::vector<std::string> mutexes;      // acquired together (std::lock order)
  std::vector<std::string> held_before;  // syntactically held at this point
};

/// One call site `callee(...)` / `obj.callee(...)` inside a function body.
struct CallSiteSummary {
  std::string callee;  // final identifier of the call target
  int line = 0;
  /// Lexically inside the argument list of a ParallelFor / ParallelReduce
  /// call (i.e. inside a map or combine callback).
  bool in_parallel_callback = false;
  /// Mutexes syntactically held at the call (enclosing lock declarations;
  /// the caller's STREAMTUNE_REQUIRES set is joined in at analysis time).
  std::vector<std::string> held_mutexes;
};

/// One named function definition found in the file.
struct FunctionSummary {
  std::string name;       // unqualified: "Admit", "operator()", "~KbService"
  std::string qualifier;  // "KbService" for members, "" for free functions
  int line = 0;
  bool is_ctor_dtor = false;
  std::vector<TaintSeed> seeds;
  std::vector<CallSiteSummary> calls;
  std::vector<LockAcquireSummary> locks;
};

struct FileSummary {
  std::vector<FunctionSummary> functions;
};

/// Extracts every named function body, its direct nondeterminism seeds, its
/// call sites (with held-lock context and parallel-callback flags), and its
/// lock acquisitions. Seeds on lines carrying a NOLINT for any determinism
/// rule are skipped — the suppression is a reviewed claim that the line is
/// safe, so it must not taint callers either.
FileSummary BuildFileSummary(const SourceFile& file);

}  // namespace streamtune::analysis
