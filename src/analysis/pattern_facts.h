// Domain-level token-pattern extractors shared by the per-file rules and
// the interprocedural summary builder: lock-acquisition sites, unordered
// container declarations, and order-sensitive loops over them.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/token.h"

namespace streamtune::analysis {

/// One `lock_guard<...> g(mu[, mu2...])`-style acquisition.
struct LockSite {
  size_t pos = 0;  // token index of the lock-type identifier
  int scope = -1;  // innermost '{' containing the declaration
  std::vector<std::string> mutexes;  // final idents of the lock arguments
};

/// All lock_guard / unique_lock / shared_lock / scoped_lock declarations.
/// `encl` is EnclosingBraces(toks).
std::vector<LockSite> CollectLockSites(const std::vector<Token>& toks,
                                       const std::vector<int>& encl);

/// Identifiers declared in this file with an unordered container type
/// (members, locals, parameters), following one level of `using` aliases
/// declared in the same file.
std::set<std::string> CollectUnorderedVars(const std::vector<Token>& toks);

/// A range-for over an unordered container whose body feeds an
/// order-sensitive sink (accumulation or appending).
struct UnorderedIterSite {
  int line = 0;           // line of the `for`
  size_t pos = 0;         // token index of the `for`
  std::string range_var;  // container being iterated
  std::string sink;       // the order-sensitive operation ('+=', 'push_back')
};

std::vector<UnorderedIterSite> FindOrderSensitiveUnorderedLoops(
    const std::vector<Token>& toks, const std::set<std::string>& vars);

/// True when the identifier at i is a plain or std-qualified call target
/// (not a member access `x.time(...)` or a foreign qualifier `foo::time`).
bool IsGlobalOrStdCall(const std::vector<Token>& toks, size_t i);

}  // namespace streamtune::analysis
