// Minimal SARIF 2.1.0 writer for analyzer findings, hand-rolled (the repo
// has no JSON dependency). Emits exactly the subset GitHub code scanning
// consumes: one run, the driver's rule ids, and one result per finding with
// a physical location.

#pragma once

#include <string>
#include <vector>

#include "analysis/rule.h"
#include "common/status.h"

namespace streamtune::analysis {

/// The SARIF document as a string (deterministic: findings are emitted in
/// the order given, rules sorted by id).
std::string SarifJson(const std::vector<Finding>& findings);

Status WriteSarif(const std::string& path,
                  const std::vector<Finding>& findings);

}  // namespace streamtune::analysis
