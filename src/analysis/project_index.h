// Cross-file facts gathered in a first pass over every analyzed file:
// which functions return Status/Result (for the ignored-return rule), which
// members are lock-annotated, and which functions require a held mutex.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source_file.h"

namespace streamtune::analysis {

/// One STREAMTUNE_GUARDED_BY(mu) member declaration.
struct GuardedMember {
  std::string member;     // member identifier, e.g. "snapshot_" or "map"
  std::string mutex;      // final identifier of the mutex expression
  std::string file_stem;  // stem of the declaring file ("kb_service");
                          // the rule only checks files with this stem
  std::string decl_file;
  int decl_line = 0;
};

struct ProjectIndex {
  /// Names of functions whose declared return type is Status or Result<T>.
  std::set<std::string> status_functions;

  /// Names also declared somewhere with a `void` return type. Resolution is
  /// name-based, so such a name is ambiguous at a call site: the
  /// ignored-status rule stays silent on it rather than flagging calls to
  /// the void overload.
  std::set<std::string> void_functions;

  std::vector<GuardedMember> guarded_members;

  /// Function name -> mutex names it declares via STREAMTUNE_REQUIRES.
  std::map<std::string, std::set<std::string>> requires_mutexes;

  /// Scans one file and folds its declarations into the index.
  void AddFile(const SourceFile& file);
};

}  // namespace streamtune::analysis
