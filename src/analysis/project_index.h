// Cross-file facts gathered in a first pass over every analyzed file:
// which functions return Status/Result (for the ignored-return rule), which
// members are lock-annotated, which functions require a held mutex, which
// are vetted STREAMTUNE_DETERMINISM_SAFE — plus the per-function summaries
// the interprocedural layer composes into a call graph.
//
// Extraction is split from aggregation: ExtractFileFacts() reads one file's
// tokens and nothing else, so the scan phase can run on a thread pool and
// its results can be cached by content hash; ProjectIndex::Add() folds the
// per-file facts together sequentially.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source_file.h"
#include "analysis/summary.h"

namespace streamtune::analysis {

/// One STREAMTUNE_GUARDED_BY(mu) member declaration.
struct GuardedMember {
  std::string member;     // member identifier, e.g. "snapshot_" or "map"
  std::string mutex;      // final identifier of the mutex expression
  std::string file_stem;  // stem of the declaring file ("kb_service");
                          // the rule only checks files with this stem
  std::string decl_file;
  int decl_line = 0;
};

/// Everything the analyzer learns from one file in isolation. Depends only
/// on that file's token stream — cacheable, parallel-extractable.
struct FileFacts {
  std::string path;
  FileOrigin origin = FileOrigin::kOther;

  std::set<std::string> status_functions;
  std::set<std::string> void_functions;
  /// Functions annotated STREAMTUNE_DETERMINISM_SAFE on a declaration or
  /// definition in this file.
  std::set<std::string> determinism_safe;
  std::vector<GuardedMember> guarded_members;
  /// Function name -> mutexes it declares via STREAMTUNE_REQUIRES here.
  std::map<std::string, std::set<std::string>> requires_mutexes;

  FileSummary summary;
};

FileFacts ExtractFileFacts(const SourceFile& file);

struct ProjectIndex {
  /// Names of functions whose declared return type is Status or Result<T>.
  std::set<std::string> status_functions;

  /// Names also declared somewhere with a `void` return type. Resolution is
  /// name-based, so such a name is ambiguous at a call site: the
  /// ignored-status rule stays silent on it rather than flagging calls to
  /// the void overload.
  std::set<std::string> void_functions;

  /// Functions vetted as deterministic despite what their bodies (or
  /// callees) contain; the transitive determinism analysis treats them as
  /// clean leaves.
  std::set<std::string> determinism_safe_functions;

  std::vector<GuardedMember> guarded_members;

  /// Function name -> mutex names it declares via STREAMTUNE_REQUIRES.
  std::map<std::string, std::set<std::string>> requires_mutexes;

  /// Function name -> stems of the files carrying its REQUIRES declaration.
  /// The requires-unheld rule only checks callers in those stems: name-based
  /// resolution cannot tell `Foo::RunJob` from `Bar::RunJob` across files.
  std::map<std::string, std::set<std::string>> requires_decl_stems;

  /// Folds one file's facts into the index.
  void Add(const FileFacts& facts);

  /// Convenience for tests: extract + add in one step.
  void AddFile(const SourceFile& file);
};

}  // namespace streamtune::analysis
