#include "analysis/tokenizer.h"

#include <array>
#include <cctype>

namespace streamtune::analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first so greedy matching is correct.
constexpr std::array<std::string_view, 36> kMultiOps = {
    "<<=", ">>=", "...", "->*", "<=>",                            //
    "::",  "->",  "++",  "--",  "<<",  ">>", "<=", ">=", "==",    //
    "!=",  "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "&=",    //
    "|=",  "^=",  ".*",  "##",                                    //
    // single-char fallthroughs are handled by the default branch
    "",    "",    "",    "",    "",    "",   "",   ""};

// Records a NOLINT-style marker found in comment text starting at the line
// the comment begins on.
void MineNolint(std::string_view comment, int line, NolintMap* nolint) {
  for (size_t pos = comment.find("NOLINT"); pos != std::string_view::npos;
       pos = comment.find("NOLINT", pos + 1)) {
    size_t after = pos + 6;  // past "NOLINT"
    int target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      target = line + 1;
      after = pos + 14;
    }
    std::set<std::string>& rules = (*nolint)[target];
    if (after < comment.size() && comment[after] == '(') {
      size_t close = comment.find(')', after);
      std::string_view list = comment.substr(
          after + 1,
          close == std::string_view::npos ? comment.size() : close - after - 1);
      std::string current;
      for (char c : list) {
        if (c == ',') {
          if (!current.empty()) rules.insert(current);
          current.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          current += c;
        }
      }
      if (!current.empty()) rules.insert(current);
    } else {
      // Bare NOLINT: empty set = suppress everything on the target line.
      rules.clear();
      // Mark "all" by leaving the set empty; ensure the entry exists.
    }
  }
}

}  // namespace

bool IsSuppressed(const NolintMap& nolint, int line, const std::string& rule) {
  auto it = nolint.find(line);
  if (it == nolint.end()) return false;
  return it->second.empty() || it->second.count(rule) > 0;
}

TokenizedSource Tokenize(std::string_view content) {
  TokenizedSource out;
  size_t i = 0;
  const size_t n = content.size();
  int line = 1;

  auto advance_over = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (content[i] == '\n') ++line;
      ++i;
    }
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string_view::npos) end = n;
      MineNolint(content.substr(i, end - i), line, &out.nolint);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      int start_line = line;
      size_t end = content.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      MineNolint(content.substr(i, end - i), start_line, &out.nolint);
      advance_over(end + 2 - i);
      continue;
    }

    // Preprocessor directive: only when '#' is the first non-space char of
    // the line; folded into one token, honoring backslash continuations.
    if (c == '#') {
      size_t ls = content.rfind('\n', i == 0 ? 0 : i - 1);
      ls = (ls == std::string_view::npos) ? 0 : ls + 1;
      bool first_on_line = true;
      for (size_t k = ls; k < i; ++k) {
        if (!std::isspace(static_cast<unsigned char>(content[k]))) {
          first_on_line = false;
          break;
        }
      }
      if (first_on_line) {
        int start_line = line;
        size_t j = i;
        while (j < n) {
          size_t eol = content.find('\n', j);
          if (eol == std::string_view::npos) {
            j = n;
            break;
          }
          // Continuation if the last non-CR char before the newline is '\'.
          size_t last = eol;
          while (last > j && (content[last - 1] == '\r')) --last;
          if (last > j && content[last - 1] == '\\') {
            j = eol + 1;
            continue;
          }
          j = eol;
          break;
        }
        Token t;
        t.kind = TokenKind::kPreproc;
        t.text = std::string(content.substr(i, j - i));
        t.line = start_line;
        out.tokens.push_back(std::move(t));
        advance_over(j - i);
        continue;
      }
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t dstart = i + 2;
      size_t dend = content.find('(', dstart);
      if (dend != std::string_view::npos) {
        std::string closer;
        closer.reserve(dend - dstart + 2);
        closer.push_back(')');
        closer.append(content.substr(dstart, dend - dstart));
        closer.push_back('"');
        size_t end = content.find(closer, dend + 1);
        size_t stop = (end == std::string_view::npos) ? n : end + closer.size();
        Token t;
        t.kind = TokenKind::kString;
        t.text = std::string(content.substr(i, stop - i));
        t.line = line;
        out.tokens.push_back(std::move(t));
        advance_over(stop - i);
        continue;
      }
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      // Digit separators ('): a quote directly after an alnum inside a
      // number is not a char literal; the number scanner below owns it, so
      // we only get here for genuine literals.
      size_t j = i + 1;
      while (j < n && content[j] != c) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') break;  // unterminated; stop at EOL
        ++j;
      }
      size_t stop = (j < n && content[j] == c) ? j + 1 : j;
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::string(content.substr(i, stop - i));
      t.line = line;
      out.tokens.push_back(std::move(t));
      advance_over(stop - i);
      continue;
    }

    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      size_t j = i;
      while (j < n) {
        char d = content[j];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            d == '\'') {
          ++j;
          continue;
        }
        // Exponent sign: 1e-5, 0x1p+3.
        if ((d == '+' || d == '-') && j > i &&
            (content[j - 1] == 'e' || content[j - 1] == 'E' ||
             content[j - 1] == 'p' || content[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::string(content.substr(i, j - i));
      t.line = line;
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(content[j])) ++j;
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(content.substr(i, j - i));
      t.line = line;
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    // Punctuation: longest multi-char operator first.
    std::string_view rest = content.substr(i);
    std::string_view matched;
    for (std::string_view op : kMultiOps) {
      if (!op.empty() && rest.substr(0, op.size()) == op) {
        matched = op;
        break;
      }
    }
    Token t;
    t.kind = TokenKind::kPunct;
    t.text = matched.empty() ? std::string(1, c) : std::string(matched);
    t.line = line;
    out.tokens.push_back(std::move(t));
    i += matched.empty() ? 1 : matched.size();
  }

  out.num_lines = line;
  return out;
}

}  // namespace streamtune::analysis
