// Status-discipline rules. The chaos-hardening contract (DESIGN.md §7)
// requires every fallible deploy/save/measure outcome to be inspected;
// these rules machine-check the two ways that contract erodes: dropping a
// Status/Result on the floor, and reading .value() without proving ok().

#include "analysis/project_index.h"
#include "analysis/rules.h"
#include "analysis/token_utils.h"

namespace streamtune::analysis {

namespace {

// True when toks[i] begins a statement (previous significant token ends a
// statement or opens a block, or closes an if/while/for/switch condition).
bool IsStatementStart(const std::vector<Token>& toks, size_t i) {
  // Skip preprocessor tokens when looking backwards.
  int p = static_cast<int>(i) - 1;
  while (p >= 0 && toks[p].kind == TokenKind::kPreproc) --p;
  if (p < 0) return true;
  const Token& prev = toks[p];
  if (prev.IsPunct(";") || prev.IsPunct("{") || prev.IsPunct("}")) return true;
  if (prev.IsIdent("else") || prev.IsIdent("do")) return true;
  if (prev.IsPunct(")")) {
    int o = MatchBackward(toks, p);
    if (o > 0 && toks[o - 1].kind == TokenKind::kIdent) {
      const std::string& k = toks[o - 1].text;
      return k == "if" || k == "while" || k == "for" || k == "switch";
    }
  }
  return false;
}

// Parses a call-chain expression starting at i: `a::b(...).c(...)->d(...)`.
// On success returns the index one past the terminating ')' and stores the
// final callee name; returns -1 when the shape doesn't match.
int ParseCallChain(const std::vector<Token>& toks, size_t i,
                   std::string* final_callee) {
  size_t j = i;
  std::string callee;
  while (true) {
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdent) return -1;
    callee = toks[j].text;
    ++j;
    // Qualifiers: ns::ns2::Name
    while (j + 1 < toks.size() && toks[j].IsPunct("::") &&
           toks[j + 1].kind == TokenKind::kIdent) {
      callee = toks[j + 1].text;
      j += 2;
    }
    if (j >= toks.size() || !toks[j].IsPunct("(")) {
      // `obj.member(...)`: allow member hops before the call parens.
      if (j < toks.size() &&
          (toks[j].IsPunct(".") || toks[j].IsPunct("->"))) {
        ++j;
        continue;
      }
      return -1;
    }
    int close = MatchForward(toks, j);
    if (close < 0) return -1;
    j = static_cast<size_t>(close) + 1;
    if (j < toks.size() &&
        (toks[j].IsPunct(".") || toks[j].IsPunct("->"))) {
      ++j;  // chained call, keep going
      continue;
    }
    *final_callee = callee;
    return static_cast<int>(j);
  }
}

class StatusIgnoredRule : public Rule {
 public:
  const char* name() const override { return "st-status-ignored"; }

  void Check(const SourceFile& file, const ProjectIndex& index,
             std::vector<Finding>* out) const override {
    const std::vector<Token>& toks = file.src.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdent) continue;
      if (!IsStatementStart(toks, i)) continue;
      std::string callee;
      int end = ParseCallChain(toks, i, &callee);
      if (end < 0 || static_cast<size_t>(end) >= toks.size()) continue;
      if (!toks[end].IsPunct(";")) continue;  // not an expression-statement
      if (index.status_functions.count(callee) == 0) continue;
      // Name-based resolution: a name that also has a void overload
      // somewhere (e.g. an optimizer's Step() vs a session's
      // Result-returning Step()) is ambiguous here — stay silent.
      if (index.void_functions.count(callee) != 0) continue;
      out->push_back(Finding{
          file.path, toks[i].line, name(),
          "return value of '" + callee +
              "' (Status/Result) is ignored; check it, propagate it with "
              "ST_RETURN_NOT_OK, or document the discard with (void)"});
    }
  }
};

// Extracts the receiver chain (as token texts, e.g. {"order"} or
// {"m", ".", "res"}) ending right before the `.value` at dot_idx. Returns
// an empty string when the receiver is not a simple chain. Sets *is_move
// when the receiver is wrapped in std::move(...).
std::string ReceiverChain(const std::vector<Token>& toks, int dot_idx,
                          bool* is_temporary) {
  *is_temporary = false;
  int j = dot_idx - 1;
  if (j >= 0 && toks[j].IsPunct(")")) {
    int o = MatchBackward(toks, j);
    if (o <= 0) return "";
    // std::move(x).value(): recurse into the argument.
    if (toks[o - 1].IsIdent("move")) {
      std::string inner;
      for (int k = o + 1; k < j; ++k) {
        if (toks[k].kind == TokenKind::kPreproc) continue;
        inner += toks[k].text;
      }
      return inner;
    }
    *is_temporary = true;  // Foo().value(): no name to have checked
    return "";
  }
  // Walk back over `ident`, `.`, `->`, `::` chains.
  std::string chain;
  bool want_ident = true;
  while (j >= 0) {
    const Token& t = toks[j];
    if (want_ident) {
      if (t.kind != TokenKind::kIdent) break;
      chain = t.text + chain;
      want_ident = false;
      --j;
    } else if (t.IsPunct(".") || t.IsPunct("->") || t.IsPunct("::")) {
      chain = t.text + chain;
      want_ident = true;
      --j;
    } else {
      break;
    }
  }
  if (want_ident) return "";  // dangling separator; malformed
  return chain;
}

class StatusValueRule : public Rule {
 public:
  const char* name() const override { return "st-status-value"; }

  void Check(const SourceFile& file, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    const std::vector<Token>& toks = file.src.tokens;
    std::vector<int> encl = EnclosingBraces(toks);
    for (size_t i = 2; i + 2 < toks.size(); ++i) {
      if (!toks[i].IsIdent("value")) continue;
      if (!toks[i - 1].IsPunct(".")) continue;
      if (!toks[i + 1].IsPunct("(") || !toks[i + 2].IsPunct(")")) continue;

      bool is_temporary = false;
      std::string receiver =
          ReceiverChain(toks, static_cast<int>(i) - 1, &is_temporary);
      if (is_temporary) {
        out->push_back(Finding{
            file.path, toks[i].line, name(),
            ".value() on a temporary Result cannot be ok()-checked; bind "
            "it to a local and check before accessing"});
        continue;
      }
      if (receiver.empty()) continue;  // unrecognized shape; stay silent

      int body = OutermostFunctionBody(toks, encl, i);
      size_t window_begin = body < 0 ? 0 : static_cast<size_t>(body);
      if (!DominatedByCheck(toks, encl, window_begin, i, receiver)) {
        out->push_back(Finding{
            file.path, toks[i].line, name(),
            "'" + receiver +
                ".value()' is not dominated by an ok()/has_value() check "
                "in this function; add one (or assert(ok()))"});
      }
    }
  }

 private:
  // True when the block enclosing token `j` is the block enclosing `use` or
  // one of its ancestors — i.e. control flow from j's statement to the use
  // cannot be skipped by j's own braces closing. A check inside a closed
  // sibling block (`if (x) { if (r.ok()) {...} } r.value();`) proves
  // nothing about the path reaching the use.
  static bool InDominatingBlock(const std::vector<int>& encl, size_t j,
                                size_t use) {
    for (int b = encl[use]; b != -1; b = encl[b]) {
      if (b == encl[j]) return true;
    }
    return encl[j] == -1;  // file scope encloses everything
  }

  // Looks for `receiver.ok(`, `receiver.has_value(`, `receiver.status(`,
  // `if (receiver)` or `if (!receiver)` between window_begin and use, in a
  // block that dominates the use. An `if (!r.ok()) return;` early exit
  // qualifies: the check itself sits in the enclosing block; only the
  // return is nested.
  static bool DominatedByCheck(const std::vector<Token>& toks,
                               const std::vector<int>& encl,
                               size_t window_begin, size_t use,
                               const std::string& receiver) {
    for (size_t j = window_begin; j < use; ++j) {
      if (toks[j].kind != TokenKind::kIdent) continue;
      if (!InDominatingBlock(encl, j, use)) continue;
      // Try to match the receiver chain ending at token j.
      bool dummy = false;
      // Reuse chain extraction: pretend toks[j+1] is the '.' of a call.
      if (j + 2 < use && toks[j + 1].IsPunct(".") &&
          toks[j + 2].kind == TokenKind::kIdent) {
        const std::string& m = toks[j + 2].text;
        if ((m == "ok" || m == "has_value" || m == "status") &&
            j + 3 < toks.size() && toks[j + 3].IsPunct("(")) {
          std::string chain = ReceiverChain(toks, static_cast<int>(j) + 1,
                                            &dummy);
          if (chain == receiver) return true;
        }
      }
      // `if (receiver)` / `if (!receiver)` — optional-style truthiness.
      if (toks[j].IsIdent("if") && j + 1 < use && toks[j + 1].IsPunct("(")) {
        size_t k = j + 2;
        if (k < use && toks[k].IsPunct("!")) ++k;
        std::string chain;
        while (k < use && (toks[k].kind == TokenKind::kIdent ||
                           toks[k].IsPunct(".") || toks[k].IsPunct("->") ||
                           toks[k].IsPunct("::"))) {
          chain += toks[k].text;
          ++k;
        }
        if (k < use && toks[k].IsPunct(")") && chain == receiver) return true;
      }
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeStatusIgnoredRule() {
  return std::make_unique<StatusIgnoredRule>();
}
std::unique_ptr<Rule> MakeStatusValueRule() {
  return std::make_unique<StatusValueRule>();
}

}  // namespace streamtune::analysis
