// C++ tokenizer with comment/string/preprocessor awareness.
//
// Produces the flat token stream every rule consumes, plus the per-line
// NOLINT suppression map mined from comments:
//   // NOLINT                      suppress every rule on this line
//   // NOLINT(st-rule-a, st-b)     suppress only the listed rules
//   // NOLINTNEXTLINE(...)         same, but applies to the following line

#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/token.h"

namespace streamtune::analysis {

/// Per-line suppressions. A line mapped to an empty set suppresses all
/// rules; otherwise only the named rules are suppressed.
using NolintMap = std::map<int, std::set<std::string>>;

struct TokenizedSource {
  std::vector<Token> tokens;
  NolintMap nolint;
  int num_lines = 0;
};

/// Tokenizes one translation unit. Never fails: unterminated constructs are
/// closed at end-of-file (rules on a file that garbled are best-effort).
TokenizedSource Tokenize(std::string_view content);

/// True when `rule` is suppressed on `line`.
bool IsSuppressed(const NolintMap& nolint, int line, const std::string& rule);

}  // namespace streamtune::analysis
