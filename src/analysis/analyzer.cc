#include "analysis/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "analysis/project_index.h"
#include "analysis/rules.h"

namespace streamtune::analysis {

namespace fs = std::filesystem;

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::string Finding::Key() const {
  return file + ":" + std::to_string(line) + ":" + rule;
}

namespace {

bool IsAnalyzableFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

// Directories never walked into: fixture corpora hold deliberate
// violations, build trees hold generated code.
bool IsSkippedDir(const std::string& name) {
  return name == "analysis_fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

std::string ToRelative(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

Status CollectFiles(const fs::path& root, const std::string& rel_path,
                    std::vector<std::string>* out) {
  fs::path full = root / rel_path;
  std::error_code ec;
  if (fs::is_regular_file(full, ec)) {
    out->push_back(rel_path);
    return Status::OK();
  }
  if (!fs::is_directory(full, ec)) {
    return Status::NotFound("no such file or directory: " + full.string());
  }
  std::vector<std::string> found;
  fs::recursive_directory_iterator it(full, ec), end;
  if (ec) return Status::Internal("cannot walk " + full.string());
  for (; it != end; ++it) {
    if (it->is_directory(ec)) {
      if (IsSkippedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file(ec) && IsAnalyzableFile(it->path())) {
      found.push_back(ToRelative(it->path(), root));
    }
  }
  std::sort(found.begin(), found.end());
  out->insert(out->end(), found.begin(), found.end());
  return Status::OK();
}

}  // namespace

Result<std::set<std::string>> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open baseline " + path);
  std::set<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR and surrounding whitespace.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    keys.insert(line.substr(start));
  }
  return keys;
}

Status WriteBaseline(const std::string& path,
                     const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write baseline " + path);
  out << "# st_analyze baseline: one accepted finding per line "
         "(file:line:rule).\n";
  for (const Finding& f : findings) out << f.Key() << "\n";
  out.flush();
  if (!out) return Status::Internal("short write to baseline " + path);
  return Status::OK();
}

Result<AnalysisReport> RunAnalyzer(const AnalyzerOptions& options) {
  fs::path root =
      options.root.empty() ? fs::current_path() : fs::path(options.root);

  std::vector<std::string> rel_files;
  for (const std::string& p : options.paths) {
    ST_RETURN_NOT_OK(CollectFiles(root, p, &rel_files));
  }
  // De-duplicate while preserving first-seen order.
  std::set<std::string> seen;
  std::vector<std::string> unique_files;
  for (std::string& f : rel_files) {
    if (seen.insert(f).second) unique_files.push_back(std::move(f));
  }

  std::vector<SourceFile> files;
  files.reserve(unique_files.size());
  for (const std::string& rel : unique_files) {
    ST_ASSIGN_OR_RETURN(SourceFile f,
                        SourceFile::Load(root.string(), rel));
    files.push_back(std::move(f));
  }

  // Pass 1: cross-file declarations.
  ProjectIndex index;
  for (const SourceFile& f : files) index.AddFile(f);

  // Pass 2: rules.
  std::vector<std::unique_ptr<Rule>> rules = BuildAllRules();
  AnalysisReport report;
  report.files_analyzed = static_cast<int>(files.size());
  std::vector<Finding> raw;
  for (const SourceFile& f : files) {
    for (const std::unique_ptr<Rule>& rule : rules) {
      if (!options.enabled_rules.empty() &&
          options.enabled_rules.count(rule->name()) == 0) {
        continue;
      }
      rule->Check(f, index, &raw);
    }
    // Collapse findings with identical (file, line, rule) BEFORE the
    // suppression filters: two `.value()` calls on one line are one defect,
    // one baseline key, and one suppression tally.
    std::sort(raw.begin(), raw.end());
    raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
    for (Finding& finding : raw) {
      if (f.Suppressed(finding.line, finding.rule)) {
        ++report.suppressed_nolint;
      } else if (options.baseline.count(finding.Key()) > 0) {
        ++report.suppressed_baseline;
      } else {
        report.findings.push_back(std::move(finding));
      }
    }
    raw.clear();
  }
  std::sort(report.findings.begin(), report.findings.end());
  return report;
}

}  // namespace streamtune::analysis
