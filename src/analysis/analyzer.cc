#include "analysis/analyzer.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "analysis/cache.h"
#include "analysis/call_graph.h"
#include "analysis/project_index.h"
#include "analysis/rules.h"
#include "common/thread_pool.h"

namespace streamtune::analysis {

namespace fs = std::filesystem;

std::string Finding::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::string Finding::Key() const {
  return file + ":" + std::to_string(line) + ":" + rule;
}

namespace {

bool IsAnalyzableFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

// Directories never walked into: fixture corpora hold deliberate
// violations, build trees hold generated code.
bool IsSkippedDir(const std::string& name) {
  return name == "analysis_fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

std::string ToRelative(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

Status CollectFiles(const fs::path& root, const std::string& rel_path,
                    std::vector<std::string>* out) {
  fs::path full = root / rel_path;
  std::error_code ec;
  if (fs::is_regular_file(full, ec)) {
    out->push_back(rel_path);
    return Status::OK();
  }
  if (!fs::is_directory(full, ec)) {
    return Status::NotFound("no such file or directory: " + full.string());
  }
  std::vector<std::string> found;
  fs::recursive_directory_iterator it(full, ec), end;
  if (ec) return Status::Internal("cannot walk " + full.string());
  for (; it != end; ++it) {
    if (it->is_directory(ec)) {
      if (IsSkippedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file(ec) && IsAnalyzableFile(it->path())) {
      found.push_back(ToRelative(it->path(), root));
    }
  }
  std::sort(found.begin(), found.end());
  out->insert(out->end(), found.begin(), found.end());
  return Status::OK();
}

// The analyzer times itself with the wall clock it bans in library code:
// phase timings are diagnostics, not data.
using Clock = std::chrono::steady_clock;  // NOLINT(st-determinism-random)

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Per-file working state across the three phases.
struct FileState {
  std::string rel;
  uint64_t hash = 0;
  std::string content;
  FileFacts facts;
  NolintMap nolint;
  /// Tokenized form; absent when every needed product came from the cache.
  std::optional<SourceFile> source;
  /// Cached raw findings (valid only if the index fingerprint also holds).
  std::vector<Finding> cached_raw;
  bool cache_hit = false;  // content hash matched a cache entry
  std::vector<Finding> raw;  // per-file rule findings, all rules
};

Status ReadWholeFile(const std::string& root, const std::string& rel,
                     std::string* out) {
  std::string full = root.empty() ? rel : root + "/" + rel;
  std::ifstream in(full, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + full);
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return Status::OK();
}

}  // namespace

Result<std::set<std::string>> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open baseline " + path);
  std::set<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR and surrounding whitespace.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    keys.insert(line.substr(start));
  }
  return keys;
}

Status WriteBaseline(const std::string& path,
                     const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write baseline " + path);
  out << "# st_analyze baseline: one accepted finding per line "
         "(file:line:rule).\n";
  for (const Finding& f : findings) out << f.Key() << "\n";
  out.flush();
  if (!out) return Status::Internal("short write to baseline " + path);
  return Status::OK();
}

Result<AnalysisReport> RunAnalyzer(const AnalyzerOptions& options) {
  fs::path root =
      options.root.empty() ? fs::current_path() : fs::path(options.root);

  std::vector<std::string> rel_files;
  for (const std::string& p : options.paths) {
    ST_RETURN_NOT_OK(CollectFiles(root, p, &rel_files));
  }
  // De-duplicate while preserving first-seen order.
  std::set<std::string> seen;
  std::vector<std::string> unique_files;
  for (std::string& f : rel_files) {
    if (seen.insert(f).second) unique_files.push_back(std::move(f));
  }

  AnalysisCache cache;
  bool have_cache = false;
  if (!options.cache_path.empty()) {
    Result<AnalysisCache> loaded = LoadCache(options.cache_path);
    if (loaded.ok()) {
      cache = std::move(loaded).value();
      have_cache = true;
    }
  }

  AnalysisReport report;
  ThreadPool pool(options.threads);

  // Phase 1: scan. Read + hash every file; extract facts (or reuse cached
  // ones). Results land in slot i, so the merged index is independent of
  // scheduling.
  Clock::time_point t0 = Clock::now();
  int n = static_cast<int>(unique_files.size());
  std::vector<FileState> states(n);
  std::vector<Status> errors(n, Status::OK());
  pool.ParallelFor(0, n, [&](int64_t i) {
    FileState& st = states[i];
    st.rel = unique_files[i];
    Status s = ReadWholeFile(root.string(), st.rel, &st.content);
    if (!s.ok()) {
      errors[i] = std::move(s);
      return;
    }
    st.hash = HashBytes(st.content);
    if (have_cache) {
      auto it = cache.files.find(st.rel);
      if (it != cache.files.end() && it->second.content_hash == st.hash) {
        st.cache_hit = true;
        st.facts = it->second.facts;
        st.nolint = it->second.nolint;
        st.cached_raw = it->second.raw_findings;
        return;
      }
    }
    st.source = SourceFile::FromContent(st.rel, st.content);
    st.facts = ExtractFileFacts(*st.source);
    st.nolint = st.source->src.nolint;
  });
  for (Status& e : errors) {
    if (!e.ok()) return std::move(e);
  }
  report.scan_ms = MsSince(t0);
  report.files_analyzed = n;

  // Cross-file index (sequential, file order).
  ProjectIndex index;
  for (const FileState& st : states) index.Add(st.facts);
  uint64_t fingerprint = FingerprintIndex(index);
  bool index_unchanged = have_cache && cache.index_fingerprint == fingerprint;

  // Phase 2: per-file rules, in parallel, for files whose cached findings
  // are unusable. All rules always run — the enabled_rules filter applies
  // at report time, so the cache holds the full result.
  t0 = Clock::now();
  std::vector<std::unique_ptr<Rule>> rules = BuildAllRules();
  pool.ParallelFor(0, n, [&](int64_t i) {
    FileState& st = states[i];
    if (st.cache_hit && index_unchanged) {
      st.raw = std::move(st.cached_raw);
      return;
    }
    if (!st.source.has_value()) {
      // Facts were cached but the index moved: findings must be recomputed.
      st.source = SourceFile::FromContent(st.rel, st.content);
    }
    for (const std::unique_ptr<Rule>& rule : rules) {
      rule->Check(*st.source, index, &st.raw);
    }
    std::sort(st.raw.begin(), st.raw.end());
    st.raw.erase(std::unique(st.raw.begin(), st.raw.end()), st.raw.end());
  });
  for (const FileState& st : states) {
    if (st.source.has_value()) {
      ++report.files_retokenized;
    } else {
      ++report.files_from_cache;
    }
  }
  report.rules_ms = MsSince(t0);

  // Phase 3: interprocedural analyses over the summaries (sequential — the
  // graph is global and cheap next to tokenization).
  t0 = Clock::now();
  std::vector<FileFacts> facts;
  facts.reserve(n);
  for (const FileState& st : states) facts.push_back(st.facts);
  CallGraph graph = CallGraph::Build(facts);
  std::vector<Finding> graph_findings;
  RunGraphRules(facts, graph, index, &graph_findings, &report.graph);
  report.graph_ms = MsSince(t0);

  // Merge, dedup, and filter. Collapsing identical (file, line, rule)
  // happens BEFORE the suppression filters: two `.value()` calls on one
  // line are one defect, one baseline key, and one suppression tally.
  std::vector<Finding> all;
  std::map<std::string, const NolintMap*> nolint_by_file;
  for (FileState& st : states) {
    nolint_by_file[st.rel] = &st.nolint;
    // Copied, not moved: the raw findings are also what the cache stores.
    for (const Finding& f : st.raw) all.push_back(f);
  }
  for (Finding& f : graph_findings) all.push_back(std::move(f));
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  for (Finding& finding : all) {
    if (!options.enabled_rules.empty() &&
        options.enabled_rules.count(finding.rule) == 0) {
      continue;
    }
    auto nl = nolint_by_file.find(finding.file);
    if (nl != nolint_by_file.end() &&
        IsSuppressed(*nl->second, finding.line, finding.rule)) {
      ++report.suppressed_nolint;
    } else if (options.baseline.count(finding.Key()) > 0) {
      ++report.suppressed_baseline;
    } else {
      report.findings.push_back(std::move(finding));
    }
  }
  std::sort(report.findings.begin(), report.findings.end());

  if (!options.cache_path.empty()) {
    AnalysisCache fresh;
    fresh.index_fingerprint = fingerprint;
    for (FileState& st : states) {
      CachedFile cf;
      cf.content_hash = st.hash;
      cf.facts = std::move(st.facts);
      cf.nolint = std::move(st.nolint);
      cf.raw_findings = std::move(st.raw);
      fresh.files.emplace(st.rel, std::move(cf));
    }
    // Cache write failures are not analysis failures; the next run simply
    // goes cold.
    SaveCache(options.cache_path, fresh).ok();
  }
  return report;
}

}  // namespace streamtune::analysis
