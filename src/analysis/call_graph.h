// Cross-TU call graph built from per-file function summaries. Nodes are
// keyed by unqualified function name (overloads merged); resolution is
// name-based, so a name defined under two distinct class qualifiers — or as
// a free function in two unrelated file stems — is marked ambiguous, and
// the interprocedural rules refuse to propagate facts through it rather
// than guess (the same stay-silent philosophy as the void_functions set).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/project_index.h"

namespace streamtune::analysis {

/// One definition of a function: where it lives and its extracted summary.
struct FunctionDef {
  const FunctionSummary* summary = nullptr;  // into the FileFacts vector
  std::string file;                          // defining file path
  FileOrigin origin = FileOrigin::kOther;
};

struct CallGraphNode {
  std::string name;  // unqualified: "Admit", "operator()", "~KbService"
  /// True when call sites naming this function cannot be attributed to one
  /// definition: defs under >= 2 distinct qualifiers, or free-function defs
  /// spread over >= 2 file stems.
  bool ambiguous = false;
  std::vector<FunctionDef> defs;
  /// Deduplicated resolved out-edges (node ids); self-edges kept.
  std::vector<int> callees;
  /// SCC id after condensation (Tarjan emission order: callees' SCCs are
  /// numbered before or equal to the caller's, so ascending id order is a
  /// valid bottom-up propagation order).
  int scc = -1;
};

struct CallGraphStats {
  int functions = 0;        // total definitions across files
  int nodes = 0;            // distinct names
  int ambiguous_nodes = 0;
  int resolved_edges = 0;   // unique (caller node, callee node), unambiguous
  int ambiguous_edges = 0;  // unique (caller node, name), name ambiguous
  int external_edges = 0;   // unique (caller node, name), name undefined here
  int scc_count = 0;
  int nontrivial_sccs = 0;  // SCCs with >= 2 members (mutual recursion)
};

class CallGraph {
 public:
  /// Builds nodes, classifies edges, and condenses into SCCs. Keeps
  /// pointers into `facts` — the vector must outlive the graph.
  static CallGraph Build(const std::vector<FileFacts>& facts);

  const std::vector<CallGraphNode>& nodes() const { return nodes_; }
  /// Node id for an unqualified name, or -1.
  int NodeId(const std::string& name) const;
  /// SCC member lists, indexed by scc id (reverse-topological order).
  const std::vector<std::vector<int>>& sccs() const { return sccs_; }
  const CallGraphStats& stats() const { return stats_; }

 private:
  void RunTarjan();

  std::vector<CallGraphNode> nodes_;
  std::map<std::string, int> by_name_;
  std::vector<std::vector<int>> sccs_;
  CallGraphStats stats_;
};

}  // namespace streamtune::analysis
