#include "analysis/sarif.h"

#include <cstdio>
#include <fstream>
#include <set>

namespace streamtune::analysis {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  AppendEscaped(s, &out);
  out += "\"";
  return out;
}

}  // namespace

std::string SarifJson(const std::vector<Finding>& findings) {
  std::set<std::string> rule_ids;
  for (const Finding& f : findings) rule_ids.insert(f.rule);

  std::string j;
  j += "{\n";
  j += "  \"$schema\": "
       "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  j += "  \"version\": \"2.1.0\",\n";
  j += "  \"runs\": [\n";
  j += "    {\n";
  j += "      \"tool\": {\n";
  j += "        \"driver\": {\n";
  j += "          \"name\": \"st_analyze\",\n";
  j += "          \"rules\": [\n";
  bool first = true;
  for (const std::string& id : rule_ids) {
    if (!first) j += ",\n";
    first = false;
    j += "            {\"id\": " + Quoted(id) + "}";
  }
  j += "\n          ]\n";
  j += "        }\n";
  j += "      },\n";
  j += "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) j += ",\n";
    first = false;
    j += "        {\n";
    j += "          \"ruleId\": " + Quoted(f.rule) + ",\n";
    j += "          \"level\": \"warning\",\n";
    j += "          \"message\": {\"text\": " + Quoted(f.message) + "},\n";
    j += "          \"locations\": [\n";
    j += "            {\n";
    j += "              \"physicalLocation\": {\n";
    j += "                \"artifactLocation\": {\"uri\": " + Quoted(f.file) +
         "},\n";
    j += "                \"region\": {\"startLine\": " +
         std::to_string(f.line > 0 ? f.line : 1) + "}\n";
    j += "              }\n";
    j += "            }\n";
    j += "          ]\n";
    j += "        }";
  }
  j += "\n      ]\n";
  j += "    }\n";
  j += "  ]\n";
  j += "}\n";
  return j;
}

Status WriteSarif(const std::string& path,
                  const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write SARIF " + path);
  out << SarifJson(findings);
  out.flush();
  if (!out) return Status::Internal("short write to SARIF " + path);
  return Status::OK();
}

}  // namespace streamtune::analysis
