#include "analysis/graph_rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/source_file.h"

namespace streamtune::analysis {

namespace {

constexpr const char* kRuleTransitive = "st-determinism-transitive";
constexpr const char* kRuleLockOrder = "st-lock-order-cycle";
constexpr const char* kRuleRequiresUnheld = "st-requires-unheld";

bool InLibraryScope(FileOrigin o) {
  return o == FileOrigin::kSrc || o == FileOrigin::kTests;
}

// ---------------------------------------------------------------------------
// Determinism taint.

struct Taint {
  bool tainted = false;
  // Seed nodes: what/where. Propagated nodes: via = tainted callee node id.
  std::string seed_what;
  std::string seed_file;
  int seed_line = 0;
  int via = -1;
};

// Bottom-up over SCCs (ascending id = reverse topological). A node with a
// STREAMTUNE_DETERMINISM_SAFE vetting mark is a clean leaf regardless of
// its body or callees.
std::vector<Taint> PropagateTaint(const CallGraph& graph,
                                  const ProjectIndex& index) {
  const std::vector<CallGraphNode>& nodes = graph.nodes();
  std::vector<Taint> taint(nodes.size());
  for (const std::vector<int>& scc : graph.sccs()) {
    // Pass 1: direct seeds and taint entering from outside the SCC.
    for (int v : scc) {
      if (index.determinism_safe_functions.count(nodes[v].name) > 0) continue;
      for (const FunctionDef& d : nodes[v].defs) {
        if (taint[v].tainted) break;
        if (!d.summary->seeds.empty()) {
          const TaintSeed& s = d.summary->seeds.front();
          taint[v] = Taint{true, s.what, d.file, s.line, -1};
        }
      }
      if (taint[v].tainted) continue;
      for (int w : nodes[v].callees) {
        if (nodes[w].scc != nodes[v].scc && taint[w].tainted) {
          taint[v] = Taint{true, "", "", 0, w};
          break;
        }
      }
    }
    // Pass 2: mutual recursion — one tainted member taints the whole SCC.
    if (scc.size() >= 2) {
      int source = -1;
      for (int v : scc) {
        if (taint[v].tainted) source = v;
      }
      if (source >= 0) {
        for (int v : scc) {
          if (taint[v].tainted) continue;
          if (index.determinism_safe_functions.count(nodes[v].name) > 0)
            continue;
          taint[v] = Taint{true, "", "", 0, source};
        }
      }
    }
  }
  return taint;
}

// "Helper -> Rand uses rand() (src/foo.cc:12)" — the witness chain from
// `v` down to the seeding function.
std::string TaintChain(const CallGraph& graph, const std::vector<Taint>& taint,
                       int v) {
  std::string chain = graph.nodes()[v].name;
  int cur = v;
  for (int hops = 0; taint[cur].via >= 0 && hops < 8; ++hops) {
    cur = taint[cur].via;
    chain += " -> " + graph.nodes()[cur].name;
  }
  if (taint[cur].via < 0 && !taint[cur].seed_what.empty()) {
    chain += " uses " + taint[cur].seed_what + " (" + taint[cur].seed_file +
             ":" + std::to_string(taint[cur].seed_line) + ")";
  }
  return chain;
}

void CheckDeterminismTransitive(const CallGraph& graph,
                                const ProjectIndex& index,
                                std::vector<Finding>* out,
                                GraphAnalysisStats* stats) {
  std::vector<Taint> taint = PropagateTaint(graph, index);
  for (const Taint& t : taint) {
    if (t.tainted) ++stats->tainted_functions;
  }
  for (const CallGraphNode& node : graph.nodes()) {
    for (const FunctionDef& d : node.defs) {
      if (!InLibraryScope(d.origin)) continue;
      for (const CallSiteSummary& c : d.summary->calls) {
        if (!c.in_parallel_callback) continue;
        int callee = graph.NodeId(c.callee);
        if (callee < 0 || graph.nodes()[callee].ambiguous) continue;
        if (!taint[callee].tainted) continue;
        // The direct-use rules already flag seeds inside the callback
        // itself; this rule is about what the call *reaches*.
        out->push_back(Finding{
            d.file, c.line, kRuleTransitive,
            "'" + c.callee +
                "' is called from a parallel map/combine callback but is "
                "transitively nondeterministic: " +
                TaintChain(graph, taint, callee) +
                "; make the chain deterministic or vet it with "
                "STREAMTUNE_DETERMINISM_SAFE"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lock order.

// Mutex identity is file-stem-qualified: `mu_` locked anywhere in the
// kb_service.{h,cc} pair is one lock, `mu_` in thread_pool.cc another.
std::string QualifyMutex(const std::string& file, const std::string& name) {
  return PathStem(file) + "::" + name;
}

struct OrderEdge {
  std::string file;  // witness: first place this ordering was seen
  int line = 0;
  std::string note;
};

// The caller's own STREAMTUNE_REQUIRES set counts as held on entry.
std::set<std::string> RequiresHeld(const ProjectIndex& index,
                                   const FunctionDef& d,
                                   const std::string& name) {
  std::set<std::string> held;
  auto it = index.requires_mutexes.find(name);
  if (it == index.requires_mutexes.end()) return held;
  for (const std::string& mu : it->second) {
    held.insert(QualifyMutex(d.file, mu));
  }
  return held;
}

void CheckLockOrder(const CallGraph& graph, const ProjectIndex& index,
                    std::vector<Finding>* out, GraphAnalysisStats* stats) {
  const std::vector<CallGraphNode>& nodes = graph.nodes();

  // Acq*(F): every mutex executing F may acquire, bottom-up over SCCs.
  // Members of one SCC share a set (mutual recursion reaches everything).
  std::vector<std::set<std::string>> acq(nodes.size());
  for (const std::vector<int>& scc : graph.sccs()) {
    std::set<std::string> merged;
    for (int v : scc) {
      for (const FunctionDef& d : nodes[v].defs) {
        for (const LockAcquireSummary& l : d.summary->locks) {
          for (const std::string& mu : l.mutexes) {
            merged.insert(QualifyMutex(d.file, mu));
          }
        }
      }
      for (int w : nodes[v].callees) {
        if (nodes[w].scc != nodes[v].scc) {
          merged.insert(acq[w].begin(), acq[w].end());
        }
      }
    }
    for (int v : scc) acq[v] = merged;
  }

  // Ordering edges held -> acquired, with a first-witness per edge.
  std::map<std::pair<std::string, std::string>, OrderEdge> edges;
  auto add_edge = [&](const std::string& held, const std::string& acquired,
                      const std::string& file, int line, std::string note) {
    if (held == acquired) return;  // same-object identity unknowable here
    auto key = std::make_pair(held, acquired);
    auto it = edges.find(key);
    // Deterministic witness: lexicographically first (file, line).
    if (it == edges.end() || file < it->second.file ||
        (file == it->second.file && line < it->second.line)) {
      edges[key] = OrderEdge{file, line, std::move(note)};
    }
  };

  for (const CallGraphNode& node : nodes) {
    for (const FunctionDef& d : node.defs) {
      std::set<std::string> entry = RequiresHeld(index, d, node.name);
      // Lock-while-holding-lock inside one function.
      for (const LockAcquireSummary& l : d.summary->locks) {
        std::set<std::string> held = entry;
        for (const std::string& h : l.held_before) {
          held.insert(QualifyMutex(d.file, h));
        }
        for (const std::string& h : held) {
          for (const std::string& m : l.mutexes) {
            add_edge(h, QualifyMutex(d.file, m), d.file, l.line,
                     "acquires " + m + " while holding");
          }
        }
      }
      // Calls that may acquire downstream while the caller holds a lock.
      for (const CallSiteSummary& c : d.summary->calls) {
        int callee = graph.NodeId(c.callee);
        if (callee < 0 || nodes[callee].ambiguous) continue;
        if (acq[callee].empty()) continue;
        std::set<std::string> held = entry;
        for (const std::string& h : c.held_mutexes) {
          held.insert(QualifyMutex(d.file, h));
        }
        for (const std::string& h : held) {
          for (const std::string& a : acq[callee]) {
            add_edge(h, a, d.file, c.line,
                     "calls '" + c.callee + "' which may acquire");
          }
        }
      }
    }
  }
  stats->lock_order_edges = static_cast<int>(edges.size());

  // Cycles = SCCs of size >= 2 in the mutex digraph (Kosaraju-style double
  // DFS is overkill at this size; reuse Tarjan via a tiny local pass).
  std::map<std::string, int> mutex_id;
  std::vector<std::string> mutex_name;
  for (const auto& [key, e] : edges) {
    for (const std::string& m : {key.first, key.second}) {
      if (mutex_id.emplace(m, static_cast<int>(mutex_name.size())).second) {
        mutex_name.push_back(m);
      }
    }
  }
  int n = static_cast<int>(mutex_name.size());
  std::vector<std::vector<int>> adj(n);
  for (const auto& [key, e] : edges) {
    adj[mutex_id[key.first]].push_back(mutex_id[key.second]);
  }
  // Iterative Tarjan over the mutex graph.
  std::vector<int> index_(n, -1), low(n, 0), next_child(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack, call_stack;
  std::vector<std::vector<int>> sccs;
  std::vector<int> scc_of(n, -1);
  int counter = 0;
  for (int s = 0; s < n; ++s) {
    if (index_[s] != -1) continue;
    call_stack.push_back(s);
    while (!call_stack.empty()) {
      int v = call_stack.back();
      if (index_[v] == -1) {
        index_[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (next_child[v] < static_cast<int>(adj[v].size())) {
        int w = adj[v][next_child[v]++];
        if (index_[w] == -1) {
          call_stack.push_back(w);
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index_[w]);
      }
      if (descended) continue;
      if (low[v] == index_[v]) {
        std::vector<int> scc;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc_of[w] = static_cast<int>(sccs.size());
          scc.push_back(w);
        } while (w != v);
        sccs.push_back(std::move(scc));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        low[call_stack.back()] = std::min(low[call_stack.back()], low[v]);
      }
    }
  }

  for (const std::vector<int>& scc : sccs) {
    if (scc.size() < 2) continue;
    ++stats->lock_order_cycles;
    // Cycle description: members in sorted name order.
    std::vector<std::string> names;
    for (int m : scc) names.push_back(mutex_name[m]);
    std::sort(names.begin(), names.end());
    std::string cycle;
    for (const std::string& nm : names) {
      if (!cycle.empty()) cycle += " -> ";
      cycle += nm;
    }
    cycle += " -> " + names.front();
    // Anchor: the in-cycle edge with the lexicographically first witness.
    const OrderEdge* anchor = nullptr;
    std::pair<std::string, std::string> anchor_key;
    for (const auto& [key, e] : edges) {
      auto a = mutex_id.find(key.first);
      auto b = mutex_id.find(key.second);
      if (scc_of[a->second] != scc_of[b->second] ||
          scc_of[a->second] != scc_of[mutex_id[names.front()]]) {
        continue;
      }
      if (anchor == nullptr || e.file < anchor->file ||
          (e.file == anchor->file && e.line < anchor->line)) {
        anchor = &e;
        anchor_key = key;
      }
    }
    if (anchor == nullptr) continue;
    out->push_back(Finding{
        anchor->file, anchor->line, kRuleLockOrder,
        "lock-order cycle " + cycle + ": here " + anchor->note + " '" +
            anchor_key.second + "' while holding '" + anchor_key.first +
            "', but another path orders them oppositely; pick one global "
            "order or merge the critical sections"});
  }
}

// ---------------------------------------------------------------------------
// Requires-unheld.

void CheckRequiresUnheld(const CallGraph& graph, const ProjectIndex& index,
                         std::vector<Finding>* out) {
  for (const CallGraphNode& node : graph.nodes()) {
    for (const FunctionDef& d : node.defs) {
      std::string caller_stem = PathStem(d.file);
      if (d.summary->is_ctor_dtor) continue;  // object not shared yet
      const auto caller_req = index.requires_mutexes.find(node.name);
      for (const CallSiteSummary& c : d.summary->calls) {
        auto req = index.requires_mutexes.find(c.callee);
        if (req == index.requires_mutexes.end()) continue;
        // Name-based resolution: only check callers living in a file stem
        // that declares this REQUIRES (same .h/.cc pair).
        auto stems = index.requires_decl_stems.find(c.callee);
        if (stems == index.requires_decl_stems.end() ||
            stems->second.count(caller_stem) == 0) {
          continue;
        }
        for (const std::string& mu : req->second) {
          bool held = std::find(c.held_mutexes.begin(), c.held_mutexes.end(),
                                mu) != c.held_mutexes.end();
          if (!held && caller_req != index.requires_mutexes.end() &&
              caller_req->second.count(mu) > 0) {
            held = true;  // caller's own contract covers it
          }
          if (held) continue;
          out->push_back(Finding{
              d.file, c.line, kRuleRequiresUnheld,
              "'" + c.callee + "' is declared STREAMTUNE_REQUIRES(" + mu +
                  ") but no lock on '" + mu +
                  "' is held at this call; acquire it first or propagate "
                  "the STREAMTUNE_REQUIRES annotation"});
        }
      }
    }
  }
}

}  // namespace

std::vector<std::string> GraphRuleNames() {
  return {kRuleTransitive, kRuleLockOrder, kRuleRequiresUnheld};
}

void RunGraphRules(const std::vector<FileFacts>& facts, const CallGraph& graph,
                   const ProjectIndex& index, std::vector<Finding>* out,
                   GraphAnalysisStats* stats) {
  (void)facts;  // the graph already holds pointers into it
  stats->call_graph = graph.stats();
  CheckDeterminismTransitive(graph, index, out, stats);
  CheckLockOrder(graph, index, out, stats);
  CheckRequiresUnheld(graph, index, out);
}

}  // namespace streamtune::analysis
