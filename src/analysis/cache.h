// On-disk incremental cache for the analyzer. Keyed by per-file content
// hash: a warm run over an unchanged tree re-tokenizes nothing — it reloads
// each file's extracted facts, NOLINT map, and raw per-file findings and
// goes straight to the (cheap) graph analyses.
//
// Two validity levels:
//   - facts + NOLINT map depend only on the file's own bytes, so a content
//     hash match alone makes them reusable;
//   - raw per-file findings also depend on the cross-file ProjectIndex, so
//     they are only reused when the index fingerprint recorded at save time
//     matches the one computed this run.
//
// Format: versioned tab-separated text. Any parse problem, version skew, or
// truncation makes the loader report the cache as absent — the analyzer
// then takes the cold path and rewrites it; a cache can never cause wrong
// output, only extra work.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/project_index.h"
#include "analysis/rule.h"
#include "analysis/tokenizer.h"
#include "common/status.h"

namespace streamtune::analysis {

struct CachedFile {
  uint64_t content_hash = 0;
  FileFacts facts;
  NolintMap nolint;
  /// Per-file rule findings, all rules, pre-suppression. Graph findings are
  /// never cached — they are recomputed from the summaries every run.
  std::vector<Finding> raw_findings;
};

struct AnalysisCache {
  /// FingerprintIndex() of the ProjectIndex the raw findings were computed
  /// against.
  uint64_t index_fingerprint = 0;
  std::map<std::string, CachedFile> files;  // by root-relative path
};

/// FNV-1a 64-bit.
uint64_t HashBytes(std::string_view bytes);

/// Stable hash over every index fact a per-file rule can observe.
uint64_t FingerprintIndex(const ProjectIndex& index);

/// NotFound when the file is missing or unusable (any malformed content is
/// deliberately folded into NotFound: cold path, never an error).
Result<AnalysisCache> LoadCache(const std::string& path);

Status SaveCache(const std::string& path, const AnalysisCache& cache);

}  // namespace streamtune::analysis
