#include "analysis/cache.h"

#include <fstream>
#include <sstream>

namespace streamtune::analysis {

namespace {

constexpr const char* kMagic = "stcache";
constexpr const char* kVersion = "v1";

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  uint64_t v = 0;
  if (!ParseU64(s, &v) || v > 1u << 30) return false;
  *out = static_cast<int>(v);
  return true;
}

void WriteFacts(std::ostream& out, const FileFacts& f) {
  for (const std::string& s : f.status_functions) out << "sf\t" << s << "\n";
  for (const std::string& s : f.void_functions) out << "vf\t" << s << "\n";
  for (const std::string& s : f.determinism_safe) out << "df\t" << s << "\n";
  for (const GuardedMember& g : f.guarded_members) {
    out << "gm\t" << g.member << "\t" << g.mutex << "\t" << g.file_stem
        << "\t" << g.decl_line << "\t" << g.decl_file << "\n";
  }
  for (const auto& [fn, mus] : f.requires_mutexes) {
    out << "rq\t" << fn;
    for (const std::string& mu : mus) out << "\t" << mu;
    out << "\n";
  }
  for (const FunctionSummary& fn : f.summary.functions) {
    out << "fn\t" << fn.line << "\t" << (fn.is_ctor_dtor ? 1 : 0) << "\t"
        << fn.qualifier << "\t" << fn.name << "\n";
    for (const TaintSeed& s : fn.seeds) {
      out << "sd\t" << s.line << "\t" << s.what << "\n";
    }
    for (const LockAcquireSummary& l : fn.locks) {
      out << "lk\t" << l.line << "\t" << l.mutexes.size();
      for (const std::string& m : l.mutexes) out << "\t" << m;
      for (const std::string& h : l.held_before) out << "\t" << h;
      out << "\n";
    }
    for (const CallSiteSummary& c : fn.calls) {
      out << "cs\t" << c.line << "\t" << (c.in_parallel_callback ? 1 : 0)
          << "\t" << c.callee;
      for (const std::string& h : c.held_mutexes) out << "\t" << h;
      out << "\n";
    }
  }
}

}  // namespace

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint64_t FingerprintIndex(const ProjectIndex& index) {
  std::ostringstream os;
  for (const std::string& s : index.status_functions) os << "s" << s << ";";
  for (const std::string& s : index.void_functions) os << "v" << s << ";";
  for (const std::string& s : index.determinism_safe_functions)
    os << "d" << s << ";";
  for (const GuardedMember& g : index.guarded_members) {
    os << "g" << g.member << "," << g.mutex << "," << g.file_stem << ","
       << g.decl_file << "," << g.decl_line << ";";
  }
  for (const auto& [fn, mus] : index.requires_mutexes) {
    os << "r" << fn << ":";
    for (const std::string& mu : mus) os << mu << ",";
    os << ";";
  }
  for (const auto& [fn, stems] : index.requires_decl_stems) {
    os << "t" << fn << ":";
    for (const std::string& st : stems) os << st << ",";
    os << ";";
  }
  std::string s = os.str();
  return HashBytes(s);
}

Result<AnalysisCache> LoadCache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("no cache at " + path);
  AnalysisCache cache;
  std::string line;
  if (!std::getline(in, line) ||
      SplitTabs(line) != std::vector<std::string>{kMagic, kVersion}) {
    return Status::NotFound("cache version mismatch");
  }
  if (!std::getline(in, line)) return Status::NotFound("truncated cache");
  std::vector<std::string> fp = SplitTabs(line);
  if (fp.size() != 2 || fp[0] != "fp" ||
      !ParseU64(fp[1], &cache.index_fingerprint)) {
    return Status::NotFound("bad cache fingerprint");
  }

  CachedFile* cur = nullptr;
  FunctionSummary* fn = nullptr;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> f = SplitTabs(line);
    const std::string& tag = f[0];
    if (tag == "eof") {
      saw_eof = true;
      break;
    }
    if (tag == "file") {
      if (f.size() != 4) return Status::NotFound("bad file record");
      uint64_t hash = 0;
      int origin = 0;
      if (!ParseU64(f[1], &hash) || !ParseInt(f[2], &origin) ||
          origin > static_cast<int>(FileOrigin::kOther)) {
        return Status::NotFound("bad file record");
      }
      cur = &cache.files[f[3]];
      cur->content_hash = hash;
      cur->facts.path = f[3];
      cur->facts.origin = static_cast<FileOrigin>(origin);
      fn = nullptr;
      continue;
    }
    if (cur == nullptr) return Status::NotFound("record outside file");
    if (tag == "sf" && f.size() == 2) {
      cur->facts.status_functions.insert(f[1]);
    } else if (tag == "vf" && f.size() == 2) {
      cur->facts.void_functions.insert(f[1]);
    } else if (tag == "df" && f.size() == 2) {
      cur->facts.determinism_safe.insert(f[1]);
    } else if (tag == "gm" && f.size() == 6) {
      GuardedMember g;
      g.member = f[1];
      g.mutex = f[2];
      g.file_stem = f[3];
      if (!ParseInt(f[4], &g.decl_line)) return Status::NotFound("bad gm");
      g.decl_file = f[5];
      cur->facts.guarded_members.push_back(std::move(g));
    } else if (tag == "rq" && f.size() >= 3) {
      for (size_t i = 2; i < f.size(); ++i) {
        cur->facts.requires_mutexes[f[1]].insert(f[i]);
      }
    } else if (tag == "fn" && f.size() == 5) {
      FunctionSummary s;
      int ctor = 0;
      if (!ParseInt(f[1], &s.line) || !ParseInt(f[2], &ctor)) {
        return Status::NotFound("bad fn");
      }
      s.is_ctor_dtor = ctor != 0;
      s.qualifier = f[3];
      s.name = f[4];
      cur->facts.summary.functions.push_back(std::move(s));
      fn = &cur->facts.summary.functions.back();
    } else if (tag == "sd" && f.size() == 3 && fn != nullptr) {
      TaintSeed s;
      if (!ParseInt(f[1], &s.line)) return Status::NotFound("bad sd");
      s.what = f[2];
      fn->seeds.push_back(std::move(s));
    } else if (tag == "lk" && f.size() >= 3 && fn != nullptr) {
      LockAcquireSummary l;
      int nmutex = 0;
      if (!ParseInt(f[1], &l.line) || !ParseInt(f[2], &nmutex) ||
          3 + static_cast<size_t>(nmutex) > f.size()) {
        return Status::NotFound("bad lk");
      }
      for (int i = 0; i < nmutex; ++i) l.mutexes.push_back(f[3 + i]);
      for (size_t i = 3 + nmutex; i < f.size(); ++i) {
        l.held_before.push_back(f[i]);
      }
      fn->locks.push_back(std::move(l));
    } else if (tag == "cs" && f.size() >= 4 && fn != nullptr) {
      CallSiteSummary c;
      int par = 0;
      if (!ParseInt(f[1], &c.line) || !ParseInt(f[2], &par)) {
        return Status::NotFound("bad cs");
      }
      c.in_parallel_callback = par != 0;
      c.callee = f[3];
      for (size_t i = 4; i < f.size(); ++i) c.held_mutexes.push_back(f[i]);
      fn->calls.push_back(std::move(c));
    } else if (tag == "nl" && f.size() >= 2) {
      int ln = 0;
      if (!ParseInt(f[1], &ln)) return Status::NotFound("bad nl");
      std::set<std::string>& rules = cur->nolint[ln];
      for (size_t i = 2; i < f.size(); ++i) rules.insert(f[i]);
    } else if (tag == "rf" && f.size() == 4) {
      Finding finding;
      finding.file = cur->facts.path;
      if (!ParseInt(f[1], &finding.line)) return Status::NotFound("bad rf");
      finding.rule = f[2];
      finding.message = f[3];
      cur->raw_findings.push_back(std::move(finding));
    } else if (tag == "end") {
      cur = nullptr;
      fn = nullptr;
    } else {
      return Status::NotFound("unknown cache record '" + tag + "'");
    }
  }
  if (!saw_eof) return Status::NotFound("truncated cache");
  return cache;
}

Status SaveCache(const std::string& path, const AnalysisCache& cache) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write cache " + path);
  out << kMagic << "\t" << kVersion << "\n";
  out << "fp\t" << cache.index_fingerprint << "\n";
  for (const auto& [rel, cf] : cache.files) {
    out << "file\t" << cf.content_hash << "\t"
        << static_cast<int>(cf.facts.origin) << "\t" << rel << "\n";
    WriteFacts(out, cf.facts);
    for (const auto& [ln, rules] : cf.nolint) {
      out << "nl\t" << ln;
      for (const std::string& r : rules) out << "\t" << r;
      out << "\n";
    }
    for (const Finding& f : cf.raw_findings) {
      out << "rf\t" << f.line << "\t" << f.rule << "\t" << f.message << "\n";
    }
    out << "end\n";
  }
  out << "eof\n";
  out.flush();
  if (!out) return Status::Internal("short write to cache " + path);
  return Status::OK();
}

}  // namespace streamtune::analysis
