// Token model for the self-hosted analyzer (see DESIGN.md §10).
//
// The analyzer never builds an AST: every rule works on a flat token stream
// with comments stripped (but mined for NOLINT suppressions), string/char
// literals collapsed into single tokens, and each preprocessor directive
// collapsed into one kPreproc token. That is deliberately coarse — rules are
// heuristic pattern matchers tuned to this codebase's idioms — but it keeps
// the analyzer dependency-free (no libclang in the toolchain).

#pragma once

#include <string>

namespace streamtune::analysis {

enum class TokenKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (including suffixes / exponents)
  kString,   // string or character literal, text includes the quotes
  kPunct,    // operators and punctuation, multi-char ops are one token
  kPreproc,  // one whole preprocessor directive (continuations folded in)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character

  bool Is(TokenKind k, const char* t) const {
    return kind == k && text == t;
  }
  bool IsIdent(const char* t) const { return Is(TokenKind::kIdent, t); }
  bool IsPunct(const char* t) const { return Is(TokenKind::kPunct, t); }
};

}  // namespace streamtune::analysis
