// Rule catalogue for st_analyze. Each factory returns one freshly
// constructed rule; BuildAllRules() returns the full set in stable order.
//
// The catalogue (see DESIGN.md §10 for rationale and examples):
//   st-determinism-random        std::random_device / rand / wall clocks
//   st-determinism-unordered-iter  order-sensitive loops over unordered
//                                  containers
//   st-status-ignored            Status/Result return value dropped
//   st-status-value              .value() not dominated by an ok() check
//   st-lock-guarded-by           GUARDED_BY member touched without the lock
//   st-banned-endl               std::endl in library code
//   st-banned-printf             printf/puts outside tools/ and bench/
//   st-pragma-once               header missing #pragma once

#pragma once

#include <memory>
#include <vector>

#include "analysis/rule.h"

namespace streamtune::analysis {

std::unique_ptr<Rule> MakeDeterminismRandomRule();
std::unique_ptr<Rule> MakeDeterminismUnorderedIterRule();
std::unique_ptr<Rule> MakeStatusIgnoredRule();
std::unique_ptr<Rule> MakeStatusValueRule();
std::unique_ptr<Rule> MakeLockGuardedByRule();
std::unique_ptr<Rule> MakeBannedEndlRule();
std::unique_ptr<Rule> MakeBannedPrintfRule();
std::unique_ptr<Rule> MakePragmaOnceRule();

/// All rules, in the catalogue order above.
std::vector<std::unique_ptr<Rule>> BuildAllRules();

}  // namespace streamtune::analysis
