// Incremental knowledge-base admission — the paper's feedback edge.
//
// When an online tuning session converges, its artifacts re-enter the KB so
// the next process tuning a similar (or the same) job starts warmer:
//   1. the session's labeled execution record joins the corpus and is
//      assigned to the nearest cluster by GED (reusing the shared GedCache);
//   2. the cluster's appearance count and the job's fine-tune / GP
//      accumulations grow (bounded FIFO);
//   3. a drift trigger — assignment distance above a threshold, relative
//      corpus growth, or too many drifted admissions — schedules
//      re-clustering + re-pre-training over the accumulated corpus on the
//      existing thread pool (PretrainOptions::num_threads).
//
// The updater mutates a KnowledgeBase in place and is intentionally
// single-writer: concurrency is provided one level up by KbService, which
// applies admissions to a private copy and publishes immutable snapshots.

#pragma once

#include "core/history.h"
#include "core/pretrain.h"
#include "graph/ged_cache.h"
#include "kb/kb_store.h"

namespace streamtune::kb {

/// Admission / drift knobs.
struct KbUpdateOptions {
  /// GED to the assigned center beyond which an admission counts as
  /// drifted (the cluster structure no longer represents the job well).
  double drift_distance = 6.0;
  /// Re-pretrain when the corpus grew by this fraction since the last
  /// pre-training...
  double growth_fraction = 0.5;
  /// ...and at least this many records were admitted since then.
  int min_new_records = 6;
  /// Alternative trigger: this many drifted admissions since the last
  /// pre-training force a re-pretrain regardless of growth.
  int drifted_trigger = 3;
  /// FIFO bounds for the per-job accumulations.
  size_t max_feedback_per_job = 1500;
  size_t max_gp_per_job = 4096;
  /// Settings for drift-triggered re-pre-training (epochs, k, threads...).
  core::PretrainOptions pretrain;
};

/// One converged tuning session, ready for admission.
struct AdmissionRecord {
  /// The session's final deployment, labeled by Algorithm 1.
  core::HistoryRecord record;
  /// Fine-tune samples the session accumulated (StreamTuneTuner feedback).
  std::vector<ml::LabeledSample> feedback;
  /// GP observations the session accumulated (ContTune surrogate).
  std::vector<GpObservation> gp_observations;
};

/// What one admission did.
struct AdmissionOutcome {
  int cluster = -1;          ///< cluster the record was assigned to
  double distance = 0;       ///< exact GED to the assigned center
  bool drifted = false;      ///< distance exceeded the drift threshold
  bool repretrained = false; ///< the admission triggered re-pre-training
};

/// Applies admissions and drift-triggered re-pre-training to a
/// KnowledgeBase. Stateless apart from options and the shared GED cache;
/// callers must serialize writers.
class KbUpdater {
 public:
  KbUpdater(KbUpdateOptions options, graph::GedCache* cache)
      : options_(options), cache_(cache) {}

  /// Admits one session into `kb`: validates the record, assigns the
  /// nearest cluster, appends to the corpus (replacing kb->bundle with a
  /// new one sharing the existing cluster models), and accumulates the
  /// per-job artifacts. Does NOT re-pretrain; check NeedsRepretrain.
  Result<AdmissionOutcome> Admit(KnowledgeBase* kb,
                                 const AdmissionRecord& rec) const;

  /// True when the drift trigger says the clusters + encoders are stale.
  bool NeedsRepretrain(const KnowledgeBase& kb) const;

  /// Re-clusters and re-pretrains over the full accumulated corpus,
  /// resetting the drift counters. Runs on the thread pool configured by
  /// options.pretrain.num_threads.
  Status Repretrain(KnowledgeBase* kb) const;

  const KbUpdateOptions& options() const { return options_; }

 private:
  KbUpdateOptions options_;
  graph::GedCache* cache_;
};

}  // namespace streamtune::kb
