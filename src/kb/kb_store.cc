#include "kb/kb_store.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/crc32.h"

namespace streamtune::kb {

namespace {

constexpr const char* kKbMagic = "STKB";
// Version 2 added the "index" section (bit-sliced corpus signatures);
// version-1 files are still accepted — their index is rebuilt from the
// corpus on load.
constexpr int kKbVersion = 2;
constexpr int kLegacyKbVersion = 1;

// Fixed section order; a loaded file must contain exactly these.
constexpr const char* kSectionNames[] = {"bundle", "stats", "jobs", "index"};
constexpr int kNumSections = 4;
constexpr int kNumLegacySections = 3;

using core::io::DoubleToken;
using core::io::ExpectToken;
using core::io::IntToken;
using core::io::Token;

Status WriteStatsBody(std::ostream& os, const KnowledgeBase& kb) {
  os << "appearance " << kb.appearance.size();
  for (long long a : kb.appearance) os << ' ' << a;
  os << '\n';
  os << "pretrain_corpus_size " << kb.pretrain_corpus_size << '\n';
  os << "drifted " << kb.drifted_since_pretrain << '\n';
  os << "admissions_total " << kb.admissions_total << '\n';
  return Status::OK();
}

Status ReadStatsBody(std::istream& is, KnowledgeBase* kb) {
  ST_RETURN_NOT_OK(ExpectToken(is, "appearance").status());
  ST_ASSIGN_OR_RETURN(long long k, IntToken(is));
  if (k < 0 || k > 1000) {
    return Status::InvalidArgument("implausible appearance count");
  }
  kb->appearance.clear();
  for (long long i = 0; i < k; ++i) {
    ST_ASSIGN_OR_RETURN(long long a, IntToken(is));
    kb->appearance.push_back(a);
  }
  ST_RETURN_NOT_OK(ExpectToken(is, "pretrain_corpus_size").status());
  ST_ASSIGN_OR_RETURN(kb->pretrain_corpus_size, IntToken(is));
  ST_RETURN_NOT_OK(ExpectToken(is, "drifted").status());
  ST_ASSIGN_OR_RETURN(kb->drifted_since_pretrain, IntToken(is));
  ST_RETURN_NOT_OK(ExpectToken(is, "admissions_total").status());
  ST_ASSIGN_OR_RETURN(kb->admissions_total, IntToken(is));
  return Status::OK();
}

Status WriteJobsBody(std::ostream& os, const KnowledgeBase& kb) {
  os.precision(17);
  os << "jobs " << kb.jobs.size() << '\n';
  for (const auto& [name, job] : kb.jobs) {
    os << "job " << name << " admissions " << job.admissions << " feedback "
       << job.feedback.size() << " gp " << job.gp_observations.size()
       << '\n';
    for (const ml::LabeledSample& s : job.feedback) {
      os << "f " << s.parallelism << ' ' << s.label << ' '
         << s.embedding.size();
      for (double v : s.embedding) os << ' ' << v;
      os << '\n';
    }
    for (const GpObservation& o : job.gp_observations) {
      os << "o " << o.op << ' ' << o.parallelism << ' ' << o.ability << '\n';
    }
  }
  return Status::OK();
}

Status ReadJobsBody(std::istream& is, KnowledgeBase* kb) {
  ST_RETURN_NOT_OK(ExpectToken(is, "jobs").status());
  ST_ASSIGN_OR_RETURN(long long n, IntToken(is));
  if (n < 0 || n > 1000000) {
    return Status::InvalidArgument("implausible job count");
  }
  kb->jobs.clear();
  for (long long j = 0; j < n; ++j) {
    ST_RETURN_NOT_OK(ExpectToken(is, "job").status());
    ST_ASSIGN_OR_RETURN(std::string name, Token(is));
    JobKnowledge job;
    ST_RETURN_NOT_OK(ExpectToken(is, "admissions").status());
    ST_ASSIGN_OR_RETURN(job.admissions, IntToken(is));
    ST_RETURN_NOT_OK(ExpectToken(is, "feedback").status());
    ST_ASSIGN_OR_RETURN(long long m, IntToken(is));
    ST_RETURN_NOT_OK(ExpectToken(is, "gp").status());
    ST_ASSIGN_OR_RETURN(long long g, IntToken(is));
    if (m < 0 || m > 10000000 || g < 0 || g > 10000000) {
      return Status::InvalidArgument("implausible per-job payload size");
    }
    job.feedback.reserve(m);
    for (long long i = 0; i < m; ++i) {
      ST_RETURN_NOT_OK(ExpectToken(is, "f").status());
      ml::LabeledSample s;
      ST_ASSIGN_OR_RETURN(long long p, IntToken(is));
      ST_ASSIGN_OR_RETURN(long long label, IntToken(is));
      if (label != 0 && label != 1) {
        return Status::InvalidArgument("feedback label out of range");
      }
      ST_ASSIGN_OR_RETURN(long long dim, IntToken(is));
      if (dim < 0 || dim > 100000) {
        return Status::InvalidArgument("implausible embedding width");
      }
      s.parallelism = static_cast<int>(p);
      s.label = static_cast<int>(label);
      s.embedding.reserve(dim);
      for (long long d = 0; d < dim; ++d) {
        ST_ASSIGN_OR_RETURN(double v, DoubleToken(is));
        s.embedding.push_back(v);
      }
      job.feedback.push_back(std::move(s));
    }
    job.gp_observations.reserve(g);
    for (long long i = 0; i < g; ++i) {
      ST_RETURN_NOT_OK(ExpectToken(is, "o").status());
      GpObservation o;
      ST_ASSIGN_OR_RETURN(long long op, IntToken(is));
      ST_ASSIGN_OR_RETURN(o.parallelism, DoubleToken(is));
      ST_ASSIGN_OR_RETURN(o.ability, DoubleToken(is));
      o.op = static_cast<int>(op);
      job.gp_observations.push_back(o);
    }
    if (!kb->jobs.emplace(std::move(name), std::move(job)).second) {
      return Status::InvalidArgument("duplicate job entry");
    }
  }
  return Status::OK();
}

/// Strict hex uint64 (the signature words; io::IntToken is signed decimal).
Result<uint64_t> HexToken(std::istream& is) {
  ST_ASSIGN_OR_RETURN(std::string tok, Token(is));
  uint64_t v = 0;
  const char* end = tok.data() + tok.size();
  auto [p, ec] = std::from_chars(tok.data(), end, v, 16);
  if (ec != std::errc() || p != end) {
    return Status::InvalidArgument("malformed hex token '" + tok + "'");
  }
  return v;
}

index::NearestCenterIndex BuildCorpusIndex(const core::PretrainedBundle& b) {
  index::NearestCenterIndex idx;
  for (const core::HistoryRecord& rec : b.records()) idx.Insert(rec.graph);
  return idx;
}

Status WriteIndexBody(std::ostream& os, const index::NearestCenterIndex& idx) {
  os << "index " << idx.size() << '\n';
  for (int i = 0; i < idx.size(); ++i) {
    const index::GraphFeatures& f = idx.slices().features(i);
    const index::WlSignature sig = idx.slices().signature(i);
    os << "g " << f.nodes << ' ' << f.edges;
    for (int t = 0; t < kNumOperatorTypes; ++t) os << ' ' << f.type_hist[t];
    os << std::hex;
    for (int w = 0; w < index::kSignatureWords; ++w) os << ' ' << sig.words[w];
    os << std::dec << '\n';
  }
  return Status::OK();
}

Status ReadIndexBody(std::istream& is, KnowledgeBase* kb) {
  ST_RETURN_NOT_OK(ExpectToken(is, "index").status());
  ST_ASSIGN_OR_RETURN(long long n, IntToken(is));
  const long long corpus = static_cast<long long>(kb->bundle->records().size());
  if (n != corpus) {
    return Status::InvalidArgument(
        "index column count does not match corpus size");
  }
  kb->corpus_index = index::NearestCenterIndex();
  for (long long i = 0; i < n; ++i) {
    ST_RETURN_NOT_OK(ExpectToken(is, "g").status());
    index::GraphFeatures f;
    ST_ASSIGN_OR_RETURN(long long nodes, IntToken(is));
    ST_ASSIGN_OR_RETURN(long long edges, IntToken(is));
    if (nodes < 0 || nodes > 1000000 || edges < 0 || edges > 10000000) {
      return Status::InvalidArgument("implausible index features");
    }
    f.nodes = static_cast<int32_t>(nodes);
    f.edges = static_cast<int32_t>(edges);
    long long hist_sum = 0;
    for (int t = 0; t < kNumOperatorTypes; ++t) {
      ST_ASSIGN_OR_RETURN(long long h, IntToken(is));
      if (h < 0 || h > nodes) {
        return Status::InvalidArgument("type histogram out of range");
      }
      f.type_hist[t] = static_cast<int32_t>(h);
      hist_sum += h;
    }
    if (hist_sum != nodes) {
      return Status::InvalidArgument("type histogram does not sum to nodes");
    }
    index::WlSignature sig;
    for (int w = 0; w < index::kSignatureWords; ++w) {
      ST_ASSIGN_OR_RETURN(sig.words[w], HexToken(is));
    }
    kb->corpus_index.Insert(sig, f);
  }
  // Defense in depth on top of the CRC: spot-check a deterministic sample
  // of columns against signatures recomputed from the corpus itself, so a
  // file whose index and corpus were edited consistently with their CRCs
  // but inconsistently with each other is still rejected.
  if (n > 0) {
    const long long stride = std::max(1LL, n / 16);
    for (long long i = 0; i < n; i += stride) {
      const JobGraph& g = kb->bundle->records()[static_cast<size_t>(i)].graph;
      if (!(kb->corpus_index.slices().signature(static_cast<int>(i)) ==
            index::ComputeWlSignature(g)) ||
          !(kb->corpus_index.slices().features(static_cast<int>(i)) ==
            index::ComputeGraphFeatures(g))) {
        return Status::InvalidArgument(
            "index column " + std::to_string(i) +
            " is inconsistent with the stored corpus");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateKb(const KnowledgeBase& kb) {
  if (!kb.bundle) return Status::InvalidArgument("KB has no bundle");
  if (static_cast<int>(kb.appearance.size()) != kb.bundle->num_clusters()) {
    return Status::InvalidArgument(
        "appearance count does not match cluster count");
  }
  for (long long a : kb.appearance) {
    if (a < 0) return Status::InvalidArgument("negative appearance count");
  }
  const long long corpus =
      static_cast<long long>(kb.bundle->records().size());
  if (kb.pretrain_corpus_size < 0 || kb.pretrain_corpus_size > corpus) {
    return Status::InvalidArgument("pretrain corpus size out of range");
  }
  if (kb.drifted_since_pretrain < 0 || kb.admissions_total < 0) {
    return Status::InvalidArgument("negative admission counter");
  }
  for (const auto& [name, job] : kb.jobs) {
    if (name.empty()) return Status::InvalidArgument("empty job name");
    if (job.admissions < 0) {
      return Status::InvalidArgument("negative per-job admission count");
    }
  }
  if (static_cast<long long>(kb.corpus_index.size()) != corpus) {
    return Status::InvalidArgument(
        "corpus index out of sync with corpus size");
  }
  return Status::OK();
}

void SyncCorpusIndex(KnowledgeBase* kb) {
  if (!kb->bundle) return;
  if (static_cast<size_t>(kb->corpus_index.size()) ==
      kb->bundle->records().size()) {
    return;
  }
  kb->corpus_index = BuildCorpusIndex(*kb->bundle);
}

void WarmBundleGraphs(const core::PretrainedBundle& bundle) {
  for (int c = 0; c < bundle.num_clusters(); ++c) {
    bundle.cluster(c).center.WarmAdjacency();
  }
  for (const core::HistoryRecord& rec : bundle.records()) {
    rec.graph.WarmAdjacency();
  }
}

Status SaveKb(const KnowledgeBase& kb, const std::string& path) {
  ST_RETURN_NOT_OK(ValidateKb(kb));

  std::string bodies[kNumSections];
  for (int s = 0; s < kNumSections; ++s) {
    std::ostringstream body;
    const std::string name = kSectionNames[s];
    if (name == "bundle") {
      ST_RETURN_NOT_OK(core::WriteBundleBody(body, *kb.bundle));
    } else if (name == "stats") {
      ST_RETURN_NOT_OK(WriteStatsBody(body, kb));
    } else if (name == "jobs") {
      ST_RETURN_NOT_OK(WriteJobsBody(body, kb));
    } else {
      ST_RETURN_NOT_OK(WriteIndexBody(body, kb.corpus_index));
    }
    bodies[s] = body.str();
  }

  core::CheckedFileWriter writer(path);
  std::ostream& os = writer.stream();
  os << kKbMagic << ' ' << kKbVersion << '\n';
  os << "sections " << kNumSections << '\n';
  for (int s = 0; s < kNumSections; ++s) {
    os << "section " << kSectionNames[s] << ' ' << bodies[s].size() << ' '
       << Crc32(bodies[s]) << '\n';
    os << bodies[s];
  }
  return writer.Commit();
}

Result<KnowledgeBase> LoadKb(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  ST_RETURN_NOT_OK(ExpectToken(is, kKbMagic).status());
  ST_ASSIGN_OR_RETURN(long long version, IntToken(is));
  if (version != kKbVersion && version != kLegacyKbVersion) {
    return Status::InvalidArgument("unsupported KB version " +
                                   std::to_string(version));
  }
  const int num_sections =
      version == kLegacyKbVersion ? kNumLegacySections : kNumSections;
  ST_RETURN_NOT_OK(ExpectToken(is, "sections").status());
  ST_ASSIGN_OR_RETURN(long long n, IntToken(is));
  if (n != num_sections) {
    return Status::InvalidArgument("unexpected section count");
  }

  KnowledgeBase kb;
  for (int s = 0; s < num_sections; ++s) {
    ST_RETURN_NOT_OK(ExpectToken(is, "section").status());
    ST_RETURN_NOT_OK(ExpectToken(is, kSectionNames[s]).status());
    ST_ASSIGN_OR_RETURN(long long bytes, IntToken(is));
    ST_ASSIGN_OR_RETURN(long long crc, IntToken(is));
    if (bytes < 0 || bytes > (1LL << 32) || crc < 0 || crc > 0xFFFFFFFFLL) {
      return Status::InvalidArgument("implausible section header");
    }
    // The header line ends in exactly one newline; the body follows byte
    // for byte (an exact-length read, so truncation is always detected).
    int sep = is.get();
    if (sep != '\n') {
      return Status::InvalidArgument("malformed section separator");
    }
    std::string body(static_cast<size_t>(bytes), '\0');
    if (bytes > 0) {
      is.read(body.data(), bytes);
      if (is.gcount() != bytes) {
        return Status::InvalidArgument("truncated section '" +
                                       std::string(kSectionNames[s]) + "'");
      }
    }
    if (Crc32(body) != static_cast<uint32_t>(crc)) {
      return Status::InvalidArgument("checksum mismatch in section '" +
                                     std::string(kSectionNames[s]) + "'");
    }
    std::istringstream body_is(body);
    const std::string name = kSectionNames[s];
    if (name == "bundle") {
      ST_ASSIGN_OR_RETURN(core::PretrainedBundle bundle,
                          core::ReadBundleBody(body_is));
      kb.bundle =
          std::make_shared<const core::PretrainedBundle>(std::move(bundle));
    } else if (name == "stats") {
      ST_RETURN_NOT_OK(ReadStatsBody(body_is, &kb));
    } else if (name == "jobs") {
      ST_RETURN_NOT_OK(ReadJobsBody(body_is, &kb));
    } else {
      ST_RETURN_NOT_OK(ReadIndexBody(body_is, &kb));
    }
  }
  // Version-1 files carry no index section; rebuild it from the corpus.
  SyncCorpusIndex(&kb);
  ST_RETURN_NOT_OK(ValidateKb(kb));
  WarmBundleGraphs(*kb.bundle);
  return kb;
}

}  // namespace streamtune::kb
