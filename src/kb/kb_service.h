// Concurrent knowledge-base service: snapshot-isolated reads, one writer.
//
// Many tuning sessions run at once against one KB. Readers must never see a
// torn state (a bundle from one pre-training with appearance counts from
// another), and admissions must not block in-flight sessions. The classic
// answer is copy-on-write snapshot isolation:
//
//   - the service holds a shared_ptr to an immutable KbSnapshot; Snapshot()
//     hands out that pointer under a brief mutex, so a session keeps one
//     consistent view for as long as it likes, no matter what writers do;
//   - Admit() is the single writer path: it copies the current state,
//     applies the admission (and, when the drift trigger fires, a full
//     re-pre-training) to the private copy, then publishes the copy with a
//     pointer swap. Writers serialize among themselves; readers never wait
//     on a writer and vice versa.
//
// The snapshot's job graphs are adjacency-warmed and its models are frozen,
// so concurrent sessions can run inference against one snapshot safely.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "core/streamtune_tuner.h"
#include "kb/kb_store.h"
#include "kb/kb_updater.h"

namespace streamtune::kb {

/// One immutable, versioned view of the knowledge base.
class KbSnapshot {
 public:
  const KnowledgeBase& kb() const { return kb_; }
  /// Monotonically increasing publication counter (0 = initial state).
  long long version() const { return version_; }
  std::shared_ptr<const core::PretrainedBundle> bundle() const {
    return kb_.bundle;
  }
  /// The bit-sliced signature index over this snapshot's corpus (column i
  /// == bundle records()[i]); rebuilt/extended copy-on-write with the rest
  /// of the state, so it is as immutable as the snapshot itself.
  const index::NearestCenterIndex& corpus_index() const {
    return kb_.corpus_index;
  }
  /// What the KB knows about `job`; nullptr when it was never admitted.
  const JobKnowledge* job(const std::string& name) const;

  /// A StreamTune tuner over this snapshot's bundle, with `job`'s
  /// accumulated fine-tune feedback pre-seeded (the warm start).
  std::unique_ptr<core::StreamTuneTuner> NewTuner(
      const std::string& job, core::StreamTuneOptions options = {}) const;

  /// One request to NewTunersBatched: the job to warm-start, plus (when
  /// known up front) the graph and rates its first recommendation will see,
  /// so the new tuner's embedding cache can be primed by the batched
  /// encoder pass. `graph`/`rates` are caller-owned and may be null — such
  /// tuners are created but skip the batched pass.
  struct TunerRequest {
    std::string job;
    const JobGraph* graph = nullptr;
    const std::vector<double>* rates = nullptr;
  };

  /// NewTuner for a whole scheduler wave: creates one warm-started tuner
  /// per request, then runs core::StreamTuneTuner::BatchedInference over
  /// every request that supplied its graph and rates — one batched GNN
  /// forward per cluster instead of one per job. Result order matches
  /// `requests`.
  std::vector<std::unique_ptr<core::StreamTuneTuner>> NewTunersBatched(
      const std::vector<TunerRequest>& requests,
      core::StreamTuneOptions options = {}) const;

 private:
  friend class KbService;
  KnowledgeBase kb_;
  long long version_ = 0;
};

/// Writer-side load signals, the control plane's backpressure input. A
/// consistent sample: counters are monotone across successive Stats() calls
/// and always satisfy the invariants checked by Consistent().
struct KbServiceStats {
  /// Version of the currently published snapshot (one bump per admission).
  long long snapshot_version = 0;
  /// Admissions that entered Admit() so far (includes in-flight ones).
  long long admissions_started = 0;
  /// Admissions that published a snapshot and returned.
  long long admissions_completed = 0;
  /// Admissions that triggered an inline re-pre-training.
  long long repretrains = 0;

  /// GED-cache counters at sample time — how much GED work the signature
  /// index plus the cache saved the admission path (bench + watchdog
  /// signal). Sampled from the shared cache's atomics right after the
  /// consistent block; monotone like the other counters.
  long long ged_hits_exact = 0;
  long long ged_hits_certified = 0;
  long long ged_misses = 0;
  long long ged_entries = 0;

  /// Per-pair GED policy histogram (how cache misses were routed: exact
  /// A*, bounded AStar+-LSa, or structural upper bound only) plus how many
  /// searches ran out of expansion budget. Same sampling discipline as the
  /// hit/miss counters above.
  long long ged_policy_exact = 0;
  long long ged_policy_bounded = 0;
  long long ged_policy_upper = 0;
  long long ged_budget_exhausted = 0;

  long long ged_hits() const { return ged_hits_exact + ged_hits_certified; }
  double ged_hit_rate() const {
    const long long total = ged_hits() + ged_misses;
    return total == 0 ? 0.0 : static_cast<double>(ged_hits()) / total;
  }

  /// Writers queued or in flight behind the copy-on-write writer lock.
  long long writer_queue_depth() const {
    return admissions_started - admissions_completed;
  }
  /// Admissions the published snapshot does not yet reflect — how far the
  /// reader-visible state lags the write stream ("snapshot age").
  long long snapshot_age() const { return writer_queue_depth(); }

  /// Internal invariants of one sample.
  bool Consistent() const {
    return admissions_started >= admissions_completed &&
           admissions_completed >= 0 && snapshot_version >= 0 &&
           repretrains >= 0 && repretrains <= admissions_completed &&
           snapshot_version == admissions_completed &&
           ged_hits_exact >= 0 && ged_hits_certified >= 0 &&
           ged_misses >= 0 && ged_entries >= 0 && ged_policy_exact >= 0 &&
           ged_policy_bounded >= 0 && ged_policy_upper >= 0 &&
           ged_budget_exhausted >= 0 &&
           ged_budget_exhausted <= ged_policy_exact + ged_policy_bounded;
  }
  /// Monotonicity between an earlier sample and this one.
  bool MonotoneSince(const KbServiceStats& earlier) const {
    return snapshot_version >= earlier.snapshot_version &&
           admissions_started >= earlier.admissions_started &&
           admissions_completed >= earlier.admissions_completed &&
           repretrains >= earlier.repretrains &&
           ged_hits_exact >= earlier.ged_hits_exact &&
           ged_hits_certified >= earlier.ged_hits_certified &&
           ged_misses >= earlier.ged_misses &&
           ged_entries >= earlier.ged_entries &&
           ged_policy_exact >= earlier.ged_policy_exact &&
           ged_policy_bounded >= earlier.ged_policy_bounded &&
           ged_policy_upper >= earlier.ged_policy_upper &&
           ged_budget_exhausted >= earlier.ged_budget_exhausted;
  }
};

/// The multi-session KB server. Thread-safe: any number of threads may call
/// Snapshot()/Admit()/Save() concurrently.
class KbService {
 public:
  /// Opens a KB previously written with Save()/SaveKb().
  static Result<std::unique_ptr<KbService>> Open(const std::string& path,
                                                 KbUpdateOptions options = {});

  /// Builds a fresh KB by pre-training over `records` (options.pretrain).
  static Result<std::unique_ptr<KbService>> Build(
      std::vector<core::HistoryRecord> records, KbUpdateOptions options = {});

  /// Wraps an already pre-trained bundle (e.g. LoadBundle output).
  static std::unique_ptr<KbService> FromBundle(
      std::shared_ptr<const core::PretrainedBundle> bundle,
      KbUpdateOptions options = {});

  /// The current immutable snapshot. Never blocks on writers beyond a
  /// pointer copy; the returned view stays valid and consistent for the
  /// lifetime of the shared_ptr.
  std::shared_ptr<const KbSnapshot> Snapshot() const;

  /// Admits one converged tuning session. Serialized with other writers;
  /// runs drift-triggered re-pre-training inline when due (the outcome's
  /// `repretrained` flag reports it) and publishes a new snapshot.
  Result<AdmissionOutcome> Admit(const AdmissionRecord& rec);

  /// Durably saves the latest snapshot (atomic temp-file + rename).
  Status Save(const std::string& path) const;

  /// One consistent sample of the writer-side load counters. Samples taken
  /// later observe counters at least as large (monotone), and every sample
  /// satisfies KbServiceStats::Consistent().
  KbServiceStats Stats() const;

  /// The latest published version.
  long long version() const { return Snapshot()->version(); }

  const KbUpdateOptions& options() const { return updater_.options(); }
  graph::GedCache* ged_cache() { return &cache_; }

 private:
  KbService(KnowledgeBase kb, KbUpdateOptions options);

  Result<AdmissionOutcome> AdmitImpl(const AdmissionRecord& rec);

  graph::GedCache cache_;
  KbUpdater updater_;

  /// Serializes Admit() writers (copy -> mutate -> publish).
  std::mutex writer_mu_;
  /// Guards only the snapshot pointer swap/read.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const KbSnapshot> snapshot_
      STREAMTUNE_GUARDED_BY(snapshot_mu_);
  /// Bumped on Admit() entry, before the writer lock — the queue-depth
  /// signal must see writers that are still waiting.
  std::atomic<long long> admissions_started_{0};
  /// Completion counters advance together with the snapshot swap, under
  /// snapshot_mu_, so a Stats() sample is internally consistent.
  long long admissions_completed_ STREAMTUNE_GUARDED_BY(snapshot_mu_) = 0;
  long long repretrains_ STREAMTUNE_GUARDED_BY(snapshot_mu_) = 0;
};

}  // namespace streamtune::kb
