// Concurrent knowledge-base service: snapshot-isolated reads, one writer.
//
// Many tuning sessions run at once against one KB. Readers must never see a
// torn state (a bundle from one pre-training with appearance counts from
// another), and admissions must not block in-flight sessions. The classic
// answer is copy-on-write snapshot isolation:
//
//   - the service holds a shared_ptr to an immutable KbSnapshot; Snapshot()
//     hands out that pointer under a brief mutex, so a session keeps one
//     consistent view for as long as it likes, no matter what writers do;
//   - Admit() is the single writer path: it copies the current state,
//     applies the admission (and, when the drift trigger fires, a full
//     re-pre-training) to the private copy, then publishes the copy with a
//     pointer swap. Writers serialize among themselves; readers never wait
//     on a writer and vice versa.
//
// The snapshot's job graphs are adjacency-warmed and its models are frozen,
// so concurrent sessions can run inference against one snapshot safely.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "core/streamtune_tuner.h"
#include "kb/kb_store.h"
#include "kb/kb_updater.h"

namespace streamtune::kb {

/// One immutable, versioned view of the knowledge base.
class KbSnapshot {
 public:
  const KnowledgeBase& kb() const { return kb_; }
  /// Monotonically increasing publication counter (0 = initial state).
  long long version() const { return version_; }
  std::shared_ptr<const core::PretrainedBundle> bundle() const {
    return kb_.bundle;
  }
  /// What the KB knows about `job`; nullptr when it was never admitted.
  const JobKnowledge* job(const std::string& name) const;

  /// A StreamTune tuner over this snapshot's bundle, with `job`'s
  /// accumulated fine-tune feedback pre-seeded (the warm start).
  std::unique_ptr<core::StreamTuneTuner> NewTuner(
      const std::string& job, core::StreamTuneOptions options = {}) const;

  /// One request to NewTunersBatched: the job to warm-start, plus (when
  /// known up front) the graph and rates its first recommendation will see,
  /// so the new tuner's embedding cache can be primed by the batched
  /// encoder pass. `graph`/`rates` are caller-owned and may be null — such
  /// tuners are created but skip the batched pass.
  struct TunerRequest {
    std::string job;
    const JobGraph* graph = nullptr;
    const std::vector<double>* rates = nullptr;
  };

  /// NewTuner for a whole scheduler wave: creates one warm-started tuner
  /// per request, then runs core::StreamTuneTuner::BatchedInference over
  /// every request that supplied its graph and rates — one batched GNN
  /// forward per cluster instead of one per job. Result order matches
  /// `requests`.
  std::vector<std::unique_ptr<core::StreamTuneTuner>> NewTunersBatched(
      const std::vector<TunerRequest>& requests,
      core::StreamTuneOptions options = {}) const;

 private:
  friend class KbService;
  KnowledgeBase kb_;
  long long version_ = 0;
};

/// The multi-session KB server. Thread-safe: any number of threads may call
/// Snapshot()/Admit()/Save() concurrently.
class KbService {
 public:
  /// Opens a KB previously written with Save()/SaveKb().
  static Result<std::unique_ptr<KbService>> Open(const std::string& path,
                                                 KbUpdateOptions options = {});

  /// Builds a fresh KB by pre-training over `records` (options.pretrain).
  static Result<std::unique_ptr<KbService>> Build(
      std::vector<core::HistoryRecord> records, KbUpdateOptions options = {});

  /// Wraps an already pre-trained bundle (e.g. LoadBundle output).
  static std::unique_ptr<KbService> FromBundle(
      std::shared_ptr<const core::PretrainedBundle> bundle,
      KbUpdateOptions options = {});

  /// The current immutable snapshot. Never blocks on writers beyond a
  /// pointer copy; the returned view stays valid and consistent for the
  /// lifetime of the shared_ptr.
  std::shared_ptr<const KbSnapshot> Snapshot() const;

  /// Admits one converged tuning session. Serialized with other writers;
  /// runs drift-triggered re-pre-training inline when due (the outcome's
  /// `repretrained` flag reports it) and publishes a new snapshot.
  Result<AdmissionOutcome> Admit(const AdmissionRecord& rec);

  /// Durably saves the latest snapshot (atomic temp-file + rename).
  Status Save(const std::string& path) const;

  /// The latest published version.
  long long version() const { return Snapshot()->version(); }

  const KbUpdateOptions& options() const { return updater_.options(); }
  graph::GedCache* ged_cache() { return &cache_; }

 private:
  KbService(KnowledgeBase kb, KbUpdateOptions options);

  graph::GedCache cache_;
  KbUpdater updater_;

  /// Serializes Admit() writers (copy -> mutate -> publish).
  std::mutex writer_mu_;
  /// Guards only the snapshot pointer swap/read.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const KbSnapshot> snapshot_
      STREAMTUNE_GUARDED_BY(snapshot_mu_);
};

}  // namespace streamtune::kb
