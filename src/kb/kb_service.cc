#include "kb/kb_service.h"

#include <utility>

namespace streamtune::kb {

namespace {

/// Initial KB state around a bundle: appearance counts seeded with the
/// cluster sizes, the whole corpus counted as pre-trained.
KnowledgeBase StateFromBundle(
    std::shared_ptr<const core::PretrainedBundle> bundle) {
  KnowledgeBase kb;
  kb.appearance.assign(bundle->num_clusters(), 0);
  for (int c = 0; c < bundle->num_clusters(); ++c) {
    kb.appearance[c] =
        static_cast<long long>(bundle->cluster(c).record_indices.size());
  }
  kb.pretrain_corpus_size = static_cast<long long>(bundle->records().size());
  kb.bundle = std::move(bundle);
  SyncCorpusIndex(&kb);
  return kb;
}

}  // namespace

const JobKnowledge* KbSnapshot::job(const std::string& name) const {
  auto it = kb_.jobs.find(name);
  return it == kb_.jobs.end() ? nullptr : &it->second;
}

std::unique_ptr<core::StreamTuneTuner> KbSnapshot::NewTuner(
    const std::string& job_name, core::StreamTuneOptions options) const {
  auto tuner = std::make_unique<core::StreamTuneTuner>(kb_.bundle, options);
  if (const JobKnowledge* known = job(job_name)) {
    tuner->SeedFeedback(job_name, known->feedback);
  }
  return tuner;
}

std::vector<std::unique_ptr<core::StreamTuneTuner>>
KbSnapshot::NewTunersBatched(const std::vector<TunerRequest>& requests,
                             core::StreamTuneOptions options) const {
  std::vector<std::unique_ptr<core::StreamTuneTuner>> tuners;
  tuners.reserve(requests.size());
  std::vector<core::StreamTuneTuner::PendingJob> pending;
  pending.reserve(requests.size());
  for (const TunerRequest& req : requests) {
    tuners.push_back(NewTuner(req.job, options));
    if (req.graph != nullptr && req.rates != nullptr) {
      pending.push_back(core::StreamTuneTuner::PendingJob{
          tuners.back().get(), req.graph, req.rates});
    }
  }
  core::StreamTuneTuner::BatchedInference(pending);
  return tuners;
}

KbService::KbService(KnowledgeBase kb, KbUpdateOptions options)
    : updater_(options, &cache_) {
  auto snapshot = std::make_shared<KbSnapshot>();
  snapshot->kb_ = std::move(kb);
  snapshot->version_ = 0;
  snapshot_ = std::move(snapshot);
}

Result<std::unique_ptr<KbService>> KbService::Open(const std::string& path,
                                                   KbUpdateOptions options) {
  ST_ASSIGN_OR_RETURN(KnowledgeBase kb, LoadKb(path));
  return std::unique_ptr<KbService>(
      new KbService(std::move(kb), std::move(options)));
}

Result<std::unique_ptr<KbService>> KbService::Build(
    std::vector<core::HistoryRecord> records, KbUpdateOptions options) {
  core::Pretrainer pretrainer(options.pretrain);
  ST_ASSIGN_OR_RETURN(core::PretrainedBundle trained,
                      pretrainer.Run(std::move(records)));
  auto bundle =
      std::make_shared<const core::PretrainedBundle>(std::move(trained));
  return FromBundle(std::move(bundle), std::move(options));
}

std::unique_ptr<KbService> KbService::FromBundle(
    std::shared_ptr<const core::PretrainedBundle> bundle,
    KbUpdateOptions options) {
  WarmBundleGraphs(*bundle);
  return std::unique_ptr<KbService>(
      new KbService(StateFromBundle(std::move(bundle)), std::move(options)));
}

std::shared_ptr<const KbSnapshot> KbService::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

Result<AdmissionOutcome> KbService::Admit(const AdmissionRecord& rec) {
  // The queue-depth signal counts this writer from the moment it arrives,
  // including the time it spends waiting on writer_mu_; a failed admission
  // un-counts itself so the depth converges back to zero.
  admissions_started_.fetch_add(1, std::memory_order_relaxed);
  Result<AdmissionOutcome> outcome = AdmitImpl(rec);
  if (!outcome.ok()) {
    admissions_started_.fetch_sub(1, std::memory_order_relaxed);
  }
  return outcome;
}

Result<AdmissionOutcome> KbService::AdmitImpl(const AdmissionRecord& rec) {
  std::lock_guard<std::mutex> writer(writer_mu_);

  // Copy-on-write: mutate a private copy of the current state. The copy
  // shares the (immutable) bundle pointer; the updater replaces it rather
  // than mutating through it, so published snapshots are never touched.
  std::shared_ptr<const KbSnapshot> current = Snapshot();
  KnowledgeBase kb = current->kb();

  ST_ASSIGN_OR_RETURN(AdmissionOutcome outcome, updater_.Admit(&kb, rec));
  if (updater_.NeedsRepretrain(kb)) {
    ST_RETURN_NOT_OK(updater_.Repretrain(&kb));
    outcome.repretrained = true;
  }

  auto next = std::make_shared<KbSnapshot>();
  next->kb_ = std::move(kb);
  next->version_ = current->version() + 1;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(next);
    ++admissions_completed_;
    if (outcome.repretrained) ++repretrains_;
  }
  return outcome;
}

KbServiceStats KbService::Stats() const {
  KbServiceStats stats;
  {
    // Version and completion counters advance together under snapshot_mu_,
    // so this block yields an internally consistent sample.
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    stats.snapshot_version = snapshot_->version();
    stats.admissions_completed = admissions_completed_;
    stats.repretrains = repretrains_;
  }
  // Read `started` after `completed`: concurrent writers can only grow it,
  // so started >= completed holds in every sample.
  stats.admissions_started = admissions_started_.load(std::memory_order_relaxed);
  // GED-cache counters are sampled outside the consistent block: they are
  // individually monotone atomics, which is all MonotoneSince() asserts.
  const graph::GedCache::Stats ged = cache_.stats();
  stats.ged_hits_exact = static_cast<long long>(ged.hits_exact);
  stats.ged_hits_certified = static_cast<long long>(ged.hits_certified);
  stats.ged_misses = static_cast<long long>(ged.misses);
  stats.ged_entries = static_cast<long long>(ged.entries);
  stats.ged_policy_exact = static_cast<long long>(ged.policy_exact);
  stats.ged_policy_bounded = static_cast<long long>(ged.policy_bounded);
  stats.ged_policy_upper = static_cast<long long>(ged.policy_upper);
  stats.ged_budget_exhausted = static_cast<long long>(ged.budget_exhausted);
  return stats;
}

Status KbService::Save(const std::string& path) const {
  std::shared_ptr<const KbSnapshot> snapshot = Snapshot();
  return SaveKb(snapshot->kb(), path);
}

}  // namespace streamtune::kb
