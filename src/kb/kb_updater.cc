#include "kb/kb_updater.h"

#include <algorithm>
#include <utility>

#include "core/serialization.h"
#include "index/nearest_center_index.h"

namespace streamtune::kb {

namespace {

Status ValidateRecord(const core::HistoryRecord& rec) {
  ST_RETURN_NOT_OK(rec.graph.Validate());
  ST_RETURN_NOT_OK(core::ValidateGraphNames(rec.graph));
  const size_t n = static_cast<size_t>(rec.graph.num_operators());
  if (rec.parallelism.size() != n || rec.source_rates.size() != n ||
      rec.labels.size() != n) {
    return Status::InvalidArgument(
        "admission record vectors do not match operator count");
  }
  for (int p : rec.parallelism) {
    if (p < 1) return Status::InvalidArgument("parallelism degree < 1");
  }
  for (int l : rec.labels) {
    if (l < -1 || l > 1) {
      return Status::InvalidArgument("label out of range");
    }
  }
  return Status::OK();
}

/// Appends `extra` to `acc` and keeps only the newest `cap` entries.
template <typename T>
void AppendBounded(std::vector<T>* acc, const std::vector<T>& extra,
                   size_t cap) {
  acc->insert(acc->end(), extra.begin(), extra.end());
  if (acc->size() > cap) {
    acc->erase(acc->begin(), acc->begin() + (acc->size() - cap));
  }
}

}  // namespace

Result<AdmissionOutcome> KbUpdater::Admit(KnowledgeBase* kb,
                                          const AdmissionRecord& rec) const {
  ST_RETURN_NOT_OK(ValidateKb(*kb));
  ST_RETURN_NOT_OK(ValidateRecord(rec.record));
  const core::PretrainedBundle& old = *kb->bundle;

  // Nearest-center assignment by GED (Algorithm 2 line 1, reused for the
  // feedback edge), served by the bundle's two-stage signature index:
  // signature scan orders the centers, the sound lower bound prunes, GED
  // (through the shared cache) verifies survivors. Returns the identical
  // (cluster, exact distance) pair the old linear DistancesToCenters scan
  // produced — see index/nearest_center_index.h.
  const index::NearestCenterIndex::NearestResult nearest =
      old.center_index().Nearest(
          rec.record.graph,
          [&old](int c) -> const JobGraph& { return old.cluster(c).center; },
          cache_);
  const int cluster = nearest.index;

  // Append to the corpus: a new bundle sharing the existing cluster models
  // (encoders/heads are immutable once trained, so shallow ClusterModel
  // copies that share parameter nodes are safe for concurrent readers).
  std::vector<core::ClusterModel> clusters;
  clusters.reserve(old.num_clusters());
  for (int c = 0; c < old.num_clusters(); ++c) {
    clusters.push_back(old.cluster(c));
  }
  std::vector<core::HistoryRecord> records = old.records();
  clusters[cluster].record_indices.push_back(
      static_cast<int>(records.size()));
  records.push_back(rec.record);
  auto bundle = std::make_shared<const core::PretrainedBundle>(
      std::move(clusters), std::move(records), old.feature_encoder());
  WarmBundleGraphs(*bundle);
  kb->bundle = std::move(bundle);
  // Extend the corpus index with the new record's column (incremental: the
  // existing slice groups are untouched).
  kb->corpus_index.Insert(rec.record.graph);

  AdmissionOutcome outcome;
  outcome.cluster = cluster;
  outcome.distance = nearest.distance;
  outcome.drifted = nearest.distance > options_.drift_distance;

  kb->appearance[cluster] += 1;
  kb->admissions_total += 1;
  if (outcome.drifted) kb->drifted_since_pretrain += 1;

  JobKnowledge& job = kb->jobs[rec.record.graph.name()];
  job.admissions += 1;
  AppendBounded(&job.feedback, rec.feedback, options_.max_feedback_per_job);
  AppendBounded(&job.gp_observations, rec.gp_observations,
                options_.max_gp_per_job);
  return outcome;
}

bool KbUpdater::NeedsRepretrain(const KnowledgeBase& kb) const {
  if (!kb.bundle) return false;
  const long long corpus = static_cast<long long>(kb.bundle->records().size());
  const long long fresh = corpus - kb.pretrain_corpus_size;
  if (fresh < options_.min_new_records) return false;
  if (kb.drifted_since_pretrain >= options_.drifted_trigger) return true;
  if (kb.pretrain_corpus_size > 0 &&
      static_cast<double>(fresh) /
              static_cast<double>(kb.pretrain_corpus_size) >=
          options_.growth_fraction) {
    return true;
  }
  return false;
}

Status KbUpdater::Repretrain(KnowledgeBase* kb) const {
  ST_RETURN_NOT_OK(ValidateKb(*kb));
  std::vector<core::HistoryRecord> records = kb->bundle->records();
  core::Pretrainer pretrainer(options_.pretrain);
  ST_ASSIGN_OR_RETURN(core::PretrainedBundle trained,
                      pretrainer.Run(std::move(records)));
  auto bundle =
      std::make_shared<const core::PretrainedBundle>(std::move(trained));
  WarmBundleGraphs(*bundle);

  // Re-clustering invalidates the old per-cluster counters: re-seed the
  // appearance counts with the fresh cluster sizes and reset drift state.
  kb->appearance.assign(bundle->num_clusters(), 0);
  for (int c = 0; c < bundle->num_clusters(); ++c) {
    kb->appearance[c] =
        static_cast<long long>(bundle->cluster(c).record_indices.size());
  }
  kb->pretrain_corpus_size =
      static_cast<long long>(bundle->records().size());
  kb->drifted_since_pretrain = 0;
  kb->bundle = std::move(bundle);
  // Re-pre-training may reorder or re-cluster the corpus; rebuild the
  // index from scratch so column i always means records()[i].
  kb->corpus_index = index::NearestCenterIndex();
  SyncCorpusIndex(kb);
  return Status::OK();
}

}  // namespace streamtune::kb
