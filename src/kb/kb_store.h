// Knowledge-base persistence: a versioned, checksummed on-disk format.
//
// StreamTune's "learning from the past" loop needs durable state shared
// across processes: the pre-trained bundle (cluster centers + GNN weights +
// corpus), per-cluster appearance counts, and per-job artifacts accumulated
// by online tuning (fine-tune samples and ContTune-style GP observations).
// This file defines that state (KnowledgeBase) and its round-trip.
//
// File layout (text, self-describing):
//
//   STKB <version>
//   sections <n>
//   section <name> <byte-count> <crc32>
//   <exactly byte-count bytes of section body>
//   ...
//
// Every section body is length-prefixed and CRC-32 checksummed, so any
// truncation and any bit flip in a persisted KB is detected at load time
// (truncation shortens an exact-length read; flips fail the CRC or the
// header parse). Writes go through CheckedFileWriter (temp file + atomic
// rename), so a crashed or failed save never clobbers the previous KB.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/conttune.h"
#include "core/pretrain.h"
#include "core/serialization.h"
#include "index/nearest_center_index.h"
#include "ml/bottleneck_model.h"

namespace streamtune::kb {

/// A (operator, parallelism, ability) observation persisted per job; the
/// same unit ContTuneTuner exports/imports.
using GpObservation = baselines::GpSample;

/// Everything the KB remembers about one job (keyed by graph name).
struct JobKnowledge {
  /// Fine-tune samples from converged tuning sessions (StreamTune M_f).
  std::vector<ml::LabeledSample> feedback;
  /// GP observations from converged tuning sessions (ContTune surrogate).
  std::vector<GpObservation> gp_observations;
  /// Tuning sessions admitted for this job.
  long long admissions = 0;
};

/// The full knowledge-base state. Snapshots share the (immutable) bundle by
/// pointer; writers replace it wholesale, never mutate it in place.
struct KnowledgeBase {
  std::shared_ptr<const core::PretrainedBundle> bundle;
  /// Admissions assigned per cluster since the last (re-)pre-training,
  /// seeded with the cluster sizes (the paper's appearance counts feed the
  /// similarity-center choice; here they drive the drift trigger).
  std::vector<long long> appearance;
  /// Per-job accumulated artifacts.
  std::map<std::string, JobKnowledge> jobs;
  /// Corpus size when the bundle was last (re-)pre-trained.
  long long pretrain_corpus_size = 0;
  /// Admissions since the last pre-training whose assignment distance
  /// exceeded the drift threshold.
  long long drifted_since_pretrain = 0;
  /// Total admissions over the KB's lifetime.
  long long admissions_total = 0;
  /// Bit-sliced signature index over the corpus: column i is
  /// bundle->records()[i].graph. Extended incrementally on admission,
  /// rebuilt on re-pre-training and on legacy (v1) loads, persisted as the
  /// "index" STKB section. Serves similar-job retrieval at corpus scale
  /// without touching GED until the final verify stage.
  index::NearestCenterIndex corpus_index;
};

/// Structural invariants every in-memory and loaded KB must satisfy
/// (non-null bundle, appearance size == cluster count, counters coherent,
/// corpus index column count == corpus size).
Status ValidateKb(const KnowledgeBase& kb);

/// Rebuilds kb->corpus_index from the bundle's records unless it is
/// already in sync (one column per record). Cheap when in sync; used after
/// re-pre-training and when loading a version-1 file with no index section.
void SyncCorpusIndex(KnowledgeBase* kb);

/// Saves `kb` to `path`: temp file + atomic rename, per-section CRC-32.
[[nodiscard]] Status SaveKb(const KnowledgeBase& kb, const std::string& path);

/// Loads a KB saved with SaveKb. Strict: version mismatches, truncation,
/// checksum failures and malformed bodies all return an error Status (never
/// abort). All contained job graphs are adjacency-warmed, so the returned
/// state can be shared read-only across threads.
[[nodiscard]] Result<KnowledgeBase> LoadKb(const std::string& path);

/// Warms the lazy adjacency caches of every graph reachable from `bundle`
/// (cluster centers + corpus records). Must run before a bundle is shared
/// across threads — see JobGraph::WarmAdjacency.
void WarmBundleGraphs(const core::PretrainedBundle& bundle);

}  // namespace streamtune::kb
