#include "dataflow/operator.h"

namespace streamtune {

const char* OperatorTypeName(OperatorType t) {
  switch (t) {
    case OperatorType::kSource:
      return "Source";
    case OperatorType::kMap:
      return "Map";
    case OperatorType::kFilter:
      return "Filter";
    case OperatorType::kFlatMap:
      return "FlatMap";
    case OperatorType::kJoin:
      return "Join";
    case OperatorType::kWindowJoin:
      return "WindowJoin";
    case OperatorType::kAggregate:
      return "Aggregate";
    case OperatorType::kSink:
      return "Sink";
  }
  return "Unknown";
}

const char* WindowTypeName(WindowType t) {
  switch (t) {
    case WindowType::kNone:
      return "None";
    case WindowType::kTumbling:
      return "Tumbling";
    case WindowType::kSliding:
      return "Sliding";
  }
  return "Unknown";
}

}  // namespace streamtune
