// Initial feature vector construction for GNN encoding (Sec. IV-A).
//
// Categorical features from Table I are one-hot encoded; numeric features are
// min-max scaled into [0, 1]. The source rate (the only dynamic feature used
// at this stage) is min-max scaled on a log axis because rates span five
// orders of magnitude across engines (Table II). Operator parallelism is
// deliberately excluded: it is injected later through the FUSE layer.

#pragma once

#include <vector>

#include "dataflow/job_graph.h"
#include "dataflow/operator.h"

namespace streamtune {

/// Encodes operators into fixed-width initial feature vectors h_v^(0).
class FeatureEncoder {
 public:
  /// Normalization bounds. Defaults cover every workload in this repo.
  struct Bounds {
    double max_window_length = 600.0;   // seconds or records
    double max_sliding_length = 600.0;  // seconds or records
    double max_tuple_width = 1024.0;    // bytes
    double max_source_rate = 2.0e7;     // records/second
  };

  FeatureEncoder() = default;
  explicit FeatureEncoder(Bounds bounds) : bounds_(bounds) {}

  /// Number of features encoding the source rate: one min-max scaled log
  /// value plus soft threshold indicators at 10^3..10^7 records/second.
  /// Rates span five orders of magnitude (Table II); multi-resolution
  /// encoding keeps a 10x change visible after several GNN layers.
  static constexpr int kRateFeatures = 6;

  /// Width of every encoded feature vector.
  static constexpr int FeatureDim() {
    return kNumOperatorTypes + kNumWindowTypes + kNumWindowPolicies +
           4 * kNumKeyClasses + kNumAggregateFunctions + 4 + kRateFeatures;
  }

  /// Encodes a single operator.
  std::vector<double> Encode(const OperatorSpec& spec) const;

  /// Encodes every operator in `graph`, in id order.
  std::vector<std::vector<double>> EncodeGraph(const JobGraph& graph) const;

  /// Like EncodeGraph, but with each operator's source rate overridden by
  /// `rates[id]` — the rates in effect at measurement/tuning time rather
  /// than the base W_u baked into the graph.
  std::vector<std::vector<double>> EncodeGraphWithRates(
      const JobGraph& graph, const std::vector<double>& rates) const;

  /// EncodeGraphWithRates written straight into caller storage: `dst` is
  /// num_operators() contiguous rows of FeatureDim() doubles. Same values,
  /// no per-operator temporaries — the packing path of batched inference,
  /// where rows land directly in the tall workspace matrix.
  void EncodeGraphWithRatesInto(const JobGraph& graph,
                                const std::vector<double>& rates,
                                double* dst) const;

  /// Scales a raw parallelism degree to the model's [0, 1] input range.
  double ScaleParallelism(int parallelism) const;

  /// Upper bound used by ScaleParallelism (matches the Flink setup's
  /// max parallelism of 100).
  static constexpr int kMaxParallelism = 100;

 private:
  Bounds bounds_;
};

}  // namespace streamtune
