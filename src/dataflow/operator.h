// Logical dataflow operator model.
//
// Mirrors the paper's Table I: every operator carries a set of static
// (context-independent, transferable) features plus the dynamic source rate.
// Parallelism is deliberately NOT part of the operator spec — StreamTune
// treats it as a separately injected dynamic feature (Sec. IV-A).

#pragma once

#include <cstdint>
#include <string>

namespace streamtune {

/// Kind of computation an operator performs (Table I "Operator Type").
enum class OperatorType : uint8_t {
  kSource = 0,
  kMap,
  kFilter,
  kFlatMap,
  kJoin,        // record-at-a-time incremental join
  kWindowJoin,  // windowed two-input join
  kAggregate,   // windowed / keyed aggregation
  kSink,
};
inline constexpr int kNumOperatorTypes = 8;

/// Window shifting strategy (Table I "Window Type").
enum class WindowType : uint8_t { kNone = 0, kTumbling, kSliding };
inline constexpr int kNumWindowTypes = 3;

/// Windowing strategy (Table I "Window Policy").
enum class WindowPolicy : uint8_t { kNone = 0, kCount, kTime };
inline constexpr int kNumWindowPolicies = 3;

/// Data type of join/aggregate keys and tuples (Table I *Class rows).
enum class KeyClass : uint8_t { kNone = 0, kInt, kLong, kString, kComposite };
inline constexpr int kNumKeyClasses = 5;

/// Aggregation function (Table I "Aggregate Function").
enum class AggregateFunction : uint8_t {
  kNone = 0,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};
inline constexpr int kNumAggregateFunctions = 6;

const char* OperatorTypeName(OperatorType t);
const char* WindowTypeName(WindowType t);

/// Static + dynamic description of a logical dataflow operator.
///
/// Static features (everything except `source_rate`) are fixed properties of
/// the query and transfer across jobs; they feed the GNN's initial feature
/// vector. `source_rate` is non-zero only for kSource operators.
struct OperatorSpec {
  std::string name;
  OperatorType type = OperatorType::kMap;

  // Windowing (meaningful for kWindowJoin / kAggregate).
  WindowType window_type = WindowType::kNone;
  WindowPolicy window_policy = WindowPolicy::kNone;
  double window_length = 0.0;   // seconds (time policy) or records (count)
  double sliding_length = 0.0;  // slide interval; 0 for tumbling/none

  // Key/type classes.
  KeyClass join_key_class = KeyClass::kNone;
  KeyClass aggregate_class = KeyClass::kNone;
  KeyClass aggregate_key_class = KeyClass::kNone;
  AggregateFunction aggregate_function = AggregateFunction::kNone;

  // Tuple shape.
  double tuple_width_in = 0.0;   // bytes
  double tuple_width_out = 0.0;  // bytes
  KeyClass tuple_data_type = KeyClass::kInt;

  // Dynamic feature: records/second produced by this operator if it is a
  // source; 0 otherwise.
  double source_rate = 0.0;

  /// True for operators that ingest external data.
  bool is_source() const { return type == OperatorType::kSource; }
};

}  // namespace streamtune
