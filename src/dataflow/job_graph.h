// Logical dataflow DAG (JobGraph).
//
// The unit everything else operates on: the simulators deploy it, the GNN
// encodes it, GED compares it, and the tuners recommend one parallelism per
// logical operator in it.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/operator.h"

namespace streamtune {

/// A directed acyclic graph of logical dataflow operators.
///
/// Operators are addressed by dense integer ids in insertion order. Edges are
/// directed upstream -> downstream. The graph owns derived structure
/// (adjacency, topological order) which is recomputed lazily on demand.
class JobGraph {
 public:
  JobGraph() = default;
  explicit JobGraph(std::string name) : name_(std::move(name)) {}

  // The memoized canonical hash is an atomic, which deletes the default
  // copy/move special members; these transfer the cached value (the hash is
  // a pure function of operators + edges, so a copy shares it).
  JobGraph(const JobGraph& other) { CopyFrom(other); }
  JobGraph& operator=(const JobGraph& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  JobGraph(JobGraph&& other) noexcept { MoveFrom(other); }
  JobGraph& operator=(JobGraph&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  /// Adds an operator and returns its id.
  int AddOperator(OperatorSpec spec);

  /// Adds a directed edge from operator `from` to operator `to`.
  /// Returns InvalidArgument for out-of-range ids, self loops, or duplicates.
  Status AddEdge(int from, int to);

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  int num_operators() const { return static_cast<int>(operators_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const OperatorSpec& op(int id) const { return operators_[id]; }
  OperatorSpec& mutable_op(int id) {
    // The caller may change the operator type through the returned
    // reference, so pessimistically drop the memoized canonical hash.
    canonical_hash_.store(0, std::memory_order_relaxed);
    return operators_[id];
  }
  const std::vector<OperatorSpec>& operators() const { return operators_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// Operator ids with an edge into `id` (its upstream operators).
  const std::vector<int>& upstream(int id) const;
  /// Operator ids that `id` feeds (its downstream operators).
  const std::vector<int>& downstream(int id) const;

  /// Ids of source operators (in-degree 0). In a valid graph these are
  /// exactly the kSource operators.
  std::vector<int> SourceIds() const;

  /// Ids of first-level downstream operators: non-sources fed directly by at
  /// least one source.
  std::vector<int> FirstLevelDownstream() const;

  /// Checks structure: acyclic, connected enough to execute (every
  /// non-source has an upstream; sources have none and are kSource).
  Status Validate() const;

  /// Topological order of operator ids; FailedPrecondition if cyclic.
  Result<std::vector<int>> TopologicalOrder() const;

  /// Canonical Weisfeiler-Leman-style structural hash: invariant under
  /// operator relabeling/reordering (isomorphic graphs — same operator
  /// types, same wiring — hash equal regardless of insertion order).
  /// Depends only on operator types and edge structure, i.e. exactly the
  /// signals the GED cost model sees, so it is a sound memoization key for
  /// GED computations (up to the usual WL blind spots, which do not occur
  /// for the labeled DAGs in this repo).
  ///
  /// Memoized on the immutable-after-build graph: the first call pays the
  /// WL refinement, later calls return the cached value. Unlike the
  /// WarmAdjacency caches this is safe to race — the memo is a single
  /// relaxed atomic and every writer stores the same value — so no warm-up
  /// step is needed before sharing a graph across threads. Mutation
  /// (AddOperator/AddEdge/mutable_op) invalidates the memo.
  uint64_t CanonicalHash() const;

  /// One full WL color-refinement pass: the per-node final colors that
  /// CanonicalHash() folds into the graph hash. Node v's color captures
  /// its operator type plus the types/wiring of everything within
  /// min(n, 16) hops, separating in- from out-neighborhoods. Shared by
  /// CanonicalHash() and the KB signature index (index/wl_signature.h).
  /// Pure function of the graph — no lazy caches touched, safe to call
  /// concurrently.
  std::vector<uint64_t> WlColors() const;

  /// True if the graph contains a directed cycle.
  bool HasCycle() const;

  /// Forces the lazy adjacency caches to be built now. The first call to
  /// upstream()/downstream() mutates the mutable cache members, so a graph
  /// shared read-only across threads (e.g. a knowledge-base snapshot) must
  /// be warmed once before publication; afterwards every access is a pure
  /// read. Copies of a warmed graph are themselves warm.
  void WarmAdjacency() const {
    if (adjacency_dirty_) RebuildAdjacency();
  }

 private:
  void RebuildAdjacency() const;
  void CopyFrom(const JobGraph& other);
  void MoveFrom(JobGraph& other);

  std::string name_;
  std::vector<OperatorSpec> operators_;
  std::vector<std::pair<int, int>> edges_;

  // Lazily rebuilt adjacency caches.
  mutable bool adjacency_dirty_ = true;
  mutable std::vector<std::vector<int>> upstream_;
  mutable std::vector<std::vector<int>> downstream_;

  // Memoized CanonicalHash(); 0 means "not computed yet". A genuine hash of
  // 0 is never cached (it just recomputes), which keeps the sentinel sound.
  // Relaxed is enough: all writers store the same pure-function value.
  mutable std::atomic<uint64_t> canonical_hash_{0};
};

}  // namespace streamtune
