#include "dataflow/job_graph.h"

#include <algorithm>
#include <queue>

namespace streamtune {

int JobGraph::AddOperator(OperatorSpec spec) {
  operators_.push_back(std::move(spec));
  adjacency_dirty_ = true;
  return static_cast<int>(operators_.size()) - 1;
}

Status JobGraph::AddEdge(int from, int to) {
  int n = num_operators();
  if (from < 0 || from >= n || to < 0 || to >= n) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) return Status::InvalidArgument("self loop");
  if (std::find(edges_.begin(), edges_.end(), std::make_pair(from, to)) !=
      edges_.end()) {
    return Status::InvalidArgument("duplicate edge");
  }
  edges_.emplace_back(from, to);
  adjacency_dirty_ = true;
  return Status::OK();
}

void JobGraph::RebuildAdjacency() const {
  upstream_.assign(operators_.size(), {});
  downstream_.assign(operators_.size(), {});
  for (const auto& [from, to] : edges_) {
    downstream_[from].push_back(to);
    upstream_[to].push_back(from);
  }
  adjacency_dirty_ = false;
}

const std::vector<int>& JobGraph::upstream(int id) const {
  if (adjacency_dirty_) RebuildAdjacency();
  return upstream_[id];
}

const std::vector<int>& JobGraph::downstream(int id) const {
  if (adjacency_dirty_) RebuildAdjacency();
  return downstream_[id];
}

std::vector<int> JobGraph::SourceIds() const {
  std::vector<int> ids;
  for (int i = 0; i < num_operators(); ++i) {
    if (upstream(i).empty()) ids.push_back(i);
  }
  return ids;
}

std::vector<int> JobGraph::FirstLevelDownstream() const {
  std::vector<bool> mark(operators_.size(), false);
  for (int s : SourceIds()) {
    for (int d : downstream(s)) mark[d] = true;
  }
  std::vector<int> ids;
  for (int i = 0; i < num_operators(); ++i) {
    if (mark[i] && !upstream(i).empty()) ids.push_back(i);
  }
  return ids;
}

bool JobGraph::HasCycle() const {
  std::vector<int> indeg(operators_.size(), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++indeg[to];
  }
  std::queue<int> q;
  for (int i = 0; i < num_operators(); ++i) {
    if (indeg[i] == 0) q.push(i);
  }
  int seen = 0;
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    ++seen;
    for (int v : downstream(u)) {
      if (--indeg[v] == 0) q.push(v);
    }
  }
  return seen != num_operators();
}

Status JobGraph::Validate() const {
  if (operators_.empty()) return Status::InvalidArgument("empty graph");
  if (HasCycle()) return Status::FailedPrecondition("graph has a cycle");
  for (int i = 0; i < num_operators(); ++i) {
    const OperatorSpec& spec = operators_[i];
    bool no_upstream = upstream(i).empty();
    if (spec.is_source() && !no_upstream) {
      return Status::FailedPrecondition("source operator '" + spec.name +
                                        "' has upstream edges");
    }
    if (!spec.is_source() && no_upstream) {
      return Status::FailedPrecondition("non-source operator '" + spec.name +
                                        "' has no upstream edges");
    }
    if (spec.is_source() && spec.source_rate < 0) {
      return Status::InvalidArgument("negative source rate on '" + spec.name +
                                     "'");
    }
    if (!spec.is_source() && spec.source_rate != 0.0) {
      return Status::InvalidArgument("non-source operator '" + spec.name +
                                     "' has a source rate");
    }
  }
  return Status::OK();
}

Result<std::vector<int>> JobGraph::TopologicalOrder() const {
  std::vector<int> indeg(operators_.size(), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++indeg[to];
  }
  // Min-id tie-breaking keeps the order deterministic.
  std::priority_queue<int, std::vector<int>, std::greater<int>> q;
  for (int i = 0; i < num_operators(); ++i) {
    if (indeg[i] == 0) q.push(i);
  }
  std::vector<int> order;
  order.reserve(operators_.size());
  while (!q.empty()) {
    int u = q.top();
    q.pop();
    order.push_back(u);
    for (int v : downstream(u)) {
      if (--indeg[v] == 0) q.push(v);
    }
  }
  if (order.size() != operators_.size()) {
    return Status::FailedPrecondition("graph has a cycle");
  }
  return order;
}

}  // namespace streamtune
