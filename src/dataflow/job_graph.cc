#include "dataflow/job_graph.h"

#include <algorithm>
#include <queue>

namespace streamtune {

void JobGraph::CopyFrom(const JobGraph& other) {
  name_ = other.name_;
  operators_ = other.operators_;
  edges_ = other.edges_;
  adjacency_dirty_ = other.adjacency_dirty_;
  upstream_ = other.upstream_;
  downstream_ = other.downstream_;
  canonical_hash_.store(other.canonical_hash_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

void JobGraph::MoveFrom(JobGraph& other) {
  name_ = std::move(other.name_);
  operators_ = std::move(other.operators_);
  edges_ = std::move(other.edges_);
  adjacency_dirty_ = other.adjacency_dirty_;
  upstream_ = std::move(other.upstream_);
  downstream_ = std::move(other.downstream_);
  canonical_hash_.store(other.canonical_hash_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

int JobGraph::AddOperator(OperatorSpec spec) {
  operators_.push_back(std::move(spec));
  adjacency_dirty_ = true;
  canonical_hash_.store(0, std::memory_order_relaxed);
  return static_cast<int>(operators_.size()) - 1;
}

Status JobGraph::AddEdge(int from, int to) {
  int n = num_operators();
  if (from < 0 || from >= n || to < 0 || to >= n) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) return Status::InvalidArgument("self loop");
  if (std::find(edges_.begin(), edges_.end(), std::make_pair(from, to)) !=
      edges_.end()) {
    return Status::InvalidArgument("duplicate edge");
  }
  edges_.emplace_back(from, to);
  adjacency_dirty_ = true;
  canonical_hash_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

void JobGraph::RebuildAdjacency() const {
  upstream_.assign(operators_.size(), {});
  downstream_.assign(operators_.size(), {});
  for (const auto& [from, to] : edges_) {
    downstream_[from].push_back(to);
    upstream_[to].push_back(from);
  }
  adjacency_dirty_ = false;
}

const std::vector<int>& JobGraph::upstream(int id) const {
  if (adjacency_dirty_) RebuildAdjacency();
  return upstream_[id];
}

const std::vector<int>& JobGraph::downstream(int id) const {
  if (adjacency_dirty_) RebuildAdjacency();
  return downstream_[id];
}

std::vector<int> JobGraph::SourceIds() const {
  std::vector<int> ids;
  for (int i = 0; i < num_operators(); ++i) {
    if (upstream(i).empty()) ids.push_back(i);
  }
  return ids;
}

std::vector<int> JobGraph::FirstLevelDownstream() const {
  std::vector<bool> mark(operators_.size(), false);
  for (int s : SourceIds()) {
    for (int d : downstream(s)) mark[d] = true;
  }
  std::vector<int> ids;
  for (int i = 0; i < num_operators(); ++i) {
    if (mark[i] && !upstream(i).empty()) ids.push_back(i);
  }
  return ids;
}

bool JobGraph::HasCycle() const {
  std::vector<int> indeg(operators_.size(), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++indeg[to];
  }
  std::queue<int> q;
  for (int i = 0; i < num_operators(); ++i) {
    if (indeg[i] == 0) q.push(i);
  }
  int seen = 0;
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    ++seen;
    for (int v : downstream(u)) {
      if (--indeg[v] == 0) q.push(v);
    }
  }
  return seen != num_operators();
}

Status JobGraph::Validate() const {
  if (operators_.empty()) return Status::InvalidArgument("empty graph");
  if (HasCycle()) return Status::FailedPrecondition("graph has a cycle");
  for (int i = 0; i < num_operators(); ++i) {
    const OperatorSpec& spec = operators_[i];
    bool no_upstream = upstream(i).empty();
    if (spec.is_source() && !no_upstream) {
      return Status::FailedPrecondition("source operator '" + spec.name +
                                        "' has upstream edges");
    }
    if (!spec.is_source() && no_upstream) {
      return Status::FailedPrecondition("non-source operator '" + spec.name +
                                        "' has no upstream edges");
    }
    if (spec.is_source() && spec.source_rate < 0) {
      return Status::InvalidArgument("negative source rate on '" + spec.name +
                                     "'");
    }
    if (!spec.is_source() && spec.source_rate != 0.0) {
      return Status::InvalidArgument("non-source operator '" + spec.name +
                                     "' has a source rate");
    }
  }
  return Status::OK();
}

namespace {

// splitmix64 finalizer: cheap, well-mixed 64-bit hash step.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Combine(uint64_t h, uint64_t v) {
  return Mix(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

}  // namespace

std::vector<uint64_t> JobGraph::WlColors() const {
  const int n = num_operators();
  // Local adjacency (the lazy member caches are not thread-safe).
  std::vector<std::vector<int>> up(n), down(n);
  for (const auto& [from, to] : edges_) {
    down[from].push_back(to);
    up[to].push_back(from);
  }

  // WL color refinement seeded by operator type; in- and out-neighborhoods
  // are folded separately so edge direction matters (the GED cost model
  // charges for direction modifications).
  std::vector<uint64_t> color(n), next(n);
  for (int v = 0; v < n; ++v) {
    color[v] = Mix(0x5761u ^ static_cast<uint64_t>(op(v).type));
  }
  const int rounds = std::min(n, 16);  // >= diameter of every DAG we build
  std::vector<uint64_t> bucket;
  for (int round = 0; round < rounds; ++round) {
    for (int v = 0; v < n; ++v) {
      uint64_t h = Combine(color[v], 0xA11CE5ED);
      // Sort neighbor colors: multiset fold, independent of edge order.
      bucket.assign(up[v].size(), 0);
      for (size_t i = 0; i < up[v].size(); ++i) bucket[i] = color[up[v][i]];
      std::sort(bucket.begin(), bucket.end());
      for (uint64_t c : bucket) h = Combine(h, c ^ 0x0B5E55EDu);
      bucket.assign(down[v].size(), 0);
      for (size_t i = 0; i < down[v].size(); ++i) {
        bucket[i] = color[down[v][i]];
      }
      std::sort(bucket.begin(), bucket.end());
      for (uint64_t c : bucket) h = Combine(h, c ^ 0xD05E5EEDu);
      next[v] = h;
    }
    color.swap(next);
  }
  return color;
}

uint64_t JobGraph::CanonicalHash() const {
  uint64_t cached = canonical_hash_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;

  // Graph hash: multiset of final WL colors plus global counts.
  std::vector<uint64_t> color = WlColors();
  std::sort(color.begin(), color.end());
  uint64_t h = Combine(Mix(static_cast<uint64_t>(num_operators())),
                       Mix(static_cast<uint64_t>(num_edges())));
  for (uint64_t c : color) h = Combine(h, c);
  // h == 0 collides with the "unset" sentinel; don't cache it (recompute
  // instead — correctness is unaffected, only memoization).
  if (h != 0) canonical_hash_.store(h, std::memory_order_relaxed);
  return h;
}

Result<std::vector<int>> JobGraph::TopologicalOrder() const {
  std::vector<int> indeg(operators_.size(), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++indeg[to];
  }
  // Min-id tie-breaking keeps the order deterministic.
  std::priority_queue<int, std::vector<int>, std::greater<int>> q;
  for (int i = 0; i < num_operators(); ++i) {
    if (indeg[i] == 0) q.push(i);
  }
  std::vector<int> order;
  order.reserve(operators_.size());
  while (!q.empty()) {
    int u = q.top();
    q.pop();
    order.push_back(u);
    for (int v : downstream(u)) {
      if (--indeg[v] == 0) q.push(v);
    }
  }
  if (order.size() != operators_.size()) {
    return Status::FailedPrecondition("graph has a cycle");
  }
  return order;
}

}  // namespace streamtune
