#include "dataflow/feature_encoder.h"

#include <cmath>

#include "common/math_util.h"

namespace streamtune {

namespace {

void OneHot(std::vector<double>* out, int value, int cardinality) {
  for (int i = 0; i < cardinality; ++i) {
    out->push_back(i == value ? 1.0 : 0.0);
  }
}

}  // namespace

std::vector<double> FeatureEncoder::Encode(const OperatorSpec& spec) const {
  std::vector<double> f;
  f.reserve(FeatureDim());
  OneHot(&f, static_cast<int>(spec.type), kNumOperatorTypes);
  OneHot(&f, static_cast<int>(spec.window_type), kNumWindowTypes);
  OneHot(&f, static_cast<int>(spec.window_policy), kNumWindowPolicies);
  OneHot(&f, static_cast<int>(spec.join_key_class), kNumKeyClasses);
  OneHot(&f, static_cast<int>(spec.aggregate_class), kNumKeyClasses);
  OneHot(&f, static_cast<int>(spec.aggregate_key_class), kNumKeyClasses);
  OneHot(&f, static_cast<int>(spec.aggregate_function),
         kNumAggregateFunctions);
  OneHot(&f, static_cast<int>(spec.tuple_data_type), kNumKeyClasses);

  f.push_back(MinMaxScale(spec.window_length, 0.0, bounds_.max_window_length));
  f.push_back(
      MinMaxScale(spec.sliding_length, 0.0, bounds_.max_sliding_length));
  f.push_back(MinMaxScale(spec.tuple_width_in, 0.0, bounds_.max_tuple_width));
  f.push_back(MinMaxScale(spec.tuple_width_out, 0.0, bounds_.max_tuple_width));
  // Multi-resolution source-rate encoding: a log-axis min-max value plus
  // soft threshold indicators at 10^3..10^7 rec/s, so rate differences
  // survive several rounds of message passing.
  f.push_back(MinMaxScale(std::log1p(spec.source_rate), 0.0,
                          std::log1p(bounds_.max_source_rate)));
  double log10_rate = std::log10(1.0 + spec.source_rate);
  for (int k = 3; k <= 7; ++k) {
    f.push_back(Sigmoid(2.0 * (log10_rate - k)));
  }
  return f;
}

std::vector<std::vector<double>> FeatureEncoder::EncodeGraph(
    const JobGraph& graph) const {
  std::vector<std::vector<double>> out;
  out.reserve(graph.num_operators());
  for (const OperatorSpec& spec : graph.operators()) {
    out.push_back(Encode(spec));
  }
  return out;
}

std::vector<std::vector<double>> FeatureEncoder::EncodeGraphWithRates(
    const JobGraph& graph, const std::vector<double>& rates) const {
  std::vector<std::vector<double>> out;
  out.reserve(graph.num_operators());
  for (int i = 0; i < graph.num_operators(); ++i) {
    OperatorSpec spec = graph.op(i);
    spec.source_rate = rates[i];
    out.push_back(Encode(spec));
  }
  return out;
}

void FeatureEncoder::EncodeGraphWithRatesInto(
    const JobGraph& graph, const std::vector<double>& rates,
    double* dst) const {
  // Mirrors Encode() value-for-value; any change there must land here too
  // (the batched-vs-sequential bit-identity tests catch a divergence).
  double* p = dst;
  auto one_hot = [&p](int value, int cardinality) {
    for (int i = 0; i < cardinality; ++i) *p++ = (i == value) ? 1.0 : 0.0;
  };
  for (int i = 0; i < graph.num_operators(); ++i) {
    const OperatorSpec& spec = graph.op(i);
    one_hot(static_cast<int>(spec.type), kNumOperatorTypes);
    one_hot(static_cast<int>(spec.window_type), kNumWindowTypes);
    one_hot(static_cast<int>(spec.window_policy), kNumWindowPolicies);
    one_hot(static_cast<int>(spec.join_key_class), kNumKeyClasses);
    one_hot(static_cast<int>(spec.aggregate_class), kNumKeyClasses);
    one_hot(static_cast<int>(spec.aggregate_key_class), kNumKeyClasses);
    one_hot(static_cast<int>(spec.aggregate_function), kNumAggregateFunctions);
    one_hot(static_cast<int>(spec.tuple_data_type), kNumKeyClasses);

    *p++ = MinMaxScale(spec.window_length, 0.0, bounds_.max_window_length);
    *p++ = MinMaxScale(spec.sliding_length, 0.0, bounds_.max_sliding_length);
    *p++ = MinMaxScale(spec.tuple_width_in, 0.0, bounds_.max_tuple_width);
    *p++ = MinMaxScale(spec.tuple_width_out, 0.0, bounds_.max_tuple_width);
    const double rate = rates[i];
    *p++ = MinMaxScale(std::log1p(rate), 0.0,
                       std::log1p(bounds_.max_source_rate));
    const double log10_rate = std::log10(1.0 + rate);
    for (int k = 3; k <= 7; ++k) {
      *p++ = Sigmoid(2.0 * (log10_rate - k));
    }
  }
}

double FeatureEncoder::ScaleParallelism(int parallelism) const {
  return MinMaxScale(static_cast<double>(parallelism), 0.0,
                     static_cast<double>(kMaxParallelism));
}

}  // namespace streamtune
