// Per-job fault containment for the multi-job control plane.
//
// One JobTuningSession wraps one job's resumable tuning process (a
// StreamTuneTuner::Session in full mode, a Ds2Session when the job was shed
// by admission control) behind a fault-containment boundary:
//
//   - a three-state circuit breaker (closed / open / half-open) around each
//     decision, driven by the job's OWN virtual clock, so a job whose
//     engine keeps failing stops burning scheduler slots while it cools;
//   - per-decision deadline budgets in virtual minutes: a decision that
//     burns more than the budget (fault retries charge the virtual clock)
//     earns a strike, and enough strikes quarantine the job;
//   - a watchdog that quarantines the job outright once the breaker has
//     tripped past its retry budget.
//
// Determinism contract: every input to this state machine — step results,
// virtual timestamps, failure counts — derives from the job's own engine
// and fault plan. Nothing here observes the fleet, the wall clock, or
// other jobs, so a job's full decision trajectory (captured in
// trajectory_hash()) is a pure function of (job graph, engine seed, pinned
// KB snapshot, fault plan).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "baselines/ds2.h"
#include "common/circuit_breaker.h"
#include "core/streamtune_tuner.h"

namespace streamtune::controlplane {

/// Which tuning policy the job runs (the degradation ladder's top rungs).
enum class JobMode {
  kFull,  ///< StreamTune fine-tuning (model fit + GNN inference per step)
  kShed,  ///< DS2 rate rule (shed by admission control or load shedding)
};

/// Lifecycle of one job inside the control plane.
enum class JobState {
  kRunning,      ///< has decisions left to make
  kConverged,    ///< tuning stopped normally; outcome available
  kQuarantined,  ///< removed by the watchdog (breaker/deadline budget)
  kFailed,       ///< finalization failed; terminal
};

const char* JobModeName(JobMode mode);
const char* JobStateName(JobState state);

/// Fault-containment knobs, all in the job's own virtual minutes.
struct JobFaultOptions {
  /// Virtual-minute budget for one decision (measure + deploy + retries).
  double decision_deadline_minutes = 240;
  /// Deadline overruns tolerated before quarantine.
  int max_deadline_strikes = 3;
  /// Breaker around the decision path.
  CircuitBreakerOptions breaker;
  /// Breaker trips tolerated before the watchdog quarantines the job.
  int max_breaker_trips = 2;
};

/// One job's tuning process plus its containment state. Not thread-safe:
/// the scheduler runs at most one RunDecision per job at a time.
class JobTuningSession {
 public:
  /// Full mode when `tuner` is non-null, shed (DS2) mode otherwise. The
  /// engine must already be deployed and is caller-owned; it must outlive
  /// the session.
  JobTuningSession(std::int64_t id, sim::StreamEngine* engine,
                   std::unique_ptr<core::StreamTuneTuner> tuner,
                   const baselines::Ds2Options& ds2,
                   const JobFaultOptions& fault);
  ~JobTuningSession();

  JobTuningSession(const JobTuningSession&) = delete;
  JobTuningSession& operator=(const JobTuningSession&) = delete;

  /// Runs at most one tuning decision: breaker gate, one session step,
  /// deadline accounting, trajectory fold, finalization on stop. Failures
  /// never propagate — they feed the breaker and the watchdog. Returns the
  /// state after the attempt. A breaker-open skip leaves the job kRunning
  /// and makes no decision.
  JobState RunDecision();

  /// Forces the job out of the schedule (fleet-level watchdog).
  void Quarantine() { state_ = JobState::kQuarantined; }

  std::int64_t id() const { return id_; }
  const std::string& name() const { return engine_->graph().name(); }
  JobMode mode() const { return mode_; }
  JobState state() const { return state_; }
  sim::StreamEngine* engine() { return engine_; }
  core::StreamTuneTuner* tuner() { return tuner_.get(); }

  /// Decisions actually executed (breaker skips excluded).
  int decisions() const { return decisions_; }
  /// Rounds the breaker refused to admit a decision.
  int breaker_skips() const { return breaker_skips_; }
  int deadline_strikes() const { return deadline_strikes_; }
  const CircuitBreaker& breaker() const { return breaker_; }

  /// FNV-1a fold of every decision: (index, deployed parallelism, virtual
  /// clock). Two runs made the same decisions iff the hashes match.
  std::uint64_t trajectory_hash() const { return trajectory_hash_; }

  /// The tuning outcome; non-null once kConverged.
  const baselines::TuningOutcome* outcome() const {
    return has_outcome_ ? &outcome_ : nullptr;
  }

 private:
  /// Lazily creates the underlying session and advances it one step.
  Result<bool> StepOnce();
  Result<baselines::TuningOutcome> FinishSession();
  void FoldTrajectory();

  const std::int64_t id_;
  sim::StreamEngine* engine_;
  std::unique_ptr<core::StreamTuneTuner> tuner_;
  const baselines::Ds2Options ds2_;
  const JobFaultOptions fault_;
  const JobMode mode_;

  std::unique_ptr<core::StreamTuneTuner::Session> full_;
  std::unique_ptr<baselines::Ds2Session> shed_;

  JobState state_ = JobState::kRunning;
  CircuitBreaker breaker_;
  int decisions_ = 0;
  int breaker_skips_ = 0;
  int deadline_strikes_ = 0;
  std::uint64_t trajectory_hash_ = 14695981039346656037ull;  // FNV offset
  baselines::TuningOutcome outcome_;
  bool has_outcome_ = false;
};

}  // namespace streamtune::controlplane
