// Event-driven multi-job tuning control plane.
//
// One ControlPlane runs 1k-100k concurrent tuning processes in a single OS
// process against one KbService. The pieces (DESIGN.md section 12):
//
//   - every job is a JobTuningSession (resumable tuning process behind a
//     circuit breaker and deadline budgets), paced by its OWN virtual
//     clock: the next decision is scheduled at the job's virtual-minute
//     position plus a fixed period, merged fleet-wide by a sharded
//     TimerWheel. Faulty jobs burn virtual time on retries and naturally
//     fall behind the healthy fleet;
//   - admission control: a TokenBucket rations the expensive StreamTune
//     path; overflow jobs are shed to the DS2 rate rule in AddJob order, so
//     the shed set is a pure function of the fleet composition;
//   - backpressure: converged sessions enqueue KB admissions into a
//     bounded queue drained in batches after each round; a WatermarkGate
//     over (queue depth + KbService writer queue) slows every job's
//     decision pacing while engaged. Backpressure changes only WHEN
//     decisions run, never what they decide;
//   - fault containment: per-job breakers and deadline strikes quarantine
//     repeat offenders; a fleet watchdog force-quarantines whatever is
//     still running at the round cap, so Run() always terminates;
//   - determinism: every session reads the KB snapshot pinned at
//     construction, decisions execute via the deterministic
//     ThreadPool::ParallelFor, and outcomes are folded serially in job-id
//     order. A job's trajectory hash is a pure function of (graph, engine
//     seed, pinned snapshot, fault plan) — under a partial chaos storm the
//     un-faulted jobs are bit-identical to a chaos-free run.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer_wheel.h"
#include "controlplane/admission.h"
#include "controlplane/tuning_session.h"
#include "kb/kb_service.h"

namespace streamtune::controlplane {

/// Scheduler and robustness knobs.
struct ControlPlaneOptions {
  /// Worker threads for each decision wave (<= 0: hardware concurrency).
  int num_threads = 0;

  /// Timer-wheel geometry (fleet-merged virtual minutes).
  double tick_minutes = 1.0;
  int timer_shards = 8;
  int wheel_ticks = 1024;

  /// Admission control for the full StreamTune path; overflow is shed to
  /// DS2. Capacity is the concurrent full-session budget.
  TokenBucketOptions full_admission;

  /// Virtual minutes between one job's decisions.
  double decision_period_minutes = 30.0;
  /// Deterministic start stagger: job `i` starts at
  /// (i % stagger_slots) * tick_minutes.
  int stagger_slots = 16;
  /// Extra pacing added to every reschedule while backpressure is engaged.
  double backpressure_penalty_minutes = 60.0;

  /// Bounded KB admission queue (drop-oldest beyond capacity).
  std::size_t kb_queue_capacity = 4096;
  /// Admissions drained per scheduler round.
  int kb_admit_batch = 8;
  /// Backpressure watermarks over queue depth + KB writer queue depth.
  WatermarkOptions backpressure;

  /// Per-job fault containment.
  JobFaultOptions fault;
  /// Policy knobs handed to each session.
  baselines::Ds2Options ds2;
  core::StreamTuneOptions streamtune;

  /// Fleet watchdog: rounds before everything still running is
  /// force-quarantined (Run() always terminates).
  int max_rounds = 100000;

  /// Optional wall-clock source (seconds, monotone) for throughput and
  /// latency reporting. Null keeps the control plane free of wall time:
  /// timing fields in the report stay zero. Bench binaries inject one.
  std::function<double()> wall_clock;
};

/// Per-job summary in the fleet report.
struct JobReport {
  std::int64_t id = 0;
  JobMode mode = JobMode::kShed;
  JobState state = JobState::kRunning;
  int decisions = 0;
  int breaker_trips = 0;
  int deadline_strikes = 0;
  std::uint64_t trajectory_hash = 0;
  int total_parallelism = 0;
  /// Converged without severe backpressure.
  bool converged_clean = false;
};

/// What one Run() did.
struct ControlPlaneReport {
  int jobs = 0;
  int full_jobs = 0;
  int shed_jobs = 0;
  int converged = 0;
  int converged_full = 0;
  int converged_shed = 0;
  int converged_clean = 0;
  int quarantined = 0;
  int failed = 0;
  /// Jobs force-quarantined by the fleet watchdog at the round cap.
  int watchdog_terminations = 0;

  long long decisions = 0;
  int rounds = 0;
  std::size_t max_round_batch = 0;

  /// Zero unless options.wall_clock was provided.
  double wall_seconds = 0;
  double decisions_per_sec = 0;
  double p50_decision_ms = 0;
  double p99_decision_ms = 0;

  int backpressure_engagements = 0;
  int backpressure_releases = 0;
  long long kb_admitted = 0;
  long long kb_dropped = 0;
  long long kb_admit_failures = 0;
  /// Records enqueued while the gate was engaged (admitted later).
  long long kb_deferred = 0;

  std::vector<JobReport> job_reports;  ///< ascending job id
};

/// The multi-job scheduler. Not thread-safe: one thread drives AddJob/Run;
/// Run() internally fans decision waves out over its own pool.
class ControlPlane {
 public:
  /// Pins `kb`'s current snapshot: every session this plane starts reads
  /// that snapshot (and only Run()'s admissions mutate the service), so
  /// concurrent KB churn cannot perturb any job's trajectory. `kb` must
  /// outlive the plane; it may be null, which disables warm starts and KB
  /// admission (all jobs are shed).
  ControlPlane(kb::KbService* kb, ControlPlaneOptions options);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Registers a deployed job. Mode is assigned here by admission control
  /// (in call order). Fails on duplicate ids or an undeployed engine. The
  /// engine must outlive the plane.
  Status AddJob(std::int64_t id, sim::StreamEngine* engine);

  /// Runs every job to a terminal state (or the round cap) and reports.
  /// Idempotent per plane: a second call finds no runnable jobs.
  Result<ControlPlaneReport> Run();

  /// The session for `id`; nullptr when unknown. Valid until destruction.
  const JobTuningSession* job(std::int64_t id) const;

  const ControlPlaneOptions& options() const { return options_; }

 private:
  void EnqueueAdmission(JobTuningSession* job);
  void DrainAdmissions();
  std::size_t BackpressureDepth() const;

  kb::KbService* kb_;
  std::shared_ptr<const kb::KbSnapshot> snapshot_;
  ControlPlaneOptions options_;
  ThreadPool pool_;
  TimerWheel wheel_;
  TokenBucket full_bucket_;
  WatermarkGate gate_;

  std::map<std::int64_t, std::unique_ptr<JobTuningSession>> jobs_;
  std::deque<kb::AdmissionRecord> admit_queue_;

  long long kb_admitted_ = 0;
  long long kb_dropped_ = 0;
  long long kb_admit_failures_ = 0;
  long long kb_deferred_ = 0;
  std::vector<double> decision_latencies_ms_;
};

}  // namespace streamtune::controlplane
