#include "controlplane/admission.h"

#include <algorithm>

namespace streamtune::controlplane {

TokenBucket::TokenBucket(TokenBucketOptions options)
    : options_(options),
      tokens_(options.initial < 0 ? options.capacity
                                  : std::min(options.initial,
                                             options.capacity)) {}

void TokenBucket::Refill(double now_minutes) {
  if (now_minutes <= last_refill_minutes_) return;
  tokens_ = std::min(options_.capacity,
                     tokens_ + options_.refill_per_minute *
                                   (now_minutes - last_refill_minutes_));
  last_refill_minutes_ = now_minutes;
}

bool TokenBucket::TryAcquire(double now_minutes, double tokens) {
  Refill(now_minutes);
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::Available(double now_minutes) {
  Refill(now_minutes);
  return tokens_;
}

WatermarkGate::WatermarkGate(WatermarkOptions options) : options_(options) {
  // A degenerate config (low >= high) still behaves sanely: release
  // strictly below engage.
  if (options_.low >= options_.high && options_.high > 0) {
    options_.low = options_.high - 1;
  }
}

bool WatermarkGate::Update(std::size_t depth) {
  if (!engaged_ && depth >= options_.high) {
    engaged_ = true;
    ++engage_count_;
  } else if (engaged_ && depth <= options_.low) {
    engaged_ = false;
    ++release_count_;
  }
  return engaged_;
}

}  // namespace streamtune::controlplane
