#include "controlplane/control_plane.h"

#include <algorithm>

#include "core/history.h"
#include "core/labeling.h"

namespace streamtune::controlplane {

ControlPlane::ControlPlane(kb::KbService* kb, ControlPlaneOptions options)
    : kb_(kb),
      snapshot_(kb ? kb->Snapshot() : nullptr),
      options_(std::move(options)),
      pool_(options_.num_threads),
      wheel_(options_.tick_minutes, options_.timer_shards,
             options_.wheel_ticks),
      full_bucket_(options_.full_admission),
      gate_(options_.backpressure) {}

ControlPlane::~ControlPlane() = default;

Status ControlPlane::AddJob(std::int64_t id, sim::StreamEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("AddJob: null engine");
  }
  if (jobs_.count(id) != 0) {
    return Status::InvalidArgument("AddJob: duplicate job id " +
                                   std::to_string(id));
  }
  if (engine->parallelism().empty() || engine->deployment_count() == 0) {
    return Status::FailedPrecondition(
        "AddJob: engine must be deployed before registration (job " +
        std::to_string(id) + ")");
  }

  // Admission control, in AddJob order: which jobs ride the expensive
  // StreamTune path depends only on the fleet composition, never on
  // faults, so a chaos storm cannot move the shed boundary.
  std::unique_ptr<core::StreamTuneTuner> tuner;
  if (snapshot_ != nullptr &&
      full_bucket_.TryAcquire(wheel_.now_minutes())) {
    tuner = snapshot_->NewTuner(engine->graph().name(), options_.streamtune);
  }
  auto session = std::make_unique<JobTuningSession>(
      id, engine, std::move(tuner), options_.ds2, options_.fault);
  jobs_.emplace(id, std::move(session));

  // Deterministic start stagger spreads the first wave across ticks.
  const int slots = std::max(1, options_.stagger_slots);
  wheel_.Schedule(id, static_cast<double>(id % slots) * options_.tick_minutes);
  return Status::OK();
}

const JobTuningSession* ControlPlane::job(std::int64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::size_t ControlPlane::BackpressureDepth() const {
  std::size_t depth = admit_queue_.size();
  if (kb_ != nullptr) {
    depth += static_cast<std::size_t>(
        std::max(0ll, kb_->Stats().writer_queue_depth()));
  }
  return depth;
}

void ControlPlane::EnqueueAdmission(JobTuningSession* job) {
  sim::StreamEngine* engine = job->engine();
  kb::AdmissionRecord rec;
  rec.record.graph = engine->graph();
  rec.record.parallelism = engine->parallelism();
  rec.record.source_rates = engine->current_source_rates();
  // One labeling measurement of the final deployment. It runs after the
  // trajectory is final, so its clock cost never perturbs the decision
  // sequence; under faults it can fail, which skips the admission.
  Result<sim::JobMetrics> metrics = engine->Measure();
  if (!metrics.ok()) {
    ++kb_admit_failures_;
    return;
  }
  rec.record.labels = core::LabelBottlenecks(engine->graph(), *metrics);
  rec.record.job_cost = core::JobCost(*metrics);
  rec.record.backpressure = metrics->job_backpressure;
  rec.feedback = job->tuner()->FeedbackFor(engine->graph().name());

  if (gate_.engaged()) ++kb_deferred_;
  admit_queue_.push_back(std::move(rec));
  while (admit_queue_.size() > options_.kb_queue_capacity) {
    admit_queue_.pop_front();  // drop-oldest: bounded memory under storms
    ++kb_dropped_;
  }
}

void ControlPlane::DrainAdmissions() {
  if (kb_ == nullptr) {
    kb_dropped_ += static_cast<long long>(admit_queue_.size());
    admit_queue_.clear();
    return;
  }
  for (int i = 0; i < options_.kb_admit_batch && !admit_queue_.empty(); ++i) {
    kb::AdmissionRecord rec = std::move(admit_queue_.front());
    admit_queue_.pop_front();
    if (kb_->Admit(rec).ok()) {
      ++kb_admitted_;
    } else {
      ++kb_admit_failures_;
    }
  }
}

Result<ControlPlaneReport> ControlPlane::Run() {
  ControlPlaneReport report;
  report.jobs = static_cast<int>(jobs_.size());
  const bool timed = static_cast<bool>(options_.wall_clock);
  const double t0 = timed ? options_.wall_clock() : 0;

  while (wheel_.size() > 0) {
    if (report.rounds >= options_.max_rounds) {
      // Fleet watchdog: whatever still holds a wheel slot at the cap is
      // force-quarantined; Run() must terminate even if every job wedged.
      for (auto& [id, job] : jobs_) {
        if (job->state() == JobState::kRunning) {
          job->Quarantine();
          ++report.watchdog_terminations;
        }
      }
      break;
    }
    ++report.rounds;

    const std::vector<std::int64_t> due = wheel_.PopDueBatch();
    if (due.empty()) continue;
    report.max_round_batch = std::max(report.max_round_batch, due.size());

    std::vector<JobTuningSession*> wave(due.size(), nullptr);
    for (std::size_t i = 0; i < due.size(); ++i) {
      wave[i] = jobs_.at(due[i]).get();
    }

    // One batched GNN forward per cluster primes the full-mode embedding
    // caches for this wave (bit-identical to each tuner's lazy path).
    std::vector<std::vector<double>> rates(due.size());
    std::vector<core::StreamTuneTuner::PendingJob> pending;
    for (std::size_t i = 0; i < due.size(); ++i) {
      JobTuningSession* job = wave[i];
      if (job->mode() != JobMode::kFull ||
          job->state() != JobState::kRunning ||
          job->breaker().state() == BreakerState::kOpen) {
        continue;
      }
      rates[i] = job->engine()->current_source_rates();
      pending.push_back(core::StreamTuneTuner::PendingJob{
          job->tuner(), &job->engine()->graph(), &rates[i]});
    }
    if (!pending.empty()) core::StreamTuneTuner::BatchedInference(pending);

    // Decision wave: every job touches only its own state, so the wave is
    // embarrassingly parallel; outcomes are folded serially below, in job
    // id order (PopDueBatch returns ids ascending).
    std::vector<double> latency_ms(due.size(), 0);
    pool_.ParallelFor(0, static_cast<std::int64_t>(due.size()),
                      [&](std::int64_t i) {
                        const double s =
                            timed ? options_.wall_clock() : 0;
                        wave[static_cast<std::size_t>(i)]->RunDecision();
                        if (timed) {
                          latency_ms[static_cast<std::size_t>(i)] =
                              (options_.wall_clock() - s) * 1e3;
                        }
                      });

    for (std::size_t i = 0; i < due.size(); ++i) {
      JobTuningSession* job = wave[i];
      if (timed) decision_latencies_ms_.push_back(latency_ms[i]);
      if (job->state() == JobState::kRunning) {
        // Pace by the job's own virtual clock; engaged backpressure only
        // delays the next decision, it never changes its content.
        double next = job->engine()->virtual_minutes() +
                      options_.decision_period_minutes;
        if (gate_.engaged()) next += options_.backpressure_penalty_minutes;
        wheel_.Schedule(job->id(), next);
      } else if (job->state() == JobState::kConverged &&
                 job->mode() == JobMode::kFull && kb_ != nullptr) {
        EnqueueAdmission(job);
      }
    }

    gate_.Update(BackpressureDepth());  // backlog built by this round
    DrainAdmissions();
    gate_.Update(BackpressureDepth());  // release once drained to low
  }

  // Final drain: admissions left queued when the fleet went quiet.
  while (!admit_queue_.empty()) DrainAdmissions();
  gate_.Update(BackpressureDepth());

  if (timed) {
    report.wall_seconds = options_.wall_clock() - t0;
  }
  for (const auto& [id, job] : jobs_) {
    JobReport jr;
    jr.id = id;
    jr.mode = job->mode();
    jr.state = job->state();
    jr.decisions = job->decisions();
    jr.breaker_trips = job->breaker().trip_count();
    jr.deadline_strikes = job->deadline_strikes();
    jr.trajectory_hash = job->trajectory_hash();
    for (int p : job->engine()->parallelism()) jr.total_parallelism += p;
    const baselines::TuningOutcome* out = job->outcome();
    jr.converged_clean = out != nullptr && !out->ended_with_backpressure;
    report.decisions += jr.decisions;
    if (jr.mode == JobMode::kFull) {
      ++report.full_jobs;
    } else {
      ++report.shed_jobs;
    }
    switch (jr.state) {
      case JobState::kConverged:
        ++report.converged;
        if (jr.mode == JobMode::kFull) ++report.converged_full;
        if (jr.mode == JobMode::kShed) ++report.converged_shed;
        if (jr.converged_clean) ++report.converged_clean;
        break;
      case JobState::kQuarantined:
        ++report.quarantined;
        break;
      case JobState::kFailed:
        ++report.failed;
        break;
      case JobState::kRunning:
        break;
    }
    report.job_reports.push_back(jr);
  }
  report.backpressure_engagements = gate_.engage_count();
  report.backpressure_releases = gate_.release_count();
  report.kb_admitted = kb_admitted_;
  report.kb_dropped = kb_dropped_;
  report.kb_admit_failures = kb_admit_failures_;
  report.kb_deferred = kb_deferred_;

  if (timed && report.wall_seconds > 0) {
    report.decisions_per_sec = report.decisions / report.wall_seconds;
  }
  if (!decision_latencies_ms_.empty()) {
    std::vector<double> sorted = decision_latencies_ms_;
    std::sort(sorted.begin(), sorted.end());
    auto quantile = [&](double q) {
      return sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
    };
    report.p50_decision_ms = quantile(0.50);
    report.p99_decision_ms = quantile(0.99);
  }
  return report;
}

}  // namespace streamtune::controlplane
