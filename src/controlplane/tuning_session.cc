#include "controlplane/tuning_session.h"

#include <cstring>

namespace streamtune::controlplane {

namespace {

// FNV-1a over one 64-bit value.
std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t DoubleBits(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

const char* JobModeName(JobMode mode) {
  switch (mode) {
    case JobMode::kFull:
      return "full";
    case JobMode::kShed:
      return "shed";
  }
  return "?";
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kRunning:
      return "running";
    case JobState::kConverged:
      return "converged";
    case JobState::kQuarantined:
      return "quarantined";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

JobTuningSession::JobTuningSession(std::int64_t id, sim::StreamEngine* engine,
                                   std::unique_ptr<core::StreamTuneTuner> tuner,
                                   const baselines::Ds2Options& ds2,
                                   const JobFaultOptions& fault)
    : id_(id),
      engine_(engine),
      tuner_(std::move(tuner)),
      ds2_(ds2),
      fault_(fault),
      mode_(tuner_ ? JobMode::kFull : JobMode::kShed),
      breaker_(fault.breaker) {}

JobTuningSession::~JobTuningSession() = default;

Result<bool> JobTuningSession::StepOnce() {
  if (mode_ == JobMode::kFull) {
    if (full_ == nullptr) {
      // Session creation performs the initial measurement and can fail
      // under faults; a failure feeds the breaker and is retried on the
      // next admitted decision.
      ST_ASSIGN_OR_RETURN(full_, tuner_->NewSession(engine_));
    }
    return full_->Step();
  }
  if (shed_ == nullptr) {
    shed_ = std::make_unique<baselines::Ds2Session>(ds2_, engine_);
  }
  return shed_->Step();
}

Result<baselines::TuningOutcome> JobTuningSession::FinishSession() {
  if (mode_ == JobMode::kFull) return full_->Finish();
  return shed_->Finish();
}

void JobTuningSession::FoldTrajectory() {
  trajectory_hash_ =
      Fnv1a(trajectory_hash_, static_cast<std::uint64_t>(decisions_));
  for (int p : engine_->parallelism()) {
    trajectory_hash_ = Fnv1a(trajectory_hash_, static_cast<std::uint64_t>(p));
  }
  trajectory_hash_ =
      Fnv1a(trajectory_hash_, DoubleBits(engine_->virtual_minutes()));
}

JobState JobTuningSession::RunDecision() {
  if (state_ != JobState::kRunning) return state_;

  const double before_minutes = engine_->virtual_minutes();
  if (!breaker_.AllowRequest(before_minutes)) {
    ++breaker_skips_;
    // The job idles while the breaker cools. Its virtual clock only
    // advances through its own engine, so charge the remaining cooldown
    // here — otherwise an open breaker would never reach half-open (the
    // clock would stand still) and the job could be skipped forever. The
    // charge depends only on this job's own failures, preserving the
    // per-job determinism contract.
    const double wait = breaker_.reopen_minutes() - before_minutes;
    if (wait > 0) engine_->AdvanceVirtualMinutes(wait);
    return state_;
  }

  Result<bool> stepped = StepOnce();
  if (!stepped.ok()) {
    breaker_.RecordFailure(engine_->virtual_minutes());
    if (breaker_.trip_count() >= fault_.max_breaker_trips) {
      state_ = JobState::kQuarantined;
    }
    return state_;
  }
  breaker_.RecordSuccess();
  ++decisions_;
  FoldTrajectory();

  // Deadline budget: fault retries charge the virtual clock, so a decision
  // that burned far more virtual time than a clean one did hit faults.
  const double cost = engine_->virtual_minutes() - before_minutes;
  if (cost > fault_.decision_deadline_minutes) {
    if (++deadline_strikes_ >= fault_.max_deadline_strikes) {
      state_ = JobState::kQuarantined;
      return state_;
    }
  }

  if (*stepped) {
    Result<baselines::TuningOutcome> out = FinishSession();
    if (out.ok()) {
      outcome_ = *out;
      has_outcome_ = true;
      state_ = JobState::kConverged;
    } else {
      state_ = JobState::kFailed;
    }
  }
  return state_;
}

}  // namespace streamtune::controlplane
