// Admission control and backpressure primitives for the multi-job control
// plane.
//
// TokenBucket rations the expensive StreamTune fine-tuning path: the fleet
// admits at most `capacity` concurrent full sessions (plus an optional
// refill over the virtual clock); the overflow tail is shed to the cheap
// DS2 rate rule. Acquisition order is the caller's job-id order, so which
// jobs are shed is a pure function of the fleet composition — chaos cannot
// move the admission boundary.
//
// WatermarkGate is the classic two-threshold hysteresis signal: it engages
// when the observed depth reaches the high watermark and releases only once
// the depth falls to the low one, so a queue hovering around one threshold
// does not flap the backpressure state every round.

#pragma once

#include <cstddef>

namespace streamtune::controlplane {

/// Token-bucket knobs. Tokens refill against the fleet's virtual clock.
struct TokenBucketOptions {
  /// Maximum tokens the bucket holds (and the default initial fill).
  double capacity = 256;
  /// Tokens restored per virtual minute (0 = a pure one-shot admission cap).
  double refill_per_minute = 0;
  /// Initial fill; negative means "start full".
  double initial = -1;
};

/// Deterministic token bucket over a virtual clock.
class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketOptions options);

  /// Refills for the elapsed virtual time, then takes `tokens` if
  /// available. `now_minutes` must be non-decreasing across calls.
  bool TryAcquire(double now_minutes, double tokens = 1.0);

  /// Tokens available after refilling to `now_minutes`.
  double Available(double now_minutes);

 private:
  void Refill(double now_minutes);

  TokenBucketOptions options_;
  double tokens_;
  double last_refill_minutes_ = 0;
};

/// High/low watermark pair for a WatermarkGate.
struct WatermarkOptions {
  std::size_t high = 64;
  std::size_t low = 16;
};

/// Two-threshold hysteresis gate: engaged at depth >= high, released at
/// depth <= low.
class WatermarkGate {
 public:
  explicit WatermarkGate(WatermarkOptions options);

  /// Feeds the current depth; returns the engaged state after the update.
  bool Update(std::size_t depth);

  bool engaged() const { return engaged_; }
  int engage_count() const { return engage_count_; }
  int release_count() const { return release_count_; }

 private:
  WatermarkOptions options_;
  bool engaged_ = false;
  int engage_count_ = 0;
  int release_count_ = 0;
};

}  // namespace streamtune::controlplane
