// Abstract stream-engine interface.
//
// Both simulated engines (Flink-like, Timely-like) expose this surface, so
// every tuner (DS2, ContTune, ZeroTune, StreamTune) is written once and runs
// against either — mirroring the paper's generality evaluation (Sec. V-F).

#pragma once

#include <vector>

#include "common/status.h"
#include "dataflow/job_graph.h"
#include "sim/flink_simulator.h"

namespace streamtune::sim {

/// A deployed streaming job that can be reconfigured and measured.
class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  virtual const JobGraph& graph() const = 0;
  /// Physical ceiling on per-operator parallelism.
  virtual int max_parallelism() const = 0;

  /// Stop-and-restart reconfiguration with new parallelism degrees.
  [[nodiscard]] virtual Status Deploy(const std::vector<int>& parallelism) = 0;
  /// Samples runtime metrics for the current deployment.
  [[nodiscard]] virtual Result<JobMetrics> Measure() = 0;
  virtual const std::vector<int>& parallelism() const = 0;

  /// Scales every source to `factor` times its base rate.
  virtual void ScaleAllSources(double factor) = 0;
  /// Current external source rates indexed by operator id (0 = non-source).
  virtual std::vector<double> current_source_rates() const = 0;

  virtual int reconfiguration_count() const = 0;
  virtual int deployment_count() const = 0;
  /// Virtual minutes spent in post-deployment stabilization waits.
  virtual double virtual_minutes() const = 0;
  virtual void ResetCounters() = 0;

  /// Advances the virtual clock by `minutes` without deploying — used to
  /// charge retry backoff waits to tuning time. No-op for engines that do
  /// not track a clock.
  virtual void AdvanceVirtualMinutes(double /*minutes*/) {}

  /// Ground-truth minimal backpressure-free parallelism (tests/reporting
  /// only; tuners must not call this).
  virtual std::vector<int> OracleParallelism() const = 0;
};

/// StreamEngine facade over FlinkSimulator.
class FlinkEngine : public StreamEngine {
 public:
  FlinkEngine(JobGraph graph, PerfModel model, SimConfig config = {})
      : sim_(std::move(graph), std::move(model), config) {}

  const JobGraph& graph() const override { return sim_.graph(); }
  int max_parallelism() const override {
    return sim_.config().max_parallelism;
  }
  Status Deploy(const std::vector<int>& p) override { return sim_.Deploy(p); }
  Result<JobMetrics> Measure() override { return sim_.Measure(); }
  const std::vector<int>& parallelism() const override {
    return sim_.parallelism();
  }
  void ScaleAllSources(double factor) override {
    sim_.ScaleAllSources(factor);
  }
  std::vector<double> current_source_rates() const override {
    return sim_.source_rates();
  }
  int reconfiguration_count() const override {
    return sim_.reconfiguration_count();
  }
  int deployment_count() const override { return sim_.deployment_count(); }
  double virtual_minutes() const override { return sim_.virtual_minutes(); }
  void ResetCounters() override { sim_.ResetCounters(); }
  void AdvanceVirtualMinutes(double minutes) override {
    sim_.AdvanceVirtualMinutes(minutes);
  }
  std::vector<int> OracleParallelism() const override {
    return sim_.OracleParallelism();
  }

  FlinkSimulator& simulator() { return sim_; }

 private:
  FlinkSimulator sim_;
};

}  // namespace streamtune::sim
