#include "sim/flink_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace streamtune::sim {

FlinkSimulator::FlinkSimulator(JobGraph graph, PerfModel model,
                               SimConfig config)
    : graph_(std::move(graph)),
      model_(std::move(model)),
      config_(config),
      noise_rng_(config.noise_seed) {
  assert(graph_.Validate().ok());
  assert(model_.num_operators() == graph_.num_operators());
  const int n = graph_.num_operators();
  source_rates_.assign(n, 0.0);
  selectivity_.resize(n);
  for (int v = 0; v < n; ++v) {
    if (graph_.op(v).is_source()) source_rates_[v] = graph_.op(v).source_rate;
    selectivity_[v] = model_.Selectivity(v);
  }
  parallelism_.assign(n, 1);
}

Status FlinkSimulator::SetSourceRate(int op_id, double rate) {
  if (op_id < 0 || op_id >= graph_.num_operators()) {
    return Status::InvalidArgument("operator id out of range");
  }
  if (!graph_.op(op_id).is_source()) {
    return Status::InvalidArgument("operator '" + graph_.op(op_id).name +
                                   "' is not a source");
  }
  if (rate < 0) return Status::InvalidArgument("negative source rate");
  source_rates_[op_id] = rate;
  return Status::OK();
}

void FlinkSimulator::ScaleAllSources(double factor) {
  for (int v = 0; v < graph_.num_operators(); ++v) {
    if (graph_.op(v).is_source()) {
      source_rates_[v] = graph_.op(v).source_rate * factor;
    }
  }
}

Status FlinkSimulator::Deploy(const std::vector<int>& parallelism) {
  if (static_cast<int>(parallelism.size()) != graph_.num_operators()) {
    return Status::InvalidArgument("parallelism vector size mismatch");
  }
  for (int p : parallelism) {
    if (p < 1 || p > config_.max_parallelism) {
      return Status::OutOfRange("parallelism degree " + std::to_string(p) +
                                " outside [1, " +
                                std::to_string(config_.max_parallelism) + "]");
    }
  }
  bool changed = !deployed_ || parallelism != parallelism_;
  if (deployed_ && changed) ++reconfiguration_count_;
  parallelism_ = parallelism;
  deployed_ = true;
  ++deployment_count_;
  virtual_minutes_ += config_.live_reconfiguration
                          ? config_.live_stabilization_minutes
                          : config_.stabilization_minutes;
  return Status::OK();
}

FlowResult FlinkSimulator::Solve() const {
  std::vector<double> capacity(graph_.num_operators());
  for (int v = 0; v < graph_.num_operators(); ++v) {
    capacity[v] = model_.ProcessingAbility(v, parallelism_[v]);
  }
  return SolveFlow(graph_, capacity, selectivity_, source_rates_);
}

Result<JobMetrics> FlinkSimulator::Measure() {
  if (!deployed_) {
    return Status::FailedPrecondition("job not deployed");
  }
  FlowResult flow = Solve();
  const int n = graph_.num_operators();

  JobMetrics jm;
  jm.ops.resize(n);
  jm.lambda = flow.lambda;
  jm.job_backpressure = flow.AnyBackpressure();
  jm.total_parallelism = 0;
  for (int v = 0; v < n; ++v) {
    OperatorMetrics& m = jm.ops[v];
    m.busy_frac = Clamp(flow.busy[v], 0.0, 1.0);
    // An operator spends (1 - lambda) of its time blocked by downstream,
    // bounded by the time it is not itself processing (busy, blocked and
    // idle time partition the second).
    m.backpressured_frac =
        flow.blocked[v] ? std::min(1.0 - flow.lambda, 1.0 - m.busy_frac)
                        : 0.0;
    m.idle_frac =
        std::max(0.0, 1.0 - m.busy_frac - m.backpressured_frac);
    m.cpu_load = m.busy_frac;
    m.input_rate = flow.achieved_in[v];
    m.output_rate = flow.achieved_out[v];
    m.desired_input_rate = flow.desired_in[v];
    m.saturated = flow.saturated[v];
    m.backpressured = m.backpressured_frac > config_.backpressure_threshold;

    // Noisy useful-time sample: relative Gaussian error clamped to +-2.5
    // sigma, floored away from zero so rate/useful_time stays finite.
    double eps = config_.useful_time_noise == 0
                     ? 0.0
                     : Clamp(noise_rng_.Normal(0.0, config_.useful_time_noise),
                             -2.5 * config_.useful_time_noise,
                             2.5 * config_.useful_time_noise);
    m.useful_time_frac_observed =
        std::max(1e-4, m.busy_frac * (1.0 + eps));

    jm.total_parallelism += parallelism_[v];
    jm.used_cores += parallelism_[v] * m.busy_frac;
    if (m.backpressured) jm.severe_backpressure = true;
  }
  if (jm.lambda < 1.0 - config_.backpressure_threshold) {
    jm.severe_backpressure = true;  // sources throttled past the margin
  }
  return jm;
}

std::vector<int> FlinkSimulator::OracleParallelism() const {
  // Unthrottled demand: give every operator effectively infinite capacity.
  const int n = graph_.num_operators();
  std::vector<double> huge(n, 1e18);
  FlowResult flow = SolveFlow(graph_, huge, selectivity_, source_rates_);
  std::vector<int> p(n, 1);
  for (int v = 0; v < n; ++v) {
    int need = model_.MinParallelismFor(v, flow.desired_in[v],
                                        config_.max_parallelism);
    p[v] = std::min(need, config_.max_parallelism);
  }
  return p;
}

void FlinkSimulator::ResetCounters() {
  deployment_count_ = 0;
  reconfiguration_count_ = 0;
  virtual_minutes_ = 0;
}

}  // namespace streamtune::sim
