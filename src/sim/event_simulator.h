// Record-level discrete-event simulation of a deployed streaming job.
//
// The analytic FlowSolver computes the steady-state fixed point directly;
// this module simulates the same deployment record by record — Poisson
// external arrivals, per-operator FIFO queues with bounded capacity,
// parallel servers with exponential service times derived from the cost
// model, and credit-style backpressure (a server that cannot deliver its
// outputs downstream blocks, which is exactly Flink's buffer-exhaustion
// backpressure). It exists to validate the analytic model (the test suite
// checks that busy fractions, throughput ratios and bottleneck locations
// agree) and to expose queueing-level quantities (queue lengths, blocked
// time) the fixed point cannot express.
//
// To keep event counts bounded at arbitrary rates, the simulation rescales
// time: rates are divided and service times multiplied by a common factor,
// which leaves utilizations, blocking and throughput ratios unchanged.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dataflow/job_graph.h"
#include "sim/cost_model.h"

namespace streamtune::sim {

/// Knobs for the discrete-event run.
struct EventSimConfig {
  /// Simulated seconds (after rescaling).
  double duration_seconds = 8.0;
  /// Initial transient excluded from statistics.
  double warmup_seconds = 2.0;
  /// Target upper bound on total simulated record events; rates are
  /// rescaled down to respect it.
  double max_events = 300000;
  /// Per-operator input queue capacity (records). Small caps mean eager
  /// backpressure, like Flink's bounded network buffers.
  int queue_capacity = 64;
  uint64_t seed = 2718;
};

/// Measured statistics of one discrete-event run (per operator unless
/// noted). Rates are reported in the original (unscaled) records/second.
struct EventSimResult {
  std::vector<double> busy_frac;     ///< fraction of server-time processing
  std::vector<double> blocked_frac;  ///< fraction blocked on downstream
  std::vector<double> idle_frac;     ///< remainder
  std::vector<double> input_rate;    ///< records consumed per second
  std::vector<double> output_rate;   ///< records delivered per second
  std::vector<double> avg_queue_length;
  /// Achieved source emission over offered external rate, in (0, 1].
  double source_throughput_ratio = 1.0;
  /// Total record events processed (post-rescaling).
  size_t events_processed = 0;
  /// The factor all rates were divided by (1 = no rescaling).
  double time_rescale = 1.0;
};

/// Runs the simulation for one deployment. `parallelism[v]` >= 1;
/// `source_rate[v]` is the external rate for sources (0 otherwise).
Result<EventSimResult> RunEventSimulation(
    const JobGraph& graph, const PerfModel& model,
    const std::vector<int>& parallelism,
    const std::vector<double>& source_rate, EventSimConfig config = {});

}  // namespace streamtune::sim
