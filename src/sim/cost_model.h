// Ground-truth performance model of the simulated cluster.
//
// The simulator needs a "physics": how many records per second one parallel
// instance of an operator can process, and how that capacity scales with the
// parallelism degree. Tuners never see this model directly — they only see
// the (noisy) metrics the engine exposes, exactly like on a real cluster.
//
// Capacity is sub-linear in parallelism:
//     PA(p) = base_rate * p / (1 + gamma * (p - 1))
// gamma > 0 models coordination/state-contention overhead. This is the regime
// where DS2's linearity assumption under-shoots and must iterate — the
// mechanism behind the reconfiguration-count gaps in the paper (Fig. 7a).

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "dataflow/job_graph.h"
#include "dataflow/operator.h"

namespace streamtune::sim {

/// Per-operator ground-truth cost parameters.
struct CostProfile {
  /// CPU seconds one instance spends per input record.
  double cost_per_record = 1e-5;
  /// Output records per input record.
  double selectivity = 1.0;
  /// Contention coefficient for sub-linear scaling (0 = perfectly linear).
  double scaling_gamma = 0.02;
};

/// Configuration knobs for deriving cost profiles from operator specs.
struct CostModelConfig {
  /// Deterministic per-job jitter applied to base costs (+-fraction).
  double jitter = 0.15;
  /// Seed for the jitter; same seed + same graph => identical physics.
  uint64_t seed = 42;
  /// Global multiplier on all per-record costs (to emulate slower/faster
  /// hardware, e.g. the Timely machine vs the Flink machines).
  double cost_scale = 1.0;
};

/// Derives and stores ground-truth cost profiles for one job.
class PerfModel {
 public:
  PerfModel() = default;

  /// Builds profiles for every operator of `graph`.
  PerfModel(const JobGraph& graph, const CostModelConfig& config);

  // The MinParallelismFor memo (and its mutex) is per-instance scratch
  // state: copies and moves start with a cold cache.
  PerfModel(const PerfModel& other) : profiles_(other.profiles_) {}
  PerfModel& operator=(const PerfModel& other);
  PerfModel(PerfModel&& other) noexcept : profiles_(std::move(other.profiles_)) {}
  PerfModel& operator=(PerfModel&& other) noexcept;

  /// Overrides the profile of one operator (used by calibrated workloads).
  void SetProfile(int op_id, CostProfile profile);

  const CostProfile& profile(int op_id) const { return profiles_.at(op_id); }
  int num_operators() const { return static_cast<int>(profiles_.size()); }

  /// Ground-truth processing ability (records/second) of operator `op_id`
  /// at parallelism `p` (p >= 1).
  double ProcessingAbility(int op_id, int p) const;

  /// Ground-truth selectivity of operator `op_id`.
  double Selectivity(int op_id) const { return profiles_.at(op_id).selectivity; }

  /// Smallest parallelism (up to `p_max`) whose processing ability reaches
  /// `rate`; returns p_max + 1 if unattainable. Thread-safe: the answer is a
  /// pure function of the profiles, memoized behind a mutex because the
  /// oracle sweeps of the parallel pre-training pipeline re-ask the same
  /// (op, rate, p_max) triples from many workers.
  int MinParallelismFor(int op_id, double rate, int p_max) const;

  /// Derives a cost profile from static operator features alone (no jitter).
  static CostProfile BaseProfile(const OperatorSpec& spec);

 private:
  /// (op_id, bit pattern of rate, p_max) — bit-exact keys, no FP tolerance.
  using MemoKey = std::tuple<int, uint64_t, int>;

  std::vector<CostProfile> profiles_;
  mutable std::mutex memo_mu_;
  mutable std::map<MemoKey, int> min_p_memo_ STREAMTUNE_GUARDED_BY(memo_mu_);
};

}  // namespace streamtune::sim
