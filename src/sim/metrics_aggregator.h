// Deterministic aggregation of FlowSolver results over a sweep.
//
// Benches, capacity sweeps and the control plane's fleet watchdog all
// reduce many SolveFlow fixed points into one summary (how many sample
// points backpressured, how saturated the fleet ran, the mean sustainable
// lambda). Those were bespoke serial loops; this is the shared reduction,
// built on ParallelReduce so the execution strategy is runtime-selected.
//
// The accumulator is designed to be *bitwise commutative* so every reduce
// strategy (ordered fold, tree merge, radix shard) is legal and
// bit-identical: counts are integers, extrema are exact under any order,
// and the two mean-forming sums carry fixed-point micro-units
// (llround(x * 1e6) per sample) instead of raw doubles — integer addition
// reassociates exactly where double addition does not. The quantization
// error (<= 5e-7 per sample, before division) is far below anything a
// fleet-level mean is read for, and it buys order-independence.

#pragma once

#include <cstdint>
#include <functional>

#include "common/exec_strategy.h"
#include "common/thread_pool.h"
#include "sim/flow_solver.h"

namespace streamtune::sim {

/// Summary of one or more SolveFlow results; merge any two with Merge().
struct FlowMetricsAccum {
  /// Sample points folded in.
  int64_t samples = 0;
  /// Samples where some operator saturated (FlowResult::AnyBackpressure).
  int64_t backpressured_samples = 0;
  /// Operators observed in total / saturated / blocked across all samples.
  int64_t operators = 0;
  int64_t saturated_operators = 0;
  int64_t blocked_operators = 0;
  /// Extrema of the sustainable throughput fraction (exact under any
  /// merge order).
  double min_lambda = 1.0;
  double max_lambda = 0.0;
  /// Fixed-point sums (micro-units) for the means below.
  int64_t lambda_micros = 0;
  int64_t busy_micros = 0;

  /// Folds one solved sample in.
  void Add(const FlowResult& flow);
  /// Folds another accumulator in (bitwise commutative + associative).
  void Merge(const FlowMetricsAccum& other);

  double mean_lambda() const {
    return samples == 0 ? 0.0 : static_cast<double>(lambda_micros) / 1e6 /
                                    static_cast<double>(samples);
  }
  double mean_busy() const {
    return operators == 0 ? 0.0 : static_cast<double>(busy_micros) / 1e6 /
                                      static_cast<double>(operators);
  }
  double backpressure_rate() const {
    return samples == 0
               ? 0.0
               : static_cast<double>(backpressured_samples) /
                     static_cast<double>(samples);
  }
};

/// Reduces `count` sample points into one summary on the pool (nullptr =
/// serial). `solve_at(i)` produces sample i's flow solution; it runs
/// exactly once per index, and the returned reference only needs to stay
/// valid for the duration of that fold step (a thread-local scratch slot
/// is fine). `strategy` pins the reduce strategy for reproducibility
/// studies (default: let the selector pick; every choice is bit-identical,
/// see the accumulator's design note).
FlowMetricsAccum AggregateFlowMetrics(
    ThreadPool* pool, int64_t count,
    const std::function<const FlowResult&(int64_t)>& solve_at,
    ReduceStrategy strategy = ReduceStrategy::kAuto);

}  // namespace streamtune::sim
