#include "sim/metrics_sanitizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <string>

namespace streamtune::sim {

namespace {

bool FiniteInRange(double x, double lo, double hi) {
  return std::isfinite(x) && x >= lo && x <= hi;
}

Status BadOp(int v, const char* field, double value) {
  return Status::OutOfRange("corrupt metric sample: op " + std::to_string(v) +
                            " " + field + " = " + std::to_string(value));
}

/// Bitwise equality of two samples (frozen-window detection).
bool SamplesIdentical(const JobMetrics& a, const JobMetrics& b) {
  if (a.ops.size() != b.ops.size() || a.job_backpressure != b.job_backpressure ||
      a.severe_backpressure != b.severe_backpressure || a.lambda != b.lambda ||
      a.total_parallelism != b.total_parallelism ||
      a.used_cores != b.used_cores) {
    return false;
  }
  for (size_t v = 0; v < a.ops.size(); ++v) {
    const OperatorMetrics& x = a.ops[v];
    const OperatorMetrics& y = b.ops[v];
    if (x.busy_frac != y.busy_frac || x.idle_frac != y.idle_frac ||
        x.backpressured_frac != y.backpressured_frac ||
        x.cpu_load != y.cpu_load || x.input_rate != y.input_rate ||
        x.output_rate != y.output_rate ||
        x.desired_input_rate != y.desired_input_rate ||
        x.useful_time_frac_observed != y.useful_time_frac_observed ||
        x.backpressured != y.backpressured || x.saturated != y.saturated) {
      return false;
    }
  }
  return true;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

bool Majority(const std::vector<bool>& xs) {
  int yes = 0;
  for (bool x : xs) yes += x ? 1 : 0;
  return 2 * yes > static_cast<int>(xs.size());
}

}  // namespace

Status ValidateJobMetrics(const JobMetrics& m, double tolerance) {
  if (!std::isfinite(m.lambda) || m.lambda <= 0 ||
      m.lambda > 1.0 + tolerance) {
    return Status::OutOfRange("corrupt metric sample: lambda = " +
                              std::to_string(m.lambda));
  }
  if (!std::isfinite(m.used_cores) || m.used_cores < -tolerance) {
    return Status::OutOfRange("corrupt metric sample: used_cores = " +
                              std::to_string(m.used_cores));
  }
  if (m.total_parallelism < static_cast<int>(m.ops.size())) {
    return Status::OutOfRange(
        "corrupt metric sample: total_parallelism = " +
        std::to_string(m.total_parallelism) + " below operator count");
  }
  for (size_t i = 0; i < m.ops.size(); ++i) {
    const int v = static_cast<int>(i);
    const OperatorMetrics& om = m.ops[i];
    if (!FiniteInRange(om.busy_frac, -tolerance, 1.0 + tolerance)) {
      return BadOp(v, "busy_frac", om.busy_frac);
    }
    if (!FiniteInRange(om.idle_frac, -tolerance, 1.0 + tolerance)) {
      return BadOp(v, "idle_frac", om.idle_frac);
    }
    if (!FiniteInRange(om.backpressured_frac, -tolerance, 1.0 + tolerance)) {
      return BadOp(v, "backpressured_frac", om.backpressured_frac);
    }
    if (!FiniteInRange(om.cpu_load, -tolerance, 1.0 + tolerance)) {
      return BadOp(v, "cpu_load", om.cpu_load);
    }
    if (!std::isfinite(om.input_rate) || om.input_rate < -tolerance) {
      return BadOp(v, "input_rate", om.input_rate);
    }
    if (!std::isfinite(om.output_rate) || om.output_rate < -tolerance) {
      return BadOp(v, "output_rate", om.output_rate);
    }
    if (!std::isfinite(om.desired_input_rate) ||
        om.desired_input_rate < -tolerance) {
      return BadOp(v, "desired_input_rate", om.desired_input_rate);
    }
    // Tuners divide by useful time; zero or negative readings would turn
    // into infinite capacity estimates. Unlike the true time fractions this
    // is a noisy relative observation (busy * (1 + eps), eps clamped at
    // +-2.5 sigma) and legitimately exceeds 1 on busy operators, so the
    // upper bound only rejects wildly corrupt values.
    if (!std::isfinite(om.useful_time_frac_observed) ||
        om.useful_time_frac_observed <= 0 ||
        om.useful_time_frac_observed > 2.0) {
      return BadOp(v, "useful_time_frac_observed",
                   om.useful_time_frac_observed);
    }
  }
  return Status::OK();
}

Status JobMetrics::Validate(double tolerance) const {
  return ValidateJobMetrics(*this, tolerance);
}

JobMetrics MedianOfSamples(const std::vector<JobMetrics>& samples) {
  assert(!samples.empty());
  if (samples.size() == 1) return samples[0];
  const size_t n_ops = samples[0].ops.size();
  JobMetrics out = samples[0];

  auto med = [&samples](const std::function<double(const JobMetrics&)>& get) {
    std::vector<double> xs;
    xs.reserve(samples.size());
    for (const JobMetrics& s : samples) xs.push_back(get(s));
    return Median(std::move(xs));
  };
  auto maj = [&samples](const std::function<bool(const JobMetrics&)>& get) {
    std::vector<bool> xs;
    xs.reserve(samples.size());
    for (const JobMetrics& s : samples) xs.push_back(get(s));
    return Majority(xs);
  };

  out.lambda = med([](const JobMetrics& s) { return s.lambda; });
  out.used_cores = med([](const JobMetrics& s) { return s.used_cores; });
  out.job_backpressure =
      maj([](const JobMetrics& s) { return s.job_backpressure; });
  out.severe_backpressure =
      maj([](const JobMetrics& s) { return s.severe_backpressure; });
  for (size_t v = 0; v < n_ops; ++v) {
    OperatorMetrics& om = out.ops[v];
    auto omed = [&](double OperatorMetrics::*field) {
      std::vector<double> xs;
      xs.reserve(samples.size());
      for (const JobMetrics& s : samples) xs.push_back(s.ops[v].*field);
      return Median(std::move(xs));
    };
    auto omaj = [&](bool OperatorMetrics::*field) {
      std::vector<bool> xs;
      xs.reserve(samples.size());
      for (const JobMetrics& s : samples) xs.push_back(s.ops[v].*field);
      return Majority(xs);
    };
    om.busy_frac = omed(&OperatorMetrics::busy_frac);
    om.idle_frac = omed(&OperatorMetrics::idle_frac);
    om.backpressured_frac = omed(&OperatorMetrics::backpressured_frac);
    om.cpu_load = omed(&OperatorMetrics::cpu_load);
    om.input_rate = omed(&OperatorMetrics::input_rate);
    om.output_rate = omed(&OperatorMetrics::output_rate);
    om.desired_input_rate = omed(&OperatorMetrics::desired_input_rate);
    om.useful_time_frac_observed =
        omed(&OperatorMetrics::useful_time_frac_observed);
    om.backpressured = omaj(&OperatorMetrics::backpressured);
    om.saturated = omaj(&OperatorMetrics::saturated);
  }
  return out;
}

MetricsSanitizer::Verdict MetricsSanitizer::Check(const JobMetrics& m,
                                                  Status* detail) {
  Status st = ValidateJobMetrics(m, options_.fraction_tolerance);
  if (!st.ok()) {
    ++stats_.rejected;
    if (detail) *detail = st;
    return Verdict::kInvalid;
  }
  if (options_.detect_frozen && has_last_ && SamplesIdentical(m, last_)) {
    ++stats_.frozen;
    return Verdict::kFrozen;
  }
  return Verdict::kOk;
}

void MetricsSanitizer::Accept(const JobMetrics& m) {
  has_last_ = true;
  last_ = m;
}

Result<JobMetrics> MeasureSanitized(StreamEngine* engine,
                                    MetricsSanitizer* sanitizer,
                                    const RetryOptions& retry,
                                    RetryStats* retry_stats) {
  auto charge = [engine](double minutes) {
    engine->AdvanceVirtualMinutes(minutes);
  };
  auto measure = [&]() {
    return RetryResultWithBackoff<JobMetrics>(
        retry, [engine]() { return engine->Measure(); }, charge, retry_stats);
  };

  Result<JobMetrics> first = measure();
  if (!first.ok()) return first;

  Status detail;
  MetricsSanitizer::Verdict verdict = sanitizer->Check(*first, &detail);
  if (verdict != MetricsSanitizer::Verdict::kInvalid) {
    // Frozen samples are counted but accepted: they are numerically valid,
    // and a noise-free deterministic engine legitimately repeats itself.
    sanitizer->Accept(*first);
    return first;
  }

  // Median-of-k replacement: draw fresh samples, keep the valid ones.
  std::vector<JobMetrics> valid;
  const int k = std::max(1, sanitizer->options().median_samples);
  for (int i = 0; i < k; ++i) {
    Result<JobMetrics> again = measure();
    ++sanitizer->mutable_stats()->remeasures;
    if (!again.ok()) continue;  // dropout burst: spend the budget, move on
    if (ValidateJobMetrics(*again,
                           sanitizer->options().fraction_tolerance).ok()) {
      valid.push_back(std::move(*again));
    }
  }
  if (valid.empty()) return detail;  // nothing usable: caller degrades
  JobMetrics median = MedianOfSamples(valid);
  sanitizer->Accept(median);
  return median;
}

Status DeployWithRetry(StreamEngine* engine,
                       const std::vector<int>& parallelism,
                       const RetryOptions& retry, RetryStats* retry_stats) {
  auto charge = [engine](double minutes) {
    engine->AdvanceVirtualMinutes(minutes);
  };
  return RetryWithBackoff(
      retry, [&]() { return engine->Deploy(parallelism); }, charge,
      retry_stats);
}

}  // namespace streamtune::sim
