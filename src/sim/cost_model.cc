#include "sim/cost_model.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <string>

#include "common/math_util.h"
#include "common/rng.h"

namespace streamtune::sim {

namespace {

// FNV-1a over the operator name, mixed with the config seed, so per-operator
// jitter is stable across runs but varies across jobs/operators.
uint64_t HashName(const std::string& name, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

CostProfile PerfModel::BaseProfile(const OperatorSpec& spec) {
  CostProfile p;
  switch (spec.type) {
    case OperatorType::kSource:
      p.cost_per_record = 2e-6;
      p.selectivity = 1.0;
      p.scaling_gamma = 0.005;
      break;
    case OperatorType::kMap:
      p.cost_per_record = 5e-6;
      p.selectivity = 1.0;
      p.scaling_gamma = 0.005;
      break;
    case OperatorType::kFilter:
      p.cost_per_record = 4e-6;
      p.selectivity = 0.4;
      p.scaling_gamma = 0.005;
      break;
    case OperatorType::kFlatMap:
      p.cost_per_record = 8e-6;
      p.selectivity = 1.8;
      p.scaling_gamma = 0.005;
      break;
    case OperatorType::kJoin:
      p.cost_per_record = 2e-5;
      p.selectivity = 0.8;
      p.scaling_gamma = 0.015;
      break;
    case OperatorType::kWindowJoin:
      p.cost_per_record = 1.5e-5;
      p.selectivity = 0.5;
      p.scaling_gamma = 0.012;
      break;
    case OperatorType::kAggregate:
      p.cost_per_record = 1.5e-5;
      p.selectivity = 0.05;
      p.scaling_gamma = 0.01;
      break;
    case OperatorType::kSink:
      p.cost_per_record = 3e-6;
      p.selectivity = 0.0;
      p.scaling_gamma = 0.005;
      break;
  }

  // Stateful windowing costs more; sliding windows amplify work by the
  // overlap factor (each record lives in window/slide panes).
  if (spec.window_type != WindowType::kNone && spec.window_length > 0) {
    double window_factor = 1.0 + 0.5 * spec.window_length / 300.0;
    if (spec.window_type == WindowType::kSliding && spec.sliding_length > 0) {
      double overlap = spec.window_length / spec.sliding_length;
      window_factor *= 1.0 + 0.05 * Clamp(overlap, 1.0, 20.0);
    }
    p.cost_per_record *= window_factor;
  }

  // Wider tuples cost more to (de)serialize.
  if (spec.tuple_width_in > 0) {
    p.cost_per_record *= 1.0 + 0.3 * spec.tuple_width_in / 512.0;
  }
  return p;
}

PerfModel::PerfModel(const JobGraph& graph, const CostModelConfig& config) {
  profiles_.reserve(graph.num_operators());
  for (int i = 0; i < graph.num_operators(); ++i) {
    const OperatorSpec& spec = graph.op(i);
    CostProfile p = BaseProfile(spec);
    Rng rng(HashName(graph.name() + "/" + spec.name, config.seed));
    double jitter = 1.0 + config.jitter * (2.0 * rng.Uniform() - 1.0);
    p.cost_per_record *= jitter * config.cost_scale;
    profiles_.push_back(p);
  }
}

PerfModel& PerfModel::operator=(const PerfModel& other) {
  profiles_ = other.profiles_;
  std::lock_guard<std::mutex> lock(memo_mu_);
  min_p_memo_.clear();
  return *this;
}

PerfModel& PerfModel::operator=(PerfModel&& other) noexcept {
  profiles_ = std::move(other.profiles_);
  std::lock_guard<std::mutex> lock(memo_mu_);
  min_p_memo_.clear();
  return *this;
}

void PerfModel::SetProfile(int op_id, CostProfile profile) {
  assert(op_id >= 0 && op_id < num_operators());
  profiles_[op_id] = profile;
  // The physics changed; memoized answers are stale.
  std::lock_guard<std::mutex> lock(memo_mu_);
  min_p_memo_.clear();
}

double PerfModel::ProcessingAbility(int op_id, int p) const {
  assert(p >= 1);
  const CostProfile& c = profiles_.at(op_id);
  double effective_instances =
      static_cast<double>(p) / (1.0 + c.scaling_gamma * (p - 1));
  return effective_instances / c.cost_per_record;
}

int PerfModel::MinParallelismFor(int op_id, double rate, int p_max) const {
  if (rate <= 0) return 1;
  const MemoKey key{op_id, std::bit_cast<uint64_t>(rate), p_max};
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = min_p_memo_.find(key);
    if (it != min_p_memo_.end()) return it->second;
  }
  // PA is strictly increasing in p (gamma < 1), so binary search applies.
  int answer;
  if (ProcessingAbility(op_id, p_max) < rate) {
    answer = p_max + 1;
  } else {
    int lo = 1, hi = p_max;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (ProcessingAbility(op_id, mid) >= rate) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    answer = lo;
  }
  std::lock_guard<std::mutex> lock(memo_mu_);
  min_p_memo_.emplace(key, answer);
  return answer;
}

}  // namespace streamtune::sim
