// Fault-injection decorator over any StreamEngine.
//
// Production stream clusters are full of failures the pristine simulators
// never produce: reconfigurations that fail transiently, metric windows
// that drop or return garbage, straggler subtasks that skew per-operator
// busy time, and source-rate spikes mid-tuning. ChaosEngine wraps an engine
// (Flink-like or Timely-like) and injects exactly those faults, driven by a
// declarative FaultPlan and a dedicated seeded RNG:
//
//   - transient Deploy failures (Status::Unavailable), decided BEFORE the
//     inner engine is touched so failed attempts never inflate
//     reconfiguration/deployment counters or the virtual clock;
//   - Measure dropouts (Status::Unavailable);
//   - corrupted metric samples: NaN gauges, negative rate counters, or a
//     frozen replay of the previous sample (inner engine not called);
//   - per-operator straggler slowdowns (inflated busy/useful time);
//   - transient source-rate spikes (inflated reported source demand).
//
// Fully deterministic: same plan + seed + call sequence => same fault
// sequence. An empty plan is a strict no-op — calls forward without drawing
// from the RNG, so wrapped runs are bit-identical to the bare engine.

#pragma once

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/engine.h"

namespace streamtune::sim {

/// Declarative, seeded description of the faults to inject.
struct FaultPlan {
  uint64_t seed = 0xC0FFEE;

  /// Probability that a Deploy attempt fails transiently.
  double deploy_failure_prob = 0;
  /// Cap on back-to-back Deploy failures (keeps every fault plan survivable
  /// by a bounded retry budget).
  int max_consecutive_deploy_failures = 2;

  /// Probability that a Measure call drops its metric window.
  double measure_dropout_prob = 0;
  int max_consecutive_dropouts = 2;

  /// Probability that a delivered sample is corrupted (NaN, negative
  /// counter, or frozen replay — kind drawn uniformly).
  double metric_corruption_prob = 0;

  /// Probability that one operator's busy/useful time is straggler-skewed.
  double straggler_prob = 0;
  /// Busy-time inflation factor for the straggling operator.
  double straggler_factor = 3.0;

  /// Probability that a sample reports a transient source-rate spike.
  double rate_spike_prob = 0;
  /// Reported source-demand multiplier during a spike.
  double rate_spike_factor = 2.0;

  /// True when no fault can ever fire (the strict no-op plan).
  bool Empty() const {
    return deploy_failure_prob == 0 && measure_dropout_prob == 0 &&
           metric_corruption_prob == 0 && straggler_prob == 0 &&
           rate_spike_prob == 0;
  }

  /// Probabilities in [0,1], factors/caps positive.
  Status Validate() const;

  /// The acceptance-criteria plan: 10% deploy failures, 10% metric
  /// dropouts, 5% stragglers.
  static FaultPlan Standard(uint64_t seed = 0xC0FFEE) {
    FaultPlan plan;
    plan.seed = seed;
    plan.deploy_failure_prob = 0.10;
    plan.measure_dropout_prob = 0.10;
    plan.straggler_prob = 0.05;
    return plan;
  }
};

/// Derives independent per-job fault plans from one master seed, for
/// fleet-wide chaos storms. Which jobs are hit, and the fault stream each
/// hit job sees, are pure functions of (master seed, job id): insertion
/// order, fleet size, and the fate of other jobs cannot perturb a job's
/// plan. Jobs outside the storm get the strict no-op empty plan, so their
/// engines stay bit-identical to a chaos-free run.
struct FleetFaultPlan {
  uint64_t master_seed = 0xF1EE7;
  /// Plan template applied to every faulted job (its seed is replaced by
  /// the per-job derived seed).
  FaultPlan base = FaultPlan::Standard();
  /// Fraction of the fleet hit by the storm, in [0, 1].
  double fault_fraction = 0.3;

  /// Splitmix-style seed mixing of (master_seed, job_id): one finalizer pass
  /// per component, so nearby job ids yield decorrelated streams.
  static uint64_t MixSeed(uint64_t master, uint64_t job_id);

  /// True when `job_id` falls inside the storm.
  bool Faulted(int64_t job_id) const;

  /// The per-job plan: `base` reseeded with the mixed seed when faulted,
  /// the empty (strict pass-through) plan otherwise.
  FaultPlan PlanFor(int64_t job_id) const;
};

/// Faults injected so far.
struct ChaosStats {
  int deploy_failures = 0;
  int measure_dropouts = 0;
  int corrupted_samples = 0;  ///< NaN + negative + frozen
  int frozen_replays = 0;
  int stragglers = 0;
  int rate_spikes = 0;

  int total() const {
    return deploy_failures + measure_dropouts + corrupted_samples +
           stragglers + rate_spikes;
  }
};

/// StreamEngine decorator injecting FaultPlan-driven faults. Non-owning:
/// the inner engine must outlive the decorator.
class ChaosEngine : public StreamEngine {
 public:
  ChaosEngine(StreamEngine* inner, FaultPlan plan);

  const JobGraph& graph() const override { return inner_->graph(); }
  int max_parallelism() const override { return inner_->max_parallelism(); }

  /// May fail transiently per the plan; failed attempts do not reach the
  /// inner engine (no counter or clock side effects).
  Status Deploy(const std::vector<int>& parallelism) override;

  /// May drop out or deliver corrupted/straggler/spiked samples.
  Result<JobMetrics> Measure() override;

  const std::vector<int>& parallelism() const override {
    return inner_->parallelism();
  }
  void ScaleAllSources(double factor) override {
    inner_->ScaleAllSources(factor);
  }
  std::vector<double> current_source_rates() const override {
    return inner_->current_source_rates();
  }
  int reconfiguration_count() const override {
    return inner_->reconfiguration_count();
  }
  int deployment_count() const override { return inner_->deployment_count(); }
  double virtual_minutes() const override { return inner_->virtual_minutes(); }
  void ResetCounters() override { inner_->ResetCounters(); }
  void AdvanceVirtualMinutes(double minutes) override {
    inner_->AdvanceVirtualMinutes(minutes);
  }
  std::vector<int> OracleParallelism() const override {
    return inner_->OracleParallelism();
  }

  const FaultPlan& plan() const { return plan_; }
  const ChaosStats& stats() const { return stats_; }
  StreamEngine* inner() { return inner_; }

 private:
  StreamEngine* inner_;
  FaultPlan plan_;
  Rng rng_;
  ChaosStats stats_;
  int consecutive_deploy_failures_ = 0;
  int consecutive_dropouts_ = 0;
  bool has_last_sample_ = false;
  JobMetrics last_sample_;
};

}  // namespace streamtune::sim
