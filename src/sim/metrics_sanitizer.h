// Metric sanitization for the hardened tuning loop.
//
// Production metric systems return garbage under load: NaN gauges, negative
// counters, out-of-range fractions, and stale windows replayed while the
// collector is wedged. Every tuner routes its Measure() calls through
// MeasureSanitized(), which retries transient dropouts (with virtual-clock
// backoff), validates each sample against physical invariants, and replaces
// corrupted samples with a component-wise median of fresh re-measurements.
//
// Determinism contract: on a clean engine (no chaos, valid samples) the
// sanitized path performs exactly one Measure() call and returns its sample
// untouched, so fault-free runs are bit-identical to the unhardened loop.

#pragma once

#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "sim/engine.h"

namespace streamtune::sim {

/// Sanitizer knobs.
struct SanitizerOptions {
  /// Slack allowed on [0,1] fraction invariants (floating-point dust).
  double fraction_tolerance = 1e-6;
  /// Flag samples bitwise-identical to the previously accepted one (a
  /// frozen/stale metric window — with measurement noise enabled, two
  /// genuinely fresh samples never collide).
  bool detect_frozen = true;
  /// Fresh samples drawn for the median-of-k replacement of a corrupted
  /// sample.
  int median_samples = 3;
};

/// What the sanitizer observed while checking samples.
struct SanitizerStats {
  /// Samples failing validation (replaced by a median re-measure).
  int rejected = 0;
  /// Frozen/stale samples detected (counted, then accepted: numerically
  /// valid, and indistinguishable from a noise-free deterministic engine).
  int frozen = 0;
  /// Extra Measure() calls performed for median-of-k replacement.
  int remeasures = 0;
};

/// Free-function form of JobMetrics::Validate().
Status ValidateJobMetrics(const JobMetrics& m, double tolerance = 1e-6);

/// Component-wise median of samples (majority vote for booleans). `samples`
/// must be non-empty and agree on the operator count.
JobMetrics MedianOfSamples(const std::vector<JobMetrics>& samples);

/// Stateful checker: validates invariants and detects frozen samples by
/// comparison with the previously accepted one. One instance per tuning
/// process.
class MetricsSanitizer {
 public:
  explicit MetricsSanitizer(SanitizerOptions options = {})
      : options_(options) {}

  enum class Verdict { kOk, kFrozen, kInvalid };

  /// Classifies a sample. On kInvalid, `detail` (if non-null) carries the
  /// violated invariant. Does not record the sample; call Accept().
  Verdict Check(const JobMetrics& m, Status* detail = nullptr);

  /// Records `m` as the last accepted sample (frozen-detection baseline).
  void Accept(const JobMetrics& m);

  const SanitizerOptions& options() const { return options_; }
  const SanitizerStats& stats() const { return stats_; }

  /// Mutable access for MeasureSanitized's bookkeeping.
  SanitizerStats* mutable_stats() { return &stats_; }

 private:
  SanitizerOptions options_;
  SanitizerStats stats_;
  bool has_last_ = false;
  JobMetrics last_;
};

/// Measures through `engine` with retry+backoff on transient dropouts
/// (backoff charged to the engine's virtual clock) and sanitization of the
/// sample: corrupted samples are replaced by the median of up to
/// `sanitizer->options().median_samples` fresh valid samples; if none can
/// be obtained the last validation error is returned and the caller
/// degrades gracefully.
[[nodiscard]] Result<JobMetrics> MeasureSanitized(StreamEngine* engine,
                                    MetricsSanitizer* sanitizer,
                                    const RetryOptions& retry,
                                    RetryStats* retry_stats = nullptr);

/// Deploys through `engine` with retry+backoff on transient failures.
[[nodiscard]] Status DeployWithRetry(StreamEngine* engine,
                       const std::vector<int>& parallelism,
                       const RetryOptions& retry,
                       RetryStats* retry_stats = nullptr);

}  // namespace streamtune::sim
