#include "sim/chaos_engine.h"

#include <cmath>
#include <limits>
#include <string>

namespace streamtune::sim {

namespace {

Status BadProb(const char* name, double p) {
  return Status::InvalidArgument(std::string(name) + " must be in [0,1], got " +
                                 std::to_string(p));
}

}  // namespace

Status FaultPlan::Validate() const {
  const struct {
    const char* name;
    double p;
  } probs[] = {
      {"deploy_failure_prob", deploy_failure_prob},
      {"measure_dropout_prob", measure_dropout_prob},
      {"metric_corruption_prob", metric_corruption_prob},
      {"straggler_prob", straggler_prob},
      {"rate_spike_prob", rate_spike_prob},
  };
  for (const auto& [name, p] : probs) {
    if (!(p >= 0.0 && p <= 1.0)) return BadProb(name, p);
  }
  if (max_consecutive_deploy_failures < 1) {
    return Status::InvalidArgument(
        "max_consecutive_deploy_failures must be >= 1");
  }
  if (max_consecutive_dropouts < 1) {
    return Status::InvalidArgument("max_consecutive_dropouts must be >= 1");
  }
  if (straggler_factor <= 1.0) {
    return Status::InvalidArgument("straggler_factor must be > 1");
  }
  if (rate_spike_factor <= 1.0) {
    return Status::InvalidArgument("rate_spike_factor must be > 1");
  }
  return Status::OK();
}

uint64_t FleetFaultPlan::MixSeed(uint64_t master, uint64_t job_id) {
  // Two splitmix64 finalizer rounds over the combined state: the golden
  // ratio stride keeps job 0 / master 0 off the weak all-zeros orbit, and
  // finalizing twice decorrelates sequential job ids.
  uint64_t z = master + 0x9e3779b97f4a7c15ULL * (job_id + 1);
  for (int round = 0; round < 2; ++round) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
  }
  return z;
}

bool FleetFaultPlan::Faulted(int64_t job_id) const {
  if (fault_fraction <= 0) return false;
  if (fault_fraction >= 1) return true;
  // A second, domain-separated mix decides storm membership so the
  // membership coin is independent of the fault-stream seed.
  uint64_t coin = MixSeed(master_seed ^ 0xD15EA5EULL,
                          static_cast<uint64_t>(job_id));
  double u = static_cast<double>(coin >> 11) * (1.0 / 9007199254740992.0);
  return u < fault_fraction;
}

FaultPlan FleetFaultPlan::PlanFor(int64_t job_id) const {
  if (!Faulted(job_id)) {
    FaultPlan none;
    none.seed = 0;
    none.deploy_failure_prob = 0;
    none.measure_dropout_prob = 0;
    none.metric_corruption_prob = 0;
    none.straggler_prob = 0;
    none.rate_spike_prob = 0;
    return none;
  }
  FaultPlan plan = base;
  plan.seed = MixSeed(master_seed, static_cast<uint64_t>(job_id));
  return plan;
}

ChaosEngine::ChaosEngine(StreamEngine* inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {}

Status ChaosEngine::Deploy(const std::vector<int>& parallelism) {
  // Strict no-op plan: forward without touching the RNG.
  if (plan_.Empty()) return inner_->Deploy(parallelism);

  if (rng_.Bernoulli(plan_.deploy_failure_prob) &&
      consecutive_deploy_failures_ < plan_.max_consecutive_deploy_failures) {
    // Fail BEFORE the inner engine sees the request: a failed
    // reconfiguration attempt must not advance reconfiguration/deployment
    // counters or the stabilization clock (Fig. 7a accounting).
    ++consecutive_deploy_failures_;
    ++stats_.deploy_failures;
    return Status::Unavailable("injected fault: reconfiguration failed");
  }
  consecutive_deploy_failures_ = 0;
  return inner_->Deploy(parallelism);
}

Result<JobMetrics> ChaosEngine::Measure() {
  if (plan_.Empty()) return inner_->Measure();

  if (rng_.Bernoulli(plan_.measure_dropout_prob) &&
      consecutive_dropouts_ < plan_.max_consecutive_dropouts) {
    ++consecutive_dropouts_;
    ++stats_.measure_dropouts;
    return Status::Unavailable("injected fault: metric window dropped");
  }
  consecutive_dropouts_ = 0;

  // Draw the per-sample fault pattern in a fixed order so the sequence is a
  // pure function of (plan, seed, call sequence).
  const bool spike = rng_.Bernoulli(plan_.rate_spike_prob);
  const bool straggle = rng_.Bernoulli(plan_.straggler_prob);
  const bool corrupt = rng_.Bernoulli(plan_.metric_corruption_prob);
  const int corrupt_kind = corrupt ? rng_.UniformInt(0, 2) : 0;

  // Frozen replay: the metric collector is wedged and serves the previous
  // window again; the inner engine is not consulted at all.
  if (corrupt && corrupt_kind == 2 && has_last_sample_) {
    ++stats_.corrupted_samples;
    ++stats_.frozen_replays;
    return last_sample_;
  }

  Result<JobMetrics> r = inner_->Measure();
  if (!r.ok()) return r;
  JobMetrics m = std::move(*r);
  const int n = static_cast<int>(m.ops.size());

  if (spike && n > 0) {
    // Transient source-rate spike: reported (unthrottled) source demand
    // jumps for one window. Tuners that trust a single window will
    // over-provision and must recover.
    ++stats_.rate_spikes;
    const JobGraph& g = inner_->graph();
    for (int v = 0; v < n; ++v) {
      if (g.upstream(v).empty()) {
        m.ops[v].desired_input_rate *= plan_.rate_spike_factor;
      }
    }
  }

  if (straggle && n > 0) {
    // One operator's slowest subtask dominates its busy/useful time: the
    // operator looks far less capable than it is.
    ++stats_.stragglers;
    const int v = rng_.UniformInt(0, n - 1);
    OperatorMetrics& om = m.ops[v];
    om.busy_frac = std::min(1.0, om.busy_frac * plan_.straggler_factor);
    om.useful_time_frac_observed =
        std::min(1.0, om.useful_time_frac_observed * plan_.straggler_factor);
    om.cpu_load = om.busy_frac;
    om.idle_frac = std::max(0.0, 1.0 - om.busy_frac - om.backpressured_frac);
  }

  if (corrupt && n > 0 && corrupt_kind != 2) {
    ++stats_.corrupted_samples;
    const int v = rng_.UniformInt(0, n - 1);
    OperatorMetrics& om = m.ops[v];
    if (corrupt_kind == 0) {
      // NaN gauges — a collector bug surfaced as not-a-number.
      om.busy_frac = std::numeric_limits<double>::quiet_NaN();
      om.useful_time_frac_observed = std::numeric_limits<double>::quiet_NaN();
    } else {
      // Negative counters — a wrapped/reset counter delta.
      om.input_rate = -std::abs(om.input_rate) - 1.0;
      om.output_rate = -std::abs(om.output_rate) - 1.0;
    }
  }

  has_last_sample_ = true;
  last_sample_ = m;
  return m;
}

}  // namespace streamtune::sim
