// Flink-like stream engine simulator.
//
// Exposes exactly the signals a tuner can read off a real Flink cluster:
// busyTimeMsPerSecond / idleTimeMsPerSecond / backPressuredTimeMsPerSecond
// fractions, per-operator CPU load, achieved input/output rates, and a noisy
// "useful time" measurement. Reconfiguration follows the paper's DS2-style
// stop-and-restart protocol, with a virtual stabilization wait accounted per
// deployment so tuning time (Fig. 7b) can be reported.

#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dataflow/job_graph.h"
#include "sim/cost_model.h"
#include "sim/flow_solver.h"

namespace streamtune::sim {

/// Runtime metrics for one logical operator, as a tuner would observe them.
struct OperatorMetrics {
  double busy_frac = 0;           ///< busyTimeMsPerSecond / 1000
  double idle_frac = 0;           ///< idleTimeMsPerSecond / 1000
  double backpressured_frac = 0;  ///< backPressuredTimeMsPerSecond / 1000
  double cpu_load = 0;            ///< average per-instance CPU utilization
  double input_rate = 0;          ///< achieved records/second in
  double output_rate = 0;         ///< achieved records/second out
  double desired_input_rate = 0;  ///< unthrottled demand (rec/s)
  /// Noisy busy-fraction measurement — the "useful time" DS2/ContTune divide
  /// by. Can under- or over-estimate the true busy fraction.
  double useful_time_frac_observed = 0;
  bool backpressured = false;  ///< Flink rule: backpressured_frac > 10%
  bool saturated = false;      ///< running at full capacity
};

/// Job-level metrics for one measurement interval.
struct JobMetrics {
  std::vector<OperatorMetrics> ops;
  /// True when a bottleneck exists anywhere (some operator saturated), i.e.
  /// the job cannot sustain the offered source rates.
  bool job_backpressure = false;
  /// True when the backpressure is *sustained and observable*: some
  /// operator spends more than the engine's flag threshold of its time
  /// backpressured (Flink's 10% rule), or a source is throttled by more
  /// than that margin. Hairline saturation (lambda ~ 0.99) does not count.
  /// This is what an operator team would page on, and what Table III's
  /// backpressure occurrences mean.
  bool severe_backpressure = false;
  /// Sustained fraction of the offered source rates, in (0, 1].
  double lambda = 1.0;
  /// Sum of deployed parallelism degrees (task slots used).
  int total_parallelism = 0;
  /// Effective cores burned: sum over operators of p_v * busy_v.
  double used_cores = 0;

  /// Checks physical invariants (finite values, fractions in [0,1], non-
  /// negative rates, lambda in (0,1]) — the first line of defense against
  /// corrupted metric samples. Implemented in sim/metrics_sanitizer.cc.
  Status Validate(double tolerance = 1e-6) const;
};

/// Simulator knobs.
struct SimConfig {
  /// Physical ceiling on per-operator parallelism (paper: 100 slots).
  int max_parallelism = 100;
  /// Relative noise on the useful-time measurement (sigma of a clamped
  /// Gaussian). 0 disables noise.
  double useful_time_noise = 0.08;
  /// An operator counts as backpressured when its backpressured fraction
  /// exceeds this share (Flink's 10% rule, Sec. V-B).
  double backpressure_threshold = 0.10;
  /// Virtual wall-clock minutes charged per stop-and-restart deployment
  /// (paper enforces a 10-minute stabilization wait).
  double stabilization_minutes = 10.0;
  /// Live reconfiguration (the paper's Sec. VII extension, as deployed at
  /// ByteDance): parallelism is applied through runtime APIs without
  /// stopping the job, so a redeployment only costs
  /// `live_stabilization_minutes` of settling time and no downtime.
  bool live_reconfiguration = false;
  double live_stabilization_minutes = 1.0;
  uint64_t noise_seed = 1234;
};

/// A deployed streaming job on the simulated cluster.
class FlinkSimulator {
 public:
  /// The graph must validate; source rates are taken from the graph's source
  /// operator specs and can be changed later with SetSourceRate.
  FlinkSimulator(JobGraph graph, PerfModel model, SimConfig config = {});

  /// Changes the external rate of a source operator (workload fluctuation).
  Status SetSourceRate(int op_id, double rate);
  /// Scales every source to `factor` times its base (construction-time) rate.
  void ScaleAllSources(double factor);

  /// Stops and restarts the job with new parallelism degrees (one per
  /// operator, each in [1, max_parallelism]). Counts a reconfiguration when
  /// the assignment differs from the current one, and charges the
  /// stabilization wait to virtual time.
  Status Deploy(const std::vector<int>& parallelism);

  /// Samples runtime metrics. Requires a prior successful Deploy.
  Result<JobMetrics> Measure();

  const JobGraph& graph() const { return graph_; }
  const std::vector<int>& parallelism() const { return parallelism_; }
  const SimConfig& config() const { return config_; }
  bool deployed() const { return deployed_; }

  int deployment_count() const { return deployment_count_; }
  /// Deployments that changed the parallelism assignment (excludes the
  /// initial deployment).
  int reconfiguration_count() const { return reconfiguration_count_; }
  /// Virtual minutes elapsed in stabilization waits.
  double virtual_minutes() const { return virtual_minutes_; }
  /// Charges extra virtual minutes (retry backoff waits) to the clock.
  void AdvanceVirtualMinutes(double minutes) { virtual_minutes_ += minutes; }
  /// Resets deployment/reconfiguration counters and the virtual clock
  /// (used between tuning processes).
  void ResetCounters();

  /// Ground-truth cost model — for tests and oracle baselines only; tuners
  /// must not read this.
  const PerfModel& perf_model() const { return model_; }

  /// Ground-truth minimum backpressure-free parallelism per operator for the
  /// current source rates (the paper's tuning objective, Sec. II-B). Returns
  /// max_parallelism where even that is insufficient.
  std::vector<int> OracleParallelism() const;

  /// Current external source rates indexed by operator id (0 = non-source).
  const std::vector<double>& source_rates() const { return source_rates_; }

 private:
  FlowResult Solve() const;

  JobGraph graph_;
  PerfModel model_;
  SimConfig config_;
  Rng noise_rng_;

  std::vector<double> source_rates_;
  std::vector<double> selectivity_;
  std::vector<int> parallelism_;
  bool deployed_ = false;
  int deployment_count_ = 0;
  int reconfiguration_count_ = 0;
  double virtual_minutes_ = 0;
};

}  // namespace streamtune::sim
