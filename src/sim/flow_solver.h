// Steady-state dataflow flow solver.
//
// Given a job graph, per-operator capacities (records/second), selectivities
// and external source rates, computes the steady-state flow fixed point under
// backpressure: desired (unthrottled) rates, the sustainable throughput
// fraction lambda, achieved rates, per-operator busy fractions, saturation,
// and which operators are blocked by a saturated descendant (the cascading
// effect described in Sec. II-A of the paper).

#pragma once

#include <vector>

#include "dataflow/job_graph.h"

namespace streamtune::sim {

/// Output of one steady-state solve. All vectors are indexed by operator id.
struct FlowResult {
  /// Input rate each operator would receive if nothing throttled (rec/s).
  /// For sources this is the external production demand.
  std::vector<double> desired_in;
  /// Output rate under no throttling (desired_in * selectivity).
  std::vector<double> desired_out;
  /// desired_in / capacity: > 1 means the operator cannot sustain the demand.
  std::vector<double> utilization_desired;
  /// Achieved input rate after backpressure throttling (lambda * desired_in).
  std::vector<double> achieved_in;
  /// Achieved output rate.
  std::vector<double> achieved_out;
  /// Fraction of time each operator spends processing (achieved_in/capacity).
  std::vector<double> busy;
  /// True when the operator runs at (effectively) full capacity.
  std::vector<bool> saturated;
  /// True when some strict descendant is saturated, i.e. this operator is
  /// blocked by downstream backpressure (cascading effect).
  std::vector<bool> blocked;
  /// Fraction of the external source rates the pipeline sustains, in (0, 1].
  double lambda = 1.0;

  /// True if the job cannot sustain the offered source rates: some operator
  /// is saturated (a bottleneck exists somewhere in the pipeline).
  bool AnyBackpressure() const;
};

/// Solves the steady-state flow.
///
/// `capacity[v]`    operator v's processing ability at its deployed
///                  parallelism (records/second, > 0);
/// `selectivity[v]` output records per input record;
/// `source_rate[v]` external production rate for sources, 0 for non-sources.
///
/// The graph must be a valid DAG (see JobGraph::Validate). All source rates
/// are throttled by a single factor lambda such that no operator exceeds its
/// capacity — the steady state a credit-based backpressure mechanism (Flink)
/// converges to.
FlowResult SolveFlow(const JobGraph& graph,
                     const std::vector<double>& capacity,
                     const std::vector<double>& selectivity,
                     const std::vector<double>& source_rate);

}  // namespace streamtune::sim
