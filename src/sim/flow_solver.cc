#include "sim/flow_solver.h"

#include <algorithm>
#include <cassert>

namespace streamtune::sim {

namespace {
// Utilization within this margin of capacity counts as saturated.
constexpr double kSaturationTolerance = 1e-9;
}  // namespace

bool FlowResult::AnyBackpressure() const {
  for (size_t i = 0; i < saturated.size(); ++i) {
    if (saturated[i]) return true;
  }
  return false;
}

FlowResult SolveFlow(const JobGraph& graph,
                     const std::vector<double>& capacity,
                     const std::vector<double>& selectivity,
                     const std::vector<double>& source_rate) {
  const int n = graph.num_operators();
  assert(static_cast<int>(capacity.size()) == n);
  assert(static_cast<int>(selectivity.size()) == n);
  assert(static_cast<int>(source_rate.size()) == n);

  FlowResult r;
  r.desired_in.assign(n, 0.0);
  r.desired_out.assign(n, 0.0);
  r.utilization_desired.assign(n, 0.0);
  r.achieved_in.assign(n, 0.0);
  r.achieved_out.assign(n, 0.0);
  r.busy.assign(n, 0.0);
  r.saturated.assign(n, false);
  r.blocked.assign(n, false);

  auto order_res = graph.TopologicalOrder();
  assert(order_res.ok() && "SolveFlow requires an acyclic graph");
  const std::vector<int>& order = order_res.value();

  // Pass 1: propagate unthrottled demand downstream in topological order.
  for (int v : order) {
    if (graph.upstream(v).empty()) {
      r.desired_in[v] = source_rate[v];
    } else {
      double in = 0;
      for (int u : graph.upstream(v)) in += r.desired_out[u];
      r.desired_in[v] = in;
    }
    r.desired_out[v] = r.desired_in[v] * selectivity[v];
  }

  // Pass 2: the sustainable throughput fraction is set by the most
  // overloaded operator.
  double max_util = 0.0;
  for (int v = 0; v < n; ++v) {
    assert(capacity[v] > 0);
    r.utilization_desired[v] = r.desired_in[v] / capacity[v];
    max_util = std::max(max_util, r.utilization_desired[v]);
  }
  r.lambda = max_util > 1.0 ? 1.0 / max_util : 1.0;

  // Pass 3: achieved rates and busy fractions at the throttled fixed point.
  for (int v = 0; v < n; ++v) {
    r.achieved_in[v] = r.lambda * r.desired_in[v];
    r.achieved_out[v] = r.lambda * r.desired_out[v];
    r.busy[v] = r.achieved_in[v] / capacity[v];
    r.saturated[v] = r.busy[v] >= 1.0 - kSaturationTolerance &&
                     r.achieved_in[v] > 0.0;
  }

  // Pass 4: cascading effect — every operator with a saturated strict
  // descendant is blocked (spends time backpressured). Reverse topological
  // propagation of "has saturated descendant".
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int v = *it;
    for (int d : graph.downstream(v)) {
      if (r.saturated[d] || r.blocked[d]) {
        r.blocked[v] = true;
        break;
      }
    }
  }
  return r;
}

}  // namespace streamtune::sim
