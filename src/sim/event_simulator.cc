#include "sim/event_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <queue>

#include "common/rng.h"
#include "sim/flow_solver.h"

namespace streamtune::sim {

namespace {

enum class EventType { kExternalArrival, kServiceComplete };

struct Event {
  double time;
  EventType type;
  int op;
  uint64_t seq;  // tie-breaker for determinism
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct OperatorState {
  int parallelism = 1;
  double mean_service = 1e-5;  // seconds per record per server (rescaled)
  double selectivity = 1.0;
  int capacity = 64;           // input queue capacity (sources: unbounded)
  bool is_source = false;

  int queue = 0;
  int busy = 0;     // servers currently processing
  std::deque<int> blocked;  // blocked servers, each holding k outputs

  // Statistics (accumulated after warmup).
  double busy_time = 0, blocked_time = 0;
  double queue_time = 0;  // integral of queue length
  long consumed = 0, delivered = 0, offered = 0;
};

class Simulation {
 public:
  Simulation(const JobGraph& graph, const PerfModel& model,
             const std::vector<int>& parallelism,
             const std::vector<double>& source_rate,
             const EventSimConfig& config)
      : graph_(graph), config_(config), rng_(config.seed) {
    const int n = graph.num_operators();
    ops_.resize(n);

    // Estimate total event volume to pick the time rescale factor.
    std::vector<double> huge(n, 1e18), sel(n);
    for (int v = 0; v < n; ++v) sel[v] = model.Selectivity(v);
    FlowResult flow = SolveFlow(graph, huge, sel, source_rate);
    double total_demand = 0;
    for (int v = 0; v < n; ++v) total_demand += flow.desired_in[v];
    double projected = total_demand * config.duration_seconds;
    rescale_ = std::max(1.0, projected / config.max_events);

    for (int v = 0; v < n; ++v) {
      OperatorState& s = ops_[v];
      s.parallelism = parallelism[v];
      // Per-server rate = PA(p)/p; service time grows with the rescale so
      // utilizations are invariant.
      double per_server = model.ProcessingAbility(v, parallelism[v]) /
                          parallelism[v];
      s.mean_service = rescale_ / per_server;
      s.selectivity = sel[v];
      s.is_source = graph.op(v).is_source();
      s.capacity = s.is_source ? std::numeric_limits<int>::max()
                               : config.queue_capacity;
      if (s.is_source && source_rate[v] > 0) {
        scaled_rate_.push_back({v, source_rate[v] / rescale_});
      }
    }
    for (const auto& [v, rate] : scaled_rate_) {
      Schedule(Exponential(1.0 / rate), EventType::kExternalArrival, v);
    }
  }

  EventSimResult Run() {
    while (!events_.empty()) {
      Event e = events_.top();
      if (e.time > config_.duration_seconds) break;
      events_.pop();
      AdvanceTime(e.time);
      if (e.type == EventType::kExternalArrival) {
        HandleArrival(e.op);
      } else {
        HandleComplete(e.op);
      }
      ++processed_;
    }
    AdvanceTime(config_.duration_seconds);
    return Finalize();
  }

 private:
  double Exponential(double mean) {
    double u = rng_.Uniform();
    if (u < 1e-12) u = 1e-12;
    return -mean * std::log(u);
  }

  void Schedule(double delay, EventType type, int op) {
    events_.push(Event{now_ + delay, type, op, seq_++});
  }

  void AdvanceTime(double t) {
    double dt = t - now_;
    if (dt <= 0) {
      now_ = std::max(now_, t);
      return;
    }
    if (t > config_.warmup_seconds) {
      double effective = std::min(dt, t - config_.warmup_seconds);
      for (OperatorState& s : ops_) {
        s.busy_time += effective * s.busy / s.parallelism;
        s.blocked_time +=
            effective * static_cast<double>(s.blocked.size()) /
            s.parallelism;
        if (!s.is_source) s.queue_time += effective * s.queue;
      }
    }
    now_ = t;
  }

  bool counting() const { return now_ > config_.warmup_seconds; }

  void HandleArrival(int v) {
    OperatorState& s = ops_[v];
    ++s.queue;
    if (counting()) ++s.offered;
    TryStartService(v);
    // Next external arrival.
    double rate = 0;
    for (const auto& [op, r] : scaled_rate_) {
      if (op == v) rate = r;
    }
    Schedule(Exponential(1.0 / rate), EventType::kExternalArrival, v);
  }

  void TryStartService(int v) {
    OperatorState& s = ops_[v];
    while (s.queue > 0 &&
           s.busy + static_cast<int>(s.blocked.size()) < s.parallelism) {
      --s.queue;
      ++s.busy;
      if (counting()) ++s.consumed;
      Schedule(Exponential(s.mean_service), EventType::kServiceComplete, v);
      // Space freed in v's queue: upstream blocked servers may proceed.
      for (int u : graph_.upstream(v)) RetryBlocked(u);
    }
  }

  int DrawOutputs(double selectivity) {
    int whole = static_cast<int>(selectivity);
    double frac = selectivity - whole;
    return whole + (rng_.Uniform() < frac ? 1 : 0);
  }

  bool CanDeliver(int v, int k) const {
    if (k == 0) return true;
    for (int d : graph_.downstream(v)) {
      if (ops_[d].queue + k > ops_[d].capacity) return false;
    }
    return true;
  }

  void Deliver(int v, int k) {
    OperatorState& s = ops_[v];
    if (counting()) s.delivered += k;
    for (int d : graph_.downstream(v)) {
      ops_[d].queue += k;
      if (counting() && ops_[d].is_source) ++ops_[d].offered;
      TryStartService(d);
    }
  }

  void HandleComplete(int v) {
    OperatorState& s = ops_[v];
    --s.busy;
    int k = DrawOutputs(s.selectivity);
    if (CanDeliver(v, k)) {
      Deliver(v, k);
      TryStartService(v);
    } else {
      // Buffer exhaustion downstream: the server holds its outputs and the
      // operator spends this server's time backpressured.
      s.blocked.push_back(k);
    }
  }

  void RetryBlocked(int u) {
    OperatorState& s = ops_[u];
    while (!s.blocked.empty() && CanDeliver(u, s.blocked.front())) {
      int k = s.blocked.front();
      s.blocked.pop_front();
      Deliver(u, k);
      TryStartService(u);
    }
  }

  EventSimResult Finalize() {
    EventSimResult r;
    const int n = graph_.num_operators();
    double window = config_.duration_seconds - config_.warmup_seconds;
    r.busy_frac.resize(n);
    r.blocked_frac.resize(n);
    r.idle_frac.resize(n);
    r.input_rate.resize(n);
    r.output_rate.resize(n);
    r.avg_queue_length.resize(n);
    long offered_total = 0, source_emitted = 0;
    for (int v = 0; v < n; ++v) {
      const OperatorState& s = ops_[v];
      r.busy_frac[v] = s.busy_time / window;
      r.blocked_frac[v] = s.blocked_time / window;
      r.idle_frac[v] =
          std::max(0.0, 1.0 - r.busy_frac[v] - r.blocked_frac[v]);
      r.input_rate[v] = s.consumed / window * rescale_;
      r.output_rate[v] = s.delivered / window * rescale_;
      r.avg_queue_length[v] = s.queue_time / window;
      if (s.is_source) {
        offered_total += s.offered;
        source_emitted += s.delivered;
      }
    }
    r.source_throughput_ratio =
        offered_total > 0
            ? std::min(1.0, static_cast<double>(source_emitted) /
                                offered_total)
            : 1.0;
    r.events_processed = processed_;
    r.time_rescale = rescale_;
    return r;
  }

  const JobGraph& graph_;
  EventSimConfig config_;
  Rng rng_;
  std::vector<OperatorState> ops_;
  std::vector<std::pair<int, double>> scaled_rate_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events_;
  double now_ = 0;
  double rescale_ = 1.0;
  uint64_t seq_ = 0;
  size_t processed_ = 0;
};

}  // namespace

Result<EventSimResult> RunEventSimulation(
    const JobGraph& graph, const PerfModel& model,
    const std::vector<int>& parallelism,
    const std::vector<double>& source_rate, EventSimConfig config) {
  ST_RETURN_NOT_OK(graph.Validate());
  const int n = graph.num_operators();
  if (static_cast<int>(parallelism.size()) != n ||
      static_cast<int>(source_rate.size()) != n) {
    return Status::InvalidArgument("parallelism/source_rate size mismatch");
  }
  for (int p : parallelism) {
    if (p < 1) return Status::InvalidArgument("parallelism must be >= 1");
  }
  if (config.warmup_seconds >= config.duration_seconds) {
    return Status::InvalidArgument("warmup must be shorter than duration");
  }
  double any_rate = 0;
  for (int v = 0; v < n; ++v) {
    if (graph.op(v).is_source()) any_rate += source_rate[v];
  }
  if (any_rate <= 0) {
    return Status::InvalidArgument("no positive source rate");
  }
  Simulation sim(graph, model, parallelism, source_rate, config);
  return sim.Run();
}

}  // namespace streamtune::sim
