#include "sim/metrics_aggregator.h"

#include <algorithm>
#include <cmath>

#include "common/parallel_reduce.h"

namespace streamtune::sim {

namespace {

// Fixed-point micro-units: exact integer addition in any order.
int64_t Micros(double x) { return std::llround(x * 1e6); }

}  // namespace

void FlowMetricsAccum::Add(const FlowResult& flow) {
  samples += 1;
  if (flow.AnyBackpressure()) backpressured_samples += 1;
  operators += static_cast<int64_t>(flow.busy.size());
  for (size_t v = 0; v < flow.busy.size(); ++v) {
    if (flow.saturated[v]) saturated_operators += 1;
    if (flow.blocked[v]) blocked_operators += 1;
    busy_micros += Micros(flow.busy[v]);
  }
  min_lambda = std::min(min_lambda, flow.lambda);
  max_lambda = std::max(max_lambda, flow.lambda);
  lambda_micros += Micros(flow.lambda);
}

void FlowMetricsAccum::Merge(const FlowMetricsAccum& other) {
  samples += other.samples;
  backpressured_samples += other.backpressured_samples;
  operators += other.operators;
  saturated_operators += other.saturated_operators;
  blocked_operators += other.blocked_operators;
  min_lambda = std::min(min_lambda, other.min_lambda);
  max_lambda = std::max(max_lambda, other.max_lambda);
  lambda_micros += other.lambda_micros;
  busy_micros += other.busy_micros;
}

FlowMetricsAccum AggregateFlowMetrics(
    ThreadPool* pool, int64_t count,
    const std::function<const FlowResult&(int64_t)>& solve_at,
    ReduceStrategy strategy) {
  ReduceOptions opts;
  opts.strategy = strategy;
  opts.algebra = CombineAlgebra::kCommutative;
  return ParallelReduce(
      pool, 0, count, FlowMetricsAccum{},
      [&](int64_t i) {
        FlowMetricsAccum one;
        one.Add(solve_at(i));
        return one;
      },
      [](FlowMetricsAccum& a, const FlowMetricsAccum& b) { a.Merge(b); },
      opts);
}

}  // namespace streamtune::sim
