#include "core/labeling.h"

namespace streamtune::core {

std::vector<int> LabelBottlenecks(const JobGraph& graph,
                                  const sim::JobMetrics& metrics,
                                  const LabelingOptions& options) {
  const int n = graph.num_operators();
  std::vector<int> labels(n, -1);  // Line 1: unlabeled.

  // Lines 2-6: no job-level backpressure -> every operator keeps up.
  if (!metrics.job_backpressure) {
    for (int v = 0; v < n; ++v) labels[v] = 0;
    return labels;
  }

  // Line 7: frontier O_b = backpressured operators none of whose downstream
  // operators are backpressured.
  std::vector<bool> frontier(n, false);
  for (int v = 0; v < n; ++v) {
    if (!metrics.ops[v].backpressured) continue;
    bool downstream_bp = false;
    for (int d : graph.downstream(v)) {
      if (metrics.ops[d].backpressured) {
        downstream_bp = true;
        break;
      }
    }
    frontier[v] = !downstream_bp;
  }

  // Lines 8-16: classify the frontier's downstream operators by resource
  // utilization.
  for (int v = 0; v < n; ++v) {
    if (!frontier[v]) continue;
    for (int d : graph.downstream(v)) {
      labels[d] = metrics.ops[d].cpu_load > options.cpu_threshold ? 1 : 0;
    }
  }

  // Operators running at full capacity while the job is backpressured are
  // bottlenecks by definition. This covers two cases the frontier scan
  // cannot see: saturated sources (their throttled "upstream" is the
  // external producer, outside the DAG) and mild bottlenecks whose induced
  // backpressure fraction stays under the engine's 10% flag threshold.
  for (int v = 0; v < n; ++v) {
    if (metrics.ops[v].saturated) labels[v] = 1;
  }
  return labels;
}

}  // namespace streamtune::core
