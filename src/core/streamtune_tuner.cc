#include "core/streamtune_tuner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "baselines/ds2.h"

namespace streamtune::core {

const char* FineTuneModelName(FineTuneModel m) {
  switch (m) {
    case FineTuneModel::kSvm:
      return "SVM";
    case FineTuneModel::kXgboost:
      return "XGBoost";
    case FineTuneModel::kNn:
      return "NN";
  }
  return "?";
}

StreamTuneTuner::StreamTuneTuner(
    std::shared_ptr<const PretrainedBundle> bundle, StreamTuneOptions options)
    : bundle_(std::move(bundle)), options_(options) {}

std::string StreamTuneTuner::name() const {
  return options_.model == FineTuneModel::kXgboost
             ? "StreamTune"
             : std::string("StreamTune-") + FineTuneModelName(options_.model);
}

std::unique_ptr<ml::BottleneckModel> StreamTuneTuner::MakeModel(
    int embedding_dim) const {
  switch (options_.model) {
    case FineTuneModel::kSvm:
      return std::make_unique<ml::MonotonicSvm>(embedding_dim, options_.svm);
    case FineTuneModel::kXgboost:
      return std::make_unique<ml::MonotonicGbdt>(embedding_dim,
                                                 options_.gbdt);
    case FineTuneModel::kNn:
      return std::make_unique<ml::NnClassifier>(embedding_dim, options_.nn);
  }
  return nullptr;
}

void StreamTuneTuner::SeedFeedback(const std::string& job,
                                   std::vector<ml::LabeledSample> samples) {
  if (samples.size() > kMaxAccumulatedSamples) {
    samples.erase(samples.begin(),
                  samples.begin() + (samples.size() - kMaxAccumulatedSamples));
  }
  accumulated_[job] = std::move(samples);
}

const std::vector<ml::LabeledSample>& StreamTuneTuner::FeedbackFor(
    const std::string& job) const {
  static const std::vector<ml::LabeledSample> kEmpty;
  auto it = accumulated_.find(job);
  return it == accumulated_.end() ? kEmpty : it->second;
}

void StreamTuneTuner::BatchedInference(const std::vector<PendingJob>& jobs) {
  // Group the stale-cache jobs by (bundle, cluster) — each group shares one
  // frozen encoder, so its members can ride one batched forward. First-seen
  // order; batches are scheduler-sized, so linear search beats a map here.
  struct Group {
    const PretrainedBundle* bundle = nullptr;
    int cluster = -1;
    std::vector<size_t> members;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const PendingJob& job = jobs[i];
    assert(job.tuner != nullptr && job.graph != nullptr &&
           job.rates != nullptr);
    const PretrainedBundle* bundle = job.tuner->bundle_.get();
    const int cluster = bundle->AssignCluster(*job.graph);
    const EmbeddingCache& c = job.tuner->embedding_cache_;
    if (c.valid && c.cluster == cluster && c.graph_name == job.graph->name() &&
        c.num_operators == job.graph->num_operators() &&
        c.rates == *job.rates) {
      continue;  // already primed for exactly this query
    }
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.bundle == bundle && cand.cluster == cluster) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(Group{bundle, cluster, {}});
      g = &groups.back();
    }
    g->members.push_back(i);
  }

  for (const Group& g : groups) {
    std::vector<PretrainedBundle::EmbeddingQuery> queries;
    queries.reserve(g.members.size());
    for (size_t i : g.members) {
      queries.push_back(
          PretrainedBundle::EmbeddingQuery{jobs[i].graph, jobs[i].rates});
    }
    std::vector<ml::Matrix> embeddings =
        g.bundle->BatchedAgnosticEmbeddings(g.cluster, queries);
    for (size_t k = 0; k < g.members.size(); ++k) {
      const PendingJob& job = jobs[g.members[k]];
      EmbeddingCache& c = job.tuner->embedding_cache_;
      c.embeddings = std::move(embeddings[k]);
      c.cluster = g.cluster;
      c.graph_name = job.graph->name();
      c.num_operators = job.graph->num_operators();
      c.rates = *job.rates;
      c.valid = true;
    }
  }
}

const ml::Matrix& StreamTuneTuner::CachedAgnosticEmbeddings(
    int cluster, const JobGraph& g, const std::vector<double>& rates) const {
  EmbeddingCache& c = embedding_cache_;
  if (c.valid && c.cluster == cluster && c.graph_name == g.name() &&
      c.num_operators == g.num_operators() && c.rates == rates) {
    return c.embeddings;
  }
  c.embeddings = bundle_->AgnosticEmbeddings(cluster, g, rates);
  c.cluster = cluster;
  c.graph_name = g.name();
  c.num_operators = g.num_operators();
  c.rates = rates;
  c.valid = true;
  return c.embeddings;
}

int StreamTuneTuner::MinSafeParallelism(const ml::BottleneckModel& model,
                                        const std::vector<double>& embedding,
                                        int p_max) const {
  const double thr = options_.probability_threshold;
  if (model.PredictProbability(embedding, p_max) >= thr) return p_max;
  if (model.PredictProbability(embedding, 1) < thr) return 1;
  int lo = 1, hi = p_max;  // prob(lo) >= thr > prob(hi)
  while (lo + 1 < hi) {
    int mid = (lo + hi) / 2;
    if (model.PredictProbability(embedding, mid) < thr) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::vector<int> StreamTuneTuner::Recommend(const sim::StreamEngine& engine,
                                            const ml::BottleneckModel& model,
                                            int cluster) const {
  const JobGraph& g = engine.graph();
  const ml::Matrix& emb =
      CachedAgnosticEmbeddings(cluster, g, engine.current_source_rates());
  std::vector<int> rec(g.num_operators(), 1);
  auto order = g.TopologicalOrder();
  assert(order.ok() && "deployed job graphs are acyclic");
  for (int v : order.value()) {
    rec[v] = MinSafeParallelism(model, emb.Row(v), engine.max_parallelism());
  }
  return rec;
}

StreamTuneTuner::Session::Session(StreamTuneTuner* tuner,
                                  sim::StreamEngine* engine)
    : tuner_(tuner),
      engine_(engine),
      loop_(engine, tuner->options_.robustness),
      reconfig_before_(engine->reconfiguration_count()),
      minutes_before_(engine->virtual_minutes()) {}

Status StreamTuneTuner::Session::Init() {
  cluster_ = tuner_->bundle_->AssignCluster(engine_->graph());
  emb_dim_ =
      tuner_->bundle_->cluster(cluster_).encoder.config().hidden_dim +
      FeatureEncoder::kRateFeatures;

  // Algorithm 2, line 3: warm-up dataset from the cluster's history, plus
  // the feedback this tuner has already accumulated for this job from
  // earlier tuning processes ("iteratively refines ... for the target job").
  dataset_ = tuner_->bundle_->WarmUpDataset(
      cluster_, tuner_->options_.warmup_records, tuner_->options_.seed);
  accumulated_ = &tuner_->accumulated_[engine_->graph().name()];
  dataset_.insert(dataset_.end(), accumulated_->begin(), accumulated_->end());

  // The pre-tuning state, shared by every method, tells Algorithm 1 where
  // the current bottlenecks are before the first recommendation.
  ST_ASSIGN_OR_RETURN(last_metrics_, loop_.Measure());
  last_labels_ = LabelBottlenecks(engine_->graph(), last_metrics_);
  last_backpressure_ = last_metrics_.job_backpressure;
  last_severe_ = last_metrics_.severe_backpressure;

  // The last deployment observed to run without backpressure; used to
  // revert a failed scale-down probe.
  if (!last_backpressure_) last_clean_ = engine_->parallelism();

  // Within-process bracketing from this process's own observations at the
  // current rates: a bottleneck at degree d pins the lower bound above d,
  // a clean run at degree d pins the upper bound at d. Clamping every
  // recommendation into the bracket makes the process converge
  // monotonically instead of ping-ponging across the threshold.
  const int n_ops = engine_->graph().num_operators();
  bracket_lo_.assign(n_ops, 1);
  bracket_hi_.assign(n_ops, engine_->max_parallelism());
  return Status::OK();
}

Result<bool> StreamTuneTuner::Session::Step() {
  if (done_) return true;
  const int iter = outcome_.iterations;
  if (iter >= tuner_->options_.max_iterations) {
    done_ = true;
    return true;
  }
  outcome_.iterations = iter + 1;
  sim::StreamEngine* engine = engine_;
  const int n_ops = engine->graph().num_operators();

  auto total_of = [](const std::vector<int>& p) {
    int t = 0;
    for (int x : p) t += x;
    return t;
  };

  // Line 5: fit the monotonic model to the dataset.
  std::unique_ptr<ml::BottleneckModel> model = tuner_->MakeModel(emb_dim_);
  bool fitted = false;
  if (!dataset_.empty()) {
    fitted = model->Fit(dataset_).ok();
  }

  // Lines 6-9: recommend in topological order. Graceful degradation:
  // when M_f cannot be fitted (e.g. a corrupted dataset under faults),
  // fall back to the DS2-style rate rule for this iteration rather than
  // aborting the tuning process.
  std::vector<int> rec;
  if (fitted) {
    rec = tuner_->Recommend(*engine, *model, cluster_);
  } else if (dataset_.empty()) {
    rec = engine->parallelism();
  } else {
    rec = baselines::Ds2Tuner().Recommend(*engine, last_metrics_);
  }

  // Progress guard: an operator that was just observed to be a bottleneck
  // at its current degree must strictly scale up, even if the refitted
  // model's boundary has not yet moved past it. Guarantees the loop makes
  // progress toward eliminating backpressure instead of stalling.
  if (last_backpressure_) {
    const std::vector<int>& cur = engine->parallelism();
    for (int v = 0; v < engine->graph().num_operators(); ++v) {
      if (last_labels_[v] != 1) continue;
      if (bracket_hi_[v] < engine->max_parallelism()) {
        // A clean degree is already known above: bisect toward it.
        rec[v] = std::max(rec[v], (bracket_lo_[v] + bracket_hi_[v] + 1) / 2);
      } else {
        // No upper evidence yet: jump by the observed demand deficit
        // (unthrottled demand over achieved rate — the same rate logs
        // Algorithm 1 reads), with a small margin; fall back to doubling
        // when no rate was observed.
        const sim::OperatorMetrics& om = last_metrics_.ops[v];
        double factor = om.input_rate > 1e-9
                            ? om.desired_input_rate / om.input_rate
                            : 2.0;
        factor = std::clamp(factor * 1.1, 1.25, 8.0);
        rec[v] = std::min(engine->max_parallelism(),
                          static_cast<int>(std::ceil(cur[v] * factor)));
      }
    }
  } else {
    // Scale-down probes move at most halfway down per step: a drastically
    // wrong downward recommendation would cost a reconfiguration and a
    // backpressure episode to discover.
    const std::vector<int>& cur = engine->parallelism();
    for (int v = 0; v < engine->graph().num_operators(); ++v) {
      rec[v] = std::max(rec[v], (cur[v] + 1) / 2);
    }
  }

  // Clamp into the bracket established by this process's observations,
  // then (hardened mode only) into a bounded step from the deployment.
  for (int v = 0; v < n_ops; ++v) {
    rec[v] = std::clamp(rec[v], bracket_lo_[v], bracket_hi_[v]);
  }
  loop_.ClampStep(&rec);

  // Stop rule (Algorithm 2, line 12): stop when the recommendation no
  // longer differs from the deployed configuration, with hysteresis —
  // once the job runs clean, a redeployment is only worth its cost if the
  // recommendation saves a meaningful amount of parallelism (small +-1
  // model jitter must not trigger endless reconfigurations).
  if (rec == engine->parallelism()) {
    done_ = true;
    return true;
  }
  if (!last_backpressure_) {
    int cur_total = total_of(engine->parallelism());
    int rec_total = total_of(rec);
    int margin = std::max(1, cur_total / 20);
    if (rec_total >= cur_total - margin) {
      done_ = true;
      return true;
    }
  }

  // Line 10: redeploy and monitor. A persistently failing Deploy or
  // Measure degrades gracefully: the loop stops and keeps what it has.
  if (!loop_.Deploy(rec).ok()) {
    done_ = true;
    return true;
  }
  Result<sim::JobMetrics> measured = loop_.Measure();
  if (!measured.ok()) {
    done_ = true;
    return true;
  }
  last_metrics_ = *measured;
  const sim::JobMetrics& metrics = last_metrics_;
  if (metrics.job_backpressure) ++outcome_.backpressure_events;
  if (loop_.MaybeRollback(metrics)) {
    // The regressed deployment was replaced by the last known-good one;
    // refresh the observation so the next iteration labels the restored
    // configuration, and skip folding the regressed sample into the
    // dataset.
    Result<sim::JobMetrics> restored = loop_.Measure();
    if (!restored.ok()) {
      done_ = true;
      return true;
    }
    last_metrics_ = *restored;
    last_labels_ = LabelBottlenecks(engine->graph(), last_metrics_);
    last_backpressure_ = last_metrics_.job_backpressure;
    last_severe_ = last_metrics_.severe_backpressure;
    if (!last_backpressure_) last_clean_ = engine->parallelism();
    return false;
  }

  // Line 11: fold the fresh Algorithm-1 labels into the dataset (and the
  // per-job accumulator used by future tuning processes). The monotonic
  // assumption licenses augmentation — a bottleneck at p is a bottleneck
  // at every p' < p, and a safe degree stays safe at every p' > p — and
  // job-specific feedback is replicated so it is not drowned out by the
  // generic warm-up samples.
  last_labels_ = LabelBottlenecks(engine->graph(), metrics);
  last_backpressure_ = metrics.job_backpressure;
  last_severe_ = metrics.severe_backpressure;
  if (!last_backpressure_) last_clean_ = engine->parallelism();
  for (int v = 0; v < n_ops; ++v) {
    if (last_labels_[v] == 1) {
      bracket_lo_[v] = std::max(bracket_lo_[v], rec[v] + 1);
      // Bottleneck evidence wins a contradiction (noise can mislabel 0).
      bracket_hi_[v] = std::max(bracket_hi_[v], bracket_lo_[v]);
    } else if (last_labels_[v] == 0) {
      bracket_hi_[v] =
          std::max(bracket_lo_[v], std::min(bracket_hi_[v], rec[v]));
    }
  }
  const ml::Matrix& emb = tuner_->CachedAgnosticEmbeddings(
      cluster_, engine->graph(), engine->current_source_rates());
  const int p_max = engine->max_parallelism();
  for (int v = 0; v < engine->graph().num_operators(); ++v) {
    if (last_labels_[v] < 0) continue;
    ml::LabeledSample s;
    s.embedding = emb.Row(v);
    s.parallelism = rec[v];
    s.label = last_labels_[v];
    std::vector<ml::LabeledSample> induced{s, s, s};  // 3x weight
    if (s.label == 1 && s.parallelism > 1) {
      ml::LabeledSample lower = s;
      lower.parallelism = std::max(1, s.parallelism / 2);
      induced.push_back(lower);
    } else if (s.label == 0 && s.parallelism < p_max) {
      ml::LabeledSample higher = s;
      higher.parallelism = std::min(p_max, 2 * s.parallelism);
      induced.push_back(higher);
    }
    for (ml::LabeledSample& is : induced) {
      dataset_.push_back(is);
      accumulated_->push_back(std::move(is));
    }
    // FIFO eviction: recent feedback reflects the current workload and
    // model state; stale scale-up labels must not dominate forever.
    if (accumulated_->size() > kMaxAccumulatedSamples) {
      accumulated_->erase(
          accumulated_->begin(),
          accumulated_->begin() +
              (accumulated_->size() - kMaxAccumulatedSamples));
    }
  }
  return false;
}

Result<baselines::TuningOutcome> StreamTuneTuner::Session::Finish() {
  done_ = true;
  // A failed scale-down probe at the iteration limit must not leave the job
  // backpressured: revert to the last configuration known to run clean.
  if (last_backpressure_ && !last_clean_.empty() &&
      last_clean_ != engine_->parallelism()) {
    ST_RETURN_NOT_OK(loop_.Deploy(last_clean_));
    ST_ASSIGN_OR_RETURN(sim::JobMetrics metrics, loop_.Measure());
    last_backpressure_ = metrics.job_backpressure;
    last_severe_ = metrics.severe_backpressure;
    ++outcome_.rollbacks;
  }

  outcome_.final_parallelism = engine_->parallelism();
  outcome_.total_parallelism = 0;
  for (int p : outcome_.final_parallelism) outcome_.total_parallelism += p;
  outcome_.reconfigurations =
      engine_->reconfiguration_count() - reconfig_before_;
  outcome_.tuning_minutes = engine_->virtual_minutes() - minutes_before_;
  outcome_.ended_with_backpressure = last_severe_;
  loop_.FillOutcome(&outcome_);
  return outcome_;
}

Result<std::unique_ptr<StreamTuneTuner::Session>> StreamTuneTuner::NewSession(
    sim::StreamEngine* engine) {
  std::unique_ptr<Session> session(new Session(this, engine));
  ST_RETURN_NOT_OK(session->Init());
  return session;
}

Result<baselines::TuningOutcome> StreamTuneTuner::Tune(
    sim::StreamEngine* engine) {
  ST_ASSIGN_OR_RETURN(std::unique_ptr<Session> session, NewSession(engine));
  while (!session->done()) {
    ST_ASSIGN_OR_RETURN(bool stopped, session->Step());
    if (stopped) break;
  }
  return session->Finish();
}

}  // namespace streamtune::core
