#include "core/streamtune_tuner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "baselines/ds2.h"

namespace streamtune::core {

const char* FineTuneModelName(FineTuneModel m) {
  switch (m) {
    case FineTuneModel::kSvm:
      return "SVM";
    case FineTuneModel::kXgboost:
      return "XGBoost";
    case FineTuneModel::kNn:
      return "NN";
  }
  return "?";
}

StreamTuneTuner::StreamTuneTuner(
    std::shared_ptr<const PretrainedBundle> bundle, StreamTuneOptions options)
    : bundle_(std::move(bundle)), options_(options) {}

std::string StreamTuneTuner::name() const {
  return options_.model == FineTuneModel::kXgboost
             ? "StreamTune"
             : std::string("StreamTune-") + FineTuneModelName(options_.model);
}

std::unique_ptr<ml::BottleneckModel> StreamTuneTuner::MakeModel(
    int embedding_dim) const {
  switch (options_.model) {
    case FineTuneModel::kSvm:
      return std::make_unique<ml::MonotonicSvm>(embedding_dim, options_.svm);
    case FineTuneModel::kXgboost:
      return std::make_unique<ml::MonotonicGbdt>(embedding_dim,
                                                 options_.gbdt);
    case FineTuneModel::kNn:
      return std::make_unique<ml::NnClassifier>(embedding_dim, options_.nn);
  }
  return nullptr;
}

void StreamTuneTuner::SeedFeedback(const std::string& job,
                                   std::vector<ml::LabeledSample> samples) {
  if (samples.size() > kMaxAccumulatedSamples) {
    samples.erase(samples.begin(),
                  samples.begin() + (samples.size() - kMaxAccumulatedSamples));
  }
  accumulated_[job] = std::move(samples);
}

const std::vector<ml::LabeledSample>& StreamTuneTuner::FeedbackFor(
    const std::string& job) const {
  static const std::vector<ml::LabeledSample> kEmpty;
  auto it = accumulated_.find(job);
  return it == accumulated_.end() ? kEmpty : it->second;
}

void StreamTuneTuner::BatchedInference(const std::vector<PendingJob>& jobs) {
  // Group the stale-cache jobs by (bundle, cluster) — each group shares one
  // frozen encoder, so its members can ride one batched forward. First-seen
  // order; batches are scheduler-sized, so linear search beats a map here.
  struct Group {
    const PretrainedBundle* bundle = nullptr;
    int cluster = -1;
    std::vector<size_t> members;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const PendingJob& job = jobs[i];
    assert(job.tuner != nullptr && job.graph != nullptr &&
           job.rates != nullptr);
    const PretrainedBundle* bundle = job.tuner->bundle_.get();
    const int cluster = bundle->AssignCluster(*job.graph);
    const EmbeddingCache& c = job.tuner->embedding_cache_;
    if (c.valid && c.cluster == cluster && c.graph_name == job.graph->name() &&
        c.num_operators == job.graph->num_operators() &&
        c.rates == *job.rates) {
      continue;  // already primed for exactly this query
    }
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.bundle == bundle && cand.cluster == cluster) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(Group{bundle, cluster, {}});
      g = &groups.back();
    }
    g->members.push_back(i);
  }

  for (const Group& g : groups) {
    std::vector<PretrainedBundle::EmbeddingQuery> queries;
    queries.reserve(g.members.size());
    for (size_t i : g.members) {
      queries.push_back(
          PretrainedBundle::EmbeddingQuery{jobs[i].graph, jobs[i].rates});
    }
    std::vector<ml::Matrix> embeddings =
        g.bundle->BatchedAgnosticEmbeddings(g.cluster, queries);
    for (size_t k = 0; k < g.members.size(); ++k) {
      const PendingJob& job = jobs[g.members[k]];
      EmbeddingCache& c = job.tuner->embedding_cache_;
      c.embeddings = std::move(embeddings[k]);
      c.cluster = g.cluster;
      c.graph_name = job.graph->name();
      c.num_operators = job.graph->num_operators();
      c.rates = *job.rates;
      c.valid = true;
    }
  }
}

const ml::Matrix& StreamTuneTuner::CachedAgnosticEmbeddings(
    int cluster, const JobGraph& g, const std::vector<double>& rates) const {
  EmbeddingCache& c = embedding_cache_;
  if (c.valid && c.cluster == cluster && c.graph_name == g.name() &&
      c.num_operators == g.num_operators() && c.rates == rates) {
    return c.embeddings;
  }
  c.embeddings = bundle_->AgnosticEmbeddings(cluster, g, rates);
  c.cluster = cluster;
  c.graph_name = g.name();
  c.num_operators = g.num_operators();
  c.rates = rates;
  c.valid = true;
  return c.embeddings;
}

int StreamTuneTuner::MinSafeParallelism(const ml::BottleneckModel& model,
                                        const std::vector<double>& embedding,
                                        int p_max) const {
  const double thr = options_.probability_threshold;
  if (model.PredictProbability(embedding, p_max) >= thr) return p_max;
  if (model.PredictProbability(embedding, 1) < thr) return 1;
  int lo = 1, hi = p_max;  // prob(lo) >= thr > prob(hi)
  while (lo + 1 < hi) {
    int mid = (lo + hi) / 2;
    if (model.PredictProbability(embedding, mid) < thr) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::vector<int> StreamTuneTuner::Recommend(const sim::StreamEngine& engine,
                                            const ml::BottleneckModel& model,
                                            int cluster) const {
  const JobGraph& g = engine.graph();
  const ml::Matrix& emb =
      CachedAgnosticEmbeddings(cluster, g, engine.current_source_rates());
  std::vector<int> rec(g.num_operators(), 1);
  auto order = g.TopologicalOrder();
  assert(order.ok() && "deployed job graphs are acyclic");
  for (int v : order.value()) {
    rec[v] = MinSafeParallelism(model, emb.Row(v), engine.max_parallelism());
  }
  return rec;
}

Result<baselines::TuningOutcome> StreamTuneTuner::Tune(
    sim::StreamEngine* engine) {
  baselines::TuningOutcome outcome;
  baselines::RobustLoop loop(engine, options_.robustness);
  int reconfig_before = engine->reconfiguration_count();
  double minutes_before = engine->virtual_minutes();

  const int cluster = bundle_->AssignCluster(engine->graph());
  const int emb_dim = bundle_->cluster(cluster).encoder.config().hidden_dim +
                      FeatureEncoder::kRateFeatures;

  // Algorithm 2, line 3: warm-up dataset from the cluster's history, plus
  // the feedback this tuner has already accumulated for this job from
  // earlier tuning processes ("iteratively refines ... for the target job").
  std::vector<ml::LabeledSample> dataset =
      bundle_->WarmUpDataset(cluster, options_.warmup_records, options_.seed);
  std::vector<ml::LabeledSample>& accumulated =
      accumulated_[engine->graph().name()];
  dataset.insert(dataset.end(), accumulated.begin(), accumulated.end());

  // The pre-tuning state, shared by every method, tells Algorithm 1 where
  // the current bottlenecks are before the first recommendation.
  ST_ASSIGN_OR_RETURN(sim::JobMetrics last_metrics, loop.Measure());
  std::vector<int> last_labels =
      LabelBottlenecks(engine->graph(), last_metrics);
  bool last_backpressure = last_metrics.job_backpressure;
  bool last_severe = last_metrics.severe_backpressure;

  auto total_of = [](const std::vector<int>& p) {
    int t = 0;
    for (int x : p) t += x;
    return t;
  };
  // The last deployment observed to run without backpressure; used to
  // revert a failed scale-down probe.
  std::vector<int> last_clean;
  if (!last_backpressure) last_clean = engine->parallelism();

  // Within-process bracketing from this process's own observations at the
  // current rates: a bottleneck at degree d pins the lower bound above d,
  // a clean run at degree d pins the upper bound at d. Clamping every
  // recommendation into the bracket makes the process converge
  // monotonically instead of ping-ponging across the threshold.
  const int n_ops = engine->graph().num_operators();
  std::vector<int> bracket_lo(n_ops, 1);
  std::vector<int> bracket_hi(n_ops, engine->max_parallelism());

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    outcome.iterations = iter + 1;

    // Line 5: fit the monotonic model to the dataset.
    std::unique_ptr<ml::BottleneckModel> model = MakeModel(emb_dim);
    bool fitted = false;
    if (!dataset.empty()) {
      fitted = model->Fit(dataset).ok();
    }

    // Lines 6-9: recommend in topological order. Graceful degradation:
    // when M_f cannot be fitted (e.g. a corrupted dataset under faults),
    // fall back to the DS2-style rate rule for this iteration rather than
    // aborting the tuning process.
    std::vector<int> rec;
    if (fitted) {
      rec = Recommend(*engine, *model, cluster);
    } else if (dataset.empty()) {
      rec = engine->parallelism();
    } else {
      rec = baselines::Ds2Tuner().Recommend(*engine, last_metrics);
    }

    // Progress guard: an operator that was just observed to be a bottleneck
    // at its current degree must strictly scale up, even if the refitted
    // model's boundary has not yet moved past it. Guarantees the loop makes
    // progress toward eliminating backpressure instead of stalling.
    if (last_backpressure) {
      const std::vector<int>& cur = engine->parallelism();
      for (int v = 0; v < engine->graph().num_operators(); ++v) {
        if (last_labels[v] != 1) continue;
        if (bracket_hi[v] < engine->max_parallelism()) {
          // A clean degree is already known above: bisect toward it.
          rec[v] = std::max(rec[v], (bracket_lo[v] + bracket_hi[v] + 1) / 2);
        } else {
          // No upper evidence yet: jump by the observed demand deficit
          // (unthrottled demand over achieved rate — the same rate logs
          // Algorithm 1 reads), with a small margin; fall back to doubling
          // when no rate was observed.
          const sim::OperatorMetrics& om = last_metrics.ops[v];
          double factor = om.input_rate > 1e-9
                              ? om.desired_input_rate / om.input_rate
                              : 2.0;
          factor = std::clamp(factor * 1.1, 1.25, 8.0);
          rec[v] = std::min(engine->max_parallelism(),
                            static_cast<int>(std::ceil(cur[v] * factor)));
        }
      }
    } else {
      // Scale-down probes move at most halfway down per step: a drastically
      // wrong downward recommendation would cost a reconfiguration and a
      // backpressure episode to discover.
      const std::vector<int>& cur = engine->parallelism();
      for (int v = 0; v < engine->graph().num_operators(); ++v) {
        rec[v] = std::max(rec[v], (cur[v] + 1) / 2);
      }
    }

    // Clamp into the bracket established by this process's observations,
    // then (hardened mode only) into a bounded step from the deployment.
    for (int v = 0; v < n_ops; ++v) {
      rec[v] = std::clamp(rec[v], bracket_lo[v], bracket_hi[v]);
    }
    loop.ClampStep(&rec);

    // Stop rule (Algorithm 2, line 12): stop when the recommendation no
    // longer differs from the deployed configuration, with hysteresis —
    // once the job runs clean, a redeployment is only worth its cost if the
    // recommendation saves a meaningful amount of parallelism (small +-1
    // model jitter must not trigger endless reconfigurations).
    if (rec == engine->parallelism()) break;
    if (!last_backpressure) {
      int cur_total = total_of(engine->parallelism());
      int rec_total = total_of(rec);
      int margin = std::max(1, cur_total / 20);
      if (rec_total >= cur_total - margin) break;
    }

    // Line 10: redeploy and monitor. A persistently failing Deploy or
    // Measure degrades gracefully: the loop stops and keeps what it has.
    if (!loop.Deploy(rec).ok()) break;
    Result<sim::JobMetrics> measured = loop.Measure();
    if (!measured.ok()) break;
    last_metrics = *measured;
    const sim::JobMetrics& metrics = last_metrics;
    if (metrics.job_backpressure) ++outcome.backpressure_events;
    if (loop.MaybeRollback(metrics)) {
      // The regressed deployment was replaced by the last known-good one;
      // refresh the observation so the next iteration labels the restored
      // configuration, and skip folding the regressed sample into the
      // dataset.
      Result<sim::JobMetrics> restored = loop.Measure();
      if (!restored.ok()) break;
      last_metrics = *restored;
      last_labels = LabelBottlenecks(engine->graph(), last_metrics);
      last_backpressure = last_metrics.job_backpressure;
      last_severe = last_metrics.severe_backpressure;
      if (!last_backpressure) last_clean = engine->parallelism();
      continue;
    }

    // Line 11: fold the fresh Algorithm-1 labels into the dataset (and the
    // per-job accumulator used by future tuning processes). The monotonic
    // assumption licenses augmentation — a bottleneck at p is a bottleneck
    // at every p' < p, and a safe degree stays safe at every p' > p — and
    // job-specific feedback is replicated so it is not drowned out by the
    // generic warm-up samples.
    last_labels = LabelBottlenecks(engine->graph(), metrics);
    last_backpressure = metrics.job_backpressure;
    last_severe = metrics.severe_backpressure;
    if (!last_backpressure) last_clean = engine->parallelism();
    for (int v = 0; v < n_ops; ++v) {
      if (last_labels[v] == 1) {
        bracket_lo[v] = std::max(bracket_lo[v], rec[v] + 1);
        // Bottleneck evidence wins a contradiction (noise can mislabel 0).
        bracket_hi[v] = std::max(bracket_hi[v], bracket_lo[v]);
      } else if (last_labels[v] == 0) {
        bracket_hi[v] =
            std::max(bracket_lo[v], std::min(bracket_hi[v], rec[v]));
      }
    }
    const ml::Matrix& emb = CachedAgnosticEmbeddings(
        cluster, engine->graph(), engine->current_source_rates());
    const int p_max = engine->max_parallelism();
    for (int v = 0; v < engine->graph().num_operators(); ++v) {
      if (last_labels[v] < 0) continue;
      ml::LabeledSample s;
      s.embedding = emb.Row(v);
      s.parallelism = rec[v];
      s.label = last_labels[v];
      std::vector<ml::LabeledSample> induced{s, s, s};  // 3x weight
      if (s.label == 1 && s.parallelism > 1) {
        ml::LabeledSample lower = s;
        lower.parallelism = std::max(1, s.parallelism / 2);
        induced.push_back(lower);
      } else if (s.label == 0 && s.parallelism < p_max) {
        ml::LabeledSample higher = s;
        higher.parallelism = std::min(p_max, 2 * s.parallelism);
        induced.push_back(higher);
      }
      for (ml::LabeledSample& is : induced) {
        dataset.push_back(is);
        accumulated.push_back(std::move(is));
      }
      // FIFO eviction: recent feedback reflects the current workload and
      // model state; stale scale-up labels must not dominate forever.
      if (accumulated.size() > kMaxAccumulatedSamples) {
        accumulated.erase(
            accumulated.begin(),
            accumulated.begin() +
                (accumulated.size() - kMaxAccumulatedSamples));
      }
    }

  }

  // A failed scale-down probe at the iteration limit must not leave the job
  // backpressured: revert to the last configuration known to run clean.
  if (last_backpressure && !last_clean.empty() &&
      last_clean != engine->parallelism()) {
    ST_RETURN_NOT_OK(loop.Deploy(last_clean));
    ST_ASSIGN_OR_RETURN(sim::JobMetrics metrics, loop.Measure());
    last_backpressure = metrics.job_backpressure;
    last_severe = metrics.severe_backpressure;
    ++outcome.rollbacks;
  }

  outcome.final_parallelism = engine->parallelism();
  for (int p : outcome.final_parallelism) outcome.total_parallelism += p;
  outcome.reconfigurations =
      engine->reconfiguration_count() - reconfig_before;
  outcome.tuning_minutes = engine->virtual_minutes() - minutes_before;
  outcome.ended_with_backpressure = last_severe;
  loop.FillOutcome(&outcome);
  return outcome;
}

}  // namespace streamtune::core
