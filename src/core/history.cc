#include "core/history.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "workloads/cost_config.h"

namespace streamtune::core {

double JobCost(const sim::JobMetrics& metrics) {
  // Queueing-style latency proxy: per-operator 1/(1-utilization) penalties
  // plus a large term for the unsustained throughput fraction.
  double cost = 0;
  for (const sim::OperatorMetrics& m : metrics.ops) {
    double u = Clamp(m.busy_frac, 0.0, 0.98);
    cost += 1.0 / (1.0 - u);
  }
  cost /= static_cast<double>(metrics.ops.size());
  cost += 20.0 * (1.0 / std::max(metrics.lambda, 0.05) - 1.0);
  return cost;
}

EngineFactory DefaultFlinkFactory() {
  return [](const JobGraph& job, uint64_t seed) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::SimConfig cfg;
    cfg.noise_seed = seed;
    return std::make_unique<sim::FlinkEngine>(job, model, cfg);
  };
}

std::vector<HistoryRecord> CollectHistory(const std::vector<JobGraph>& jobs,
                                          const HistoryOptions& options,
                                          EngineFactory factory) {
  if (!factory) factory = DefaultFlinkFactory();
  Rng rng(options.seed);
  std::vector<HistoryRecord> records;
  records.reserve(jobs.size() * options.samples_per_job);

  for (const JobGraph& job : jobs) {
    std::unique_ptr<sim::StreamEngine> engine = factory(job, rng.NextU64());
    const int n = job.num_operators();
    const int p_cap =
        std::min(options.max_parallelism, engine->max_parallelism());

    for (int s = 0; s < options.samples_per_job; ++s) {
      double multiplier = rng.Uniform(options.min_rate_multiplier,
                                      options.max_rate_multiplier);
      engine->ScaleAllSources(multiplier);
      std::vector<int> parallelism(n);
      bool near_oracle = rng.Bernoulli(options.near_oracle_fraction);
      std::vector<int> oracle;
      if (near_oracle) oracle = engine->OracleParallelism();
      for (int v = 0; v < n; ++v) {
        if (near_oracle) {
          // Jittered around the true minimum: covers both sides of the
          // operator's bottleneck threshold, as tuned production jobs do.
          double jitter = rng.Uniform(0.6, 1.7);
          parallelism[v] = static_cast<int>(oracle[v] * jitter + 0.5);
        } else {
          // Log-uniform: most thresholds sit at low degrees, so uniform
          // sampling in [1, 60] would label almost every configuration
          // bottleneck-free and starve the classifier of positives.
          double lo = std::log(static_cast<double>(options.min_parallelism));
          double hi = std::log(static_cast<double>(p_cap) + 0.999);
          parallelism[v] = static_cast<int>(std::exp(rng.Uniform(lo, hi)));
        }
        parallelism[v] = std::clamp(parallelism[v], options.min_parallelism,
                                    p_cap);
      }
      Status st = engine->Deploy(parallelism);
      assert(st.ok());
      (void)st;
      auto metrics = engine->Measure();
      assert(metrics.ok());

      HistoryRecord rec;
      rec.graph = job;
      rec.parallelism = parallelism;
      rec.source_rates = engine->current_source_rates();
      rec.labels = LabelBottlenecks(job, *metrics, options.labeling);
      rec.job_cost = JobCost(*metrics);
      rec.backpressure = metrics->job_backpressure;
      records.push_back(std::move(rec));
    }
  }
  return records;
}

}  // namespace streamtune::core
