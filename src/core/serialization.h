// Persistence for execution histories and pre-trained bundles.
//
// A long-running deployment collects histories continuously and pre-trains
// offline; the online tuner then loads the bundle at job-submission time.
// The format is a self-describing, line-oriented text format (versioned,
// human-inspectable, no external dependencies). Loaders validate
// structure and report malformed input through Status.

#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/history.h"
#include "core/pretrain.h"

namespace streamtune::core {

// ---- Durable file writing --------------------------------------------------

/// Checked, atomic file writer shared by every Save* entry point (histories,
/// bundles, the knowledge-base store). Streams into `<path>.tmp`; Commit()
/// flushes, verifies the stream, closes, and atomically renames onto `path`,
/// so readers never observe a partially written file and a failed save
/// leaves any previous file intact. An uncommitted writer removes its temp
/// file on destruction.
class CheckedFileWriter {
 public:
  explicit CheckedFileWriter(std::string path);
  ~CheckedFileWriter();

  CheckedFileWriter(const CheckedFileWriter&) = delete;
  CheckedFileWriter& operator=(const CheckedFileWriter&) = delete;

  /// The output stream (writes go to the temp file until Commit).
  std::ostream& stream() { return os_; }

  /// True while no stream error has been observed.
  bool ok() const { return static_cast<bool>(os_); }

  /// Flush + verify + rename. Returns an error (and removes the temp file)
  /// if the stream failed at any point, including open failure.
  Status Commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream os_;
  bool committed_ = false;
};

// ---- Low-level token parsing ----------------------------------------------

// Strict whitespace-separated token readers shared by every loader in this
// file and by the knowledge-base store. Each fails with InvalidArgument on
// EOF or on a token that does not parse exactly.
namespace io {
Result<std::string> Token(std::istream& is);
Result<std::string> ExpectToken(std::istream& is, const std::string& want);
Result<long long> IntToken(std::istream& is);
Result<double> DoubleToken(std::istream& is);
}  // namespace io

// ---- Job graphs -----------------------------------------------------------

/// Writes one job graph block to `os`.
void WriteJobGraph(std::ostream& os, const JobGraph& graph);
/// Reads one job graph block from `is`.
Result<JobGraph> ReadJobGraph(std::istream& is);

/// Rejects graph/operator names the whitespace-separated format cannot
/// round-trip. Every writer validates before emitting anything.
Status ValidateGraphNames(const JobGraph& graph);

// ---- Histories ------------------------------------------------------------

/// Writes one history record block (graph + parallelism + rates + labels +
/// cost) to `os`.
void WriteHistoryRecord(std::ostream& os, const HistoryRecord& rec);
/// Reads one history record block from `is`.
Result<HistoryRecord> ReadHistoryRecord(std::istream& is);

/// Saves history records to `path` (atomic temp-file + rename).
[[nodiscard]] Status SaveHistory(const std::vector<HistoryRecord>& records,
                   const std::string& path);
/// Loads history records from `path`.
Result<std::vector<HistoryRecord>> LoadHistory(const std::string& path);

// ---- Pre-trained bundles ---------------------------------------------------

/// Writes the bundle payload (clusters with encoder/head weights + corpus)
/// without any file header. Shared by SaveBundle and the knowledge-base
/// store, which embeds the same payload as a checksummed section.
Status WriteBundleBody(std::ostream& os, const PretrainedBundle& bundle);
/// Reads a bundle payload written by WriteBundleBody.
Result<PretrainedBundle> ReadBundleBody(std::istream& is);

/// Saves a pre-trained bundle (atomic temp-file + rename).
[[nodiscard]] Status SaveBundle(const PretrainedBundle& bundle, const std::string& path);
/// Loads a bundle saved with SaveBundle.
[[nodiscard]] Result<PretrainedBundle> LoadBundle(const std::string& path);

}  // namespace streamtune::core
