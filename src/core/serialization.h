// Persistence for execution histories and pre-trained bundles.
//
// A long-running deployment collects histories continuously and pre-trains
// offline; the online tuner then loads the bundle at job-submission time.
// The format is a self-describing, line-oriented text format (versioned,
// human-inspectable, no external dependencies). Loaders validate
// structure and report malformed input through Status.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/history.h"
#include "core/pretrain.h"

namespace streamtune::core {

// ---- Job graphs -----------------------------------------------------------

/// Writes one job graph block to `os`.
void WriteJobGraph(std::ostream& os, const JobGraph& graph);
/// Reads one job graph block from `is`.
Result<JobGraph> ReadJobGraph(std::istream& is);

// ---- Histories ------------------------------------------------------------

/// Saves history records to `path` (overwrites).
Status SaveHistory(const std::vector<HistoryRecord>& records,
                   const std::string& path);
/// Loads history records from `path`.
Result<std::vector<HistoryRecord>> LoadHistory(const std::string& path);

// ---- Pre-trained bundles ---------------------------------------------------

/// Saves a pre-trained bundle (clusters, encoder/head weights, corpus).
Status SaveBundle(const PretrainedBundle& bundle, const std::string& path);
/// Loads a bundle saved with SaveBundle.
Result<PretrainedBundle> LoadBundle(const std::string& path);

}  // namespace streamtune::core
