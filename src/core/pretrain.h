// Offline pre-training phase (Sec. III / IV-A).
//
// Pipeline: cluster the historical dataflow DAGs with GED k-means (Sec.
// IV-C), then per cluster train a GNN-based encoder + MLP prediction head on
// the operator-level bottleneck classification task, with the recorded
// parallelism degrees injected through the FUSE layer and masked BCE over
// the Algorithm-1 labels. The resulting bundle serves the online phase:
// nearest-cluster lookup, frozen encoders, and warm-up datasets of
// (parallelism-agnostic embedding, parallelism, label) samples.

#pragma once

#include <vector>

#include "core/history.h"
#include "dataflow/feature_encoder.h"
#include "graph/ged_kmeans.h"
#include "index/nearest_center_index.h"
#include "ml/bottleneck_model.h"
#include "ml/gnn.h"
#include "ml/nn.h"

namespace streamtune::core {

/// Pre-training knobs.
struct PretrainOptions {
  /// When false, skip clustering and train one global encoder (the paper's
  /// limited-dataset fallback, Sec. VII).
  bool use_clustering = true;
  /// Number of clusters; 0 = choose with the elbow method over [2, max_k].
  int k = 0;
  int max_k = 5;
  graph::KMeansOptions kmeans;
  int hidden_dim = 32;
  int gnn_layers = 3;
  int epochs = 30;
  double learning_rate = 3e-3;
  uint64_t seed = 13;
  /// Worker threads for the offline pipeline (clustering + per-cluster
  /// training). 0 = hardware_concurrency, 1 = the old serial behaviour.
  /// Overrides `kmeans.num_threads`. Every per-cluster RNG stream is drawn
  /// up front in cluster order, so trained weights are bit-identical for
  /// any thread count.
  int num_threads = 0;
};

/// One cluster's trained artifacts.
struct ClusterModel {
  ml::GnnEncoder encoder;
  ml::Mlp head;  ///< pre-training prediction head (2-layer MLP -> logit)
  JobGraph center;
  /// Indices into the corpus of the records assigned to this cluster.
  std::vector<int> record_indices;
};

/// The output of pre-training: per-cluster encoders plus corpus access.
class PretrainedBundle {
 public:
  PretrainedBundle(std::vector<ClusterModel> clusters,
                   std::vector<HistoryRecord> records,
                   FeatureEncoder encoder)
      : clusters_(std::move(clusters)),
        records_(std::move(records)),
        feature_encoder_(encoder) {
    for (const ClusterModel& c : clusters_) center_index_.Insert(c.center);
  }

  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const ClusterModel& cluster(int c) const { return clusters_[c]; }
  const std::vector<HistoryRecord>& records() const { return records_; }
  const FeatureEncoder& feature_encoder() const { return feature_encoder_; }

  /// Nearest cluster for a target DAG by GED to the cluster centers
  /// (Algorithm 2, line 1). Served by the two-stage signature index —
  /// bit-identical to the linear center scan it replaced.
  int AssignCluster(const JobGraph& g) const;

  /// The signature index over the cluster centers, built at construction.
  /// Admission uses it with the KB's shared GedCache; AssignCluster uses
  /// it cache-less (both give the same answer — see
  /// index/nearest_center_index.h on order independence).
  const index::NearestCenterIndex& center_index() const {
    return center_index_;
  }

  /// Parallelism-agnostic embeddings of `g`'s operators (rows) under
  /// cluster c's frozen encoder, with `rates` as the current source rates.
  /// Each row is [H^(T)_v | mean source-rate encoding of the job]: the
  /// appended rate block is a skip connection that hands the fine-tuned
  /// model the job's rate level directly (width = hidden_dim +
  /// FeatureEncoder::kRateFeatures).
  ml::Matrix AgnosticEmbeddings(int c, const JobGraph& g,
                                const std::vector<double>& rates) const;

  /// One job's inputs to BatchedAgnosticEmbeddings (caller-owned, must
  /// outlive the call).
  struct EmbeddingQuery {
    const JobGraph* graph = nullptr;
    const std::vector<double>* rates = nullptr;
  };

  /// Batched AgnosticEmbeddings: one GNN-layer matmul for the whole batch
  /// instead of one per job (see GnnEncoder::ForwardAgnosticBatched), with
  /// graph contexts deduplicated by graph name within the batch. Element i
  /// of the result is bit-identical to
  /// AgnosticEmbeddings(c, *queries[i].graph, *queries[i].rates) under the
  /// active kernel dispatch.
  std::vector<ml::Matrix> BatchedAgnosticEmbeddings(
      int c, const std::vector<EmbeddingQuery>& queries) const;

  /// Bottleneck probability from the *pre-training* head (used to sanity-
  /// check pre-training; the online phase swaps in the fine-tuned model).
  std::vector<double> PretrainHeadProbabilities(
      int c, const JobGraph& g, const std::vector<double>& rates,
      const std::vector<int>& parallelism) const;

  /// Warm-up dataset for fine-tuning (Algorithm 2, line 3): embeddings +
  /// recorded parallelisms + labels from up to `max_records` sampled records
  /// of cluster c.
  std::vector<ml::LabeledSample> WarmUpDataset(int c, int max_records,
                                               uint64_t seed) const;

 private:
  std::vector<ClusterModel> clusters_;
  std::vector<HistoryRecord> records_;
  FeatureEncoder feature_encoder_;
  index::NearestCenterIndex center_index_;
};

/// Runs clustering + per-cluster supervised pre-training on a corpus.
class Pretrainer {
 public:
  explicit Pretrainer(PretrainOptions options = {}) : options_(options) {}

  /// Trains and returns the bundle. Requires a non-empty corpus with at
  /// least one labeled operator.
  Result<PretrainedBundle> Run(std::vector<HistoryRecord> records) const;

  const PretrainOptions& options() const { return options_; }

 private:
  PretrainOptions options_;
};

}  // namespace streamtune::core
