// Operator-level bottleneck identification — Algorithm 1 of the paper.
//
// Produces per-operator training labels from one runtime measurement:
//    1  the operator is a bottleneck (insufficient processing ability),
//    0  the operator is provably not a bottleneck,
//   -1  inconclusive (job-level backpressure altered its upstream rates).

#pragma once

#include <vector>

#include "dataflow/job_graph.h"
#include "sim/flink_simulator.h"

namespace streamtune::core {

/// Options for Algorithm 1.
struct LabelingOptions {
  /// Resource-utilization threshold T: a downstream operator of a
  /// backpressured frontier counts as the bottleneck when its CPU load
  /// exceeds this (paper example: 60%).
  double cpu_threshold = 0.6;
};

/// Runs Algorithm 1 on one measurement of `graph`.
///
/// Implementation notes, mapped to the paper's pseudocode:
///  - "no backpressure observed" = !metrics.job_backpressure -> all 0;
///  - O_b = operators under backpressure with no backpressured downstream
///    operator (the frontier immediately upstream of the bottleneck);
///  - each downstream d of an O_b member is labeled 1 if R(d) > T else 0;
///  - operators running saturated during job-level backpressure are labeled
///    1 directly: this covers saturated sources (whose throttled "upstream"
///    is the external producer, outside the DAG) and mild bottlenecks whose
///    backpressure fraction stays under the engine's flag threshold.
std::vector<int> LabelBottlenecks(const JobGraph& graph,
                                  const sim::JobMetrics& metrics,
                                  const LabelingOptions& options = {});

}  // namespace streamtune::core
