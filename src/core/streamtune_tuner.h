// StreamTune's online fine-tuning phase — Algorithm 2.
//
// Given the pre-trained bundle: assign the target DAG to its nearest cluster
// (GED), retrieve the frozen encoder, build a warm-up dataset of
// (embedding, parallelism, label) samples, then iterate: fit the monotonic
// bottleneck model M_f, recommend — per operator, in topological order — the
// minimum parallelism whose predicted bottleneck probability clears the
// threshold (a binary search, valid because M_f is monotonic), redeploy,
// monitor, fold the fresh Algorithm-1 labels back into the dataset. Stops
// when no backpressure is observed and the recommendation is stable.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/robust_loop.h"
#include "baselines/tuner.h"
#include "core/pretrain.h"
#include "ml/gbdt.h"
#include "ml/nn_classifier.h"
#include "ml/svm.h"

namespace streamtune::core {

/// Which model family backs the fine-tuned prediction layer M_f.
enum class FineTuneModel { kSvm, kXgboost, kNn };

const char* FineTuneModelName(FineTuneModel m);

/// Online-phase knobs.
struct StreamTuneOptions {
  /// Default M_f family. The paper reports SVM and XGBoost as comparable
  /// (Fig. 11a) and uses SVM for its headline runs; in this implementation
  /// the monotonic GBDT brackets per-operator thresholds noticeably more
  /// tightly than the random-Fourier-feature SVM approximation, so it is
  /// the default.
  FineTuneModel model = FineTuneModel::kXgboost;
  int max_iterations = 14;
  /// History records sampled into the warm-up dataset (Algorithm 2 line 3).
  int warmup_records = 120;
  /// An operator is considered safe at parallelism p when
  /// P(bottleneck | h, p) falls below this.
  double probability_threshold = 0.5;
  ml::SvmConfig svm;
  ml::GbdtConfig gbdt;
  ml::NnClassifierConfig nn;
  uint64_t seed = 19;
  /// Retry/sanitize/rollback knobs for the hardened loop.
  baselines::RobustnessOptions robustness;
};

/// The StreamTune online tuner.
class StreamTuneTuner : public baselines::Tuner {
 public:
  StreamTuneTuner(std::shared_ptr<const PretrainedBundle> bundle,
                  StreamTuneOptions options = {});

  std::string name() const override;
  Result<baselines::TuningOutcome> Tune(sim::StreamEngine* engine) override;

  /// One resumable Algorithm-2 tuning process at decision granularity (see
  /// NewSession). Stepping a session to completion and calling Finish() is
  /// bit-identical to Tune(), which is implemented on top of it; the split
  /// exists so the multi-job control plane can interleave thousands of
  /// processes over one thread pool, one decision at a time.
  class Session {
   public:
    /// One fit -> recommend -> deploy -> measure -> fold iteration. True
    /// when the stop rule fired (stable recommendation, iteration budget,
    /// or graceful degradation on persistent engine failure).
    Result<bool> Step();

    /// Finalization: reverts a failed scale-down probe to the last clean
    /// deployment and fills the outcome. Call once, after the last Step().
    Result<baselines::TuningOutcome> Finish();

    bool done() const { return done_; }
    int iterations() const { return outcome_.iterations; }
    sim::StreamEngine* engine() { return engine_; }

   private:
    friend class StreamTuneTuner;
    Session(StreamTuneTuner* tuner, sim::StreamEngine* engine);
    /// Warm-up dataset + the shared pre-tuning measurement (Algorithm 2
    /// lines 3-4); the only step that can fail on a pristine engine.
    Status Init();

    StreamTuneTuner* tuner_;
    sim::StreamEngine* engine_;
    baselines::RobustLoop loop_;
    baselines::TuningOutcome outcome_;
    int reconfig_before_ = 0;
    double minutes_before_ = 0;
    int cluster_ = 0;
    int emb_dim_ = 0;
    std::vector<ml::LabeledSample> dataset_;
    /// The tuner's per-job feedback accumulator (stable std::map ref).
    std::vector<ml::LabeledSample>* accumulated_ = nullptr;
    sim::JobMetrics last_metrics_;
    std::vector<int> last_labels_;
    bool last_backpressure_ = false;
    bool last_severe_ = false;
    /// Last deployment observed to run without backpressure.
    std::vector<int> last_clean_;
    /// Per-operator bracket pinned by this process's own observations.
    std::vector<int> bracket_lo_, bracket_hi_;
    bool done_ = false;
  };

  /// Starts a resumable tuning process on `engine` (already deployed). The
  /// tuner must outlive the session; a tuner's sessions must not overlap
  /// (they share the embedding cache and feedback accumulator).
  Result<std::unique_ptr<Session>> NewSession(sim::StreamEngine* engine);

  /// One pending tuning decision for BatchedInference: the tuner about to
  /// run, the job graph it will tune, and the source rates its first
  /// recommendation will see. All pointers are caller-owned and must
  /// outlive the call.
  struct PendingJob {
    StreamTuneTuner* tuner = nullptr;
    const JobGraph* graph = nullptr;
    const std::vector<double>* rates = nullptr;
  };

  /// Cross-job batched inference: primes each pending tuner's embedding
  /// cache with one batched encoder pass per (bundle, cluster) group
  /// instead of one full GNN forward per job (see
  /// PretrainedBundle::BatchedAgnosticEmbeddings). Jobs whose cache is
  /// already valid for (cluster, graph, rates) are skipped; when a tuner
  /// appears twice the last entry wins. The primed embeddings are
  /// bit-identical to what the tuner's own lazy path would compute, so this
  /// is purely a throughput optimization for schedulers that dispatch many
  /// tuning sessions at once.
  static void BatchedInference(const std::vector<PendingJob>& jobs);

  /// One recommendation pass (Algorithm 2 lines 6-9) with a fitted model:
  /// per operator, the minimum degree predicted bottleneck-free. Exposed
  /// for unit tests.
  std::vector<int> Recommend(const sim::StreamEngine& engine,
                             const ml::BottleneckModel& model,
                             int cluster) const;

  /// Fresh, unfitted M_f of the configured family.
  std::unique_ptr<ml::BottleneckModel> MakeModel(int embedding_dim) const;

  /// Seeds the per-job feedback accumulator with samples from earlier
  /// tuning sessions (e.g. a knowledge base), so a fresh process
  /// warm-starts with the job's own fine-tune data instead of only the
  /// cluster's generic warm-up corpus. Replaces any existing accumulation
  /// for `job`; truncated FIFO to the accumulator bound.
  void SeedFeedback(const std::string& job,
                    std::vector<ml::LabeledSample> samples);

  /// The fine-tune samples accumulated for `job` across this tuner's
  /// sessions — the payload a knowledge-base admission persists.
  const std::vector<ml::LabeledSample>& FeedbackFor(
      const std::string& job) const;

 private:
  /// Minimum p in [1, p_max] with P(bottleneck) below the threshold; p_max
  /// if none qualifies. Binary search (monotonic models) — the same search
  /// is applied to the NN ablation, whose non-monotonic predictions can
  /// mislead it (Fig. 11a).
  int MinSafeParallelism(const ml::BottleneckModel& model,
                         const std::vector<double>& embedding,
                         int p_max) const;

  /// Returns the cached agnostic embeddings when (cluster, graph, rates)
  /// are unchanged since the previous call; re-encodes otherwise. Within a
  /// tuning session the graph never changes and the rates rarely do, yet
  /// every Recommend and every feedback fold used to re-run the frozen
  /// encoder from scratch.
  const ml::Matrix& CachedAgnosticEmbeddings(
      int cluster, const JobGraph& g,
      const std::vector<double>& rates) const;

  std::shared_ptr<const PretrainedBundle> bundle_;
  StreamTuneOptions options_;

  struct EmbeddingCache {
    bool valid = false;
    int cluster = -1;
    std::string graph_name;
    int num_operators = 0;
    std::vector<double> rates;
    ml::Matrix embeddings;
  };
  /// mutable: a pure memo — Recommend() is logically const. The tuner is
  /// single-threaded (like its accumulated_ state).
  mutable EmbeddingCache embedding_cache_;

  /// Per-job feedback collected across tuning processes (keyed by job
  /// name); bounded so long schedules cannot grow the fit unboundedly.
  static constexpr size_t kMaxAccumulatedSamples = 1500;
  std::map<std::string, std::vector<ml::LabeledSample>> accumulated_;
};

}  // namespace streamtune::core
