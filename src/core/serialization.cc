#include "core/serialization.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace streamtune::core {

CheckedFileWriter::CheckedFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      os_(tmp_path_, std::ios::trunc) {}

CheckedFileWriter::~CheckedFileWriter() {
  if (!committed_) {
    os_.close();
    std::remove(tmp_path_.c_str());
  }
}

Status CheckedFileWriter::Commit() {
  if (!os_.is_open()) {
    return Status::Internal("cannot open '" + tmp_path_ + "' for writing");
  }
  os_.flush();
  if (!os_) {
    return Status::Internal("write to '" + tmp_path_ + "' failed");
  }
  os_.close();
  if (os_.fail()) {
    return Status::Internal("closing '" + tmp_path_ + "' failed");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::Internal("cannot rename '" + tmp_path_ + "' to '" + path_ +
                            "'");
  }
  committed_ = true;
  return Status::OK();
}

namespace io {

// Reads the next whitespace-separated token; fails at EOF.
Result<std::string> Token(std::istream& is) {
  std::string t;
  if (!(is >> t)) return Status::InvalidArgument("unexpected end of input");
  return t;
}

Result<std::string> ExpectToken(std::istream& is, const std::string& want) {
  ST_ASSIGN_OR_RETURN(std::string t, Token(is));
  if (t != want) {
    return Status::InvalidArgument("expected '" + want + "', got '" + t +
                                   "'");
  }
  return t;
}

Result<long long> IntToken(std::istream& is) {
  ST_ASSIGN_OR_RETURN(std::string t, Token(is));
  try {
    size_t pos = 0;
    long long v = std::stoll(t, &pos);
    if (pos != t.size()) throw std::invalid_argument(t);
    return v;
  } catch (...) {
    return Status::InvalidArgument("expected integer, got '" + t + "'");
  }
}

Result<double> DoubleToken(std::istream& is) {
  ST_ASSIGN_OR_RETURN(std::string t, Token(is));
  try {
    size_t pos = 0;
    double v = std::stod(t, &pos);
    if (pos != t.size()) throw std::invalid_argument(t);
    return v;
  } catch (...) {
    return Status::InvalidArgument("expected number, got '" + t + "'");
  }
}

}  // namespace io

namespace {

constexpr const char* kHistoryMagic = "STHISTORY";
constexpr const char* kBundleMagic = "STBUNDLE";
constexpr int kVersion = 1;

using io::DoubleToken;
using io::ExpectToken;
using io::IntToken;
using io::Token;

bool HasWhitespace(const std::string& s) {
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

Result<unsigned long long> UIntToken(std::istream& is) {
  ST_ASSIGN_OR_RETURN(std::string t, Token(is));
  try {
    size_t pos = 0;
    unsigned long long v = std::stoull(t, &pos);
    if (pos != t.size()) throw std::invalid_argument(t);
    return v;
  } catch (...) {
    return Status::InvalidArgument("expected unsigned integer, got '" + t +
                                   "'");
  }
}

Result<int> EnumToken(std::istream& is, int cardinality) {
  ST_ASSIGN_OR_RETURN(long long v, IntToken(is));
  if (v < 0 || v >= cardinality) {
    return Status::InvalidArgument("enum value out of range");
  }
  return static_cast<int>(v);
}

void WriteMatrix(std::ostream& os, const ml::Matrix& m) {
  os << "mat " << m.rows() << ' ' << m.cols() << '\n';
  os.precision(17);
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      os << m.at(r, c) << (c + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

Result<ml::Matrix> ReadMatrix(std::istream& is) {
  ST_RETURN_NOT_OK(ExpectToken(is, "mat").status());
  ST_ASSIGN_OR_RETURN(long long rows, IntToken(is));
  ST_ASSIGN_OR_RETURN(long long cols, IntToken(is));
  if (rows < 0 || cols < 0 || rows * cols > 100000000) {
    return Status::InvalidArgument("implausible matrix shape");
  }
  ml::Matrix m(static_cast<int>(rows), static_cast<int>(cols));
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      ST_ASSIGN_OR_RETURN(double v, DoubleToken(is));
      m.at(r, c) = v;
    }
  }
  return m;
}

Status WriteParams(std::ostream& os, const std::vector<ml::Var>& params) {
  os << "params " << params.size() << '\n';
  for (const ml::Var& p : params) WriteMatrix(os, p->value);
  return Status::OK();
}

Status ReadParamsInto(std::istream& is, const std::vector<ml::Var>& params) {
  ST_RETURN_NOT_OK(ExpectToken(is, "params").status());
  ST_ASSIGN_OR_RETURN(long long count, IntToken(is));
  if (count != static_cast<long long>(params.size())) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (const ml::Var& p : params) {
    ST_ASSIGN_OR_RETURN(ml::Matrix m, ReadMatrix(is));
    if (!m.same_shape(p->value)) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    p->value = std::move(m);
  }
  return Status::OK();
}

}  // namespace

void WriteJobGraph(std::ostream& os, const JobGraph& graph) {
  os << "graph " << graph.name() << '\n';
  os << "ops " << graph.num_operators() << '\n';
  for (const OperatorSpec& op : graph.operators()) {
    os << "op " << op.name << ' ' << static_cast<int>(op.type) << ' '
       << static_cast<int>(op.window_type) << ' '
       << static_cast<int>(op.window_policy) << ' ' << op.window_length
       << ' ' << op.sliding_length << ' '
       << static_cast<int>(op.join_key_class) << ' '
       << static_cast<int>(op.aggregate_class) << ' '
       << static_cast<int>(op.aggregate_key_class) << ' '
       << static_cast<int>(op.aggregate_function) << ' ' << op.tuple_width_in
       << ' ' << op.tuple_width_out << ' '
       << static_cast<int>(op.tuple_data_type) << ' ' << op.source_rate
       << '\n';
  }
  os << "edges " << graph.num_edges() << '\n';
  for (const auto& [from, to] : graph.edges()) {
    os << "e " << from << ' ' << to << '\n';
  }
}

Result<JobGraph> ReadJobGraph(std::istream& is) {
  ST_RETURN_NOT_OK(ExpectToken(is, "graph").status());
  ST_ASSIGN_OR_RETURN(std::string name, Token(is));
  JobGraph graph(name);
  ST_RETURN_NOT_OK(ExpectToken(is, "ops").status());
  ST_ASSIGN_OR_RETURN(long long num_ops, IntToken(is));
  if (num_ops < 1 || num_ops > 10000) {
    return Status::InvalidArgument("implausible operator count");
  }
  for (long long i = 0; i < num_ops; ++i) {
    ST_RETURN_NOT_OK(ExpectToken(is, "op").status());
    OperatorSpec op;
    ST_ASSIGN_OR_RETURN(op.name, Token(is));
    ST_ASSIGN_OR_RETURN(int type, EnumToken(is, kNumOperatorTypes));
    op.type = static_cast<OperatorType>(type);
    ST_ASSIGN_OR_RETURN(int wt, EnumToken(is, kNumWindowTypes));
    op.window_type = static_cast<WindowType>(wt);
    ST_ASSIGN_OR_RETURN(int wp, EnumToken(is, kNumWindowPolicies));
    op.window_policy = static_cast<WindowPolicy>(wp);
    ST_ASSIGN_OR_RETURN(op.window_length, DoubleToken(is));
    ST_ASSIGN_OR_RETURN(op.sliding_length, DoubleToken(is));
    ST_ASSIGN_OR_RETURN(int jkc, EnumToken(is, kNumKeyClasses));
    op.join_key_class = static_cast<KeyClass>(jkc);
    ST_ASSIGN_OR_RETURN(int ac, EnumToken(is, kNumKeyClasses));
    op.aggregate_class = static_cast<KeyClass>(ac);
    ST_ASSIGN_OR_RETURN(int akc, EnumToken(is, kNumKeyClasses));
    op.aggregate_key_class = static_cast<KeyClass>(akc);
    ST_ASSIGN_OR_RETURN(int af, EnumToken(is, kNumAggregateFunctions));
    op.aggregate_function = static_cast<AggregateFunction>(af);
    ST_ASSIGN_OR_RETURN(op.tuple_width_in, DoubleToken(is));
    ST_ASSIGN_OR_RETURN(op.tuple_width_out, DoubleToken(is));
    ST_ASSIGN_OR_RETURN(int tdt, EnumToken(is, kNumKeyClasses));
    op.tuple_data_type = static_cast<KeyClass>(tdt);
    ST_ASSIGN_OR_RETURN(op.source_rate, DoubleToken(is));
    graph.AddOperator(std::move(op));
  }
  ST_RETURN_NOT_OK(ExpectToken(is, "edges").status());
  ST_ASSIGN_OR_RETURN(long long num_edges, IntToken(is));
  if (num_edges < 0 || num_edges > 100000) {
    return Status::InvalidArgument("implausible edge count");
  }
  for (long long i = 0; i < num_edges; ++i) {
    ST_RETURN_NOT_OK(ExpectToken(is, "e").status());
    ST_ASSIGN_OR_RETURN(long long from, IntToken(is));
    ST_ASSIGN_OR_RETURN(long long to, IntToken(is));
    ST_RETURN_NOT_OK(graph.AddEdge(static_cast<int>(from),
                                   static_cast<int>(to)));
  }
  ST_RETURN_NOT_OK(graph.Validate());
  return graph;
}

Status ValidateGraphNames(const JobGraph& graph) {
  if (HasWhitespace(graph.name())) {
    return Status::InvalidArgument("graph name contains whitespace: '" +
                                   graph.name() + "'");
  }
  for (const OperatorSpec& op : graph.operators()) {
    if (HasWhitespace(op.name)) {
      return Status::InvalidArgument("operator name contains whitespace: '" +
                                     op.name + "'");
    }
  }
  return Status::OK();
}

void WriteHistoryRecord(std::ostream& os, const HistoryRecord& rec) {
  WriteJobGraph(os, rec.graph);
  os << "parallelism";
  for (int p : rec.parallelism) os << ' ' << p;
  os << "\nrates";
  os.precision(17);
  for (double r : rec.source_rates) os << ' ' << r;
  os << "\nlabels";
  for (int l : rec.labels) os << ' ' << l;
  os << "\ncost " << rec.job_cost << " backpressure "
     << (rec.backpressure ? 1 : 0) << '\n';
}

Result<HistoryRecord> ReadHistoryRecord(std::istream& is) {
  HistoryRecord rec;
  ST_ASSIGN_OR_RETURN(rec.graph, ReadJobGraph(is));
  const int n = rec.graph.num_operators();
  ST_RETURN_NOT_OK(ExpectToken(is, "parallelism").status());
  for (int i = 0; i < n; ++i) {
    ST_ASSIGN_OR_RETURN(long long p, IntToken(is));
    rec.parallelism.push_back(static_cast<int>(p));
  }
  ST_RETURN_NOT_OK(ExpectToken(is, "rates").status());
  for (int i = 0; i < n; ++i) {
    ST_ASSIGN_OR_RETURN(double r, DoubleToken(is));
    rec.source_rates.push_back(r);
  }
  ST_RETURN_NOT_OK(ExpectToken(is, "labels").status());
  for (int i = 0; i < n; ++i) {
    ST_ASSIGN_OR_RETURN(long long l, IntToken(is));
    if (l < -1 || l > 1) return Status::InvalidArgument("label out of range");
    rec.labels.push_back(static_cast<int>(l));
  }
  ST_RETURN_NOT_OK(ExpectToken(is, "cost").status());
  ST_ASSIGN_OR_RETURN(rec.job_cost, DoubleToken(is));
  ST_RETURN_NOT_OK(ExpectToken(is, "backpressure").status());
  ST_ASSIGN_OR_RETURN(long long bp, IntToken(is));
  rec.backpressure = bp != 0;
  return rec;
}

Status SaveHistory(const std::vector<HistoryRecord>& records,
                   const std::string& path) {
  for (const HistoryRecord& rec : records) {
    ST_RETURN_NOT_OK(ValidateGraphNames(rec.graph));
  }
  CheckedFileWriter writer(path);
  std::ostream& os = writer.stream();
  os << kHistoryMagic << ' ' << kVersion << '\n';
  os << "count " << records.size() << '\n';
  for (const HistoryRecord& rec : records) WriteHistoryRecord(os, rec);
  return writer.Commit();
}

Result<std::vector<HistoryRecord>> LoadHistory(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  ST_RETURN_NOT_OK(ExpectToken(is, kHistoryMagic).status());
  ST_ASSIGN_OR_RETURN(long long version, IntToken(is));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported history version");
  }
  ST_RETURN_NOT_OK(ExpectToken(is, "count").status());
  ST_ASSIGN_OR_RETURN(long long count, IntToken(is));
  if (count < 0 || count > 10000000) {
    return Status::InvalidArgument("implausible record count");
  }
  std::vector<HistoryRecord> records;
  records.reserve(count);
  for (long long i = 0; i < count; ++i) {
    ST_ASSIGN_OR_RETURN(HistoryRecord rec, ReadHistoryRecord(is));
    records.push_back(std::move(rec));
  }
  return records;
}

Status WriteBundleBody(std::ostream& os, const PretrainedBundle& bundle) {
  for (const HistoryRecord& rec : bundle.records()) {
    ST_RETURN_NOT_OK(ValidateGraphNames(rec.graph));
  }
  os << "clusters " << bundle.num_clusters() << '\n';
  for (int c = 0; c < bundle.num_clusters(); ++c) {
    const ClusterModel& cm = bundle.cluster(c);
    os << "cluster " << c << '\n';
    WriteJobGraph(os, cm.center);
    os << "members " << cm.record_indices.size();
    for (int i : cm.record_indices) os << ' ' << i;
    os << '\n';
    const ml::GnnConfig& cfg = cm.encoder.config();
    os << "encoder " << cfg.feature_dim << ' ' << cfg.hidden_dim << ' '
       << cfg.num_layers << ' ' << cfg.seed << '\n';
    ST_RETURN_NOT_OK(WriteParams(os, cm.encoder.Params()));
    os << "head\n";
    ST_RETURN_NOT_OK(WriteParams(os, cm.head.Params()));
  }

  os << "corpus " << bundle.records().size() << '\n';
  for (const HistoryRecord& rec : bundle.records()) {
    WriteHistoryRecord(os, rec);
  }
  return Status::OK();
}

Result<PretrainedBundle> ReadBundleBody(std::istream& is) {
  ST_RETURN_NOT_OK(ExpectToken(is, "clusters").status());
  ST_ASSIGN_OR_RETURN(long long k, IntToken(is));
  if (k < 1 || k > 1000) {
    return Status::InvalidArgument("implausible cluster count");
  }
  std::vector<ClusterModel> clusters(k);
  for (long long c = 0; c < k; ++c) {
    ST_RETURN_NOT_OK(ExpectToken(is, "cluster").status());
    ST_ASSIGN_OR_RETURN(long long idx, IntToken(is));
    if (idx != c) return Status::InvalidArgument("cluster index mismatch");
    ClusterModel& cm = clusters[c];
    ST_ASSIGN_OR_RETURN(cm.center, ReadJobGraph(is));
    ST_RETURN_NOT_OK(ExpectToken(is, "members").status());
    ST_ASSIGN_OR_RETURN(long long members, IntToken(is));
    for (long long i = 0; i < members; ++i) {
      ST_ASSIGN_OR_RETURN(long long ri, IntToken(is));
      cm.record_indices.push_back(static_cast<int>(ri));
    }
    ST_RETURN_NOT_OK(ExpectToken(is, "encoder").status());
    ml::GnnConfig cfg;
    ST_ASSIGN_OR_RETURN(long long fd, IntToken(is));
    ST_ASSIGN_OR_RETURN(long long hd, IntToken(is));
    ST_ASSIGN_OR_RETURN(long long nl, IntToken(is));
    ST_ASSIGN_OR_RETURN(unsigned long long seed, UIntToken(is));
    cfg.feature_dim = static_cast<int>(fd);
    cfg.hidden_dim = static_cast<int>(hd);
    cfg.num_layers = static_cast<int>(nl);
    cfg.seed = static_cast<uint64_t>(seed);
    if (cfg.feature_dim != FeatureEncoder::FeatureDim()) {
      return Status::InvalidArgument(
          "bundle was built with a different feature schema");
    }
    cm.encoder = ml::GnnEncoder(cfg);
    ST_RETURN_NOT_OK(ReadParamsInto(is, cm.encoder.Params()));
    ST_RETURN_NOT_OK(ExpectToken(is, "head").status());
    // Peek the head parameter list to rebuild the MLP with matching dims.
    // The writer stores (W, b) per layer; dims come from the W shapes.
    ST_RETURN_NOT_OK(ExpectToken(is, "params").status());
    ST_ASSIGN_OR_RETURN(long long nparams, IntToken(is));
    if (nparams <= 0 || nparams % 2 != 0 || nparams > 64) {
      return Status::InvalidArgument("implausible head parameter count");
    }
    std::vector<ml::Matrix> head_params;
    for (long long i = 0; i < nparams; ++i) {
      ST_ASSIGN_OR_RETURN(ml::Matrix m, ReadMatrix(is));
      head_params.push_back(std::move(m));
    }
    std::vector<int> dims{head_params[0].rows()};
    for (size_t i = 0; i < head_params.size(); i += 2) {
      dims.push_back(head_params[i].cols());
    }
    Rng rng(1);
    cm.head = ml::Mlp(dims, ml::Activation::kRelu, &rng);
    std::vector<ml::Var> params = cm.head.Params();
    for (size_t i = 0; i < params.size(); ++i) {
      if (!params[i]->value.same_shape(head_params[i])) {
        return Status::InvalidArgument("head parameter shape mismatch");
      }
      params[i]->value = std::move(head_params[i]);
    }
  }

  ST_RETURN_NOT_OK(ExpectToken(is, "corpus").status());
  ST_ASSIGN_OR_RETURN(long long count, IntToken(is));
  if (count < 0 || count > 10000000) {
    return Status::InvalidArgument("implausible corpus size");
  }
  std::vector<HistoryRecord> records;
  records.reserve(count);
  for (long long i = 0; i < count; ++i) {
    ST_ASSIGN_OR_RETURN(HistoryRecord rec, ReadHistoryRecord(is));
    records.push_back(std::move(rec));
  }
  for (const ClusterModel& cm : clusters) {
    for (int ri : cm.record_indices) {
      if (ri < 0 || ri >= static_cast<int>(records.size())) {
        return Status::InvalidArgument("cluster member index out of range");
      }
    }
  }
  return PretrainedBundle(std::move(clusters), std::move(records),
                          FeatureEncoder{});
}

Status SaveBundle(const PretrainedBundle& bundle, const std::string& path) {
  CheckedFileWriter writer(path);
  writer.stream() << kBundleMagic << ' ' << kVersion << '\n';
  ST_RETURN_NOT_OK(WriteBundleBody(writer.stream(), bundle));
  return writer.Commit();
}

Result<PretrainedBundle> LoadBundle(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  ST_RETURN_NOT_OK(ExpectToken(is, kBundleMagic).status());
  ST_ASSIGN_OR_RETURN(long long version, IntToken(is));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported bundle version");
  }
  return ReadBundleBody(is);
}

}  // namespace streamtune::core
