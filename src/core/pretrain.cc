#include "core/pretrain.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

#include "common/math_util.h"
#include "common/thread_pool.h"

namespace streamtune::core {

namespace {

ml::Matrix FeatureMatrix(const FeatureEncoder& encoder, const JobGraph& g,
                         const std::vector<double>& rates) {
  return ml::Matrix::FromRows(encoder.EncodeGraphWithRates(g, rates));
}

ml::Matrix ParallelismColumn(const FeatureEncoder& encoder,
                             const std::vector<int>& p) {
  ml::Matrix col(static_cast<int>(p.size()), 1);
  for (size_t i = 0; i < p.size(); ++i) {
    col.at(static_cast<int>(i), 0) = encoder.ScaleParallelism(p[i]);
  }
  return col;
}

/// Mean source-rate encoding over all operator rows of a feature matrix —
/// the skip-connection block appended to every agnostic embedding row.
std::vector<double> MeanRateRow(const ml::Matrix& features) {
  const int n = features.rows();
  const int f_dim = features.cols();
  const int r_dim = FeatureEncoder::kRateFeatures;
  std::vector<double> mean_rate(r_dim, 0.0);
  for (int v = 0; v < n; ++v) {
    for (int j = 0; j < r_dim; ++j) {
      mean_rate[j] += features.at(v, f_dim - r_dim + j);
    }
  }
  for (double& m : mean_rate) m /= n;
  return mean_rate;
}

/// Everything the tape training loop needs for one history record,
/// prepared once before the epoch loop and reused every epoch.
struct PreparedSample {
  const ml::GraphContext* ctx = nullptr;  ///< shared per unique graph
  ml::Matrix features;  ///< static features + source rates
  ml::Matrix pcol;      ///< scaled recorded parallelism column
  ml::Matrix targets;   ///< Algorithm-1 labels (masked BCE targets)
  ml::Matrix mask;      ///< 1.0 where the operator is labeled
  bool any_label = false;
};

}  // namespace

int PretrainedBundle::AssignCluster(const JobGraph& g) const {
  return center_index_
      .Nearest(g,
               [this](int c) -> const JobGraph& { return clusters_[c].center; })
      .index;
}

ml::Matrix PretrainedBundle::AgnosticEmbeddings(
    int c, const JobGraph& g, const std::vector<double>& rates) const {
  ml::Matrix features = FeatureMatrix(feature_encoder_, g, rates);
  ml::GraphContext ctx = ml::GraphContext::Build(g);
  // thread_local: kb_service calls this concurrently; each thread reuses
  // its own warmed-up tape.
  thread_local ml::Tape tape;
  tape.Reset();
  ml::Tape::Ref emb_ref =
      clusters_[c].encoder.ForwardAgnostic(&tape, ctx, features);
  const ml::Matrix& emb = tape.value(emb_ref);

  // Skip connection for the fine-tuned model: append the job's mean source-
  // rate encoding to every row. The message-passing output carries the rate
  // signal only after several mixing layers, which attenuates it; demand
  // thresholds scale directly with the rate multiplier, so M_f gets the
  // global rate level verbatim.
  const int n = g.num_operators();
  const int r_dim = FeatureEncoder::kRateFeatures;
  const std::vector<double> mean_rate = MeanRateRow(features);

  ml::Matrix out(n, emb.cols() + r_dim);
  for (int v = 0; v < n; ++v) {
    for (int j = 0; j < emb.cols(); ++j) {
      out.at(v, j) = emb.at(v, j);
    }
    for (int j = 0; j < r_dim; ++j) {
      out.at(v, emb.cols() + j) = mean_rate[j];
    }
  }
  return out;
}

std::vector<ml::Matrix> PretrainedBundle::BatchedAgnosticEmbeddings(
    int c, const std::vector<EmbeddingQuery>& queries) const {
  std::vector<ml::Matrix> out(queries.size());
  if (queries.empty()) return out;

  // Build each unique graph's context once per batch (deduplicated by
  // graph name, like the pre-trainer does), then encode every query's
  // feature rows straight into the packed workspace — no per-query feature
  // matrices, no packing copy.
  const int f_dim = FeatureEncoder::FeatureDim();
  std::vector<ml::GraphContext> contexts;
  contexts.reserve(queries.size());  // pointer stability for `ctxs`
  std::map<std::string, int> context_index;
  std::vector<const ml::GraphContext*> ctxs(queries.size());
  std::vector<int> offsets;
  offsets.reserve(queries.size() + 1);
  int total = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const EmbeddingQuery& q = queries[i];
    assert(q.graph != nullptr && q.rates != nullptr);
    auto [it, inserted] = context_index.try_emplace(
        q.graph->name(), static_cast<int>(contexts.size()));
    if (inserted) contexts.push_back(ml::GraphContext::Build(*q.graph));
    ctxs[i] = &contexts[it->second];
    offsets.push_back(total);
    total += q.graph->num_operators();
  }
  offsets.push_back(total);

  // thread_local like AgnosticEmbeddings' tape: concurrent callers each
  // reuse their own warmed-up workspace.
  thread_local ml::BatchedGnnWorkspace ws;
  ws.x.SetShapeUninit(total, f_dim);
  for (size_t i = 0; i < queries.size(); ++i) {
    feature_encoder_.EncodeGraphWithRatesInto(
        *queries[i].graph, *queries[i].rates, ws.x.row_span(offsets[i]));
  }
  const ml::Matrix& emb =
      clusters_[c].encoder.ForwardAgnosticBatchedPacked(ctxs, offsets, &ws);

  const int r_dim = FeatureEncoder::kRateFeatures;
  std::vector<double> mean_rate(r_dim);
  for (size_t i = 0; i < queries.size(); ++i) {
    const int n = queries[i].graph->num_operators();
    const int off = offsets[i];
    // Mean source-rate block from the packed rows: same values summed in
    // the same row order as MeanRateRow on a per-query feature matrix.
    for (int j = 0; j < r_dim; ++j) mean_rate[j] = 0.0;
    for (int v = 0; v < n; ++v) {
      const double* frow = ws.x.row_span(off + v);
      for (int j = 0; j < r_dim; ++j) {
        mean_rate[j] += frow[f_dim - r_dim + j];
      }
    }
    for (int j = 0; j < r_dim; ++j) mean_rate[j] /= n;
    ml::Matrix& m = out[i];
    m.SetShapeUninit(n, emb.cols() + r_dim);
    for (int v = 0; v < n; ++v) {
      const double* erow = emb.row_span(off + v);
      for (int j = 0; j < emb.cols(); ++j) m.at(v, j) = erow[j];
      for (int j = 0; j < r_dim; ++j) m.at(v, emb.cols() + j) = mean_rate[j];
    }
  }
  return out;
}

std::vector<double> PretrainedBundle::PretrainHeadProbabilities(
    int c, const JobGraph& g, const std::vector<double>& rates,
    const std::vector<int>& parallelism) const {
  const ClusterModel& cm = clusters_[c];
  ml::Matrix features = FeatureMatrix(feature_encoder_, g, rates);
  ml::Matrix pcol = ParallelismColumn(feature_encoder_, parallelism);
  ml::GraphContext ctx = ml::GraphContext::Build(g);
  thread_local ml::Tape tape;
  tape.Reset();
  ml::Tape::Ref emb = cm.encoder.Forward(&tape, ctx, features, pcol);
  ml::Tape::Ref logits = cm.head.Forward(&tape, emb);
  const ml::Matrix& lv = tape.value(logits);
  std::vector<double> probs(g.num_operators());
  for (int v = 0; v < g.num_operators(); ++v) {
    probs[v] = Sigmoid(lv.at(v, 0));
  }
  return probs;
}

std::vector<ml::LabeledSample> PretrainedBundle::WarmUpDataset(
    int c, int max_records, uint64_t seed) const {
  const ClusterModel& cm = clusters_[c];
  std::vector<int> idx = cm.record_indices;
  Rng rng(seed);
  rng.Shuffle(&idx);
  if (static_cast<int>(idx.size()) > max_records) idx.resize(max_records);

  std::vector<ml::LabeledSample> samples;
  for (int ri : idx) {
    const HistoryRecord& rec = records_[ri];
    ml::Matrix emb = AgnosticEmbeddings(c, rec.graph, rec.source_rates);
    for (int v = 0; v < rec.graph.num_operators(); ++v) {
      if (rec.labels[v] < 0) continue;
      ml::LabeledSample s;
      s.embedding = emb.Row(v);
      s.parallelism = rec.parallelism[v];
      s.label = rec.labels[v];
      samples.push_back(std::move(s));
    }
  }
  return samples;
}

Result<PretrainedBundle> Pretrainer::Run(
    std::vector<HistoryRecord> records) const {
  if (records.empty()) return Status::InvalidArgument("empty corpus");

  FeatureEncoder feature_encoder;

  // Deduplicate graphs by name: samples of the same job share a DAG, and
  // clustering should see each structure once.
  std::vector<JobGraph> unique_graphs;
  std::map<std::string, int> graph_index;
  std::vector<int> record_graph(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    auto [it, inserted] = graph_index.try_emplace(
        records[i].graph.name(), static_cast<int>(unique_graphs.size()));
    if (inserted) unique_graphs.push_back(records[i].graph);
    record_graph[i] = it->second;
  }

  // Normalized adjacency is a pure function of the (deduplicated) graph
  // structure: build each GraphContext once and share it read-only across
  // every cluster worker, epoch, and sample. At bench-scale corpora this
  // loop is minutes of dense-matrix setup, so it fans out over the pool
  // (slot-per-graph writes: deterministic regardless of schedule).
  ThreadPool pool(options_.num_threads);
  std::vector<ml::GraphContext> graph_contexts(unique_graphs.size());
  pool.ParallelFor(0, static_cast<int64_t>(unique_graphs.size()),
                   [&](int64_t gi) {
                     graph_contexts[gi] =
                         ml::GraphContext::Build(unique_graphs[gi]);
                   });

  // ---- Clustering (Sec. IV-C) ----
  std::vector<int> graph_cluster(unique_graphs.size(), 0);
  std::vector<JobGraph> centers;
  int num_clusters = 1;
  graph::GedCache ged_cache;  // shared across the elbow sweep + final run
  if (options_.use_clustering && unique_graphs.size() > 1) {
    graph::KMeansOptions km = options_.kmeans;
    km.seed = options_.seed;
    km.num_threads = options_.num_threads;
    if (km.use_cache && km.cache == nullptr) km.cache = &ged_cache;
    int k = options_.k;
    if (k <= 0) {
      int hi = std::min<int>(options_.max_k,
                             static_cast<int>(unique_graphs.size()));
      if (hi >= 3) {
        auto elbow = graph::SelectKByElbow(unique_graphs, 2, hi, km);
        if (!elbow.ok()) return elbow.status();
        k = *elbow;
      } else {
        k = hi >= 2 ? 2 : 1;
      }
    }
    k = std::min<int>(k, static_cast<int>(unique_graphs.size()));
    km.k = k;
    auto clustering = graph::ClusterDags(unique_graphs, km);
    if (!clustering.ok()) return clustering.status();
    graph_cluster = clustering->assignment;
    num_clusters = k;
    for (int ci : clustering->center_indices) {
      centers.push_back(unique_graphs[ci]);
    }
  } else {
    centers.push_back(unique_graphs.front());
  }

  // ---- Per-cluster supervised pre-training (Sec. IV-A) ----
  // Clusters are independent once records are assigned, so training fans
  // out over the pool. All seeds are drawn serially first, in exactly the
  // order the serial loop drew them (encoder, head, then — only for
  // non-empty clusters — the epoch shuffler), so the trained weights are
  // bit-identical for any thread count.
  std::vector<ClusterModel> clusters(num_clusters);
  std::vector<uint64_t> encoder_seeds(num_clusters), head_seeds(num_clusters),
      shuffle_seeds(num_clusters, 0);
  Rng seeder(options_.seed);
  for (int c = 0; c < num_clusters; ++c) {
    ClusterModel& cm = clusters[c];
    cm.center = centers[c];
    for (size_t i = 0; i < records.size(); ++i) {
      if (graph_cluster[record_graph[i]] == c) {
        cm.record_indices.push_back(static_cast<int>(i));
      }
    }
    encoder_seeds[c] = seeder.NextU64();
    head_seeds[c] = seeder.NextU64();
    if (!cm.record_indices.empty()) shuffle_seeds[c] = seeder.NextU64();
  }

  pool.ParallelFor(0, num_clusters, [&](int64_t c) {
    ClusterModel& cm = clusters[c];

    ml::GnnConfig gcfg;
    gcfg.feature_dim = FeatureEncoder::FeatureDim();
    gcfg.hidden_dim = options_.hidden_dim;
    gcfg.num_layers = options_.gnn_layers;
    gcfg.seed = encoder_seeds[c];
    cm.encoder = ml::GnnEncoder(gcfg);
    Rng head_rng(head_seeds[c]);
    cm.head = ml::Mlp({options_.hidden_dim, 16, 1}, ml::Activation::kRelu,
                      &head_rng);

    if (cm.record_indices.empty()) return;

    std::vector<ml::Var> params = cm.encoder.Params();
    for (const ml::Var& p : cm.head.Params()) params.push_back(p);
    ml::Adam opt(params, options_.learning_rate);

    Rng shuffle_rng(shuffle_seeds[c]);

    // Per-sample inputs are a pure function of the record, so prepare them
    // once (aligned with cm.record_indices) instead of rebuilding them
    // every epoch.
    std::vector<PreparedSample> prepared(cm.record_indices.size());
    for (size_t i = 0; i < cm.record_indices.size(); ++i) {
      const HistoryRecord& rec = records[cm.record_indices[i]];
      PreparedSample& ps = prepared[i];
      ps.ctx = &graph_contexts[record_graph[cm.record_indices[i]]];
      ps.features = FeatureMatrix(feature_encoder, rec.graph,
                                  rec.source_rates);
      ps.pcol = ParallelismColumn(feature_encoder, rec.parallelism);
      const int n = rec.graph.num_operators();
      ps.targets = ml::Matrix(n, 1);
      ps.mask = ml::Matrix(n, 1);
      for (int v = 0; v < n; ++v) {
        if (rec.labels[v] >= 0) {
          ps.targets.at(v, 0) = rec.labels[v];
          ps.mask.at(v, 0) = 1.0;
          ps.any_label = true;
        }
      }
    }

    // Shuffling positions applies the identical Fisher-Yates permutation
    // the original per-record loop applied to record indices (the draws are
    // value-independent), so the sample visit order is unchanged.
    std::vector<int> positions(prepared.size());
    std::iota(positions.begin(), positions.end(), 0);
    ml::Tape tape;  // persistent: epoch 2+ run allocation-free
    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      shuffle_rng.Shuffle(&positions);
      for (int pos : positions) {
        const PreparedSample& ps = prepared[pos];
        if (!ps.any_label) continue;
        tape.Reset();
        ml::Tape::Ref emb =
            cm.encoder.Forward(&tape, *ps.ctx, ps.features, ps.pcol);
        ml::Tape::Ref logits = cm.head.Forward(&tape, emb);
        ml::Tape::Ref loss =
            tape.BceWithLogitsMasked(logits, &ps.targets, &ps.mask);
        tape.Backward(loss);
        opt.Step();
      }
    }
  });

  return PretrainedBundle(std::move(clusters), std::move(records),
                          feature_encoder);
}

}  // namespace streamtune::core
