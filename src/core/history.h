// Dataflow execution histories (Sec. II-A) and pre-training corpus
// collection (Sec. V-A "Pre-training Setup").
//
// A history record captures one observed execution of a streaming job:
// the DAG, the deployed parallelism degrees, the external source rates, the
// Algorithm-1 bottleneck labels, and a job-level performance cost (used by
// the ZeroTune baseline). The corpus generator reproduces the paper's setup:
// random parallelism degrees in [1, 60], random rate multipliers in
// (1 W_u, 10 W_u), labels from Algorithm 1.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/labeling.h"
#include "dataflow/job_graph.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace streamtune::core {

/// One observed execution of a streaming job.
struct HistoryRecord {
  JobGraph graph;
  std::vector<int> parallelism;
  /// External source rates at execution time (indexed by operator id).
  std::vector<double> source_rates;
  /// Algorithm-1 labels: 1 bottleneck / 0 not / -1 inconclusive.
  std::vector<int> labels;
  /// Job-level performance cost (latency proxy, higher = worse); the
  /// training target for ZeroTune's job-level cost model.
  double job_cost = 0;
  /// Whether job-level backpressure was observed.
  bool backpressure = false;
};

/// Builds a fresh engine deployment for one job (used to replay histories on
/// a particular simulated cluster). `seed` decorrelates measurement noise
/// across jobs.
using EngineFactory = std::function<std::unique_ptr<sim::StreamEngine>(
    const JobGraph& job, uint64_t seed)>;

/// The default factory: a simulated Flink cluster with the workload-matched
/// cost calibration (workloads::CostConfigFor).
EngineFactory DefaultFlinkFactory();

/// Corpus-generation knobs (paper defaults).
struct HistoryOptions {
  int samples_per_job = 8;
  int min_parallelism = 1;
  int max_parallelism = 60;
  double min_rate_multiplier = 1.0;
  double max_rate_multiplier = 10.0;
  /// Fraction of samples whose parallelism is drawn near the engine's
  /// ground-truth minimum (jittered). Production execution histories are
  /// dominated by jobs that were already tuned, and these near-threshold
  /// samples are what give the classifier resolution on both sides of each
  /// operator's bottleneck boundary. The remainder is log-uniform random.
  double near_oracle_fraction = 0.4;
  LabelingOptions labeling;
  uint64_t seed = 97;
};

/// Job-level latency-proxy cost from one measurement: a queueing-style
/// penalty that grows as operators approach saturation and explodes under
/// backpressure. Used only as ZeroTune's regression target.
double JobCost(const sim::JobMetrics& metrics);

/// Runs `samples_per_job` randomized executions of every job on engines made
/// by `factory` (default: simulated Flink) and returns the labeled records.
std::vector<HistoryRecord> CollectHistory(const std::vector<JobGraph>& jobs,
                                          const HistoryOptions& options = {},
                                          EngineFactory factory = nullptr);

}  // namespace streamtune::core
