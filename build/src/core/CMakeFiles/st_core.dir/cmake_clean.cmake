file(REMOVE_RECURSE
  "CMakeFiles/st_core.dir/history.cc.o"
  "CMakeFiles/st_core.dir/history.cc.o.d"
  "CMakeFiles/st_core.dir/labeling.cc.o"
  "CMakeFiles/st_core.dir/labeling.cc.o.d"
  "CMakeFiles/st_core.dir/pretrain.cc.o"
  "CMakeFiles/st_core.dir/pretrain.cc.o.d"
  "CMakeFiles/st_core.dir/serialization.cc.o"
  "CMakeFiles/st_core.dir/serialization.cc.o.d"
  "CMakeFiles/st_core.dir/streamtune_tuner.cc.o"
  "CMakeFiles/st_core.dir/streamtune_tuner.cc.o.d"
  "libst_core.a"
  "libst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
