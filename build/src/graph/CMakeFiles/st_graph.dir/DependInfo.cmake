
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/ged.cc" "src/graph/CMakeFiles/st_graph.dir/ged.cc.o" "gcc" "src/graph/CMakeFiles/st_graph.dir/ged.cc.o.d"
  "/root/repo/src/graph/ged_kmeans.cc" "src/graph/CMakeFiles/st_graph.dir/ged_kmeans.cc.o" "gcc" "src/graph/CMakeFiles/st_graph.dir/ged_kmeans.cc.o.d"
  "/root/repo/src/graph/similarity.cc" "src/graph/CMakeFiles/st_graph.dir/similarity.cc.o" "gcc" "src/graph/CMakeFiles/st_graph.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/st_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
