# Empty dependencies file for st_graph.
# This may be replaced when dependencies are built.
