file(REMOVE_RECURSE
  "libst_graph.a"
)
