file(REMOVE_RECURSE
  "CMakeFiles/st_graph.dir/ged.cc.o"
  "CMakeFiles/st_graph.dir/ged.cc.o.d"
  "CMakeFiles/st_graph.dir/ged_kmeans.cc.o"
  "CMakeFiles/st_graph.dir/ged_kmeans.cc.o.d"
  "CMakeFiles/st_graph.dir/similarity.cc.o"
  "CMakeFiles/st_graph.dir/similarity.cc.o.d"
  "libst_graph.a"
  "libst_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
