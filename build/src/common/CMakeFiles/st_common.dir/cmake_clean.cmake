file(REMOVE_RECURSE
  "CMakeFiles/st_common.dir/math_util.cc.o"
  "CMakeFiles/st_common.dir/math_util.cc.o.d"
  "CMakeFiles/st_common.dir/table_printer.cc.o"
  "CMakeFiles/st_common.dir/table_printer.cc.o.d"
  "libst_common.a"
  "libst_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
