file(REMOVE_RECURSE
  "CMakeFiles/st_sim.dir/cost_model.cc.o"
  "CMakeFiles/st_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/st_sim.dir/event_simulator.cc.o"
  "CMakeFiles/st_sim.dir/event_simulator.cc.o.d"
  "CMakeFiles/st_sim.dir/flink_simulator.cc.o"
  "CMakeFiles/st_sim.dir/flink_simulator.cc.o.d"
  "CMakeFiles/st_sim.dir/flow_solver.cc.o"
  "CMakeFiles/st_sim.dir/flow_solver.cc.o.d"
  "libst_sim.a"
  "libst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
