
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/st_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/event_simulator.cc" "src/sim/CMakeFiles/st_sim.dir/event_simulator.cc.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/event_simulator.cc.o.d"
  "/root/repo/src/sim/flink_simulator.cc" "src/sim/CMakeFiles/st_sim.dir/flink_simulator.cc.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/flink_simulator.cc.o.d"
  "/root/repo/src/sim/flow_solver.cc" "src/sim/CMakeFiles/st_sim.dir/flow_solver.cc.o" "gcc" "src/sim/CMakeFiles/st_sim.dir/flow_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/st_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
