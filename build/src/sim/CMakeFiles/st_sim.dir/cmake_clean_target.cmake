file(REMOVE_RECURSE
  "libst_sim.a"
)
