
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/conttune.cc" "src/baselines/CMakeFiles/st_baselines.dir/conttune.cc.o" "gcc" "src/baselines/CMakeFiles/st_baselines.dir/conttune.cc.o.d"
  "/root/repo/src/baselines/ds2.cc" "src/baselines/CMakeFiles/st_baselines.dir/ds2.cc.o" "gcc" "src/baselines/CMakeFiles/st_baselines.dir/ds2.cc.o.d"
  "/root/repo/src/baselines/zerotune.cc" "src/baselines/CMakeFiles/st_baselines.dir/zerotune.cc.o" "gcc" "src/baselines/CMakeFiles/st_baselines.dir/zerotune.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/st_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/st_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
