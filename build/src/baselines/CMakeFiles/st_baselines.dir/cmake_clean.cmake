file(REMOVE_RECURSE
  "CMakeFiles/st_baselines.dir/conttune.cc.o"
  "CMakeFiles/st_baselines.dir/conttune.cc.o.d"
  "CMakeFiles/st_baselines.dir/ds2.cc.o"
  "CMakeFiles/st_baselines.dir/ds2.cc.o.d"
  "CMakeFiles/st_baselines.dir/zerotune.cc.o"
  "CMakeFiles/st_baselines.dir/zerotune.cc.o.d"
  "libst_baselines.a"
  "libst_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
