file(REMOVE_RECURSE
  "CMakeFiles/st_timelysim.dir/timely_simulator.cc.o"
  "CMakeFiles/st_timelysim.dir/timely_simulator.cc.o.d"
  "libst_timelysim.a"
  "libst_timelysim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_timelysim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
