
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timelysim/timely_simulator.cc" "src/timelysim/CMakeFiles/st_timelysim.dir/timely_simulator.cc.o" "gcc" "src/timelysim/CMakeFiles/st_timelysim.dir/timely_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/st_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
