# Empty compiler generated dependencies file for st_timelysim.
# This may be replaced when dependencies are built.
