file(REMOVE_RECURSE
  "libst_timelysim.a"
)
