file(REMOVE_RECURSE
  "CMakeFiles/st_workloads.dir/cost_config.cc.o"
  "CMakeFiles/st_workloads.dir/cost_config.cc.o.d"
  "CMakeFiles/st_workloads.dir/nexmark.cc.o"
  "CMakeFiles/st_workloads.dir/nexmark.cc.o.d"
  "CMakeFiles/st_workloads.dir/pqp.cc.o"
  "CMakeFiles/st_workloads.dir/pqp.cc.o.d"
  "CMakeFiles/st_workloads.dir/random_dag.cc.o"
  "CMakeFiles/st_workloads.dir/random_dag.cc.o.d"
  "CMakeFiles/st_workloads.dir/rate_schedule.cc.o"
  "CMakeFiles/st_workloads.dir/rate_schedule.cc.o.d"
  "libst_workloads.a"
  "libst_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
