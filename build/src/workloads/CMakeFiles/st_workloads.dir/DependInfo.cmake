
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cost_config.cc" "src/workloads/CMakeFiles/st_workloads.dir/cost_config.cc.o" "gcc" "src/workloads/CMakeFiles/st_workloads.dir/cost_config.cc.o.d"
  "/root/repo/src/workloads/nexmark.cc" "src/workloads/CMakeFiles/st_workloads.dir/nexmark.cc.o" "gcc" "src/workloads/CMakeFiles/st_workloads.dir/nexmark.cc.o.d"
  "/root/repo/src/workloads/pqp.cc" "src/workloads/CMakeFiles/st_workloads.dir/pqp.cc.o" "gcc" "src/workloads/CMakeFiles/st_workloads.dir/pqp.cc.o.d"
  "/root/repo/src/workloads/random_dag.cc" "src/workloads/CMakeFiles/st_workloads.dir/random_dag.cc.o" "gcc" "src/workloads/CMakeFiles/st_workloads.dir/random_dag.cc.o.d"
  "/root/repo/src/workloads/rate_schedule.cc" "src/workloads/CMakeFiles/st_workloads.dir/rate_schedule.cc.o" "gcc" "src/workloads/CMakeFiles/st_workloads.dir/rate_schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/st_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
