
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/feature_encoder.cc" "src/dataflow/CMakeFiles/st_dataflow.dir/feature_encoder.cc.o" "gcc" "src/dataflow/CMakeFiles/st_dataflow.dir/feature_encoder.cc.o.d"
  "/root/repo/src/dataflow/job_graph.cc" "src/dataflow/CMakeFiles/st_dataflow.dir/job_graph.cc.o" "gcc" "src/dataflow/CMakeFiles/st_dataflow.dir/job_graph.cc.o.d"
  "/root/repo/src/dataflow/operator.cc" "src/dataflow/CMakeFiles/st_dataflow.dir/operator.cc.o" "gcc" "src/dataflow/CMakeFiles/st_dataflow.dir/operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
