file(REMOVE_RECURSE
  "libst_dataflow.a"
)
