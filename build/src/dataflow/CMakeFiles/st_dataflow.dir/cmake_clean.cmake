file(REMOVE_RECURSE
  "CMakeFiles/st_dataflow.dir/feature_encoder.cc.o"
  "CMakeFiles/st_dataflow.dir/feature_encoder.cc.o.d"
  "CMakeFiles/st_dataflow.dir/job_graph.cc.o"
  "CMakeFiles/st_dataflow.dir/job_graph.cc.o.d"
  "CMakeFiles/st_dataflow.dir/operator.cc.o"
  "CMakeFiles/st_dataflow.dir/operator.cc.o.d"
  "libst_dataflow.a"
  "libst_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
