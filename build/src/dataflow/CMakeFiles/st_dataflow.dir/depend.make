# Empty dependencies file for st_dataflow.
# This may be replaced when dependencies are built.
