file(REMOVE_RECURSE
  "CMakeFiles/st_ml.dir/autograd.cc.o"
  "CMakeFiles/st_ml.dir/autograd.cc.o.d"
  "CMakeFiles/st_ml.dir/gaussian_process.cc.o"
  "CMakeFiles/st_ml.dir/gaussian_process.cc.o.d"
  "CMakeFiles/st_ml.dir/gbdt.cc.o"
  "CMakeFiles/st_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/st_ml.dir/gnn.cc.o"
  "CMakeFiles/st_ml.dir/gnn.cc.o.d"
  "CMakeFiles/st_ml.dir/matrix.cc.o"
  "CMakeFiles/st_ml.dir/matrix.cc.o.d"
  "CMakeFiles/st_ml.dir/nn.cc.o"
  "CMakeFiles/st_ml.dir/nn.cc.o.d"
  "CMakeFiles/st_ml.dir/nn_classifier.cc.o"
  "CMakeFiles/st_ml.dir/nn_classifier.cc.o.d"
  "CMakeFiles/st_ml.dir/svm.cc.o"
  "CMakeFiles/st_ml.dir/svm.cc.o.d"
  "libst_ml.a"
  "libst_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
