# Empty dependencies file for st_ml.
# This may be replaced when dependencies are built.
