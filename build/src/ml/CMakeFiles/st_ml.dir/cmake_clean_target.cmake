file(REMOVE_RECURSE
  "libst_ml.a"
)
