
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/autograd.cc" "src/ml/CMakeFiles/st_ml.dir/autograd.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/autograd.cc.o.d"
  "/root/repo/src/ml/gaussian_process.cc" "src/ml/CMakeFiles/st_ml.dir/gaussian_process.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/gaussian_process.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/st_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/gnn.cc" "src/ml/CMakeFiles/st_ml.dir/gnn.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/gnn.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/st_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/nn.cc" "src/ml/CMakeFiles/st_ml.dir/nn.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/nn.cc.o.d"
  "/root/repo/src/ml/nn_classifier.cc" "src/ml/CMakeFiles/st_ml.dir/nn_classifier.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/nn_classifier.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/ml/CMakeFiles/st_ml.dir/svm.cc.o" "gcc" "src/ml/CMakeFiles/st_ml.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/st_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
