file(REMOVE_RECURSE
  "CMakeFiles/fig7a_reconfigurations.dir/fig7a_reconfigurations.cc.o"
  "CMakeFiles/fig7a_reconfigurations.dir/fig7a_reconfigurations.cc.o.d"
  "fig7a_reconfigurations"
  "fig7a_reconfigurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_reconfigurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
