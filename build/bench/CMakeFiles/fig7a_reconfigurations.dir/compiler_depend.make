# Empty compiler generated dependencies file for fig7a_reconfigurations.
# This may be replaced when dependencies are built.
