# Empty compiler generated dependencies file for fig11b_similarity_center.
# This may be replaced when dependencies are built.
