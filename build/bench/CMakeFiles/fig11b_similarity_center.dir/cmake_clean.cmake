file(REMOVE_RECURSE
  "CMakeFiles/fig11b_similarity_center.dir/fig11b_similarity_center.cc.o"
  "CMakeFiles/fig11b_similarity_center.dir/fig11b_similarity_center.cc.o.d"
  "fig11b_similarity_center"
  "fig11b_similarity_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_similarity_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
