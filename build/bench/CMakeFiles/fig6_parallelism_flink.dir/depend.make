# Empty dependencies file for fig6_parallelism_flink.
# This may be replaced when dependencies are built.
