file(REMOVE_RECURSE
  "CMakeFiles/fig6_parallelism_flink.dir/fig6_parallelism_flink.cc.o"
  "CMakeFiles/fig6_parallelism_flink.dir/fig6_parallelism_flink.cc.o.d"
  "fig6_parallelism_flink"
  "fig6_parallelism_flink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_parallelism_flink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
