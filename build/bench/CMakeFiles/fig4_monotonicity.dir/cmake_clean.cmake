file(REMOVE_RECURSE
  "CMakeFiles/fig4_monotonicity.dir/fig4_monotonicity.cc.o"
  "CMakeFiles/fig4_monotonicity.dir/fig4_monotonicity.cc.o.d"
  "fig4_monotonicity"
  "fig4_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
