# Empty compiler generated dependencies file for fig4_monotonicity.
# This may be replaced when dependencies are built.
