file(REMOVE_RECURSE
  "CMakeFiles/fig8_timely.dir/fig8_timely.cc.o"
  "CMakeFiles/fig8_timely.dir/fig8_timely.cc.o.d"
  "fig8_timely"
  "fig8_timely.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_timely.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
