# Empty compiler generated dependencies file for fig8_timely.
# This may be replaced when dependencies are built.
