file(REMOVE_RECURSE
  "CMakeFiles/fig9a_recommendation_time.dir/fig9a_recommendation_time.cc.o"
  "CMakeFiles/fig9a_recommendation_time.dir/fig9a_recommendation_time.cc.o.d"
  "fig9a_recommendation_time"
  "fig9a_recommendation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_recommendation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
