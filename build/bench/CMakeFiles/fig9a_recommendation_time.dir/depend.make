# Empty dependencies file for fig9a_recommendation_time.
# This may be replaced when dependencies are built.
