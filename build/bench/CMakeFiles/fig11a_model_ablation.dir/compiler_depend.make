# Empty compiler generated dependencies file for fig11a_model_ablation.
# This may be replaced when dependencies are built.
