file(REMOVE_RECURSE
  "CMakeFiles/fig11a_model_ablation.dir/fig11a_model_ablation.cc.o"
  "CMakeFiles/fig11a_model_ablation.dir/fig11a_model_ablation.cc.o.d"
  "fig11a_model_ablation"
  "fig11a_model_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_model_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
