# Empty dependencies file for fig10_cpu_utilization.
# This may be replaced when dependencies are built.
