file(REMOVE_RECURSE
  "CMakeFiles/fig9b_pretrain_cost.dir/fig9b_pretrain_cost.cc.o"
  "CMakeFiles/fig9b_pretrain_cost.dir/fig9b_pretrain_cost.cc.o.d"
  "fig9b_pretrain_cost"
  "fig9b_pretrain_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_pretrain_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
