# Empty dependencies file for fig9b_pretrain_cost.
# This may be replaced when dependencies are built.
