# Empty compiler generated dependencies file for table2_source_rates.
# This may be replaced when dependencies are built.
