file(REMOVE_RECURSE
  "CMakeFiles/st_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/st_bench_common.dir/bench_common.cc.o.d"
  "libst_bench_common.a"
  "libst_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
