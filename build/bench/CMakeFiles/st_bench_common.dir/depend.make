# Empty dependencies file for st_bench_common.
# This may be replaced when dependencies are built.
