file(REMOVE_RECURSE
  "libst_bench_common.a"
)
