file(REMOVE_RECURSE
  "CMakeFiles/ablation_live_reconfig.dir/ablation_live_reconfig.cc.o"
  "CMakeFiles/ablation_live_reconfig.dir/ablation_live_reconfig.cc.o.d"
  "ablation_live_reconfig"
  "ablation_live_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_live_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
