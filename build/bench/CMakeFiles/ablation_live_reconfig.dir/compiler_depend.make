# Empty compiler generated dependencies file for ablation_live_reconfig.
# This may be replaced when dependencies are built.
