# Empty dependencies file for fig7b_adaptation_time.
# This may be replaced when dependencies are built.
