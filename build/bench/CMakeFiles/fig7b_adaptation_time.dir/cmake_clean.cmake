file(REMOVE_RECURSE
  "CMakeFiles/fig7b_adaptation_time.dir/fig7b_adaptation_time.cc.o"
  "CMakeFiles/fig7b_adaptation_time.dir/fig7b_adaptation_time.cc.o.d"
  "fig7b_adaptation_time"
  "fig7b_adaptation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_adaptation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
