# Empty dependencies file for fig5_pretrain_distribution.
# This may be replaced when dependencies are built.
