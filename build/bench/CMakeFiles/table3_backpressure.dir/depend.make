# Empty dependencies file for table3_backpressure.
# This may be replaced when dependencies are built.
