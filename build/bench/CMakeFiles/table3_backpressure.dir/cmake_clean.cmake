file(REMOVE_RECURSE
  "CMakeFiles/table3_backpressure.dir/table3_backpressure.cc.o"
  "CMakeFiles/table3_backpressure.dir/table3_backpressure.cc.o.d"
  "table3_backpressure"
  "table3_backpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
