file(REMOVE_RECURSE
  "CMakeFiles/streamtune_cli.dir/streamtune_cli.cc.o"
  "CMakeFiles/streamtune_cli.dir/streamtune_cli.cc.o.d"
  "streamtune_cli"
  "streamtune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamtune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
