# Empty dependencies file for streamtune_cli.
# This may be replaced when dependencies are built.
