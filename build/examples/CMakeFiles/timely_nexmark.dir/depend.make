# Empty dependencies file for timely_nexmark.
# This may be replaced when dependencies are built.
