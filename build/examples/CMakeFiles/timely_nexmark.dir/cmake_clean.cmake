file(REMOVE_RECURSE
  "CMakeFiles/timely_nexmark.dir/timely_nexmark.cpp.o"
  "CMakeFiles/timely_nexmark.dir/timely_nexmark.cpp.o.d"
  "timely_nexmark"
  "timely_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
