# Empty dependencies file for nexmark_flink_tuning.
# This may be replaced when dependencies are built.
