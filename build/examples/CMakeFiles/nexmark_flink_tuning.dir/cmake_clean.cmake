file(REMOVE_RECURSE
  "CMakeFiles/nexmark_flink_tuning.dir/nexmark_flink_tuning.cpp.o"
  "CMakeFiles/nexmark_flink_tuning.dir/nexmark_flink_tuning.cpp.o.d"
  "nexmark_flink_tuning"
  "nexmark_flink_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexmark_flink_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
