file(REMOVE_RECURSE
  "CMakeFiles/pqp_fleet.dir/pqp_fleet.cpp.o"
  "CMakeFiles/pqp_fleet.dir/pqp_fleet.cpp.o.d"
  "pqp_fleet"
  "pqp_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqp_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
