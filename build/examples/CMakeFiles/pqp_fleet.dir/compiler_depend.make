# Empty compiler generated dependencies file for pqp_fleet.
# This may be replaced when dependencies are built.
