
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/svm_test.cc" "tests/CMakeFiles/svm_test.dir/svm_test.cc.o" "gcc" "tests/CMakeFiles/svm_test.dir/svm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/st_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/st_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/st_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/st_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/st_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/timelysim/CMakeFiles/st_timelysim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/st_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/st_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
