# Empty dependencies file for ged_edit_path_test.
# This may be replaced when dependencies are built.
