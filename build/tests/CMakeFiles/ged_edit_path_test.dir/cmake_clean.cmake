file(REMOVE_RECURSE
  "CMakeFiles/ged_edit_path_test.dir/ged_edit_path_test.cc.o"
  "CMakeFiles/ged_edit_path_test.dir/ged_edit_path_test.cc.o.d"
  "ged_edit_path_test"
  "ged_edit_path_test.pdb"
  "ged_edit_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ged_edit_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
