file(REMOVE_RECURSE
  "CMakeFiles/flow_solver_test.dir/flow_solver_test.cc.o"
  "CMakeFiles/flow_solver_test.dir/flow_solver_test.cc.o.d"
  "flow_solver_test"
  "flow_solver_test.pdb"
  "flow_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
