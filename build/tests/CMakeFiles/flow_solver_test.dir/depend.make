# Empty dependencies file for flow_solver_test.
# This may be replaced when dependencies are built.
