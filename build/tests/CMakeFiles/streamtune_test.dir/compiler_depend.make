# Empty compiler generated dependencies file for streamtune_test.
# This may be replaced when dependencies are built.
