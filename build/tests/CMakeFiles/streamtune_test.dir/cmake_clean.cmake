file(REMOVE_RECURSE
  "CMakeFiles/streamtune_test.dir/streamtune_test.cc.o"
  "CMakeFiles/streamtune_test.dir/streamtune_test.cc.o.d"
  "streamtune_test"
  "streamtune_test.pdb"
  "streamtune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamtune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
