# Empty dependencies file for timely_sim_test.
# This may be replaced when dependencies are built.
