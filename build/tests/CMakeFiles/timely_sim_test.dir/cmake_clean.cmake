file(REMOVE_RECURSE
  "CMakeFiles/timely_sim_test.dir/timely_sim_test.cc.o"
  "CMakeFiles/timely_sim_test.dir/timely_sim_test.cc.o.d"
  "timely_sim_test"
  "timely_sim_test.pdb"
  "timely_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
