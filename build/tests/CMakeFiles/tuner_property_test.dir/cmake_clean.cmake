file(REMOVE_RECURSE
  "CMakeFiles/tuner_property_test.dir/tuner_property_test.cc.o"
  "CMakeFiles/tuner_property_test.dir/tuner_property_test.cc.o.d"
  "tuner_property_test"
  "tuner_property_test.pdb"
  "tuner_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
