file(REMOVE_RECURSE
  "CMakeFiles/nn_classifier_test.dir/nn_classifier_test.cc.o"
  "CMakeFiles/nn_classifier_test.dir/nn_classifier_test.cc.o.d"
  "nn_classifier_test"
  "nn_classifier_test.pdb"
  "nn_classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
