# Empty compiler generated dependencies file for nn_classifier_test.
# This may be replaced when dependencies are built.
