file(REMOVE_RECURSE
  "CMakeFiles/flink_sim_test.dir/flink_sim_test.cc.o"
  "CMakeFiles/flink_sim_test.dir/flink_sim_test.cc.o.d"
  "flink_sim_test"
  "flink_sim_test.pdb"
  "flink_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flink_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
