# Empty dependencies file for flink_sim_test.
# This may be replaced when dependencies are built.
