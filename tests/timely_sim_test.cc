#include <gtest/gtest.h>

#include "timelysim/timely_simulator.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"

namespace streamtune::timelysim {
namespace {

TimelySimulator MakeSim(workloads::NexmarkQuery q, TimelyConfig cfg = {}) {
  JobGraph job = workloads::BuildNexmarkJob(q, workloads::Engine::kTimely);
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  return TimelySimulator(job, model, cfg);
}

TEST(TimelySimTest, MaxParallelismIsWorkerCount) {
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ3);
  EXPECT_EQ(sim.max_parallelism(), 10);
  std::vector<int> too_big(sim.graph().num_operators(), 11);
  EXPECT_FALSE(sim.Deploy(too_big).ok());
}

TEST(TimelySimTest, MeasureRequiresDeploy) {
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ3);
  EXPECT_FALSE(sim.Measure().ok());
  EXPECT_FALSE(sim.RunEpochs(5).ok());
}

TEST(TimelySimTest, NoBottleneckWhenProvisioned) {
  TimelyConfig cfg;
  cfg.rate_noise = 0;
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ3, cfg);
  ASSERT_TRUE(sim.Deploy(sim.OracleParallelism()).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->job_backpressure);
}

TEST(TimelySimTest, RateRuleDetectsBottleneck) {
  TimelyConfig cfg;
  cfg.rate_noise = 0;
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ3, cfg);
  sim.ScaleAllSources(10.0);
  std::vector<int> ones(sim.graph().num_operators(), 1);
  ASSERT_TRUE(sim.Deploy(ones).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->job_backpressure);
  // The rate rule: a saturated operator consumes < 85% of its arrival.
  bool any = false;
  for (const auto& om : m->ops) any |= om.saturated;
  EXPECT_TRUE(any);
}

TEST(TimelySimTest, MildOverloadEvadesRateRule) {
  // An operator at 90% of its arrival rate is NOT flagged by the 85% rule —
  // the paper's detection gap for Timely.
  JobGraph g("chain");
  OperatorSpec src;
  src.name = "s";
  src.type = OperatorType::kSource;
  src.source_rate = 1000;
  OperatorSpec map;
  map.name = "m";
  map.type = OperatorType::kMap;
  OperatorSpec sink;
  sink.name = "k";
  sink.type = OperatorType::kSink;
  int a = g.AddOperator(src);
  int b = g.AddOperator(map);
  int c = g.AddOperator(sink);
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  sim::PerfModel model(g, sim::CostModelConfig{});
  sim::CostProfile fast;
  fast.cost_per_record = 1e-9;
  fast.selectivity = 1.0;
  model.SetProfile(a, fast);
  sim::CostProfile slow;  // capacity 900 at p=1 vs arrival 1000 -> 90%
  slow.cost_per_record = 1.0 / 900.0;
  slow.selectivity = 1.0;
  slow.scaling_gamma = 0;
  model.SetProfile(b, slow);
  sim::CostProfile sinkp = fast;
  sinkp.selectivity = 0;
  model.SetProfile(c, sinkp);
  TimelyConfig cfg;
  cfg.rate_noise = 0;
  TimelySimulator sim(g, model, cfg);
  std::vector<int> ones(3, 1);
  ASSERT_TRUE(sim.Deploy(ones).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->ops[b].saturated);  // evades the 85% rule
  EXPECT_FALSE(m->job_backpressure);
  // ... but the backlog shows up as growing per-epoch latency.
  auto trace = sim.RunEpochs(50);
  ASSERT_TRUE(trace.ok());
  EXPECT_GT(trace->latencies.back(), trace->latencies.front());
}

TEST(TimelySimTest, EpochLatencyStableWhenProvisioned) {
  TimelyConfig cfg;
  cfg.rate_noise = 0;
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ5, cfg);
  ASSERT_TRUE(sim.Deploy(sim.OracleParallelism()).ok());
  auto trace = sim.RunEpochs(60);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->latencies.size(), 60u);
  // Stable: late epochs no worse than ~2x early epochs.
  double early = trace->latencies[5];
  double late = trace->latencies[55];
  EXPECT_LT(late, 2.0 * early + 0.5);
}

TEST(TimelySimTest, EpochLatencyGrowsUnderOverload) {
  TimelyConfig cfg;
  cfg.rate_noise = 0;
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ5, cfg);
  sim.ScaleAllSources(10.0);
  std::vector<int> ones(sim.graph().num_operators(), 1);
  ASSERT_TRUE(sim.Deploy(ones).ok());
  auto trace = sim.RunEpochs(60);
  ASSERT_TRUE(trace.ok());
  EXPECT_GT(trace->latencies[55], 5.0 * trace->latencies[5]);
}

TEST(TimelySimTest, SpinInflatesUsefulTime) {
  TimelyConfig cfg;
  cfg.rate_noise = 0;
  cfg.spin_inflation = 0.85;
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ3, cfg);
  // Heavily over-provision: busy fractions low, spin dominates.
  std::vector<int> p(sim.graph().num_operators(), 10);
  ASSERT_TRUE(sim.Deploy(p).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  for (const auto& om : m->ops) {
    if (om.busy_frac < 0.5) {
      EXPECT_GT(om.useful_time_frac_observed, om.busy_frac + 0.3);
    }
  }
}

TEST(TimelySimTest, OverloadUndercountsRateLogs) {
  TimelyConfig cfg;
  cfg.rate_noise = 0;
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ3, cfg);
  sim.ScaleAllSources(10.0);
  std::vector<int> ones(sim.graph().num_operators(), 1);
  ASSERT_TRUE(sim.Deploy(ones).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  bool any_undercounted = false;
  for (const auto& om : m->ops) {
    if (om.busy_frac > 0.9 && om.desired_input_rate > 0) {
      // Logged consumed rate is far below what actually flowed.
      any_undercounted |=
          om.input_rate < 0.8 * om.busy_frac * om.desired_input_rate;
    }
  }
  EXPECT_TRUE(any_undercounted);
}

TEST(TimelySimTest, ReconfigurationCountingAndReset) {
  TimelySimulator sim = MakeSim(workloads::NexmarkQuery::kQ8);
  std::vector<int> p(sim.graph().num_operators(), 1);
  ASSERT_TRUE(sim.Deploy(p).ok());
  EXPECT_EQ(sim.reconfiguration_count(), 0);
  p[0] = 2;
  ASSERT_TRUE(sim.Deploy(p).ok());
  EXPECT_EQ(sim.reconfiguration_count(), 1);
  sim.ResetCounters();
  EXPECT_EQ(sim.reconfiguration_count(), 0);
  EXPECT_EQ(sim.deployment_count(), 0);
}

TEST(TimelySimTest, OracleEliminatesBottlenecks) {
  for (auto q : {workloads::NexmarkQuery::kQ3, workloads::NexmarkQuery::kQ5,
                 workloads::NexmarkQuery::kQ8}) {
    TimelyConfig cfg;
    cfg.rate_noise = 0;
    TimelySimulator sim = MakeSim(q, cfg);
    for (double mult : {1.0, 10.0}) {
      sim.ScaleAllSources(mult);
      auto oracle = sim.OracleParallelism();
      ASSERT_TRUE(sim.Deploy(oracle).ok());
      auto m = sim.Measure();
      ASSERT_TRUE(m.ok());
      EXPECT_FALSE(m->job_backpressure)
          << workloads::NexmarkQueryName(q) << " @" << mult;
    }
  }
}

}  // namespace
}  // namespace streamtune::timelysim
