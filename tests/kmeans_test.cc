#include <gtest/gtest.h>

#include "graph/ged_kmeans.h"
#include "workloads/pqp.h"

namespace streamtune::graph {
namespace {

std::vector<JobGraph> TwoFamilies(int per_family) {
  std::vector<JobGraph> dags;
  for (int i = 0; i < per_family; ++i) {
    dags.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < per_family; ++i) {
    dags.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  return dags;
}

TEST(KMeansTest, RejectsBadInput) {
  KMeansOptions opts;
  EXPECT_FALSE(ClusterDags({}, opts).ok());
  auto dags = TwoFamilies(2);
  opts.k = 0;
  EXPECT_FALSE(ClusterDags(dags, opts).ok());
  opts.k = 100;
  EXPECT_FALSE(ClusterDags(dags, opts).ok());
}

TEST(KMeansTest, SeparatesStructuralFamilies) {
  auto dags = TwoFamilies(5);
  KMeansOptions opts;
  opts.k = 2;
  auto res = ClusterDags(dags, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->assignment.size(), dags.size());
  // All Linear queries in one cluster, all 3-way joins in the other.
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(res->assignment[i], res->assignment[0]) << "linear " << i;
  }
  for (int i = 6; i < 10; ++i) {
    EXPECT_EQ(res->assignment[i], res->assignment[5]) << "3-way " << i;
  }
  EXPECT_NE(res->assignment[0], res->assignment[5]);
}

TEST(KMeansTest, CentersAreMembersOfTheirClusters) {
  auto dags = TwoFamilies(4);
  KMeansOptions opts;
  opts.k = 2;
  auto res = ClusterDags(dags, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->center_indices.size(), 2u);
  for (int c = 0; c < 2; ++c) {
    int idx = res->center_indices[c];
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<int>(dags.size()));
    EXPECT_EQ(res->assignment[idx], c);
  }
}

TEST(KMeansTest, SingleClusterAssignsEverything) {
  auto dags = TwoFamilies(3);
  KMeansOptions opts;
  opts.k = 1;
  auto res = ClusterDags(dags, opts);
  ASSERT_TRUE(res.ok());
  for (int a : res->assignment) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, DeterministicForSeed) {
  auto dags = TwoFamilies(4);
  KMeansOptions opts;
  opts.k = 2;
  auto a = ClusterDags(dags, opts);
  auto b = ClusterDags(dags, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->center_indices, b->center_indices);
}

TEST(KMeansTest, NearestCenterPicksArgmin) {
  auto linear = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 6);
  std::vector<JobGraph> centers{
      workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 0),
      workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 0)};
  EXPECT_EQ(NearestCenter(linear, centers), 0);
  auto three = workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 6);
  EXPECT_EQ(NearestCenter(three, centers), 1);
}

TEST(KMeansTest, DistancesToCentersMatchExactGed) {
  auto g = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 2);
  std::vector<JobGraph> centers{
      workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 0),
      workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 1)};
  auto dist = DistancesToCenters(g, centers);
  // The minimum distance is exact (the pruning threshold only trims
  // centers that are provably farther).
  GedResult d0 = ComputeGed(g, centers[0]);
  GedResult d1 = ComputeGed(g, centers[1]);
  double expected_min = std::min(d0.distance, d1.distance);
  EXPECT_DOUBLE_EQ(std::min(dist[0], dist[1]), expected_min);
}

TEST(KMeansTest, ElbowSelectsWithinRange) {
  auto dags = TwoFamilies(4);
  KMeansOptions opts;
  auto k = SelectKByElbow(dags, 2, 4, opts);
  ASSERT_TRUE(k.ok());
  EXPECT_GE(*k, 2);
  EXPECT_LE(*k, 4);
}

TEST(KMeansTest, ElbowRejectsBadRange) {
  auto dags = TwoFamilies(2);
  KMeansOptions opts;
  EXPECT_FALSE(SelectKByElbow(dags, 0, 3, opts).ok());
  EXPECT_FALSE(SelectKByElbow(dags, 3, 2, opts).ok());
  EXPECT_FALSE(SelectKByElbow(dags, 2, 100, opts).ok());
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  auto dags = TwoFamilies(5);
  KMeansOptions opts;
  opts.k = 1;
  auto one = ClusterDags(dags, opts);
  opts.k = 4;
  auto four = ClusterDags(dags, opts);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_LE(four->within_cluster_distance,
            one->within_cluster_distance + 1e-9);
}

}  // namespace
}  // namespace streamtune::graph
