#include <gtest/gtest.h>

#include "core/labeling.h"

namespace streamtune::core {
namespace {

OperatorSpec Src(const char* name) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kSource;
  s.source_rate = 1000;
  return s;
}

OperatorSpec Op(const char* name, OperatorType t) {
  OperatorSpec s;
  s.name = name;
  s.type = t;
  return s;
}

// Builds the Fig. 3 topology: O1 -> {O2, O3}; O3 -> O4 (O2 also -> O4).
struct Fig3 {
  JobGraph g{"fig3"};
  int o1, o2, o3, o4;
  Fig3() {
    o1 = g.AddOperator(Src("O1"));
    o2 = g.AddOperator(Op("O2", OperatorType::kMap));
    o3 = g.AddOperator(Op("O3", OperatorType::kFilter));
    o4 = g.AddOperator(Op("O4", OperatorType::kSink));
    EXPECT_TRUE(g.AddEdge(o1, o2).ok());
    EXPECT_TRUE(g.AddEdge(o1, o3).ok());
    EXPECT_TRUE(g.AddEdge(o2, o4).ok());
    EXPECT_TRUE(g.AddEdge(o3, o4).ok());
  }
};

sim::JobMetrics CleanMetrics(int n) {
  sim::JobMetrics m;
  m.ops.resize(n);
  for (auto& om : m.ops) {
    om.busy_frac = om.cpu_load = 0.2;
    om.idle_frac = 0.8;
  }
  m.job_backpressure = false;
  return m;
}

TEST(LabelingTest, NoBackpressureLabelsEverythingZero) {
  Fig3 f;
  auto labels = LabelBottlenecks(f.g, CleanMetrics(4));
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 0, 0}));
}

TEST(LabelingTest, Fig3Scenario) {
  // O1 backpressured; O2 at 98% CPU (the bottleneck); O3 at 15%.
  Fig3 f;
  sim::JobMetrics m = CleanMetrics(4);
  m.job_backpressure = true;
  m.ops[f.o1].backpressured = true;
  m.ops[f.o1].backpressured_frac = 0.4;
  m.ops[f.o2].cpu_load = 0.98;
  m.ops[f.o2].busy_frac = 0.98;
  m.ops[f.o2].saturated = true;
  m.ops[f.o3].cpu_load = 0.15;
  auto labels = LabelBottlenecks(f.g, m);
  EXPECT_EQ(labels[f.o1], -1);  // under backpressure: inconclusive
  EXPECT_EQ(labels[f.o2], 1);   // high CPU downstream of the frontier
  EXPECT_EQ(labels[f.o3], 0);   // low CPU downstream of the frontier
  EXPECT_EQ(labels[f.o4], -1);  // not downstream of the frontier
}

TEST(LabelingTest, FrontierExcludesOperatorsWithBackpressuredDownstream) {
  // Chain src -> m1 -> m2(sat) with both src and m1 backpressured: only m1
  // is in the frontier; src's downstream (m1) must stay unlabeled.
  JobGraph g("chain");
  int s = g.AddOperator(Src("s"));
  int m1 = g.AddOperator(Op("m1", OperatorType::kMap));
  int m2 = g.AddOperator(Op("m2", OperatorType::kMap));
  int k = g.AddOperator(Op("k", OperatorType::kSink));
  ASSERT_TRUE(g.AddEdge(s, m1).ok());
  ASSERT_TRUE(g.AddEdge(m1, m2).ok());
  ASSERT_TRUE(g.AddEdge(m2, k).ok());
  sim::JobMetrics m = CleanMetrics(4);
  m.job_backpressure = true;
  m.ops[s].backpressured = true;
  m.ops[m1].backpressured = true;
  m.ops[m2].saturated = true;
  m.ops[m2].cpu_load = 1.0;
  m.ops[k].cpu_load = 0.1;
  auto labels = LabelBottlenecks(g, m);
  EXPECT_EQ(labels[s], -1);
  EXPECT_EQ(labels[m1], -1);
  EXPECT_EQ(labels[m2], 1);
  // k is downstream of the bottleneck m2, not of a frontier member; its
  // upstream rates are altered, so it stays inconclusive.
  EXPECT_EQ(labels[k], -1);
}

TEST(LabelingTest, SaturatedSourceIsItsOwnBottleneck) {
  Fig3 f;
  sim::JobMetrics m = CleanMetrics(4);
  m.job_backpressure = true;
  m.ops[f.o1].saturated = true;
  m.ops[f.o1].busy_frac = m.ops[f.o1].cpu_load = 1.0;
  auto labels = LabelBottlenecks(f.g, m);
  EXPECT_EQ(labels[f.o1], 1);
  // Everything else inconclusive: the throttled source altered their rates.
  EXPECT_EQ(labels[f.o2], -1);
  EXPECT_EQ(labels[f.o3], -1);
  EXPECT_EQ(labels[f.o4], -1);
}

TEST(LabelingTest, CpuThresholdConfigurable) {
  Fig3 f;
  sim::JobMetrics m = CleanMetrics(4);
  m.job_backpressure = true;
  m.ops[f.o1].backpressured = true;
  m.ops[f.o2].cpu_load = 0.5;
  m.ops[f.o3].cpu_load = 0.1;
  LabelingOptions strict;
  strict.cpu_threshold = 0.4;
  auto labels = LabelBottlenecks(f.g, m, strict);
  EXPECT_EQ(labels[f.o2], 1);  // 0.5 > 0.4
  LabelingOptions lax;
  lax.cpu_threshold = 0.6;
  labels = LabelBottlenecks(f.g, m, lax);
  EXPECT_EQ(labels[f.o2], 0);  // 0.5 < 0.6
}

TEST(LabelingTest, MildSaturationLabeledDirectly) {
  // A saturated non-source whose upstream never crosses the 10% flag: the
  // direct saturation rule must still label it.
  Fig3 f;
  sim::JobMetrics m = CleanMetrics(4);
  m.job_backpressure = true;
  m.ops[f.o2].saturated = true;  // nobody flagged backpressured
  m.ops[f.o2].cpu_load = 1.0;
  auto labels = LabelBottlenecks(f.g, m);
  EXPECT_EQ(labels[f.o2], 1);
}

}  // namespace
}  // namespace streamtune::core
