#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/gbdt.h"

namespace streamtune::ml {
namespace {

std::vector<LabeledSample> ThresholdDataset(int n, Rng* rng) {
  std::vector<LabeledSample> data;
  for (int i = 0; i < n; ++i) {
    double knob = rng->Uniform();
    double threshold = 10 + 40 * knob;
    LabeledSample s;
    s.embedding = {knob, rng->Uniform(), rng->Uniform(), rng->Uniform()};
    s.parallelism = rng->UniformInt(1, 60);
    s.label = s.parallelism < threshold ? 1 : 0;
    data.push_back(std::move(s));
  }
  return data;
}

TEST(GbdtTest, RejectsBadInput) {
  MonotonicGbdt gbdt(4);
  EXPECT_FALSE(gbdt.Fit({}).ok());
  LabeledSample bad;
  bad.embedding = {1.0, 2.0};
  EXPECT_FALSE(gbdt.Fit({bad}).ok());
}

TEST(GbdtTest, LearnsThresholdTask) {
  Rng rng(42);
  auto data = ThresholdDataset(500, &rng);
  MonotonicGbdt gbdt(4);
  ASSERT_TRUE(gbdt.Fit(data).ok());
  EXPECT_EQ(gbdt.num_trees_built(), GbdtConfig{}.num_trees);
  auto test = ThresholdDataset(200, &rng);
  int correct = 0;
  for (const auto& s : test) {
    if (gbdt.PredictBottleneck(s.embedding, s.parallelism) ==
        (s.label == 1)) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 165) << "accuracy " << correct / 200.0;
}

// Property: the ensemble is non-increasing in the parallelism feature for
// arbitrary embeddings — the constraint must hold off-distribution too.
class GbdtMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(GbdtMonotonicityTest, LogitNonIncreasingInParallelism) {
  Rng rng(200 + GetParam());
  MonotonicGbdt gbdt(4);
  ASSERT_TRUE(gbdt.Fit(ThresholdDataset(300, &rng)).ok());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> h{rng.Uniform(), rng.Uniform(), rng.Uniform(),
                          rng.Uniform()};
    double prev = gbdt.PredictLogit(h, 1);
    for (int p = 2; p <= 100; ++p) {
      double cur = gbdt.PredictLogit(h, p);
      EXPECT_LE(cur, prev + 1e-9) << "p=" << p << " trial=" << trial;
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbdtMonotonicityTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(GbdtTest, UnconstrainedModelCanViolateMonotonicity) {
  // Adversarial dataset: bottlenecks at HIGH parallelism (inverted world).
  // The unconstrained model should follow the data; the constrained one
  // cannot.
  Rng rng(31);
  std::vector<LabeledSample> data;
  for (int i = 0; i < 300; ++i) {
    LabeledSample s;
    s.embedding = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                   rng.Uniform()};
    s.parallelism = rng.UniformInt(1, 60);
    s.label = s.parallelism > 30 ? 1 : 0;  // inverted
    data.push_back(std::move(s));
  }
  GbdtConfig free_cfg;
  free_cfg.enforce_monotonic = false;
  MonotonicGbdt unconstrained(4, free_cfg);
  ASSERT_TRUE(unconstrained.Fit(data).ok());
  EXPECT_FALSE(unconstrained.is_monotonic());
  std::vector<double> h{0.5, 0.5, 0.5, 0.5};
  // Unconstrained follows the inverted data.
  EXPECT_GT(unconstrained.PredictLogit(h, 55),
            unconstrained.PredictLogit(h, 5));

  MonotonicGbdt constrained(4);
  ASSERT_TRUE(constrained.Fit(data).ok());
  EXPECT_TRUE(constrained.is_monotonic());
  // Constrained refuses to increase with p even on inverted data.
  double prev = constrained.PredictLogit(h, 1);
  for (int p = 2; p <= 60; ++p) {
    double cur = constrained.PredictLogit(h, p);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(GbdtTest, SingleClassDataIsStable) {
  Rng rng(33);
  auto data = ThresholdDataset(100, &rng);
  for (auto& s : data) s.label = 1;
  MonotonicGbdt gbdt(4);
  ASSERT_TRUE(gbdt.Fit(data).ok());
  std::vector<double> h{0.5, 0.5, 0.5, 0.5};
  EXPECT_GT(gbdt.PredictProbability(h, 10), 0.5);
}

TEST(GbdtTest, RefitReplacesModel) {
  Rng rng(35);
  MonotonicGbdt gbdt(4);
  ASSERT_TRUE(gbdt.Fit(ThresholdDataset(100, &rng)).ok());
  int trees_before = gbdt.num_trees_built();
  ASSERT_TRUE(gbdt.Fit(ThresholdDataset(100, &rng)).ok());
  EXPECT_EQ(gbdt.num_trees_built(), trees_before);  // replaced, not appended
}

TEST(GbdtTest, DepthLimitRespected) {
  // With max_depth 1 the trees are stumps; prediction must still work.
  GbdtConfig cfg;
  cfg.max_depth = 1;
  cfg.num_trees = 10;
  Rng rng(37);
  MonotonicGbdt gbdt(4, cfg);
  ASSERT_TRUE(gbdt.Fit(ThresholdDataset(200, &rng)).ok());
  std::vector<double> h{0.5, 0.5, 0.5, 0.5};
  double p = gbdt.PredictProbability(h, 10);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace streamtune::ml
