#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::sim {
namespace {

JobGraph SampleJob() {
  return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                    workloads::Engine::kFlink);
}

TEST(CostModelTest, ProcessingAbilityStrictlyIncreasing) {
  PerfModel model(SampleJob(), CostModelConfig{});
  for (int v = 0; v < model.num_operators(); ++v) {
    for (int p = 1; p < 100; ++p) {
      EXPECT_LT(model.ProcessingAbility(v, p),
                model.ProcessingAbility(v, p + 1))
          << "operator " << v << " p " << p;
    }
  }
}

TEST(CostModelTest, SubLinearScaling) {
  PerfModel model(SampleJob(), CostModelConfig{});
  for (int v = 0; v < model.num_operators(); ++v) {
    if (model.profile(v).scaling_gamma == 0) continue;
    double pa1 = model.ProcessingAbility(v, 1);
    double pa10 = model.ProcessingAbility(v, 10);
    EXPECT_LT(pa10, 10 * pa1);  // contention
    EXPECT_GT(pa10, 5 * pa1);   // but not pathological
  }
}

TEST(CostModelTest, MinParallelismForMatchesLinearScan) {
  PerfModel model(SampleJob(), CostModelConfig{});
  const int p_max = 100;
  for (int v = 0; v < model.num_operators(); ++v) {
    for (double frac : {0.1, 0.5, 0.9, 1.3}) {
      double rate = frac * model.ProcessingAbility(v, 37);
      int bs = model.MinParallelismFor(v, rate, p_max);
      int lin = p_max + 1;
      for (int p = 1; p <= p_max; ++p) {
        if (model.ProcessingAbility(v, p) >= rate) {
          lin = p;
          break;
        }
      }
      EXPECT_EQ(bs, lin) << "operator " << v << " rate " << rate;
    }
  }
}

TEST(CostModelTest, MinParallelismEdgeCases) {
  PerfModel model(SampleJob(), CostModelConfig{});
  EXPECT_EQ(model.MinParallelismFor(0, 0.0, 100), 1);
  EXPECT_EQ(model.MinParallelismFor(0, -5.0, 100), 1);
  EXPECT_EQ(model.MinParallelismFor(0, 1e18, 100), 101);  // unattainable
}

TEST(CostModelTest, StatefulOperatorsCostMore) {
  OperatorSpec map;
  map.type = OperatorType::kMap;
  OperatorSpec agg;
  agg.type = OperatorType::kAggregate;
  agg.window_type = WindowType::kTumbling;
  agg.window_policy = WindowPolicy::kTime;
  agg.window_length = 60;
  EXPECT_GT(PerfModel::BaseProfile(agg).cost_per_record,
            PerfModel::BaseProfile(map).cost_per_record);
}

TEST(CostModelTest, SlidingWindowsCostMoreThanTumbling) {
  OperatorSpec tumbling;
  tumbling.type = OperatorType::kAggregate;
  tumbling.window_type = WindowType::kTumbling;
  tumbling.window_policy = WindowPolicy::kTime;
  tumbling.window_length = 60;
  OperatorSpec sliding = tumbling;
  sliding.window_type = WindowType::kSliding;
  sliding.sliding_length = 5;
  EXPECT_GT(PerfModel::BaseProfile(sliding).cost_per_record,
            PerfModel::BaseProfile(tumbling).cost_per_record);
}

TEST(CostModelTest, WiderTuplesCostMore) {
  OperatorSpec narrow;
  narrow.type = OperatorType::kMap;
  narrow.tuple_width_in = 64;
  OperatorSpec wide = narrow;
  wide.tuple_width_in = 512;
  EXPECT_GT(PerfModel::BaseProfile(wide).cost_per_record,
            PerfModel::BaseProfile(narrow).cost_per_record);
}

TEST(CostModelTest, JitterDeterministicPerSeed) {
  JobGraph job = SampleJob();
  CostModelConfig cfg;
  PerfModel a(job, cfg), b(job, cfg);
  for (int v = 0; v < a.num_operators(); ++v) {
    EXPECT_DOUBLE_EQ(a.profile(v).cost_per_record,
                     b.profile(v).cost_per_record);
  }
  cfg.seed = 99;
  PerfModel c(job, cfg);
  bool any_diff = false;
  for (int v = 0; v < a.num_operators(); ++v) {
    any_diff |= a.profile(v).cost_per_record != c.profile(v).cost_per_record;
  }
  EXPECT_TRUE(any_diff);
}

TEST(CostModelTest, CostScaleMultiplies) {
  JobGraph job = SampleJob();
  CostModelConfig base;
  base.jitter = 0;
  CostModelConfig scaled = base;
  scaled.cost_scale = 10.0;
  PerfModel a(job, base), b(job, scaled);
  for (int v = 0; v < a.num_operators(); ++v) {
    EXPECT_NEAR(b.profile(v).cost_per_record,
                10.0 * a.profile(v).cost_per_record, 1e-15);
  }
}

TEST(CostModelTest, SetProfileOverrides) {
  PerfModel model(SampleJob(), CostModelConfig{});
  CostProfile custom;
  custom.cost_per_record = 1e-3;
  custom.selectivity = 0.25;
  custom.scaling_gamma = 0.0;
  model.SetProfile(1, custom);
  EXPECT_DOUBLE_EQ(model.Selectivity(1), 0.25);
  // gamma = 0 means perfectly linear scaling.
  EXPECT_DOUBLE_EQ(model.ProcessingAbility(1, 8),
                   8 * model.ProcessingAbility(1, 1));
}

TEST(CostModelTest, SinkHasZeroSelectivity) {
  OperatorSpec sink;
  sink.type = OperatorType::kSink;
  EXPECT_DOUBLE_EQ(PerfModel::BaseProfile(sink).selectivity, 0.0);
}

}  // namespace
}  // namespace streamtune::sim
