// ChaosEngine: determinism, empty-plan transparency, counter hygiene.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/ds2.h"
#include "sim/chaos_engine.h"
#include "sim/engine.h"
#include "sim/metrics_sanitizer.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"

namespace streamtune::sim {
namespace {

JobGraph Q3() {
  return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                    workloads::Engine::kFlink);
}

FlinkEngine MakeEngine(const JobGraph& job, double noise = 0.08) {
  PerfModel model(job, workloads::CostConfigFor(job));
  SimConfig cfg;
  cfg.useful_time_noise = noise;
  return FlinkEngine(job, model, cfg);
}

void DeployOnes(StreamEngine* engine) {
  std::vector<int> ones(engine->graph().num_operators(), 1);
  ASSERT_TRUE(engine->Deploy(ones).ok());
}

TEST(FaultPlanTest, ValidateRejectsBadValues) {
  FaultPlan plan;
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_TRUE(FaultPlan::Standard().Validate().ok());
  plan.deploy_failure_prob = 1.5;
  EXPECT_FALSE(plan.Validate().ok());
  plan = FaultPlan{};
  plan.measure_dropout_prob = -0.1;
  EXPECT_FALSE(plan.Validate().ok());
  plan = FaultPlan{};
  plan.straggler_factor = 0.5;
  EXPECT_FALSE(plan.Validate().ok());
  plan = FaultPlan{};
  plan.max_consecutive_deploy_failures = 0;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(ChaosEngineTest, EmptyPlanIsBitIdenticalToBareEngine) {
  JobGraph job = Q3();
  FlinkEngine bare = MakeEngine(job);
  FlinkEngine inner = MakeEngine(job);
  FaultPlan empty;
  ASSERT_TRUE(empty.Empty());
  ChaosEngine wrapped(&inner, empty);

  DeployOnes(&bare);
  DeployOnes(&wrapped);
  bare.ScaleAllSources(8.0);
  wrapped.ScaleAllSources(8.0);

  baselines::Ds2Tuner ds2_a, ds2_b;
  auto a = ds2_a.Tune(&bare);
  auto b = ds2_b.Tune(&wrapped);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->final_parallelism, b->final_parallelism);
  EXPECT_EQ(a->reconfigurations, b->reconfigurations);
  EXPECT_EQ(a->tuning_minutes, b->tuning_minutes);
  EXPECT_EQ(a->backpressure_events, b->backpressure_events);
  EXPECT_EQ(0, a->faults_survived);
  EXPECT_EQ(0, b->faults_survived);
  EXPECT_EQ(0, wrapped.stats().total());
}

TEST(ChaosEngineTest, SamePlanAndSeedGiveIdenticalFaultSequence) {
  JobGraph job = Q3();
  FaultPlan plan = FaultPlan::Standard(1234);
  plan.metric_corruption_prob = 0.2;
  plan.rate_spike_prob = 0.1;

  auto run = [&](std::vector<bool>* deploy_ok, std::vector<bool>* measure_ok) {
    FlinkEngine inner = MakeEngine(job, /*noise=*/0.0);
    ChaosEngine chaos(&inner, plan);
    std::vector<int> p(job.num_operators(), 1);
    for (int i = 0; i < 40; ++i) {
      p[i % p.size()] = 1 + (i % 4);
      deploy_ok->push_back(chaos.Deploy(p).ok());
      measure_ok->push_back(chaos.Measure().ok());
    }
    return chaos.stats();
  };

  std::vector<bool> d1, m1, d2, m2;
  ChaosStats s1 = run(&d1, &m1);
  ChaosStats s2 = run(&d2, &m2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(s1.deploy_failures, s2.deploy_failures);
  EXPECT_EQ(s1.measure_dropouts, s2.measure_dropouts);
  EXPECT_EQ(s1.corrupted_samples, s2.corrupted_samples);
  EXPECT_EQ(s1.stragglers, s2.stragglers);
  EXPECT_EQ(s1.rate_spikes, s2.rate_spikes);
  EXPECT_GT(s1.total(), 0);  // the plan actually fired at these rates
}

TEST(ChaosEngineTest, FailedDeployDoesNotTouchCountersOrClock) {
  JobGraph job = Q3();
  FlinkEngine inner = MakeEngine(job);
  FaultPlan plan;
  plan.deploy_failure_prob = 1.0;
  plan.max_consecutive_deploy_failures = 3;
  ChaosEngine chaos(&inner, plan);

  std::vector<int> ones(job.num_operators(), 1);
  Status st = chaos.Deploy(ones);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kUnavailable, st.code());
  EXPECT_EQ(0, chaos.deployment_count());
  EXPECT_EQ(0, chaos.reconfiguration_count());
  EXPECT_EQ(0.0, chaos.virtual_minutes());
  EXPECT_EQ(1, chaos.stats().deploy_failures);

  // The consecutive-failure cap eventually lets a retry through, and only
  // the successful attempt reaches the inner engine's counters.
  int failures = 1;
  while (!chaos.Deploy(ones).ok()) ++failures;
  EXPECT_EQ(plan.max_consecutive_deploy_failures, failures);
  EXPECT_EQ(1, chaos.deployment_count());
}

TEST(ChaosEngineTest, DropoutsAreBoundedAndRetriable) {
  JobGraph job = Q3();
  FlinkEngine inner = MakeEngine(job);
  FaultPlan plan;
  plan.measure_dropout_prob = 1.0;
  plan.max_consecutive_dropouts = 2;
  ChaosEngine chaos(&inner, plan);
  DeployOnes(&chaos);

  int dropouts = 0;
  Result<JobMetrics> m = chaos.Measure();
  while (!m.ok()) {
    EXPECT_EQ(StatusCode::kUnavailable, m.status().code());
    ++dropouts;
    m = chaos.Measure();
  }
  EXPECT_EQ(plan.max_consecutive_dropouts, dropouts);
  EXPECT_TRUE(m->Validate().ok());
}

TEST(ChaosEngineTest, CorruptedSamplesFailValidationOrReplayFrozen) {
  JobGraph job = Q3();
  FlinkEngine inner = MakeEngine(job, /*noise=*/0.0);
  FaultPlan plan;
  plan.metric_corruption_prob = 1.0;
  ChaosEngine chaos(&inner, plan);
  DeployOnes(&chaos);

  for (int i = 0; i < 10; ++i) {
    Result<JobMetrics> m = chaos.Measure();
    ASSERT_TRUE(m.ok());  // corruption delivers a sample, it does not drop
  }
  // Every sample is corrupted except possibly the very first (a frozen
  // replay needs a previous sample to replay).
  EXPECT_GE(chaos.stats().corrupted_samples, 9);
}

TEST(ChaosEngineTest, StragglerSkewsBusyTime) {
  JobGraph job = Q3();
  FlinkEngine inner = MakeEngine(job, /*noise=*/0.0);
  FaultPlan plan;
  plan.straggler_prob = 1.0;
  plan.straggler_factor = 5.0;
  ChaosEngine chaos(&inner, plan);
  DeployOnes(&chaos);

  Result<JobMetrics> clean = inner.Measure();
  ASSERT_TRUE(clean.ok());
  Result<JobMetrics> skew = chaos.Measure();
  ASSERT_TRUE(skew.ok());
  EXPECT_GE(chaos.stats().stragglers, 1);
  // Exactly one operator's observed useful time was inflated.
  double max_ratio = 0;
  for (size_t v = 0; v < clean->ops.size(); ++v) {
    double base = clean->ops[v].useful_time_frac_observed;
    if (base <= 0) continue;
    max_ratio =
        std::max(max_ratio, skew->ops[v].useful_time_frac_observed / base);
  }
  EXPECT_GT(max_ratio, 1.0);
}

TEST(ChaosEngineTest, RateSpikeInflatesSourceDemandOnly) {
  JobGraph job = Q3();
  FlinkEngine inner = MakeEngine(job, /*noise=*/0.0);
  FaultPlan plan;
  plan.rate_spike_prob = 1.0;
  plan.rate_spike_factor = 2.0;
  ChaosEngine chaos(&inner, plan);
  DeployOnes(&chaos);

  Result<JobMetrics> clean = inner.Measure();
  ASSERT_TRUE(clean.ok());
  Result<JobMetrics> spiked = chaos.Measure();
  ASSERT_TRUE(spiked.ok());
  EXPECT_GE(chaos.stats().rate_spikes, 1);
  const JobGraph& g = chaos.graph();
  for (int v = 0; v < g.num_operators(); ++v) {
    if (g.upstream(v).empty()) {
      EXPECT_NEAR(2.0 * clean->ops[v].desired_input_rate,
                  spiked->ops[v].desired_input_rate, 1e-9);
    } else {
      EXPECT_NEAR(clean->ops[v].desired_input_rate,
                  spiked->ops[v].desired_input_rate, 1e-9);
    }
  }
}

TEST(FleetFaultPlanTest, PerJobPlansIndependentOfInsertionOrder) {
  FleetFaultPlan fleet;
  fleet.master_seed = 42;
  fleet.fault_fraction = 0.3;

  // Query the same ids in ascending, descending, and interleaved order: a
  // job's plan is a pure function of (master seed, id), so every traversal
  // must agree fault-by-fault and seed-by-seed.
  std::vector<int64_t> asc, desc, shuffled;
  for (int64_t id = 0; id < 200; ++id) asc.push_back(id);
  desc.assign(asc.rbegin(), asc.rend());
  for (int64_t id = 0; id < 200; id += 2) shuffled.push_back(id);
  for (int64_t id = 1; id < 200; id += 2) shuffled.push_back(id);

  std::map<int64_t, FaultPlan> by_asc;
  for (int64_t id : asc) by_asc[id] = fleet.PlanFor(id);
  for (const auto& order : {desc, shuffled}) {
    for (int64_t id : order) {
      FaultPlan plan = fleet.PlanFor(id);
      EXPECT_EQ(plan.seed, by_asc[id].seed) << "job " << id;
      EXPECT_EQ(plan.Empty(), by_asc[id].Empty()) << "job " << id;
      EXPECT_EQ(fleet.Faulted(id), !plan.Empty()) << "job " << id;
    }
  }
}

TEST(FleetFaultPlanTest, FaultedJobsGetPairwiseDistinctSeeds) {
  FleetFaultPlan fleet;
  fleet.master_seed = 7;
  fleet.fault_fraction = 1.0;
  std::set<uint64_t> seeds;
  for (int64_t id = 0; id < 1000; ++id) {
    FaultPlan plan = fleet.PlanFor(id);
    EXPECT_FALSE(plan.Empty());
    seeds.insert(plan.seed);
  }
  // Splitmix mixing: no collisions across 1000 sequential ids.
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(FleetFaultPlanTest, FaultStreamsDecorrelatedAcrossNeighborJobs) {
  // Sequential job ids must not produce correlated fault streams: drive two
  // RNGs from neighboring derived seeds and check their Bernoulli draws
  // disagree a healthy fraction of the time.
  FleetFaultPlan fleet;
  fleet.fault_fraction = 1.0;
  Rng a(fleet.PlanFor(1).seed), b(fleet.PlanFor(2).seed);
  int disagreements = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    disagreements += a.Bernoulli(0.5) != b.Bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_GT(disagreements, kDraws / 3);
  EXPECT_LT(disagreements, 2 * kDraws / 3);
}

TEST(FleetFaultPlanTest, StormFractionRoughlyRespected) {
  FleetFaultPlan fleet;
  fleet.master_seed = 1234;
  fleet.fault_fraction = 0.3;
  int faulted = 0;
  const int kFleet = 10000;
  for (int64_t id = 0; id < kFleet; ++id) faulted += fleet.Faulted(id) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(faulted) / kFleet, 0.3, 0.03);
}

TEST(FleetFaultPlanTest, UnfaultedJobsGetStrictNoOpPlans) {
  FleetFaultPlan fleet;
  fleet.fault_fraction = 0.0;
  for (int64_t id = 0; id < 50; ++id) {
    EXPECT_TRUE(fleet.PlanFor(id).Empty());
    EXPECT_FALSE(fleet.Faulted(id));
  }
  fleet.fault_fraction = 1.0;
  for (int64_t id = 0; id < 50; ++id) EXPECT_TRUE(fleet.Faulted(id));
}

}  // namespace
}  // namespace streamtune::sim
