// The tape autograd engine: finite-difference verification of every op,
// bit-identical reproducibility across re-recordings and tape reuse, and
// the allocation-free reuse guarantees (Reset retains capacity;
// steady-state epochs do not grow the arena).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "ml/gnn.h"
#include "ml/nn.h"
#include "ml/tape.h"
#include "workloads/nexmark.h"

namespace streamtune::ml {
namespace {

Matrix RandomMatrix(int r, int c, Rng* rng, double scale = 1.0) {
  Matrix m(r, c);
  for (double& v : m.data()) v = scale * (2 * rng->Uniform() - 1);
  return m;
}

// Checks d(loss)/d(param) against central finite differences, where the
// loss is recorded by `make_loss` from the parameter's tape ref.
void CheckTapeGradient(
    Var param,
    const std::function<Tape::Ref(Tape*, Tape::Ref)>& make_loss,
    double tol = 1e-5) {
  auto eval = [&](Tape* tape) {
    tape->Reset();
    return make_loss(tape, tape->Param(param));
  };
  Tape tape;
  Tape::Ref loss = eval(&tape);
  tape.Backward(loss);
  ASSERT_TRUE(param->has_grad());
  Matrix analytic = param->grad;

  const double eps = 1e-6;
  for (size_t i = 0; i < param->value.size(); ++i) {
    double saved = param->value.data()[i];
    param->value.data()[i] = saved + eps;
    double up = tape.value(eval(&tape)).at(0, 0);
    param->value.data()[i] = saved - eps;
    double down = tape.value(eval(&tape)).at(0, 0);
    param->value.data()[i] = saved;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tol)
        << "entry " << i << " of " << param->value.size();
  }
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b,
                        const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << what << " entry " << i;
  }
}

TEST(TapeTest, MatMulGradient) {
  Rng rng(1);
  Var a = Param(RandomMatrix(3, 4, &rng));
  Matrix b_val = RandomMatrix(4, 2, &rng);
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->MatMul(p, t->Constant(&b_val)));
  });
  Var b = Param(b_val);
  Matrix a_val = RandomMatrix(3, 4, &rng);
  CheckTapeGradient(b, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->MatMul(t->Constant(&a_val), p));
  });
}

TEST(TapeTest, AddSubGradient) {
  Rng rng(2);
  Matrix other = RandomMatrix(2, 3, &rng);
  Var a = Param(RandomMatrix(2, 3, &rng));
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->Add(p, t->Constant(&other)));
  });
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->Sub(t->Constant(&other), p));
  });
}

TEST(TapeTest, HadamardAndScaleGradient) {
  Rng rng(3);
  Matrix other = RandomMatrix(2, 2, &rng);
  Var a = Param(RandomMatrix(2, 2, &rng));
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->Hadamard(p, t->Constant(&other)));
  });
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->Scale(p, -2.5));
  });
}

TEST(TapeTest, RowBroadcastGradient) {
  Rng rng(4);
  Matrix big = RandomMatrix(4, 3, &rng);
  Var bias = Param(RandomMatrix(1, 3, &rng));
  CheckTapeGradient(bias, [&](Tape* t, Tape::Ref p) {
    // Square so the bias gradient is input-dependent.
    Tape::Ref x = t->AddRowBroadcast(t->Constant(&big), p);
    return t->SumAll(t->Hadamard(x, x));
  });
}

TEST(TapeTest, ActivationGradients) {
  Rng rng(5);
  // Keep away from ReLU's kink for finite differences.
  Matrix val = RandomMatrix(3, 3, &rng);
  for (double& v : val.data()) {
    if (std::fabs(v) < 0.05) v = 0.1;
  }
  Var a = Param(val);
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->Relu(p));
  });
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->Tanh(p));
  });
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    return t->SumAll(t->Sigmoid(p));
  });
}

TEST(TapeTest, ConcatColsGradient) {
  Rng rng(6);
  Matrix right = RandomMatrix(3, 2, &rng);
  Var a = Param(RandomMatrix(3, 4, &rng));
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    Tape::Ref cat = t->ConcatCols(p, t->Constant(&right));
    return t->SumAll(t->Hadamard(cat, cat));
  });
  Var b = Param(right);
  Matrix left = RandomMatrix(3, 4, &rng);
  CheckTapeGradient(b, [&](Tape* t, Tape::Ref p) {
    Tape::Ref cat = t->ConcatCols(t->Constant(&left), p);
    return t->SumAll(t->Hadamard(cat, cat));
  });
}

TEST(TapeTest, MeanRowsGradient) {
  Rng rng(7);
  Var a = Param(RandomMatrix(5, 3, &rng));
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    Tape::Ref m = t->MeanRows(p);
    return t->SumAll(t->Hadamard(m, m));
  });
}

TEST(TapeTest, RmsNormRowsGradient) {
  Rng rng(8);
  Var a = Param(RandomMatrix(4, 6, &rng));
  Rng wrng(99);
  Matrix weights = RandomMatrix(4, 6, &wrng);
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    // Weighted sum so per-entry gradients are distinguishable.
    return t->SumAll(t->Hadamard(t->RmsNormRows(p), t->Constant(&weights)));
  });
}

TEST(TapeTest, BceWithLogitsGradientAndValue) {
  Rng rng(10);
  Matrix targets(4, 1);
  targets.at(0, 0) = 1;
  targets.at(2, 0) = 1;
  Matrix mask(4, 1, 1.0);
  mask.at(3, 0) = 0.0;  // one unlabeled entry
  Var logits = Param(RandomMatrix(4, 1, &rng, 2.0));
  CheckTapeGradient(logits, [&](Tape* t, Tape::Ref p) {
    return t->BceWithLogitsMasked(p, &targets, &mask);
  });

  // Value check: logit 0 with any target gives log(2).
  Matrix zero(1, 1, 0.0);
  Matrix t1(1, 1, 1.0), m1(1, 1, 1.0);
  Tape tape;
  Tape::Ref loss =
      tape.BceWithLogitsMasked(tape.Constant(&zero), &t1, &m1);
  EXPECT_NEAR(tape.value(loss).at(0, 0), std::log(2.0), 1e-12);
}

TEST(TapeTest, BceAllMaskedIsZeroLoss) {
  Matrix targets(2, 1), mask(2, 1, 0.0);
  Var logits = Param(Matrix(2, 1, 3.0));
  Tape tape;
  Tape::Ref loss =
      tape.BceWithLogitsMasked(tape.Param(logits), &targets, &mask);
  EXPECT_DOUBLE_EQ(tape.value(loss).at(0, 0), 0.0);
  tape.Backward(loss);  // must not crash
  // Like the Var engine, an all-masked loss propagates no gradient at all.
  EXPECT_FALSE(logits->has_grad());
}

TEST(TapeTest, MseLossGradient) {
  Rng rng(11);
  Matrix target = RandomMatrix(3, 2, &rng);
  Var pred = Param(RandomMatrix(3, 2, &rng));
  CheckTapeGradient(pred, [&](Tape* t, Tape::Ref p) {
    return t->MseLoss(p, &target);
  });
  // Zero loss at the target itself.
  Tape tape;
  Var exact = Param(target);
  Tape::Ref loss = tape.MseLoss(tape.Param(exact), &target);
  EXPECT_DOUBLE_EQ(tape.value(loss).at(0, 0), 0.0);
}

TEST(TapeTest, SumAllGradient) {
  Rng rng(12);
  Var a = Param(RandomMatrix(2, 5, &rng));
  CheckTapeGradient(a, [&](Tape* t, Tape::Ref p) {
    Tape::Ref s = t->SumAll(p);
    return t->SumAll(t->Hadamard(s, s));
  });
}

TEST(TapeTest, SharedSubexpressionAccumulatesGradient) {
  // loss = sum(x + x) => dloss/dx = 2.
  Var x = Param(Matrix(2, 2, 1.0));
  Tape tape;
  Tape::Ref xr = tape.Param(x);
  Tape::Ref loss = tape.SumAll(tape.Add(xr, xr));
  tape.Backward(loss);
  for (double g : x->grad.data()) EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST(TapeTest, BackwardClearsStaleGradients) {
  Var x = Param(Matrix(1, 1, 2.0));
  Tape tape;
  Tape::Ref loss1 = tape.SumAll(tape.Scale(tape.Param(x), 3.0));
  tape.Backward(loss1);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 0), 3.0);
  // A fresh recording + backward over the same parameter must not
  // accumulate on top of the previous gradient.
  tape.Reset();
  Tape::Ref loss2 = tape.SumAll(tape.Scale(tape.Param(x), 5.0));
  tape.Backward(loss2);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 0), 5.0);
}

// Every op: identical expression recorded on a fresh tape and on a reused
// (Reset) tape must give bit-identical values and parameter gradients.
// This is the determinism contract buffer reuse must not violate — a slot
// assignment leak or a stale-buffer read would show up here.
TEST(TapeTest, PerOpBitIdentityAcrossReRecordings) {
  Rng rng(20);
  Matrix av = RandomMatrix(4, 5, &rng);
  Matrix bv = RandomMatrix(5, 3, &rng);
  Matrix cv = RandomMatrix(4, 5, &rng);
  Matrix rowv = RandomMatrix(1, 5, &rng);
  Matrix catv = RandomMatrix(4, 2, &rng);

  struct Case {
    const char* name;
    std::function<Tape::Ref(Tape*, Tape::Ref)> tape_loss;
  };
  std::vector<Case> cases = {
      {"matmul",
       [&](Tape* t, Tape::Ref p) {
         return t->SumAll(t->MatMul(p, t->Constant(&bv)));
       }},
      {"add+sub+hadamard",
       [&](Tape* t, Tape::Ref p) {
         return t->SumAll(t->Hadamard(t->Add(p, t->Constant(&cv)),
                                      t->Sub(p, t->Constant(&cv))));
       }},
      {"scale+relu+tanh+sigmoid",
       [&](Tape* t, Tape::Ref p) {
         return t->SumAll(t->Sigmoid(t->Tanh(t->Relu(t->Scale(p, 1.7)))));
       }},
      {"rowbroadcast+rmsnorm",
       [&](Tape* t, Tape::Ref p) {
         return t->SumAll(
             t->RmsNormRows(t->AddRowBroadcast(p, t->Constant(&rowv))));
       }},
      {"concat+meanrows",
       [&](Tape* t, Tape::Ref p) {
         Tape::Ref cat = t->ConcatCols(p, t->Constant(&catv));
         Tape::Ref m = t->MeanRows(cat);
         return t->SumAll(t->Hadamard(m, m));
       }},
  };

  // One tape reused across every case (the NnClassifier/Pretrainer usage
  // pattern); a fresh tape per case is the reference.
  Tape reused;
  for (const Case& c : cases) {
    Var fresh_p = Param(av);
    Tape fresh;
    Tape::Ref fresh_loss = c.tape_loss(&fresh, fresh.Param(fresh_p));
    fresh.Backward(fresh_loss);

    Var reused_p = Param(av);
    reused.Reset();
    Tape::Ref loss = c.tape_loss(&reused, reused.Param(reused_p));
    reused.Backward(loss);

    ExpectBitIdentical(fresh.value(fresh_loss), reused.value(loss), c.name);
    ASSERT_TRUE(fresh_p->has_grad() && reused_p->has_grad()) << c.name;
    ExpectBitIdentical(fresh_p->grad, reused_p->grad, c.name);
  }
}

// The full GNN encoder (the realistic multi-consumer graph: h feeds three
// message paths per layer): a fresh tape and a Reset-reused tape must agree
// bit-for-bit on the loss, the embeddings, and every parameter gradient.
TEST(TapeTest, GnnForwardBackwardBitIdentity) {
  JobGraph g = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                          workloads::Engine::kFlink);
  const int n = g.num_operators();
  Rng rng(33);
  GnnConfig cfg;
  cfg.feature_dim = 7;
  cfg.hidden_dim = 12;
  cfg.num_layers = 2;
  cfg.seed = 42;
  GnnEncoder encoder(cfg);
  Matrix features = RandomMatrix(n, cfg.feature_dim, &rng);
  Matrix pcol = RandomMatrix(n, 1, &rng, 0.5);
  Matrix targets(n, 1), mask(n, 1);
  for (int v = 0; v < n; ++v) {
    targets.at(v, 0) = v % 2;
    mask.at(v, 0) = v % 3 == 0 ? 0.0 : 1.0;
  }
  Rng head_rng(7);
  Mlp head({cfg.hidden_dim, 8, 1}, Activation::kRelu, &head_rng);
  GraphContext ctx = GraphContext::Build(g);
  std::vector<Var> params = encoder.Params();
  for (const Var& p : head.Params()) params.push_back(p);

  // Reference: a single-use tape.
  Matrix loss_ref, emb_ref;
  std::vector<Matrix> grads_ref;
  {
    Tape tape;
    Tape::Ref emb = encoder.Forward(&tape, ctx, features, pcol);
    Tape::Ref loss =
        tape.BceWithLogitsMasked(head.Forward(&tape, emb), &targets, &mask);
    tape.Backward(loss);
    loss_ref = tape.value(loss);
    emb_ref = tape.value(emb);
    for (const Var& p : params) {
      ASSERT_TRUE(p->has_grad());
      grads_ref.push_back(p->grad);
    }
  }

  // A reused tape must reproduce the reference exactly on every recording,
  // including the first ones where buffer slots are still being assigned.
  Tape tape;
  for (int round = 0; round < 3; ++round) {
    tape.Reset();
    Tape::Ref emb = encoder.Forward(&tape, ctx, features, pcol);
    Tape::Ref loss =
        tape.BceWithLogitsMasked(head.Forward(&tape, emb), &targets, &mask);
    tape.Backward(loss);
    ExpectBitIdentical(loss_ref, tape.value(loss), "loss");
    ExpectBitIdentical(emb_ref, tape.value(emb), "embeddings");
    for (size_t i = 0; i < params.size(); ++i) {
      ASSERT_TRUE(params[i]->has_grad()) << "param " << i;
      ExpectBitIdentical(grads_ref[i], params[i]->grad, "param grad");
    }
  }
}

// Steady-state training must not allocate: once warmup epochs settle every
// buffer at its final size and slot (the backward pass moves first-
// contribution gradient buffers between slots, so the assignment takes a
// few epochs to stabilize), the arena capacities never change again — and
// re-recording the same graph yields the same node count.
TEST(TapeTest, SteadyStateEpochsDoNotGrowArena) {
  JobGraph g = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                          workloads::Engine::kFlink);
  const int n = g.num_operators();
  Rng rng(55);
  GnnConfig cfg;
  cfg.feature_dim = 5;
  cfg.hidden_dim = 16;
  cfg.num_layers = 3;
  cfg.seed = 9;
  GnnEncoder encoder(cfg);
  Rng head_rng(10);
  Mlp head({cfg.hidden_dim, 8, 1}, Activation::kRelu, &head_rng);
  Matrix features = RandomMatrix(n, cfg.feature_dim, &rng);
  Matrix pcol = RandomMatrix(n, 1, &rng, 0.5);
  Matrix targets(n, 1), mask(n, 1, 1.0);
  GraphContext ctx = GraphContext::Build(g);
  std::vector<Var> params = encoder.Params();
  for (const Var& p : head.Params()) params.push_back(p);
  Adam opt(params, 1e-3);

  Tape tape;
  auto epoch = [&] {
    tape.Reset();
    Tape::Ref emb = encoder.Forward(&tape, ctx, features, pcol);
    Tape::Ref loss =
        tape.BceWithLogitsMasked(head.Forward(&tape, emb), &targets, &mask);
    tape.Backward(loss);
    opt.Step();
  };

  for (int e = 0; e < 8; ++e) epoch();
  const Tape::Stats warm = tape.ArenaStats();
  const int warm_nodes = tape.num_nodes();
  ASSERT_GT(warm.buffer_doubles, 0u);
  for (int e = 0; e < 20; ++e) {
    epoch();
    EXPECT_TRUE(tape.ArenaStats() == warm) << "epoch " << e;
    EXPECT_EQ(tape.num_nodes(), warm_nodes);
  }
}

}  // namespace
}  // namespace streamtune::ml
