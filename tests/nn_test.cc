#include <gtest/gtest.h>

#include "common/math_util.h"
#include "ml/nn.h"
#include "ml/tape.h"

namespace streamtune::ml {
namespace {

TEST(LinearLayerTest, ShapesAndBias) {
  Rng rng(1);
  LinearLayer layer(4, 3, &rng);
  Matrix x(5, 4, 1.0);
  Tape tape;
  Tape::Ref y = layer.Forward(&tape, tape.Constant(&x));
  EXPECT_EQ(tape.value(y).rows(), 5);
  EXPECT_EQ(tape.value(y).cols(), 3);
  EXPECT_EQ(layer.Params().size(), 2u);
}

TEST(MlpTest, ForwardShape) {
  Rng rng(2);
  Mlp mlp({6, 8, 4, 1}, Activation::kRelu, &rng);
  EXPECT_EQ(mlp.in_dim(), 6);
  EXPECT_EQ(mlp.out_dim(), 1);
  EXPECT_EQ(mlp.Params().size(), 6u);  // 3 layers x (W, b)
  Matrix x(7, 6, 0.5);
  Tape tape;
  Tape::Ref y = mlp.Forward(&tape, tape.Constant(&x));
  EXPECT_EQ(tape.value(y).rows(), 7);
  EXPECT_EQ(tape.value(y).cols(), 1);
}

TEST(AdamTest, MinimizesQuadratic) {
  // minimize ||x - t||^2; Adam should get close to t.
  Var x = Param(Matrix(1, 3, 0.0));
  Matrix target(1, 3);
  target.at(0, 0) = 1.0;
  target.at(0, 1) = -2.0;
  target.at(0, 2) = 0.5;
  Adam opt({x}, 0.05);
  Tape tape;
  for (int i = 0; i < 500; ++i) {
    tape.Reset();
    Tape::Ref loss = tape.MseLoss(tape.Param(x), &target);
    tape.Backward(loss);
    opt.Step();
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(x->value.at(0, c), target.at(0, c), 1e-2);
  }
}

TEST(AdamTest, ZeroGradClearsGradients) {
  Var x = Param(Matrix(1, 1, 1.0));
  Adam opt({x}, 0.1);
  Matrix target(1, 1, 0.0);
  Tape tape;
  Tape::Ref loss = tape.MseLoss(tape.Param(x), &target);
  tape.Backward(loss);
  EXPECT_TRUE(x->has_grad());
  opt.ZeroGrad();
  EXPECT_FALSE(x->has_grad());
}

TEST(MlpTest, LearnsXor) {
  // XOR is not linearly separable: requires the hidden layer to work.
  Rng rng(3);
  Mlp mlp({2, 8, 1}, Activation::kTanh, &rng);
  Matrix x = Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  Matrix y = Matrix::FromRows({{0}, {1}, {1}, {0}});
  Matrix mask(4, 1, 1.0);
  Adam opt(mlp.Params(), 0.02);
  Tape tape;
  for (int epoch = 0; epoch < 1500; ++epoch) {
    tape.Reset();
    Tape::Ref logits = mlp.Forward(&tape, tape.Constant(&x));
    Tape::Ref loss = tape.BceWithLogitsMasked(logits, &y, &mask);
    tape.Backward(loss);
    opt.Step();
  }
  tape.Reset();
  Tape::Ref logits = mlp.Forward(&tape, tape.Constant(&x));
  for (int i = 0; i < 4; ++i) {
    double prob = Sigmoid(tape.value(logits).at(i, 0));
    EXPECT_NEAR(prob, y.at(i, 0), 0.2) << "input row " << i;
  }
}

TEST(ActivateTest, AppliesRequestedFunction) {
  Matrix x(1, 1, -1.0);
  auto apply = [&x](Activation act) {
    Tape tape;
    return tape.value(Activate(&tape, tape.Constant(&x), act)).at(0, 0);
  };
  EXPECT_DOUBLE_EQ(apply(Activation::kRelu), 0.0);
  EXPECT_NEAR(apply(Activation::kTanh), std::tanh(-1.0), 1e-12);
  EXPECT_NEAR(apply(Activation::kSigmoid), Sigmoid(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(apply(Activation::kNone), -1.0);
}

}  // namespace
}  // namespace streamtune::ml
