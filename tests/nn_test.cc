#include <gtest/gtest.h>

#include "common/math_util.h"
#include "ml/nn.h"

namespace streamtune::ml {
namespace {

TEST(LinearLayerTest, ShapesAndBias) {
  Rng rng(1);
  LinearLayer layer(4, 3, &rng);
  Var x = Constant(Matrix(5, 4, 1.0));
  Var y = layer.Forward(x);
  EXPECT_EQ(y->value.rows(), 5);
  EXPECT_EQ(y->value.cols(), 3);
  EXPECT_EQ(layer.Params().size(), 2u);
}

TEST(MlpTest, ForwardShape) {
  Rng rng(2);
  Mlp mlp({6, 8, 4, 1}, Activation::kRelu, &rng);
  EXPECT_EQ(mlp.in_dim(), 6);
  EXPECT_EQ(mlp.out_dim(), 1);
  EXPECT_EQ(mlp.Params().size(), 6u);  // 3 layers x (W, b)
  Var y = mlp.Forward(Constant(Matrix(7, 6, 0.5)));
  EXPECT_EQ(y->value.rows(), 7);
  EXPECT_EQ(y->value.cols(), 1);
}

TEST(AdamTest, MinimizesQuadratic) {
  // minimize ||x - t||^2; Adam should get close to t.
  Var x = Param(Matrix(1, 3, 0.0));
  Matrix target(1, 3);
  target.at(0, 0) = 1.0;
  target.at(0, 1) = -2.0;
  target.at(0, 2) = 0.5;
  Adam opt({x}, 0.05);
  for (int i = 0; i < 500; ++i) {
    Var loss = MseLoss(x, target);
    Backward(loss);
    opt.Step();
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(x->value.at(0, c), target.at(0, c), 1e-2);
  }
}

TEST(AdamTest, ZeroGradClearsGradients) {
  Var x = Param(Matrix(1, 1, 1.0));
  Adam opt({x}, 0.1);
  Var loss = MseLoss(x, Matrix(1, 1, 0.0));
  Backward(loss);
  EXPECT_TRUE(x->has_grad());
  opt.ZeroGrad();
  EXPECT_FALSE(x->has_grad());
}

TEST(MlpTest, LearnsXor) {
  // XOR is not linearly separable: requires the hidden layer to work.
  Rng rng(3);
  Mlp mlp({2, 8, 1}, Activation::kTanh, &rng);
  Matrix x = Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  Matrix y = Matrix::FromRows({{0}, {1}, {1}, {0}});
  Matrix mask(4, 1, 1.0);
  Adam opt(mlp.Params(), 0.02);
  for (int epoch = 0; epoch < 1500; ++epoch) {
    Var logits = mlp.Forward(Constant(x));
    Var loss = BceWithLogitsMasked(logits, y, mask);
    Backward(loss);
    opt.Step();
  }
  Var logits = mlp.Forward(Constant(x));
  for (int i = 0; i < 4; ++i) {
    double prob = Sigmoid(logits->value.at(i, 0));
    EXPECT_NEAR(prob, y.at(i, 0), 0.2) << "input row " << i;
  }
}

TEST(ActivateTest, AppliesRequestedFunction) {
  Var x = Constant(Matrix(1, 1, -1.0));
  EXPECT_DOUBLE_EQ(Activate(x, Activation::kRelu)->value.at(0, 0), 0.0);
  EXPECT_NEAR(Activate(x, Activation::kTanh)->value.at(0, 0),
              std::tanh(-1.0), 1e-12);
  EXPECT_NEAR(Activate(x, Activation::kSigmoid)->value.at(0, 0),
              Sigmoid(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(Activate(x, Activation::kNone)->value.at(0, 0), -1.0);
}

}  // namespace
}  // namespace streamtune::ml
