// Round-trip, corruption and durability tests for the knowledge-base store.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "common/crc32.h"
#include "index/wl_signature.h"
#include "kb/kb_service.h"
#include "kb/kb_store.h"
#include "kb/kb_updater.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::kb {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/streamtune_kb_" + tag + "_" +
         std::to_string(::getpid()) + ".txt";
}

std::vector<core::HistoryRecord> SampleCorpus() {
  std::vector<JobGraph> jobs;
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                            workloads::Engine::kFlink));
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 1));
  core::HistoryOptions opts;
  opts.samples_per_job = 5;
  return core::CollectHistory(jobs, opts);
}

KbUpdateOptions SmallOptions() {
  KbUpdateOptions o;
  o.pretrain.k = 2;
  o.pretrain.epochs = 3;
  o.pretrain.hidden_dim = 16;
  // Keep drift-triggered re-pre-training out of these persistence tests.
  o.min_new_records = 1000;
  return o;
}

/// One converged-session admission for `job`, with feedback drawn from the
/// service's own warm-up corpus (realistic embedding widths).
AdmissionRecord MakeAdmission(const KbService& service, const JobGraph& job,
                              uint64_t seed) {
  std::vector<JobGraph> jobs{job};
  core::HistoryOptions opts;
  opts.samples_per_job = 1;
  opts.seed = seed;
  AdmissionRecord rec;
  rec.record = core::CollectHistory(jobs, opts).front();
  auto snapshot = service.Snapshot();
  int c = snapshot->bundle()->AssignCluster(job);
  rec.feedback = snapshot->bundle()->WarmUpDataset(c, 6, seed);
  rec.gp_observations = {{0, 2.0, 5.5}, {1, 3.0, 7.25}};
  return rec;
}

std::unique_ptr<sim::StreamEngine> MakeEngine(const JobGraph& job,
                                              uint64_t seed) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::SimConfig cfg;
  cfg.noise_seed = seed;
  return std::make_unique<sim::FlinkEngine>(job, model, cfg);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
}

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

TEST(KbStoreTest, RoundTripPreservesState) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobGraph q5 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                           workloads::Engine::kFlink);
  JobGraph pqp = workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 2);
  ASSERT_TRUE((*service)->Admit(MakeAdmission(**service, q5, 11)).ok());
  ASSERT_TRUE((*service)->Admit(MakeAdmission(**service, pqp, 12)).ok());

  std::string path = TempPath("roundtrip");
  ASSERT_TRUE((*service)->Save(path).ok());
  auto back = LoadKb(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  const KnowledgeBase& orig = (*service)->Snapshot()->kb();
  EXPECT_EQ(back->bundle->num_clusters(), orig.bundle->num_clusters());
  EXPECT_EQ(back->bundle->records().size(), orig.bundle->records().size());
  EXPECT_EQ(back->appearance, orig.appearance);
  EXPECT_EQ(back->pretrain_corpus_size, orig.pretrain_corpus_size);
  EXPECT_EQ(back->drifted_since_pretrain, orig.drifted_since_pretrain);
  EXPECT_EQ(back->admissions_total, 2);
  ASSERT_EQ(back->jobs.size(), 2u);
  for (const auto& [name, job] : orig.jobs) {
    auto it = back->jobs.find(name);
    ASSERT_NE(it, back->jobs.end()) << name;
    EXPECT_EQ(it->second.admissions, job.admissions);
    ASSERT_EQ(it->second.feedback.size(), job.feedback.size());
    for (size_t i = 0; i < job.feedback.size(); ++i) {
      EXPECT_EQ(it->second.feedback[i].parallelism,
                job.feedback[i].parallelism);
      EXPECT_EQ(it->second.feedback[i].label, job.feedback[i].label);
      ASSERT_EQ(it->second.feedback[i].embedding.size(),
                job.feedback[i].embedding.size());
      for (size_t d = 0; d < job.feedback[i].embedding.size(); ++d) {
        EXPECT_DOUBLE_EQ(it->second.feedback[i].embedding[d],
                         job.feedback[i].embedding[d]);
      }
    }
    ASSERT_EQ(it->second.gp_observations.size(),
              job.gp_observations.size());
    for (size_t i = 0; i < job.gp_observations.size(); ++i) {
      EXPECT_EQ(it->second.gp_observations[i].op, job.gp_observations[i].op);
      EXPECT_DOUBLE_EQ(it->second.gp_observations[i].parallelism,
                       job.gp_observations[i].parallelism);
      EXPECT_DOUBLE_EQ(it->second.gp_observations[i].ability,
                       job.gp_observations[i].ability);
    }
  }
  std::remove(path.c_str());
}

TEST(KbStoreTest, ReloadedKbReproducesRecommendationsAllModels) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobGraph q3 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                           workloads::Engine::kFlink);
  JobGraph q5 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                           workloads::Engine::kFlink);
  ASSERT_TRUE((*service)->Admit(MakeAdmission(**service, q3, 21)).ok());
  ASSERT_TRUE((*service)->Admit(MakeAdmission(**service, q5, 22)).ok());

  std::string path = TempPath("rec");
  ASSERT_TRUE((*service)->Save(path).ok());
  auto fresh = KbService::Open(path, SmallOptions());
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  // Every fine-tune family must recommend bit-identically from the
  // reloaded KB: same warm-start feedback, same weights, same seeds.
  for (core::FineTuneModel model :
       {core::FineTuneModel::kXgboost, core::FineTuneModel::kSvm,
        core::FineTuneModel::kNn}) {
    core::StreamTuneOptions opts;
    opts.model = model;
    std::vector<int> a, b;
    for (KbService* svc : {service->get(), fresh->get()}) {
      auto engine = MakeEngine(q3, 7);
      std::vector<int> ones(q3.num_operators(), 1);
      ASSERT_TRUE(engine->Deploy(ones).ok());
      engine->ScaleAllSources(6.0);
      auto tuner = svc->Snapshot()->NewTuner(q3.name(), opts);
      auto outcome = tuner->Tune(engine.get());
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      (svc == service->get() ? a : b) = outcome->final_parallelism;
    }
    EXPECT_EQ(a, b) << "model " << core::FineTuneModelName(model);
  }
  std::remove(path.c_str());
}

TEST(KbStoreTest, EveryBitFlipIsRejected) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobGraph q5 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                           workloads::Engine::kFlink);
  ASSERT_TRUE((*service)->Admit(MakeAdmission(**service, q5, 31)).ok());

  std::string path = TempPath("flip");
  ASSERT_TRUE((*service)->Save(path).ok());
  std::string content = ReadAll(path);
  ASSERT_FALSE(content.empty());

  // Sweep single-bit flips across the file (stride keeps runtime sane).
  // The length-prefixed, CRC-checksummed section format must reject every
  // one of them with an error Status — never crash, never load silently.
  int flips = 0;
  for (size_t pos = 0; pos < content.size(); pos += 53) {
    std::string corrupted = content;
    corrupted[pos] = static_cast<char>(
        corrupted[pos] ^ (1 << (pos % 8)));
    WriteAll(path, corrupted);
    auto loaded = LoadKb(path);
    EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " loaded";
    ++flips;
  }
  EXPECT_GT(flips, 10);
  std::remove(path.c_str());
}

TEST(KbStoreTest, TruncationIsRejected) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  std::string path = TempPath("trunc");
  ASSERT_TRUE((*service)->Save(path).ok());
  std::string content = ReadAll(path);
  for (size_t keep : {content.size() / 4, content.size() / 2,
                      3 * content.size() / 4, content.size() - 1}) {
    WriteAll(path, content.substr(0, keep));
    EXPECT_FALSE(LoadKb(path).ok()) << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(KbStoreTest, SaveIsAtomicAndLeavesNoTempFile) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  std::string path = TempPath("atomic");
  ASSERT_TRUE((*service)->Save(path).ok());
  EXPECT_TRUE(Exists(path));
  EXPECT_FALSE(Exists(path + ".tmp"));

  // A failed save (invalid state) must not clobber the existing file.
  KnowledgeBase broken = (*service)->Snapshot()->kb();
  broken.appearance.push_back(0);  // size no longer matches cluster count
  EXPECT_FALSE(SaveKb(broken, path).ok());
  EXPECT_FALSE(Exists(path + ".tmp"));
  EXPECT_TRUE(LoadKb(path).ok());
  std::remove(path.c_str());
}

TEST(KbStoreTest, SaveToUnwritablePathFails) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  Status st = (*service)->Save("/nonexistent/dir/kb.txt");
  EXPECT_FALSE(st.ok());
}

// ---- Index section (version 2) ---------------------------------------------

/// Byte offset where the index section's header line starts. The index is
/// the last section, so [SectionStart, size) covers header + body.
size_t IndexSectionStart(const std::string& content) {
  size_t pos = content.find("\nsection index ");
  EXPECT_NE(pos, std::string::npos);
  return pos + 1;
}

/// Byte offset of the index section's body (just past its header newline).
size_t IndexBodyStart(const std::string& content) {
  size_t header = IndexSectionStart(content);
  size_t nl = content.find('\n', header);
  EXPECT_NE(nl, std::string::npos);
  return nl + 1;
}

TEST(KbStoreTest, RoundTripPreservesCorpusIndex) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  std::string path = TempPath("idxroundtrip");
  ASSERT_TRUE((*service)->Save(path).ok());
  auto back = LoadKb(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  const KnowledgeBase& orig = (*service)->Snapshot()->kb();
  ASSERT_EQ(back->corpus_index.size(), orig.corpus_index.size());
  ASSERT_EQ(static_cast<size_t>(back->corpus_index.size()),
            back->bundle->records().size());
  for (int i = 0; i < back->corpus_index.size(); ++i) {
    EXPECT_EQ(back->corpus_index.slices().signature(i),
              index::ComputeWlSignature(back->bundle->records()[i].graph))
        << i;
  }
  std::remove(path.c_str());
}

TEST(KbStoreTest, LegacyVersion1FileLoadsAndRebuildsIndex) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobGraph q5 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                           workloads::Engine::kFlink);
  ASSERT_TRUE((*service)->Admit(MakeAdmission(**service, q5, 41)).ok());
  std::string path = TempPath("v1compat");
  ASSERT_TRUE((*service)->Save(path).ok());
  std::string content = ReadAll(path);

  // Reconstruct what a pre-index writer produced: version-1 header, three
  // sections, no index section (it is the last one, so a clean cut).
  std::string legacy = content.substr(0, IndexSectionStart(content));
  const std::string v2_header = "STKB 2\nsections 4\n";
  ASSERT_EQ(legacy.compare(0, v2_header.size(), v2_header), 0);
  legacy = "STKB 1\nsections 3\n" + legacy.substr(v2_header.size());
  WriteAll(path, legacy);

  auto back = LoadKb(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(static_cast<size_t>(back->corpus_index.size()),
            back->bundle->records().size());
  for (int i = 0; i < back->corpus_index.size(); ++i) {
    EXPECT_EQ(back->corpus_index.slices().signature(i),
              index::ComputeWlSignature(back->bundle->records()[i].graph))
        << i;
  }
  std::remove(path.c_str());
}

TEST(KbStoreTest, IndexSectionBitFlipIsRejected) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  std::string path = TempPath("idxflip");
  ASSERT_TRUE((*service)->Save(path).ok());
  std::string content = ReadAll(path);

  // Dense sweep over the index section only (header + body).
  int flips = 0;
  for (size_t pos = IndexSectionStart(content); pos < content.size();
       pos += 7) {
    std::string corrupted = content;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << (pos % 8)));
    WriteAll(path, corrupted);
    EXPECT_FALSE(LoadKb(path).ok())
        << "index-section bit flip at byte " << pos << " loaded";
    ++flips;
  }
  EXPECT_GT(flips, 10);
  std::remove(path.c_str());
}

TEST(KbStoreTest, IndexSectionTruncationIsRejected) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  std::string path = TempPath("idxtrunc");
  ASSERT_TRUE((*service)->Save(path).ok());
  std::string content = ReadAll(path);
  const size_t body = IndexBodyStart(content);
  for (size_t keep :
       {body, body + (content.size() - body) / 2, content.size() - 1}) {
    WriteAll(path, content.substr(0, keep));
    EXPECT_FALSE(LoadKb(path).ok())
        << "file truncated inside the index section at " << keep << " loaded";
  }
  std::remove(path.c_str());
}

TEST(KbStoreTest, IndexInconsistentWithCorpusIsRejectedDespiteValidCrc) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  std::string path = TempPath("idxtamper");
  ASSERT_TRUE((*service)->Save(path).ok());
  std::string content = ReadAll(path);

  // An attacker (or a buggy external tool) rewrites column 0's signature
  // AND fixes the section CRC so the checksum passes. The load-time spot
  // check against signatures recomputed from the corpus must still refuse.
  std::string prefix = content.substr(0, IndexSectionStart(content));
  std::string body = content.substr(IndexBodyStart(content));
  const size_t line_end = body.find('\n', body.find('\n') + 1);
  ASSERT_NE(line_end, std::string::npos);
  size_t last_space = body.rfind(' ', line_end);
  ASSERT_NE(last_space, std::string::npos);
  std::string tampered = body.substr(0, last_space + 1) + "deadbeef" +
                         body.substr(line_end);
  ASSERT_NE(tampered, body);
  std::ostringstream out;
  out << prefix << "section index " << tampered.size() << ' '
      << Crc32(tampered) << '\n'
      << tampered;
  WriteAll(path, out.str());

  auto loaded = LoadKb(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("inconsistent"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(KbStoreTest, LoadRejectsMissingAndForeignFiles) {
  EXPECT_FALSE(LoadKb("/nonexistent/dir/kb.txt").ok());
  std::string path = TempPath("foreign");
  WriteAll(path, "STHISTORY 1\ncount 0\n");
  EXPECT_FALSE(LoadKb(path).ok());
  WriteAll(path, "STKB 99\nsections 3\n");
  EXPECT_FALSE(LoadKb(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamtune::kb
