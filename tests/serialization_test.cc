// Round-trip and malformed-input tests for history/bundle persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

#include "core/serialization.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::core {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/streamtune_" + tag + "_" +
         std::to_string(::getpid()) + ".txt";
}

std::vector<HistoryRecord> SampleCorpus() {
  std::vector<JobGraph> jobs;
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                            workloads::Engine::kFlink));
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 1));
  HistoryOptions opts;
  opts.samples_per_job = 5;
  return CollectHistory(jobs, opts);
}

TEST(SerializationTest, JobGraphRoundTrip) {
  JobGraph g = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                          workloads::Engine::kFlink);
  std::stringstream ss;
  WriteJobGraph(ss, g);
  auto back = ReadJobGraph(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), g.name());
  ASSERT_EQ(back->num_operators(), g.num_operators());
  EXPECT_EQ(back->edges(), g.edges());
  for (int v = 0; v < g.num_operators(); ++v) {
    const OperatorSpec& a = g.op(v);
    const OperatorSpec& b = back->op(v);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.window_type, b.window_type);
    EXPECT_DOUBLE_EQ(a.window_length, b.window_length);
    EXPECT_DOUBLE_EQ(a.sliding_length, b.sliding_length);
    EXPECT_EQ(a.aggregate_function, b.aggregate_function);
    EXPECT_DOUBLE_EQ(a.tuple_width_in, b.tuple_width_in);
    EXPECT_DOUBLE_EQ(a.source_rate, b.source_rate);
  }
}

TEST(SerializationTest, ReadRejectsMalformedGraph) {
  std::stringstream empty("");
  EXPECT_FALSE(ReadJobGraph(empty).ok());
  std::stringstream wrong_magic("grph foo\nops 1\n");
  EXPECT_FALSE(ReadJobGraph(wrong_magic).ok());
  std::stringstream bad_enum("graph g\nops 1\nop s 99 0 0 0 0 0 0 0 0 0 0 0 "
                             "0\nedges 0\n");
  EXPECT_FALSE(ReadJobGraph(bad_enum).ok());
  std::stringstream bad_edge(
      "graph g\nops 1\nop s 0 0 0 0 0 0 0 0 0 0 0 0 5\nedges 1\ne 0 7\n");
  EXPECT_FALSE(ReadJobGraph(bad_edge).ok());
}

TEST(SerializationTest, HistoryRoundTrip) {
  auto corpus = SampleCorpus();
  std::string path = TempPath("hist");
  ASSERT_TRUE(SaveHistory(corpus, path).ok());
  auto back = LoadHistory(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*back)[i].parallelism, corpus[i].parallelism);
    EXPECT_EQ((*back)[i].labels, corpus[i].labels);
    EXPECT_EQ((*back)[i].backpressure, corpus[i].backpressure);
    EXPECT_DOUBLE_EQ((*back)[i].job_cost, corpus[i].job_cost);
    ASSERT_EQ((*back)[i].source_rates.size(), corpus[i].source_rates.size());
    for (size_t v = 0; v < corpus[i].source_rates.size(); ++v) {
      EXPECT_DOUBLE_EQ((*back)[i].source_rates[v],
                       corpus[i].source_rates[v]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadHistoryRejectsMissingFile) {
  EXPECT_FALSE(LoadHistory("/nonexistent/dir/nope.txt").ok());
}

TEST(SerializationTest, LoadHistoryRejectsWrongMagic) {
  std::string path = TempPath("badmagic");
  {
    std::ofstream os(path);
    os << "NOTAHISTORY 1\ncount 0\n";
  }
  EXPECT_FALSE(LoadHistory(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, BundleRoundTripPreservesModelOutputs) {
  auto corpus = SampleCorpus();
  PretrainOptions pre;
  pre.use_clustering = true;
  pre.k = 2;
  pre.epochs = 5;
  pre.hidden_dim = 16;
  auto bundle = Pretrainer(pre).Run(corpus);
  ASSERT_TRUE(bundle.ok());

  std::string path = TempPath("bundle");
  ASSERT_TRUE(SaveBundle(*bundle, path).ok());
  auto back = LoadBundle(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back->num_clusters(), bundle->num_clusters());
  EXPECT_EQ(back->records().size(), bundle->records().size());

  // The loaded bundle must reproduce embeddings and head outputs exactly.
  JobGraph probe = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                              workloads::Engine::kFlink);
  std::vector<double> rates(probe.num_operators(), 0.0);
  std::vector<int> parallelism(probe.num_operators(), 4);
  for (int v = 0; v < probe.num_operators(); ++v) {
    if (probe.op(v).is_source()) rates[v] = 1e6;
  }
  for (int c = 0; c < bundle->num_clusters(); ++c) {
    ml::Matrix a = bundle->AgnosticEmbeddings(c, probe, rates);
    ml::Matrix b = back->AgnosticEmbeddings(c, probe, rates);
    ASSERT_TRUE(a.same_shape(b));
    EXPECT_DOUBLE_EQ(a.Sub(b).SquaredNorm(), 0.0) << "cluster " << c;
    auto pa = bundle->PretrainHeadProbabilities(c, probe, rates, parallelism);
    auto pb = back->PretrainHeadProbabilities(c, probe, rates, parallelism);
    for (size_t v = 0; v < pa.size(); ++v) EXPECT_DOUBLE_EQ(pa[v], pb[v]);
    // Warm-up datasets built from the loaded corpus match too.
    auto wa = bundle->WarmUpDataset(c, 8, 3);
    auto wb = back->WarmUpDataset(c, 8, 3);
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].parallelism, wb[i].parallelism);
      EXPECT_EQ(wa[i].label, wb[i].label);
    }
  }
  // Cluster assignment is preserved (same centers).
  EXPECT_EQ(back->AssignCluster(probe), bundle->AssignCluster(probe));
  std::remove(path.c_str());
}

TEST(SerializationTest, SaveFailsCleanlyWhenUnwritable) {
  auto corpus = SampleCorpus();
  // Unwritable temp path: the checked writer reports the open failure.
  EXPECT_FALSE(SaveHistory(corpus, "/nonexistent/dir/x.txt").ok());
  // A collision at <path>.tmp (here: a directory) must fail the save
  // without ever creating the destination file.
  std::string path = TempPath("collide");
  ASSERT_EQ(::mkdir((path + ".tmp").c_str(), 0755), 0);
  EXPECT_FALSE(SaveHistory(corpus, path).ok());
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0);
  std::remove((path + ".tmp").c_str());
}

TEST(SerializationTest, SaveLeavesNoTempFileBehind) {
  auto corpus = SampleCorpus();
  std::string path = TempPath("notmp");
  ASSERT_TRUE(SaveHistory(corpus, path).ok());
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
  std::remove(path.c_str());
}

TEST(SerializationTest, BundleBitFlipsNeverCrashTheLoader) {
  auto corpus = SampleCorpus();
  PretrainOptions pre;
  pre.use_clustering = false;
  pre.epochs = 2;
  pre.hidden_dim = 16;
  auto bundle = Pretrainer(pre).Run(corpus);
  ASSERT_TRUE(bundle.ok());
  std::string path = TempPath("bundleflip");
  ASSERT_TRUE(SaveBundle(*bundle, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  in.close();

  // The bundle format has no checksum, so a flip inside a numeric literal
  // may still parse — but every flip must come back as either ok() or an
  // error Status, never a crash or an uncaught exception.
  int rejected = 0;
  for (size_t pos = 0; pos < content.size(); pos += 101) {
    std::string corrupted = content;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << (pos % 8)));
    {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os << corrupted;
    }
    auto loaded = LoadBundle(path);
    if (!loaded.ok()) {
      ++rejected;
    } else {
      EXPECT_GE(loaded->num_clusters(), 1);
    }
  }
  EXPECT_GT(rejected, 0);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadBundleRejectsTruncatedFile) {
  auto corpus = SampleCorpus();
  PretrainOptions pre;
  pre.use_clustering = false;
  pre.epochs = 2;
  pre.hidden_dim = 16;
  auto bundle = Pretrainer(pre).Run(corpus);
  ASSERT_TRUE(bundle.ok());
  std::string path = TempPath("trunc");
  ASSERT_TRUE(SaveBundle(*bundle, path).ok());
  // Truncate to half size.
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  {
    std::ofstream os(path);
    os << content.substr(0, content.size() / 2);
  }
  EXPECT_FALSE(LoadBundle(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamtune::core
