// End-to-end test of the streamtune_cli binary (path injected by CMake).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

std::string Cli() { return STREAMTUNE_CLI_PATH; }

std::string Tmp(const char* tag) {
  return std::string(::testing::TempDir()) + "/cli_" + tag + "_" +
         std::to_string(::getpid()) + ".txt";
}

int RunCli(const std::string& cmd) {
  return std::system((cmd + " > /dev/null 2>&1").c_str());
}

// Runs the CLI capturing stdout; asserts the process exited 0.
std::string RunCliCapture(const std::string& cmd) {
  FILE* pipe = ::popen((cmd + " 2>/dev/null").c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (!pipe) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  int rc = ::pclose(pipe);
  EXPECT_EQ(0, rc) << cmd;
  return out;
}

TEST(CliTest, EndToEndPipeline) {
  std::string hist = Tmp("hist");
  std::string bundle = Tmp("bundle");
  ASSERT_EQ(0, RunCli(Cli() + " collect --workload nexmark-flink --samples 5 "
                           "--out " + hist));
  ASSERT_EQ(0, RunCli(Cli() + " inspect --history " + hist));
  ASSERT_EQ(0, RunCli(Cli() + " pretrain --history " + hist +
                   " --no-cluster --epochs 5 --out " + bundle));
  ASSERT_EQ(0, RunCli(Cli() + " inspect --bundle " + bundle));
  ASSERT_EQ(0, RunCli(Cli() + " tune --bundle " + bundle +
                   " --job nexmark:Q1 --rate 5"));
  ASSERT_EQ(0, RunCli(Cli() + " tune --bundle " + bundle +
                   " --job pqp:linear:0 --rate 3 --model svm"));
  ASSERT_EQ(0, RunCli(Cli() + " simulate --job nexmark:Q2 --rate 2 "
                           "--parallelism 3,4,2"));
  std::remove(hist.c_str());
  std::remove(bundle.c_str());
}

TEST(CliTest, ChaosFlagsInjectDeterministicFaults) {
  std::string hist = Tmp("chaos_hist");
  std::string bundle = Tmp("chaos_bundle");
  ASSERT_EQ(0, RunCli(Cli() + " collect --workload nexmark-flink --samples 5 "
                           "--out " + hist));
  ASSERT_EQ(0, RunCli(Cli() + " pretrain --history " + hist +
                   " --no-cluster --epochs 5 --out " + bundle));

  std::string cmd = Cli() + " tune --bundle " + bundle +
      " --job nexmark:Q1 --rate 5 --chaos-seed 42 --chaos-deploy-fail 0.1 "
      "--chaos-metric-drop 0.1 --chaos-straggler 0.05";
  std::string out1 = RunCliCapture(cmd);
  std::string out2 = RunCliCapture(cmd);
  // Fault injection is fully deterministic per seed.
  EXPECT_EQ(out1, out2);
  EXPECT_NE(out1.find("chaos:"), std::string::npos);
  EXPECT_NE(out1.find("survived:"), std::string::npos);

  // No chaos flags -> no chaos report.
  std::string clean = RunCliCapture(Cli() + " tune --bundle " + bundle +
                                    " --job nexmark:Q1 --rate 5");
  EXPECT_EQ(clean.find("chaos:"), std::string::npos);

  std::remove(hist.c_str());
  std::remove(bundle.c_str());
}

TEST(CliTest, RejectsInvalidFaultPlan) {
  // The fault plan is validated before the bundle is even loaded, so a
  // nonexistent bundle path still exercises the flag error.
  std::string bundle = Tmp("nobundle");
  EXPECT_NE(0, RunCli(Cli() + " tune --bundle " + bundle +
                   " --job nexmark:Q1 --chaos-deploy-fail 1.5"));
  EXPECT_NE(0, RunCli(Cli() + " tune --bundle " + bundle +
                   " --job nexmark:Q1 --chaos-metric-drop -0.3"));
}

TEST(CliTest, FailsCleanlyOnBadInput) {
  EXPECT_NE(0, RunCli(Cli()));                      // no command
  EXPECT_NE(0, RunCli(Cli() + " bogus"));           // unknown command
  EXPECT_NE(0, RunCli(Cli() + " collect"));         // missing --out
  EXPECT_NE(0, RunCli(Cli() + " tune --bundle /nonexistent.txt "
                           "--job nexmark:Q1"));
  EXPECT_NE(0, RunCli(Cli() + " simulate --job nexmark:Q99"));
  EXPECT_NE(0, RunCli(Cli() + " simulate --job pqp:linear:999"));
}

}  // namespace
